//! Online runtime hot paths: dispatch throughput (one uniform draw plus
//! an inverse-CDF lookup behind the epoch swap), the cost of publishing
//! a fresh table under reader load, and the sharding payoff — N threads
//! contending on one `Mutex<Dispatcher>` versus the same N threads each
//! pinned to their own shard of a `ShardedDispatcher`.

use std::hint::black_box;
use std::sync::{Arc, Mutex};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtlb_runtime::{Dispatcher, EpochSwap, Runtime, SchemeKind, ShardedDispatcher};

fn serving_runtime(n_nodes: usize) -> Runtime {
    let rt = Runtime::builder()
        .seed(42)
        .scheme(SchemeKind::Coop)
        .nominal_arrival_rate(0.7 * n_nodes as f64)
        .build();
    for i in 0..n_nodes {
        // Heterogeneous: a few fast nodes, a tail of slow ones.
        let rate = if i < n_nodes / 4 + 1 { 4.0 } else { 1.0 };
        rt.register_node(rate).unwrap();
    }
    rt.resolve_now().unwrap();
    rt
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_dispatch");
    group.throughput(Throughput::Elements(1));
    for &n in &[2usize, 8, 32, 128] {
        let rt = serving_runtime(n);
        group.bench_with_input(BenchmarkId::new("dispatch", n), &rt, |b, rt| {
            b.iter(|| black_box(rt.dispatch().unwrap()))
        });
    }
    group.finish();
}

fn bench_table_load(c: &mut Criterion) {
    // The raw read side of the epoch swap: what each dispatch pays before
    // the CDF lookup.
    let rt = serving_runtime(8);
    let slot = rt.table_handle();
    let mut group = c.benchmark_group("runtime_dispatch");
    group.throughput(Throughput::Elements(1));
    group.bench_function("table_load", |b| b.iter(|| black_box(slot.load().epoch())));
    group.finish();
}

fn bench_publish(c: &mut Criterion) {
    // Publish latency: swap a prebuilt table into the slot (the re-solver
    // write path minus the solve itself), alone and against a reader.
    let rt = serving_runtime(8);
    let table = (*rt.current_table()).clone();
    let mut group = c.benchmark_group("runtime_publish");
    group.throughput(Throughput::Elements(1));

    let slot = Arc::new(EpochSwap::new(table.clone()));
    group.bench_function("publish_uncontended", |b| {
        let next = Arc::new(table.clone());
        b.iter(|| black_box(slot.publish_arc(Arc::clone(&next))))
    });

    let slot = Arc::new(EpochSwap::new(table.clone()));
    let reader_slot = Arc::clone(&slot);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader_stop = Arc::clone(&stop);
    let reader = std::thread::spawn(move || {
        let mut sink = 0u64;
        while !reader_stop.load(std::sync::atomic::Ordering::Relaxed) {
            sink = sink.wrapping_add(reader_slot.load().epoch());
        }
        sink
    });
    group.bench_function("publish_vs_reader", |b| {
        let next = Arc::new(table.clone());
        b.iter(|| black_box(slot.publish_arc(Arc::clone(&next))))
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = reader.join();
    group.finish();
}

fn bench_sharded_vs_mutex(c: &mut Criterion) {
    // The tentpole comparison: four producer threads routing jobs
    // through (a) one dispatcher behind a global mutex — every dispatch
    // locks it, because holding it across a batch would starve the other
    // producers — versus (b) four shards of a ShardedDispatcher, one per
    // thread, each holding its ShardGuard (lock + pinned table snapshot)
    // across its whole batch, which nothing else contends for. Both read
    // the same epoch-swapped table; the CI perf gate asserts (b) is at
    // least twice as fast.
    const THREADS: usize = 4;
    const JOBS_PER_THREAD: u64 = 10_000;

    let rt = serving_runtime(8);
    let mut group = c.benchmark_group("runtime_sharding");
    group.sample_size(15);
    group.throughput(Throughput::Elements(THREADS as u64 * JOBS_PER_THREAD));

    let mutexed = Arc::new(Mutex::new(Dispatcher::new(rt.table_handle(), 42)));
    group.bench_function(BenchmarkId::new("mutex", THREADS), |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let d = Arc::clone(&mutexed);
                    s.spawn(move || {
                        for _ in 0..JOBS_PER_THREAD {
                            black_box(d.lock().unwrap().dispatch().unwrap());
                        }
                    });
                }
            })
        })
    });

    let sharded = Arc::new(ShardedDispatcher::new(rt.table_handle(), 42, THREADS));
    group.bench_function(BenchmarkId::new("sharded", THREADS), |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for t in 0..THREADS {
                    let d = Arc::clone(&sharded);
                    s.spawn(move || {
                        let mut guard = d.shard(t);
                        for _ in 0..JOBS_PER_THREAD {
                            black_box(guard.dispatch().unwrap());
                        }
                    });
                }
            })
        })
    });
    group.finish();
}

fn bench_resolve(c: &mut Criterion) {
    // The full periodic re-solve: snapshot, COOP solve, build, publish.
    let mut group = c.benchmark_group("runtime_resolve");
    for &n in &[8usize, 32] {
        let rt = serving_runtime(n);
        group.bench_with_input(BenchmarkId::new("coop_resolve", n), &rt, |b, rt| {
            b.iter(|| black_box(rt.resolve_now().unwrap()))
        });
    }
    group.finish();
}

fn bench_failure_path(c: &mut Criterion) {
    // Renormalize-on-failure: RoutingTable::without_node, the latency
    // between "node died" and "no job routes to it".
    let rt = serving_runtime(32);
    let table = rt.current_table();
    let victim = table.nodes()[0];
    let mut group = c.benchmark_group("runtime_resolve");
    group.bench_function("renormalize_without_node_32", |b| {
        b.iter(|| black_box(table.without_node(victim, 1).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dispatch,
    bench_table_load,
    bench_publish,
    bench_sharded_vs_mutex,
    bench_resolve,
    bench_failure_path
);
criterion_main!(benches);
