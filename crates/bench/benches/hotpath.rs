//! The PR-9 hot-path benchmarks: pinned borrowed snapshots and
//! incremental alias repair.
//!
//! Three groups feed `BENCH_hotpath.json` (via `GTLB_BENCH_JSON`):
//!
//! * `hotpath_route/pinned/{16,1024,65536}` — ns/route through a held
//!   [`Lease`] (`&RoutingTable`, no `Arc` clone) at three table sizes,
//!   the "tens-of-ns routing" number the ROADMAP names;
//! * `hotpath_batch/{arc_lease,pinned}/1024` — a 1024-job batch where
//!   every job re-snapshots the table. `arc_lease` is the pre-pin
//!   dispatch path (one validated `swap.load()` `Arc` clone per job);
//!   `pinned` amortizes one `pin()` across the batch. CI gates
//!   `pinned ≥ 1.3× arc_lease`;
//! * `hotpath_publish/{rebuild,repair}/65536` — publish latency of a
//!   full `RoutingTable::new` rebuild vs a k = 1 incremental
//!   [`TableBuilder::update_weights`] repair at n = 65536. CI gates
//!   `repair ≥ 5× rebuild`.
//!
//! The repair case runs on the *absorber family* (one heavyweight
//! bucket at index 0, a plateau of ones, a short zero tail — all
//! dyadic): the configuration the incremental path is built for, where
//! the absorber sits at the end of the construction schedule and a
//! low-index k = 1 delta cascades through a handful of steps instead
//! of the whole table — see "Incremental repair" in DESIGN.md. The
//! timed loop chains each repaired table as the next publish's base
//! and ping-pongs one bucket between two exact dyadic values, so every
//! iteration is a genuine k = 1 repair on fresh state; asserts before
//! and after the loop prove the repair path engaged and never silently
//! fell back to the rebuild.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtlb_desim::rng::Xoshiro256PlusPlus;
use gtlb_runtime::{EpochSwap, NodeId, RoutingTable, TableBuilder};

/// Irregular weights with no two buckets equal and no knife-edge
/// residuals (a Weyl-style sequence in [1, 2)): uniform weights would
/// make every alias residual exactly 1.0 and a 4:1 split would make
/// them repeat, both of which flatter the repair path.
fn irregular_weights(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + ((i as u64).wrapping_mul(2_654_435_761) % 997) as f64 / 997.0).collect()
}

fn irregular_table(n: usize) -> RoutingTable {
    let ids = (0..n as u64).map(NodeId::from_raw).collect();
    RoutingTable::new(1, ids, &irregular_weights(n)).unwrap()
}

/// Pre-drawn uniforms (dispatch stream family) so the RNG cost stays
/// out of the route comparison.
fn draws(count: usize) -> Vec<f64> {
    let mut rng = Xoshiro256PlusPlus::stream(7, 0x0400);
    (0..count).map(|_| rng.next_open01()).collect()
}

fn bench_pinned_route(c: &mut Criterion) {
    let us = draws(4096);
    let mut group = c.benchmark_group("hotpath_route");
    group.throughput(Throughput::Elements(us.len() as u64));
    for &n in &[16usize, 1024, 65536] {
        let swap = EpochSwap::new(irregular_table(n));
        group.bench_with_input(BenchmarkId::new("pinned", n), &swap, |b, s| {
            b.iter(|| {
                let pin = s.pin();
                let mut sink = 0u64;
                for &u in &us {
                    sink = sink.wrapping_add(pin.route(u).raw());
                }
                black_box(sink)
            })
        });
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let batch = 1024usize;
    let us = draws(batch);
    let swap = EpochSwap::new(irregular_table(1024));
    let mut group = c.benchmark_group("hotpath_batch");
    group.throughput(Throughput::Elements(batch as u64));
    // The pre-pin path: every job takes a fresh validated Arc snapshot
    // (lease in, clone, lease out) — exactly what `Dispatcher::dispatch`
    // did before the borrowed pin existed.
    group.bench_function(BenchmarkId::new("arc_lease", batch), |b| {
        b.iter(|| {
            let mut sink = 0u64;
            for &u in &us {
                let table = swap.load();
                sink = sink.wrapping_add(table.route(u).raw());
            }
            black_box(sink)
        })
    });
    // The pinned path: one validated lease for the whole batch, jobs
    // route through the borrow.
    group.bench_function(BenchmarkId::new("pinned", batch), |b| {
        b.iter(|| {
            let pin = swap.pin();
            let mut sink = 0u64;
            for &u in &us {
                sink = sink.wrapping_add(pin.route(u).raw());
            }
            black_box(sink)
        })
    });
    group.finish();
}

/// The absorber family the repair path is built for: bucket 0 is the
/// unique heaviest (the mass absorber — and, as the lowest-index
/// large, the bucket whose recorded steps close the construction
/// schedule, so a low-index delta's cascade stays short), the bulk is
/// a plateau of ones, and a trailing run of zero-weight buckets rides
/// the small stack. All weights are dyadic with a power-of-two total,
/// so the published probabilities are exact and chained repairs
/// reproduce their bits forever.
fn absorber_weights(n: usize) -> Vec<f64> {
    assert!(n.is_power_of_two() && n >= 8);
    let mut w = vec![1.0; n];
    w[0] = 4.0;
    for x in w.iter_mut().skip(n - 3) {
        *x = 0.0;
    }
    w
}

fn bench_publish(c: &mut Criterion) {
    let n = 65536usize;
    let ids: Vec<NodeId> = (0..n as u64).map(NodeId::from_raw).collect();
    let weights = absorber_weights(n);
    let mut group = c.benchmark_group("hotpath_publish");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    group.bench_function(BenchmarkId::new("rebuild", n), |b| {
        b.iter(|| black_box(RoutingTable::new(2, ids.clone(), &weights).unwrap()))
    });

    let mut builder = TableBuilder::new();
    let base = builder.build(1, ids.clone(), &weights).unwrap();
    // Bucket 1's probability ping-pongs between its base value (an
    // exact dyadic, 2⁻¹⁶) and 1.5× it: the absorber's compensating
    // mass alternates between two exact values as well, so every
    // publish in the timed loop is a k = 1 repair against the
    // *previous* repair's output — chained bases, fresh state each
    // iteration, bits stable forever.
    let lo = base.probs()[1];
    let hi = lo * 1.5;
    // Prove the repair path engages before measuring it — if the
    // cascade fell back to a rebuild, the gate would be comparing the
    // rebuild against itself and pass vacuously.
    let before = builder.repairs();
    let mut current = builder.update_weights(&base, 2, &[(1, hi)]).unwrap();
    assert_eq!(
        builder.repairs(),
        before + 1,
        "k=1 delta at n={n} fell back to a full rebuild; repair preconditions regressed"
    );
    let rebuilds = builder.rebuilds();
    let mut epoch = 3u64;
    let mut next_hi = false;
    group.bench_function(BenchmarkId::new("repair", n), |b| {
        b.iter(|| {
            let w = if next_hi { hi } else { lo };
            next_hi = !next_hi;
            current = builder.update_weights(&current, epoch, &[(1, w)]).unwrap();
            epoch += 1;
            black_box(current.epoch())
        })
    });
    // ...and that no timed iteration silently took the fallback.
    assert_eq!(builder.rebuilds(), rebuilds, "a timed publish fell back to a full rebuild");
    group.finish();
}

criterion_group!(hotpath, bench_pinned_route, bench_batch, bench_publish);
criterion_main!(hotpath);
