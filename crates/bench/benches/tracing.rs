//! The per-job tracing overhead benchmarks. The headline gate: the
//! closed-loop driver with tracing **enabled** (default 1-in-64 head
//! sampling) must cost ≤ 1.03× the untraced driver loop
//! (`tracing_driver/{untraced,traced}/4096`; CI compares medians of
//! three quick runs from `BENCH_tracing.json`). The primitive
//! microbenches ride along to keep the building-block costs visible:
//! the SplitMix64 identity hash, the begin() hash-plus-mask test an
//! unsampled job pays, and a full flight-recorder record of a finished
//! trace.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtlb_runtime::driver::{TraceConfig, TraceDriver};
use gtlb_runtime::{Runtime, SchemeKind, Tracer, TracingConfig};
use gtlb_telemetry::trace::{trace_id, AttemptOutcome, FlightRecorder, SpanKind, Trace};

fn runtime(tracing: Option<TracingConfig>) -> Arc<Runtime> {
    let mut b = Runtime::builder().seed(0xBE9C).scheme(SchemeKind::Coop).nominal_arrival_rate(2.1);
    if let Some(cfg) = tracing {
        b = b.tracing_config(cfg);
    }
    let rt = Arc::new(b.build());
    for &rate in &[4.0, 2.0, 1.0] {
        rt.register_node(rate).unwrap();
    }
    rt.resolve_now().unwrap();
    rt
}

/// The gated comparison: the identical driver loop (arrival draw,
/// dispatch, FCFS service simulation, estimator feedback) per job,
/// untraced vs traced at the default sampling mask. Both sides push
/// the same 4096-job block per iteration.
fn bench_driver_overhead(c: &mut Criterion) {
    const JOBS: u64 = 4096;
    let mut group = c.benchmark_group("tracing_driver");
    group.throughput(Throughput::Elements(JOBS));
    for (label, cfg) in [("untraced", None), ("traced", Some(TracingConfig::default()))] {
        let rt = runtime(cfg);
        let mut driver = TraceDriver::new(2.1, TraceConfig { seed: 0xBEEF, batch_size: 500 });
        group.bench_function(BenchmarkId::new(label, JOBS), |b| {
            b.iter(|| {
                driver.run_jobs(&rt, JOBS).unwrap();
                black_box(driver.clock())
            })
        });
    }
    group.finish();
}

/// Primitive costs: the identity hash, the unsampled-job fast path
/// (one hash plus one mask test), and a whole-trace recorder push.
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracing_primitive");
    group.bench_function("trace_id_hash", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            black_box(trace_id(0xF1A6, seq))
        })
    });
    let tracer = Tracer::enabled(0xF1A6, 1, TracingConfig::default());
    group.bench_function("begin_default_mask", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            black_box(tracer.begin(seq).is_some())
        })
    });
    let recorder = FlightRecorder::new(1, 256, 4.0);
    group.bench_function("recorder_record", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            let mut t = Trace::new(trace_id(7, seq), seq);
            t.instant(SpanKind::Admitted, 0.0);
            t.instant(SpanKind::Routed { node: 1, epoch: 1, shard: 0 }, 0.0);
            t.interval(
                SpanKind::Attempt { n: 1, outcome: AttemptOutcome::Ok, backoff: 0.0 },
                0.0,
                0.5,
            );
            t.instant(SpanKind::Completed, 0.5);
            recorder.record(0, t);
            seq += 1;
        })
    });
    group.finish();
}

criterion_group!(benches, bench_driver_overhead, bench_primitives);
criterion_main!(benches);
