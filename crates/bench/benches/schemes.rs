//! §3.4.2's runtime remark, reproduced: "we ran both algorithms for a
//! system of 16 computers … 70 msec for WARDROP (ε = 1e-4) and 0.1 msec
//! for COOP" — COOP's closed form beats the iterative Wardrop solver by
//! orders of magnitude, and the gap persists as the cluster grows.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtlb_core::model::Cluster;
use gtlb_core::schemes::{Coop, Optim, Prop, SingleClassScheme, Wardrop};

/// A deterministic pseudo-heterogeneous cluster of size `n` (rates cycle
/// through four tiers like Table 3.1, scaled up).
fn cluster(n: usize) -> Cluster {
    let tiers = [0.13, 0.065, 0.026, 0.013];
    Cluster::new((0..n).map(|i| tiers[i % 4]).collect()).unwrap()
}

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_class_schemes");
    for &n in &[16usize, 256, 4096] {
        let cl = cluster(n);
        let phi = cl.arrival_rate_for_utilization(0.6);
        group.bench_with_input(BenchmarkId::new("COOP", n), &n, |b, _| {
            b.iter(|| Coop.allocate(black_box(&cl), black_box(phi)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("OPTIM", n), &n, |b, _| {
            b.iter(|| Optim.allocate(black_box(&cl), black_box(phi)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("PROP", n), &n, |b, _| {
            b.iter(|| Prop.allocate(black_box(&cl), black_box(phi)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("WARDROP(1e-4)", n), &n, |b, _| {
            let w = Wardrop::with_tolerance(1e-4);
            b.iter(|| w.allocate(black_box(&cl), black_box(phi)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("WARDROP(1e-10)", n), &n, |b, _| {
            let w = Wardrop::with_tolerance(1e-10);
            b.iter(|| w.allocate(black_box(&cl), black_box(phi)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
