//! Failover hot paths: what the fault-tolerance layer costs when nothing
//! is failing (detector bookkeeping, fault-window lookups, backoff
//! arithmetic), and the end-to-end failover latency — from "node died"
//! through the renormalized publish to the full re-solve that restores
//! it — plus a small chaos trace driven through a scripted crash.
//!
//! CI runs this in quick mode and uploads the numbers as
//! `BENCH_failover.json`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtlb_runtime::{
    AccrualDetector, DetectorConfig, FaultInjector, FaultPlan, NodeId, RetryConfig, RetryPolicy,
    Runtime, SchemeKind, TraceConfig, TraceDriver,
};

fn serving_runtime(n_nodes: usize) -> Runtime {
    let rt = Runtime::builder()
        .seed(42)
        .scheme(SchemeKind::Coop)
        .nominal_arrival_rate(0.5 * n_nodes as f64)
        .build();
    for i in 0..n_nodes {
        let rate = if i < n_nodes / 4 + 1 { 4.0 } else { 1.0 };
        rt.register_node(rate).unwrap();
    }
    rt.resolve_now().unwrap();
    rt
}

fn bench_detector(c: &mut Criterion) {
    // Steady-state detector bookkeeping: the per-heartbeat cost every
    // healthy node pays (EWMA gap update + boost decay, no transition).
    let rt = serving_runtime(4);
    let ids = rt.node_ids();
    let mut det = AccrualDetector::new(DetectorConfig::default());
    let mut t = 0.0;
    for _ in 0..16 {
        t += 1.0;
        for &id in &ids {
            det.observe_success(id, t);
        }
    }
    let mut group = c.benchmark_group("failover_detector");
    group.throughput(Throughput::Elements(1));
    group.bench_function("observe_success", |b| {
        let mut k = 0usize;
        b.iter(|| {
            t += 0.25;
            k = (k + 1) % ids.len();
            black_box(det.observe_success(ids[k], t))
        })
    });
    group.bench_function("phi", |b| b.iter(|| black_box(det.phi(ids[0], t))));
    group.finish();
}

fn bench_fault_lookup(c: &mut Criterion) {
    // The per-dispatch chaos tax: is this attempt dropped? One window
    // scan plus (inside a flaky window) one RNG draw.
    let rt = serving_runtime(4);
    let ids: Vec<NodeId> = rt.node_ids();
    let plan = FaultPlan::new(7)
        .flaky(ids[0], 0.0, 1e12, 0.2)
        .slow(ids[1], 0.0, 1e12, 0.5)
        .crash(ids[2], 0.0);
    let mut inj = FaultInjector::new(plan);
    let mut group = c.benchmark_group("failover_fault");
    group.throughput(Throughput::Elements(1));
    group.bench_function("attempt_flaky", |b| {
        let mut t = 1.0;
        b.iter(|| {
            t += 0.01;
            black_box(inj.attempt_drops(ids[0], t))
        })
    });
    group.bench_function("attempt_clean", |b| {
        let mut t = 1.0;
        b.iter(|| {
            t += 0.01;
            black_box(inj.attempt_drops(ids[3], t))
        })
    });
    group.bench_function("service_factor", |b| {
        b.iter(|| black_box(inj.service_factor(ids[1], 5.0)))
    });
    group.finish();
}

fn bench_backoff(c: &mut Criterion) {
    // Decorrelated-jitter arithmetic on the retry path.
    let policy = RetryPolicy::new(RetryConfig::default()).unwrap();
    let mut group = c.benchmark_group("failover_retry");
    group.throughput(Throughput::Elements(1));
    group.bench_function("backoff", |b| {
        let mut prev = 0.0;
        let mut u = 0.1;
        b.iter(|| {
            u = (u + 0.37) % 1.0;
            prev = policy.backoff(prev, u) % 1.0;
            black_box(prev)
        })
    });
    group.finish();
}

fn bench_failover_cycle(c: &mut Criterion) {
    // The failover latency proper: mark a node down (immediate
    // renormalized publish — the window during which jobs could still
    // route to the corpse), then bring it back and re-solve. One
    // iteration = one full down→up cycle on a 32-node cluster.
    let rt = serving_runtime(32);
    let victim = rt.node_ids()[0];
    let mut group = c.benchmark_group("failover_cycle");
    group.bench_function(BenchmarkId::new("down_renorm_up_resolve", 32), |b| {
        b.iter(|| {
            black_box(rt.mark_down(victim).unwrap());
            black_box(rt.mark_up(victim).unwrap());
            black_box(rt.resolve_now().unwrap())
        })
    });
    group.finish();
}

fn bench_chaos_trace(c: &mut Criterion) {
    // End to end: a closed-loop trace driven through a scripted
    // crash-recover with heartbeats, detection, retry, and healing.
    const JOBS: u64 = 2_000;
    let mut group = c.benchmark_group("failover_chaos");
    group.sample_size(10);
    group.throughput(Throughput::Elements(JOBS));
    group.bench_function(BenchmarkId::new("crash_recover_trace", JOBS), |b| {
        b.iter(|| {
            let rt = Runtime::builder()
                .seed(0xF1A6)
                .scheme(SchemeKind::Coop)
                .nominal_arrival_rate(2.1)
                .build();
            let ids: Vec<NodeId> =
                [4.0, 2.0, 1.0].iter().map(|&rate| rt.register_node(rate).unwrap()).collect();
            rt.resolve_now().unwrap();
            let plan = FaultPlan::new(0xC4A05).crash_recover(ids[0], 40.0, 60.0);
            let mut driver = TraceDriver::new(2.1, TraceConfig { seed: 0xBEEF, batch_size: 500 })
                .with_faults(plan)
                .with_retry(RetryPolicy::new(RetryConfig::default()).unwrap())
                .with_heartbeats(1.0);
            driver.run_jobs(&rt, JOBS).unwrap();
            let stats = driver.stats();
            assert!(stats.is_conserved());
            black_box(stats.mean_response)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_detector,
    bench_fault_lookup,
    bench_backoff,
    bench_failover_cycle,
    bench_chaos_trace
);
criterion_main!(benches);
