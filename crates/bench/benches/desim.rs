//! Simulator throughput: events per second of the discrete-event engine
//! on the paper's model — the budget ceiling for the Fig 3.6/4.8/5.2
//! experiments (each full figure is ~25 M events).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gtlb_core::model::Cluster;
use gtlb_core::schemes::{Coop, SingleClassScheme};
use gtlb_desim::farm::{run, FarmSpec, RunConfig};

fn bench_single_queue(c: &mut Criterion) {
    let spec = FarmSpec::single_class_mm1(&[1.0], &[0.7], 0.7);
    let jobs = 50_000u64;
    let mut group = c.benchmark_group("desim");
    group.sample_size(20);
    // Each completed job is 2 events (arrival + departure).
    group.throughput(Throughput::Elements(jobs * 2));
    group.bench_function("mm1_single_queue_50k_jobs", |b| {
        b.iter(|| {
            run(black_box(&spec), &RunConfig { seed: 1, warmup_jobs: 0, measured_jobs: jobs })
        })
    });
    group.finish();
}

fn bench_paper_farm(c: &mut Criterion) {
    let cluster = Cluster::from_groups(&[(2, 0.13), (3, 0.065), (5, 0.026), (6, 0.013)]).unwrap();
    let phi = cluster.arrival_rate_for_utilization(0.6);
    let loads = Coop.allocate(&cluster, phi).unwrap();
    let spec = FarmSpec::single_class_mm1(cluster.rates(), loads.loads(), phi);
    let jobs = 50_000u64;
    let mut group = c.benchmark_group("desim");
    group.sample_size(20);
    group.throughput(Throughput::Elements(jobs * 2));
    group.bench_function("table31_farm_50k_jobs", |b| {
        b.iter(|| {
            run(black_box(&spec), &RunConfig { seed: 1, warmup_jobs: 0, measured_jobs: jobs })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_queue, bench_paper_farm, bench_dynamic_policy);
criterion_main!(benches);

fn bench_dynamic_policy(c: &mut Criterion) {
    use gtlb_dynamic::{run_dynamic, DynamicConfig, DynamicSpec, Policy};
    let jobs = 50_000u64;
    let mut group = c.benchmark_group("desim");
    group.sample_size(20);
    group.throughput(Throughput::Elements(jobs * 2));
    for policy in [
        Policy::NoBalancing,
        Policy::SenderThreshold { threshold: 2, probe_limit: 3 },
        Policy::Symmetric { threshold: 2, probe_limit: 3 },
        Policy::CentralJsq,
    ] {
        let spec = DynamicSpec::homogeneous(8, 1.0, 0.8, 0.01, policy);
        group.bench_function(format!("dynamic_{}_50k_jobs", policy.name()), |b| {
            b.iter(|| {
                run_dynamic(
                    black_box(&spec),
                    &DynamicConfig { seed: 1, warmup_jobs: 0, measured_jobs: jobs },
                )
            })
        });
    }
    group.finish();
}
