//! The PR-4 hot-path benchmarks: alias-method routing against the
//! reference inverse-CDF path (n ∈ {4, 64, 1024}), the lock-free epoch
//! swap against an `RwLock`-based slot under reader fan-in (1/4/8
//! threads), and batched submission against per-job submission at
//! batch = 64. `GTLB_BENCH_JSON` emits the records CI gates on
//! (`BENCH_routing.json`): alias must be ≥ 1.5× the CDF path at
//! n = 1024 and batch submit ≥ 1.3× per-job submit at batch = 64.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtlb_desim::rng::Xoshiro256PlusPlus;
use gtlb_runtime::{EpochSwap, NodeId, RoutingTable, Runtime, SchemeKind};

/// A mildly skewed table over `n` nodes (a few fast, a tail of slow —
/// the same shape the allocators produce).
fn skewed_table(n: usize) -> RoutingTable {
    let ids = (0..n as u64).map(NodeId::from_raw).collect();
    let weights: Vec<f64> = (0..n).map(|i| if i < n / 4 + 1 { 4.0 } else { 1.0 }).collect();
    RoutingTable::new(1, ids, &weights).unwrap()
}

/// Pre-drawn uniforms so both routing paths consume identical inputs
/// and the RNG cost stays out of the comparison.
fn draws(count: usize) -> Vec<f64> {
    let mut rng = Xoshiro256PlusPlus::stream(7, 0x0400);
    (0..count).map(|_| rng.next_open01()).collect()
}

fn bench_route(c: &mut Criterion) {
    let us = draws(4096);
    let mut group = c.benchmark_group("routing_route");
    group.throughput(Throughput::Elements(us.len() as u64));
    for &n in &[4usize, 64, 1024] {
        let table = skewed_table(n);
        group.bench_with_input(BenchmarkId::new("cdf", n), &table, |b, t| {
            b.iter(|| {
                let mut sink = 0u64;
                for &u in &us {
                    sink = sink.wrapping_add(t.route_cdf(u).raw());
                }
                black_box(sink)
            })
        });
        group.bench_with_input(BenchmarkId::new("alias", n), &table, |b, t| {
            b.iter(|| {
                let mut sink = 0u64;
                for &u in &us {
                    sink = sink.wrapping_add(t.route(u).raw());
                }
                black_box(sink)
            })
        });
    }
    group.finish();
}

/// The pre-PR-4 slot: readers and the writer share an `RwLock`, every
/// load pays a read-lock acquisition. Kept here as the baseline the
/// lock-free swap is gated against.
struct LockedSwap {
    inner: RwLock<Arc<RoutingTable>>,
}

impl LockedSwap {
    fn new(table: RoutingTable) -> Self {
        Self { inner: RwLock::new(Arc::new(table)) }
    }

    fn load(&self) -> Arc<RoutingTable> {
        Arc::clone(&self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

/// Measures `load()` on the calling thread while `readers − 1`
/// background threads hammer the same slot.
fn bench_swap_variant<S: Send + Sync + 'static>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    readers: usize,
    slot: Arc<S>,
    load: fn(&S) -> Arc<RoutingTable>,
) {
    let stop = Arc::new(AtomicBool::new(false));
    let background: Vec<_> = (0..readers - 1)
        .map(|_| {
            let slot = Arc::clone(&slot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut sink = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    sink = sink.wrapping_add(load(&slot).epoch());
                }
                sink
            })
        })
        .collect();
    group.bench_function(BenchmarkId::new(name, readers), |b| {
        b.iter(|| black_box(load(&slot).epoch()))
    });
    stop.store(true, Ordering::Relaxed);
    for handle in background {
        let _ = handle.join();
    }
}

fn bench_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_swap");
    group.throughput(Throughput::Elements(1));
    for &readers in &[1usize, 4, 8] {
        let locked = Arc::new(LockedSwap::new(skewed_table(64)));
        bench_swap_variant(&mut group, "locked", readers, locked, LockedSwap::load);
        let lockfree = Arc::new(EpochSwap::new(skewed_table(64)));
        bench_swap_variant(&mut group, "lockfree", readers, lockfree, EpochSwap::load);
    }
    group.finish();
}

fn bench_submit(c: &mut Criterion) {
    let batch = 64usize;
    let rt = Runtime::builder()
        .seed(42)
        .scheme(SchemeKind::Coop)
        .nominal_arrival_rate(0.7 * 64.0)
        .build();
    for i in 0..64 {
        rt.register_node(if i < 17 { 4.0 } else { 1.0 }).unwrap();
    }
    rt.resolve_now().unwrap();

    let mut group = c.benchmark_group("routing_submit");
    group.throughput(Throughput::Elements(batch as u64));
    group.bench_function(BenchmarkId::new("per_job", batch), |b| {
        b.iter(|| {
            let mut sink = 0u64;
            for _ in 0..batch {
                sink = sink.wrapping_add(rt.submit_on(0).unwrap().decision().unwrap().node.raw());
            }
            black_box(sink)
        })
    });
    group.bench_function(BenchmarkId::new("batch", batch), |b| {
        b.iter(|| {
            let out = rt.submit_batch_on(0, batch).unwrap();
            black_box(out.decisions.last().copied())
        })
    });
    group.finish();
}

criterion_group!(routing, bench_route, bench_swap, bench_submit);
criterion_main!(routing);
