//! Cost of the Chapter 5 payment machinery (the quadrature over the work
//! curve dominates) and of a Chapter 6 verification round.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use gtlb_mechanism::payment::TruthfulMechanism;
use gtlb_mechanism::verification::{table61_mechanism, table62_behaviors, Table62};

fn table51_bids() -> Vec<f64> {
    [
        0.13, 0.13, 0.065, 0.065, 0.065, 0.026, 0.026, 0.026, 0.026, 0.026, 0.013, 0.013, 0.013,
        0.013, 0.013, 0.013,
    ]
    .iter()
    .map(|&r| 1.0 / r)
    .collect()
}

fn bench_payment(c: &mut Criterion) {
    let mech = TruthfulMechanism::new(0.5 * 0.663);
    let bids = table51_bids();
    c.bench_function("payment/allocation_only", |b| {
        b.iter(|| mech.allocate(black_box(&bids)).unwrap())
    });
    c.bench_function("payment/one_agent", |b| {
        b.iter(|| mech.payment(0, black_box(&bids)).unwrap())
    });
    let mut group = c.benchmark_group("payment/all_16_agents");
    group.sample_size(20);
    group.bench_function("payments", |b| b.iter(|| mech.payments(black_box(&bids)).unwrap()));
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let mech = table61_mechanism();
    let behaviors = table62_behaviors(&mech, Table62::True1);
    c.bench_function("verification/one_round_16_agents", |b| {
        b.iter(|| mech.run(black_box(&behaviors)).unwrap())
    });
}

criterion_group!(benches, bench_payment, bench_verification);
criterion_main!(benches);
