//! §4.4.2's runtime remark, reproduced: "The execution time of the NASH
//! algorithm … is about 12.5 msec per iteration" (on a 440 MHz SUN). We
//! measure one best reply, one full round, and the complete convergence
//! for growing user counts.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtlb_core::model::Cluster;
use gtlb_core::noncoop::best_reply::best_reply_in_profile;
use gtlb_core::noncoop::{nash, NashInit, NashOptions, StrategyProfile, UserSystem};

fn system(m: usize) -> UserSystem {
    let cluster = Cluster::from_groups(&[(2, 100.0), (3, 50.0), (5, 20.0), (6, 10.0)]).unwrap();
    let phi = cluster.arrival_rate_for_utilization(0.6);
    UserSystem::new(cluster, vec![phi / m as f64; m]).unwrap()
}

fn bench_best_reply(c: &mut Criterion) {
    let sys = system(10);
    let profile = StrategyProfile::proportional(&sys);
    c.bench_function("best_reply/16computers_10users", |b| {
        b.iter(|| best_reply_in_profile(black_box(&sys), black_box(&profile), 0).unwrap())
    });
}

fn bench_nash_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("nash_one_round");
    for &m in &[4usize, 10, 32] {
        let sys = system(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                // One full round = m best replies against a fresh
                // proportional profile.
                let mut p = StrategyProfile::proportional(&sys);
                for j in 0..m {
                    let row = best_reply_in_profile(&sys, &p, j).unwrap();
                    p.set_row(j, row);
                }
                p
            })
        });
    }
    group.finish();
}

fn bench_nash_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("nash_converge_1e-4");
    group.sample_size(20);
    for &m in &[4usize, 10, 16] {
        let sys = system(m);
        let opts = NashOptions { tolerance: 1e-4, max_rounds: 100_000 };
        group.bench_with_input(BenchmarkId::new("NASH_P", m), &m, |b, _| {
            b.iter(|| nash::solve(black_box(&sys), &NashInit::Proportional, &opts).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("NASH_0", m), &m, |b, _| {
            b.iter(|| nash::solve(black_box(&sys), &NashInit::Zero, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_best_reply, bench_nash_round, bench_nash_full);
criterion_main!(benches);
