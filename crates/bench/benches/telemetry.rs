//! The PR-5 observability overhead benchmarks. The headline gate:
//! dispatching through a shard with telemetry **enabled** must cost
//! ≤ 1.03× the disabled path on the n = 1024 alias table
//! (`telemetry_route/{disabled,enabled}/1024`; CI compares medians of
//! three quick runs from `BENCH_telemetry.json`). The instrument
//! microbenches ride along to keep the primitive costs visible:
//! counter add, histogram record, event-ring push, and a full
//! registry scrape.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtlb_runtime::telemetry::TELEMETRY_EVENT_CAPACITY;
use gtlb_runtime::{EpochSwap, NodeId, RoutingTable, ShardedDispatcher, Telemetry};
use gtlb_telemetry::{Counter, EventRing, Histogram, Registry, TaggedEvent};

/// The same mildly skewed table shape the routing bench gates on.
fn skewed_table(n: usize) -> RoutingTable {
    let ids = (0..n as u64).map(NodeId::from_raw).collect();
    let weights: Vec<f64> = (0..n).map(|i| if i < n / 4 + 1 { 4.0 } else { 1.0 }).collect();
    RoutingTable::new(1, ids, &weights).unwrap()
}

fn dispatcher(n: usize, telemetry: Telemetry) -> ShardedDispatcher {
    let swap = Arc::new(EpochSwap::new(skewed_table(n)));
    ShardedDispatcher::with_telemetry(swap, 0xBE9C, 1, telemetry)
}

/// The gated comparison: the identical decision stream, drawn through
/// the alias table at n = 1024, with the facade disabled vs enabled
/// (sampled ring pushes every 1024th dispatch). Both sides route the
/// same 4096-job block per iteration.
fn bench_route_overhead(c: &mut Criterion) {
    const JOBS: usize = 4096;
    let mut group = c.benchmark_group("telemetry_route");
    group.throughput(Throughput::Elements(JOBS as u64));
    for &n in &[64usize, 1024] {
        for (label, telemetry) in
            [("disabled", Telemetry::disabled()), ("enabled", Telemetry::enabled(1))]
        {
            let sharded = dispatcher(n, telemetry);
            group.bench_with_input(BenchmarkId::new(label, n), &sharded, |b, s| {
                b.iter(|| {
                    let mut guard = s.shard(0);
                    let mut sink = 0u64;
                    for _ in 0..JOBS {
                        sink = sink.wrapping_add(guard.dispatch().unwrap().node.raw());
                    }
                    black_box(sink)
                })
            });
        }
    }
    group.finish();
}

/// Primitive write costs: one sharded counter add, one histogram
/// record, one ring push (at wraparound, the worst case).
fn bench_instruments(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_instrument");
    let counter = Counter::new(1);
    group.bench_function("counter_add", |b| b.iter(|| counter.add(black_box(0), black_box(1))));
    let histogram = Histogram::new();
    group.bench_function("histogram_record", |b| {
        let mut x = 0.001f64;
        b.iter(|| {
            histogram.record(black_box(x));
            x = if x > 100.0 { 0.001 } else { x * 1.01 };
        })
    });
    let ring: EventRing<u64> = EventRing::new(1, TELEMETRY_EVENT_CAPACITY);
    for k in 0..TELEMETRY_EVENT_CAPACITY as u64 {
        ring.push(0, TaggedEvent { time: k as f64, shard: 0, stream: 0, event: k });
    }
    group.bench_function("ring_push_wrapped", |b| {
        let mut k = 0u64;
        b.iter(|| {
            ring.push(0, TaggedEvent { time: k as f64, shard: 0, stream: 0, event: k });
            k += 1;
        })
    });
    group.finish();
}

/// A full scrape of a registry shaped like the runtime's (the reader
/// side; never on the hot path, but it bounds dashboard poll cost).
fn bench_scrape(c: &mut Criterion) {
    let registry = Registry::new();
    for name in ["gtlb_dispatches_total", "gtlb_retries_total", "gtlb_fault_drops_total"] {
        let counter = registry.counter(name, 4);
        for shard in 0..4 {
            counter.add(shard, 1_000 + shard as u64);
        }
    }
    registry.gauge("gtlb_offered_utilization", 1).set(0.83);
    for name in ["gtlb_response_seconds", "gtlb_queue_wait_seconds"] {
        let h = registry.histogram(name);
        let mut x = 0.0005f64;
        for _ in 0..10_000 {
            h.record(x);
            x = if x > 500.0 { 0.0005 } else { x * 1.003 };
        }
    }
    let mut group = c.benchmark_group("telemetry_scrape");
    group.bench_function("snapshot", |b| b.iter(|| black_box(registry.snapshot())));
    let snap = registry.snapshot();
    group.bench_function("prometheus", |b| b.iter(|| black_box(snap.to_prometheus())));
    group.bench_function("json", |b| b.iter(|| black_box(snap.to_json())));
    group.finish();
}

criterion_group!(benches, bench_route_overhead, bench_instruments, bench_scrape);
criterion_main!(benches);
