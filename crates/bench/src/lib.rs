//! Benchmark-only crate; see the `benches/` directory.

#![forbid(unsafe_code)]
