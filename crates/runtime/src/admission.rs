//! Admission control: shed load *before* it reaches the dispatcher.
//!
//! The allocators clamp an estimated `Φ̂` just below capacity so a solve
//! never wedges, but clamping only fixes the *table* — the queues behind
//! it still grow without bound once offered load exceeds what the
//! cluster can drain. Admission control closes that gap: a policy
//! compares the offered utilization `ρ = Φ̂ / Σμ̂ᵢ` against a target and
//! sheds the excess at the front door, so the load that *is* admitted
//! stays near the design point.
//!
//! ## Policy
//!
//! For target utilization `ρ*` and offered utilization `ρ`:
//!
//! * `ρ ≤ ρ*` — every job is accepted;
//! * `ρ > ρ*` — each job is **shed** with probability `1 − ρ*/ρ`
//!   (thinning a Poisson stream of rate `ρ·Σμ` by `ρ*/ρ` leaves an
//!   admitted stream of rate `ρ*·Σμ`: exactly the target);
//! * a shed job is **deferred** (retry-later backpressure) while `ρ`
//!   sits inside the defer band `(ρ*, ρ* + band]`, and **rejected**
//!   beyond it.
//!
//! Both the shed probability and the rejection probability are monotone
//! nondecreasing in `ρ`, and the rejection probability is exactly zero
//! at or below `ρ* + band` — the properties the admission property
//! tests pin.
//!
//! The verdict function is pure (`(ρ, u) → verdict`); the caller
//! supplies the uniform draw from a deterministic per-shard stream
//! ([`ShardGuard::next_admission_draw`](crate::shard::ShardGuard)), so
//! sharded submission stays reproducible. [`AdmissionControl`] wraps the
//! policy with the shared atomics: the latest `ρ` (refreshed by the
//! re-solver) and the accepted/rejected/deferred counters surfaced in
//! `TraceStats`.

use std::sync::atomic::{AtomicU64, Ordering};

use gtlb_core::error::CoreError;

use crate::error::RuntimeError;

/// Tunables of the admission policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Utilization the admitted stream is thinned to, in `(0, 1)`.
    pub target_utilization: f64,
    /// Width of the defer band above the target: shed jobs are deferred
    /// while `ρ ≤ target + defer_band`, rejected beyond. Zero means
    /// every shed job is rejected outright.
    pub defer_band: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { target_utilization: 0.9, defer_band: 0.05 }
    }
}

/// What happens to one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The job proceeds to dispatch.
    Accept,
    /// The job is shed with retry-later semantics (transient overload
    /// inside the defer band).
    Defer,
    /// The job is shed outright (offered load far above target).
    Reject,
}

/// The pure thinning policy. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    cfg: AdmissionConfig,
}

impl AdmissionPolicy {
    /// Builds the policy, validating the configuration.
    ///
    /// # Errors
    /// [`RuntimeError::Core`] when `target_utilization` is outside
    /// `(0, 1)` or `defer_band` is negative or non-finite.
    pub fn new(cfg: AdmissionConfig) -> Result<Self, RuntimeError> {
        if !(cfg.target_utilization.is_finite()
            && cfg.target_utilization > 0.0
            && cfg.target_utilization < 1.0)
        {
            return Err(CoreError::BadInput(format!(
                "admission target utilization must lie in (0, 1), got {}",
                cfg.target_utilization
            ))
            .into());
        }
        if !(cfg.defer_band.is_finite() && cfg.defer_band >= 0.0) {
            return Err(CoreError::BadInput(format!(
                "admission defer band must be nonnegative and finite, got {}",
                cfg.defer_band
            ))
            .into());
        }
        Ok(Self { cfg })
    }

    /// The configuration this policy runs.
    #[must_use]
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Probability that a job is shed (deferred or rejected) at offered
    /// utilization `rho`: `max(0, 1 − ρ*/ρ)`. Monotone nondecreasing in
    /// `rho`; zero at or below the target.
    #[must_use]
    pub fn shed_probability(&self, rho: f64) -> f64 {
        if !(rho.is_finite() && rho > self.cfg.target_utilization) {
            return 0.0;
        }
        1.0 - self.cfg.target_utilization / rho
    }

    /// Probability that a job is rejected outright at offered
    /// utilization `rho`: the shed probability beyond the defer band,
    /// zero inside it. Monotone nondecreasing in `rho`.
    #[must_use]
    pub fn rejection_probability(&self, rho: f64) -> f64 {
        if rho <= self.cfg.target_utilization + self.cfg.defer_band {
            0.0
        } else {
            self.shed_probability(rho)
        }
    }

    /// Decides one job from the offered utilization `rho` and a uniform
    /// draw `u ∈ (0, 1)`. Pure: the caller owns the (deterministic)
    /// randomness.
    #[must_use]
    pub fn verdict(&self, rho: f64, u: f64) -> AdmissionVerdict {
        if u >= self.shed_probability(rho) {
            AdmissionVerdict::Accept
        } else if rho <= self.cfg.target_utilization + self.cfg.defer_band {
            AdmissionVerdict::Defer
        } else {
            AdmissionVerdict::Reject
        }
    }
}

/// Point-in-time admission counters. Conservation invariant:
/// `accepted + rejected + deferred == submitted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Jobs that asked for admission.
    pub submitted: u64,
    /// Jobs admitted to dispatch.
    pub accepted: u64,
    /// Jobs shed with retry-later semantics.
    pub deferred: u64,
    /// Jobs shed outright.
    pub rejected: u64,
}

impl AdmissionStats {
    /// Fraction of submitted jobs rejected (0 when nothing submitted).
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected as f64 / self.submitted as f64
        }
    }
}

impl std::fmt::Display for AdmissionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admission: {} submitted, {} accepted, {} deferred, {} rejected ({:.1}% rejection)",
            self.submitted,
            self.accepted,
            self.deferred,
            self.rejected,
            100.0 * self.rejection_rate()
        )
    }
}

/// Shared admission state: the policy, the latest offered-utilization
/// estimate, and the verdict counters. One instance serves every shard;
/// the hot path touches only relaxed atomics.
#[derive(Debug)]
pub struct AdmissionControl {
    policy: AdmissionPolicy,
    /// `f64` bits of the last offered utilization published by the
    /// re-solver (`Φ̂ / Σμ̂ᵢ`, *unclamped*).
    rho_bits: AtomicU64,
    submitted: AtomicU64,
    accepted: AtomicU64,
    deferred: AtomicU64,
    rejected: AtomicU64,
}

impl AdmissionControl {
    /// Control state running `policy`, starting from `ρ = 0` (accept
    /// everything until the first estimate lands).
    #[must_use]
    pub fn new(policy: AdmissionPolicy) -> Self {
        Self {
            policy,
            rho_bits: AtomicU64::new(0.0f64.to_bits()),
            submitted: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Publishes a fresh offered-utilization estimate (the re-solver
    /// calls this with the unclamped `Φ̂ / Σμ̂ᵢ` on every solve).
    pub fn publish_offered_utilization(&self, rho: f64) {
        self.rho_bits.store(rho.to_bits(), Ordering::Relaxed);
    }

    /// The last published offered utilization.
    #[must_use]
    pub fn offered_utilization(&self) -> f64 {
        f64::from_bits(self.rho_bits.load(Ordering::Relaxed))
    }

    /// Decides one job using draw `u`, recording the verdict in the
    /// shared counters.
    pub fn decide(&self, u: f64) -> AdmissionVerdict {
        let verdict = self.policy.verdict(self.offered_utilization(), u);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        match verdict {
            AdmissionVerdict::Accept => &self.accepted,
            AdmissionVerdict::Defer => &self.deferred,
            AdmissionVerdict::Reject => &self.rejected,
        }
        .fetch_add(1, Ordering::Relaxed);
        verdict
    }

    /// Counter snapshot. Taken counter-by-counter without a global lock,
    /// so under concurrent submission the four reads may straddle a
    /// decision; quiesce submitters for an exact conservation check.
    #[must_use]
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(target: f64, band: f64) -> AdmissionPolicy {
        AdmissionPolicy::new(AdmissionConfig { target_utilization: target, defer_band: band })
            .unwrap()
    }

    #[test]
    fn config_is_validated() {
        for target in [0.0, 1.0, -0.5, f64::NAN] {
            let cfg = AdmissionConfig { target_utilization: target, defer_band: 0.0 };
            assert!(AdmissionPolicy::new(cfg).is_err(), "target {target} must be rejected");
        }
        for band in [-0.1, f64::INFINITY, f64::NAN] {
            let cfg = AdmissionConfig { target_utilization: 0.9, defer_band: band };
            assert!(AdmissionPolicy::new(cfg).is_err(), "band {band} must be rejected");
        }
        assert!(AdmissionPolicy::new(AdmissionConfig::default()).is_ok());
    }

    #[test]
    fn below_target_everything_is_accepted() {
        let p = policy(0.8, 0.05);
        for rho in [0.0, 0.1, 0.5, 0.8] {
            assert_eq!(p.shed_probability(rho), 0.0);
            for k in 1..100 {
                let u = k as f64 / 100.0;
                assert_eq!(p.verdict(rho, u), AdmissionVerdict::Accept, "rho {rho}, u {u}");
            }
        }
    }

    #[test]
    fn shed_thins_to_the_target() {
        // At ρ = 2ρ*, half the stream is shed: admitted rate = target.
        let p = policy(0.45, 0.0);
        assert!((p.shed_probability(0.9) - 0.5).abs() < 1e-12);
        // The admitted fraction ρ*/ρ times ρ·Σμ equals ρ*·Σμ at any ρ.
        for rho in [0.5, 0.7, 0.9, 2.0] {
            let admitted = (1.0 - p.shed_probability(rho)) * rho;
            assert!((admitted - 0.45).abs() < 1e-12, "rho {rho}: admitted {admitted}");
        }
    }

    #[test]
    fn defer_band_separates_defer_from_reject() {
        let p = policy(0.8, 0.1);
        // Inside the band: shed jobs defer, none reject.
        assert_eq!(p.verdict(0.85, 0.0), AdmissionVerdict::Defer);
        assert_eq!(p.rejection_probability(0.85), 0.0);
        assert_eq!(p.rejection_probability(0.9), 0.0);
        // Beyond the band: shed jobs reject.
        assert_eq!(p.verdict(1.2, 0.0), AdmissionVerdict::Reject);
        assert!(p.rejection_probability(1.2) > 0.0);
    }

    #[test]
    fn probabilities_are_monotone_in_load() {
        let p = policy(0.7, 0.05);
        let mut last_shed = 0.0;
        let mut last_rej = 0.0;
        for k in 0..200 {
            let rho = k as f64 * 0.01;
            let shed = p.shed_probability(rho);
            let rej = p.rejection_probability(rho);
            assert!(shed >= last_shed, "shed not monotone at rho {rho}");
            assert!(rej >= last_rej, "rejection not monotone at rho {rho}");
            assert!(rej <= shed, "rejection exceeds shed at rho {rho}");
            last_shed = shed;
            last_rej = rej;
        }
    }

    #[test]
    fn control_counts_are_conserved() {
        let control = AdmissionControl::new(policy(0.5, 0.0));
        control.publish_offered_utilization(1.0); // shed half
        let mut rng = gtlb_desim::rng::Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..10_000 {
            control.decide(rng.next_open01());
        }
        let stats = control.stats();
        assert_eq!(stats.submitted, 10_000);
        assert_eq!(stats.accepted + stats.deferred + stats.rejected, stats.submitted);
        assert_eq!(stats.deferred, 0, "band is zero");
        let rate = stats.rejection_rate();
        assert!((rate - 0.5).abs() < 0.05, "rejection rate {rate} vs shed prob 0.5");
    }

    #[test]
    fn cold_control_accepts_everything() {
        let control = AdmissionControl::new(policy(0.5, 0.0));
        for k in 0..100 {
            assert_eq!(control.decide(k as f64 / 100.0), AdmissionVerdict::Accept);
        }
        assert_eq!(control.stats().accepted, 100);
    }

    #[test]
    fn non_finite_rho_fails_open() {
        let p = policy(0.5, 0.0);
        assert_eq!(p.shed_probability(f64::NAN), 0.0);
        assert_eq!(p.verdict(f64::NAN, 0.01), AdmissionVerdict::Accept);
        assert_eq!(p.shed_probability(f64::INFINITY), 0.0);
    }
}
