//! `gtlb-runtime` — an online dispatch runtime serving live job streams
//! from the game-theoretic allocators.
//!
//! The offline crates answer "given rates, what is the optimal split?".
//! This crate runs that answer as a service. Data flows in a loop:
//!
//! ```text
//!   registry (membership, health, nominal μ)
//!       │ snapshot of serving nodes
//!       ▼
//!   estimator bank (EWMA Φ̂, windowed μ̂ᵢ)──▶ re-solver (COOP/NASH/…)
//!       ▲                                        │ publish (epoch n+1)
//!       │ arrivals & service times               ▼
//!   dispatcher ◀── epoch-swapped routing table (Arc snapshot)
//!       │ jobs
//!       ▼
//!   nodes … whose measurements feed the estimators
//! ```
//!
//! * [`registry`] — who is in the cluster and whether they serve;
//! * [`estimator`] — online `Φ̂` / `μ̂ᵢ` estimates feeding the solver;
//! * [`resolver`] — the scheme ([`SchemeKind`]) and the solve/publish
//!   step, plus the immediate renormalize-on-failure path;
//! * [`table`] / [`swap`] — immutable routing tables behind an
//!   epoch-swapped `Arc`, so the dispatch hot path never blocks on a
//!   re-solve;
//! * [`dispatcher`] — the hot path: one deterministic uniform draw, one
//!   inverse-CDF lookup;
//! * [`driver`] — a closed-loop trace harness validating observed mean
//!   response times against the allocator's analytic prediction.
//!
//! The [`Runtime`] ties these together behind one handle that is cheap
//! to share across threads; [`Runtime::spawn_resolver`] runs the
//! re-solve loop in the background.

pub mod dispatcher;
pub mod driver;
pub mod error;
pub mod estimator;
pub mod registry;
pub mod resolver;
pub mod swap;
pub mod table;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

pub use dispatcher::{Decision, Dispatcher};
pub use driver::{TraceConfig, TraceDriver, TraceStats};
pub use error::RuntimeError;
pub use estimator::EstimatorBank;
pub use registry::{Health, Node, NodeId, Registry};
pub use resolver::{ResolveOutcome, SchemeKind};
pub use swap::EpochSwap;
pub use table::RoutingTable;

/// Tunables of a [`Runtime`]; built through [`RuntimeBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Base seed for the dispatcher's RNG stream.
    pub seed: u64,
    /// Allocation scheme the re-solver runs.
    pub scheme: SchemeKind,
    /// Arrival rate assumed until the estimator is warm (and whenever it
    /// goes cold again). `0.0` means "idle until measured": tables fall
    /// back to capacity-proportional routing.
    pub nominal_arrival_rate: f64,
    /// Smoothing factor of the arrival-rate EWMA.
    pub ewma_alpha: f64,
    /// Service times remembered per node.
    pub service_window: usize,
    /// Arrivals required before `Φ̂` is trusted.
    pub min_arrival_obs: u64,
    /// Per-node services required before `μ̂ᵢ` is trusted.
    pub min_service_obs: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            scheme: SchemeKind::Coop,
            nominal_arrival_rate: 0.0,
            ewma_alpha: 0.05,
            service_window: 256,
            min_arrival_obs: 64,
            min_service_obs: 16,
        }
    }
}

/// Builder for [`Runtime`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeBuilder {
    cfg: RuntimeConfig,
}

impl RuntimeBuilder {
    /// Default configuration: COOP, seed 0, idle nominal rate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the dispatcher seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the allocation scheme.
    #[must_use]
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Sets the designed-for arrival rate used until estimates warm up.
    #[must_use]
    pub fn nominal_arrival_rate(mut self, phi: f64) -> Self {
        self.cfg.nominal_arrival_rate = phi;
        self
    }

    /// Sets the arrival-EWMA smoothing factor.
    #[must_use]
    pub fn ewma_alpha(mut self, alpha: f64) -> Self {
        self.cfg.ewma_alpha = alpha;
        self
    }

    /// Sets the per-node service-time window.
    #[must_use]
    pub fn service_window(mut self, window: usize) -> Self {
        self.cfg.service_window = window;
        self
    }

    /// Sets the warm-up thresholds below which estimates are withheld.
    #[must_use]
    pub fn min_observations(mut self, arrivals: u64, services: usize) -> Self {
        self.cfg.min_arrival_obs = arrivals;
        self.cfg.min_service_obs = services;
        self
    }

    /// Builds the runtime (no nodes, empty routing table).
    #[must_use]
    pub fn build(self) -> Runtime {
        Runtime::with_config(self.cfg)
    }
}

struct State {
    registry: Registry,
    bank: EstimatorBank,
}

/// The online dispatch runtime: registry + estimators + re-solver +
/// dispatcher behind one shareable handle.
pub struct Runtime {
    cfg: RuntimeConfig,
    state: Mutex<State>,
    table: Arc<EpochSwap<RoutingTable>>,
    dispatcher: Mutex<Dispatcher>,
    epoch: AtomicU64,
}

impl Runtime {
    /// Starts building a runtime.
    #[must_use]
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// Builds a runtime from an explicit configuration.
    #[must_use]
    pub fn with_config(cfg: RuntimeConfig) -> Self {
        let table = Arc::new(EpochSwap::new(RoutingTable::empty(0)));
        let dispatcher = Mutex::new(Dispatcher::new(Arc::clone(&table), cfg.seed));
        let bank = EstimatorBank::new(
            cfg.ewma_alpha,
            cfg.service_window,
            cfg.min_arrival_obs,
            cfg.min_service_obs,
        );
        Self {
            cfg,
            state: Mutex::new(State { registry: Registry::new(), bank }),
            table,
            dispatcher,
            epoch: AtomicU64::new(0),
        }
    }

    /// The configuration this runtime was built with.
    #[must_use]
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    // ---- membership & health -------------------------------------------

    /// Registers a node with declared capacity `rate` (jobs/second). The
    /// node joins the routing table at the next resolve.
    ///
    /// # Errors
    /// [`RuntimeError::Core`] for a nonpositive or non-finite rate.
    pub fn register_node(&self, rate: f64) -> Result<NodeId, RuntimeError> {
        self.state().registry.register(rate)
    }

    /// Deregisters a node: removed from the registry and estimator bank,
    /// and — if it is in the live table — routed around immediately.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn deregister_node(&self, id: NodeId) -> Result<(), RuntimeError> {
        {
            let mut state = self.state();
            state.registry.deregister(id)?;
            state.bank.forget(id);
        }
        self.republish_without(id);
        Ok(())
    }

    /// Starts draining a node: it finishes queued work but stops
    /// receiving new jobs, immediately and at every future resolve.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn drain_node(&self, id: NodeId) -> Result<(), RuntimeError> {
        self.state().registry.set_health(id, Health::Draining)?;
        self.republish_without(id);
        Ok(())
    }

    /// Marks a node suspect (still serving, flagged for demotion).
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn mark_suspect(&self, id: NodeId) -> Result<(), RuntimeError> {
        self.state().registry.set_health(id, Health::Suspect)?;
        Ok(())
    }

    /// Marks a node up. It rejoins the routing table at the next resolve
    /// (rejoining needs a real allocation, not a renormalization).
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn mark_up(&self, id: NodeId) -> Result<(), RuntimeError> {
        self.state().registry.set_health(id, Health::Up)?;
        Ok(())
    }

    /// Marks a node down. Its probability mass is redistributed over the
    /// survivors **immediately** (renormalized table, next epoch); the
    /// full re-solve that rebalances everyone follows separately —
    /// "renormalize, then re-solve".
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn mark_down(&self, id: NodeId) -> Result<(), RuntimeError> {
        self.state().registry.set_health(id, Health::Down)?;
        self.republish_without(id);
        Ok(())
    }

    /// A node's declared capacity, if registered.
    #[must_use]
    pub fn node_rate(&self, id: NodeId) -> Option<f64> {
        self.state().registry.node(id).map(Node::nominal_rate)
    }

    /// A node's health, if registered.
    #[must_use]
    pub fn node_health(&self, id: NodeId) -> Option<Health> {
        self.state().registry.node(id).map(Node::health)
    }

    // ---- telemetry ------------------------------------------------------

    /// Records a job arrival at time `t` (drives `Φ̂`).
    pub fn record_arrival(&self, t: f64) {
        self.state().bank.observe_arrival(t);
    }

    /// Records a completed service at `node` (drives `μ̂ᵢ`). Unknown
    /// nodes are accepted — completions may race deregistration.
    pub fn record_service(&self, node: NodeId, duration: f64) {
        self.state().bank.observe_service(node, duration);
    }

    /// The current arrival-rate estimate, once warm.
    #[must_use]
    pub fn estimated_arrival_rate(&self) -> Option<f64> {
        self.state().bank.arrival_rate()
    }

    /// The current service-rate estimate of one node, once warm.
    #[must_use]
    pub fn estimated_service_rate(&self, id: NodeId) -> Option<f64> {
        self.state().bank.service_rate(id)
    }

    // ---- solving & dispatching -----------------------------------------

    /// Runs a full solve now: snapshot the serving nodes, pick measured
    /// rates where warm (nominal otherwise), allocate with the configured
    /// scheme, and publish the resulting table at the next epoch.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] with nothing to solve over;
    /// [`RuntimeError::Core`] from the allocator (e.g. a nominal arrival
    /// rate at or above capacity).
    pub fn resolve_now(&self) -> Result<ResolveOutcome, RuntimeError> {
        let state = self.state();
        let State { ref registry, ref bank } = *state;
        let (ids, cluster) =
            registry.serving_cluster(|n| bank.service_rate(n.id()).unwrap_or(n.nominal_rate()))?;
        // Estimated Φ is clamped below capacity (transient overshoot must
        // not wedge the solver); the configured nominal rate is not — an
        // impossible design load should fail loudly.
        let phi = match bank.arrival_rate() {
            Some(est) => resolver::clamp_phi(est, &cluster),
            None => self.cfg.nominal_arrival_rate,
        };
        let epoch = self.next_epoch();
        let (table, outcome) = resolver::solve_table(self.cfg.scheme, epoch, ids, &cluster, phi)?;
        self.table.publish(table);
        Ok(outcome)
    }

    /// Routes one job via the published table.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] before the first resolve or after
    /// the last node went down.
    pub fn dispatch(&self) -> Result<Decision, RuntimeError> {
        self.dispatcher.lock().unwrap_or_else(std::sync::PoisonError::into_inner).dispatch()
    }

    /// Jobs dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatcher.lock().unwrap_or_else(std::sync::PoisonError::into_inner).dispatched()
    }

    /// Snapshot of the currently published routing table.
    #[must_use]
    pub fn current_table(&self) -> Arc<RoutingTable> {
        self.table.load()
    }

    /// The epoch-swap slot itself (benchmarks, custom dispatch loops).
    #[must_use]
    pub fn table_handle(&self) -> Arc<EpochSwap<RoutingTable>> {
        Arc::clone(&self.table)
    }

    /// Spawns the background re-solve loop: every `interval`, run
    /// [`Runtime::resolve_now`] and publish. Solve errors (e.g. a
    /// transient empty serving set) are tolerated; the loop retries next
    /// tick. Returns a handle that stops the loop when dropped.
    #[must_use]
    pub fn spawn_resolver(self: &Arc<Self>, interval: Duration) -> ResolverHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let rt = Arc::clone(self);
        let join = std::thread::spawn(move || {
            let mut solves = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                if rt.resolve_now().is_ok() {
                    solves += 1;
                }
                // Sleep in short slices so stop() returns promptly.
                let mut remaining = interval;
                while !remaining.is_zero() && !stop_flag.load(Ordering::Relaxed) {
                    let slice = remaining.min(Duration::from_millis(5));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
            solves
        });
        ResolverHandle { stop, join: Some(join) }
    }

    // ---- internals ------------------------------------------------------

    fn state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Publishes the current table minus `id` (failure/drain path). A
    /// no-op when the node is not in the table. When the survivors held
    /// zero probability (the departed node had all the mass — common
    /// under COOP at low load, which parks slow nodes at λ = 0), falls
    /// back to capacity-proportional routing over the serving nodes so
    /// the system stays routable until the next full solve; publishes the
    /// empty table only when nothing serves at all.
    fn republish_without(&self, id: NodeId) {
        let current = self.table.load();
        if !current.nodes().contains(&id) {
            return;
        }
        let epoch = self.next_epoch();
        let fallback = |epoch: u64| -> RoutingTable {
            let state = self.state();
            match state.registry.serving_cluster(|n| n.nominal_rate()) {
                Ok((ids, cluster)) => RoutingTable::new(epoch, ids, cluster.rates())
                    .unwrap_or_else(|_| RoutingTable::empty(epoch)),
                Err(_) => RoutingTable::empty(epoch),
            }
        };
        let table = current.without_node(id, epoch).unwrap_or_else(|_| fallback(epoch));
        self.table.publish(table);
    }
}

/// Handle to the background re-solve loop; stops and joins on drop.
#[derive(Debug)]
pub struct ResolverHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<u64>>,
}

impl ResolverHandle {
    /// Stops the loop and returns how many successful solves it ran.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        match self.join.take() {
            Some(join) => join.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for ResolverHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coop_runtime(phi: f64) -> Runtime {
        Runtime::builder().seed(5).scheme(SchemeKind::Coop).nominal_arrival_rate(phi).build()
    }

    #[test]
    fn dispatch_before_resolve_fails() {
        let rt = coop_runtime(0.5);
        assert_eq!(rt.dispatch(), Err(RuntimeError::NoServingNodes));
        rt.register_node(1.0).unwrap();
        assert_eq!(rt.dispatch(), Err(RuntimeError::NoServingNodes), "not resolved yet");
        rt.resolve_now().unwrap();
        assert!(rt.dispatch().is_ok());
    }

    #[test]
    fn resolve_publishes_monotone_epochs() {
        let rt = coop_runtime(0.5);
        rt.register_node(1.0).unwrap();
        rt.register_node(2.0).unwrap();
        let e1 = rt.resolve_now().unwrap().epoch;
        let e2 = rt.resolve_now().unwrap().epoch;
        assert!(e2 > e1);
        assert_eq!(rt.current_table().epoch(), e2);
    }

    #[test]
    fn mark_down_renormalizes_immediately() {
        let rt = coop_runtime(0.9);
        let a = rt.register_node(2.0).unwrap();
        let b = rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        let before = rt.current_table();
        assert!(before.prob_of(a).unwrap() > 0.0);

        rt.mark_down(a).unwrap();
        let after = rt.current_table();
        assert!(after.epoch() > before.epoch());
        assert_eq!(after.prob_of(a), None, "down node left the table without a solve");
        assert!((after.prob_of(b).unwrap() - 1.0).abs() < 1e-12);

        // The follow-up full solve sees only the survivor.
        let outcome = rt.resolve_now().unwrap();
        assert_eq!(outcome.nodes, vec![b]);
    }

    #[test]
    fn last_node_down_empties_the_table() {
        let rt = coop_runtime(0.1);
        let a = rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        assert!(rt.dispatch().is_ok());
        rt.mark_down(a).unwrap();
        assert_eq!(rt.dispatch(), Err(RuntimeError::NoServingNodes));
        assert!(matches!(rt.resolve_now(), Err(RuntimeError::NoServingNodes)));
        // Recovery: back up, resolve, dispatch again.
        rt.mark_up(a).unwrap();
        rt.resolve_now().unwrap();
        assert!(rt.dispatch().is_ok());
    }

    #[test]
    fn drain_and_deregister_leave_the_table() {
        let rt = coop_runtime(1.0);
        let a = rt.register_node(2.0).unwrap();
        let b = rt.register_node(1.0).unwrap();
        let c = rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        rt.drain_node(a).unwrap();
        assert_eq!(rt.current_table().prob_of(a), None);
        assert_eq!(rt.node_health(a), Some(Health::Draining));
        rt.deregister_node(b).unwrap();
        assert_eq!(rt.current_table().prob_of(b), None);
        assert_eq!(rt.node_rate(b), None);
        assert!(rt.current_table().prob_of(c).is_some());
    }

    #[test]
    fn estimated_rates_feed_the_solve() {
        let rt = Runtime::builder()
            .scheme(SchemeKind::Coop)
            .nominal_arrival_rate(0.4)
            .min_observations(8, 4)
            .build();
        let a = rt.register_node(1.0).unwrap();
        rt.register_node(1.0).unwrap();
        // Feed arrivals at measured rate 2.0 and services showing node a
        // is really twice as fast as declared.
        for k in 0..32 {
            rt.record_arrival(k as f64 * 0.5);
            rt.record_service(a, 0.5);
        }
        assert!((rt.estimated_arrival_rate().unwrap() - 2.0).abs() < 1e-9);
        assert!((rt.estimated_service_rate(a).unwrap() - 2.0).abs() < 1e-9);
        let outcome = rt.resolve_now().unwrap();
        assert!((outcome.phi - 2.0).abs() < 1e-9, "solve used the measured Φ");
        assert!((outcome.rates[0] - 2.0).abs() < 1e-9, "solve used the measured μ");
        assert!((outcome.rates[1] - 1.0).abs() < 1e-9, "cold node keeps its nominal μ");
    }

    #[test]
    fn overloaded_estimate_is_clamped_not_fatal() {
        let rt = Runtime::builder().nominal_arrival_rate(0.5).min_observations(4, 1_000).build();
        rt.register_node(1.0).unwrap();
        // Estimated arrival rate 10 >> capacity 1.
        for k in 0..16 {
            rt.record_arrival(k as f64 * 0.1);
        }
        let outcome = rt.resolve_now().unwrap();
        assert!(outcome.phi < 1.0, "estimate clamped below capacity, got {}", outcome.phi);
    }

    #[test]
    fn background_resolver_publishes() {
        let rt = Arc::new(coop_runtime(0.8));
        rt.register_node(1.0).unwrap();
        rt.register_node(2.0).unwrap();
        let handle = rt.spawn_resolver(Duration::from_millis(1));
        // Wait for at least one publish.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while rt.current_table().is_empty() {
            assert!(std::time::Instant::now() < deadline, "resolver never published");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(rt.dispatch().is_ok());
        let solves = handle.stop();
        assert!(solves >= 1);
    }
}
