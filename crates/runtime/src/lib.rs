//! `gtlb-runtime` — an online dispatch runtime serving live job streams
//! from the game-theoretic allocators.
//!
//! The offline crates answer "given rates, what is the optimal split?".
//! This crate runs that answer as a service. Data flows in a loop:
//!
//! ```text
//!   registry (membership, health, nominal μ)
//!       │ snapshot of serving nodes
//!       ▼
//!   estimator bank (EWMA Φ̂, windowed μ̂ᵢ)──▶ re-solver (COOP/NASH/…)
//!       ▲                                        │ publish (epoch n+1)
//!       │ arrivals & service times               ▼
//!   dispatcher ◀── epoch-swapped routing table (Arc snapshot)
//!       │ jobs
//!       ▼
//!   nodes … whose measurements feed the estimators
//! ```
//!
//! * [`registry`] — who is in the cluster and whether they serve;
//! * [`estimator`] — online `Φ̂` / `μ̂ᵢ` estimates feeding the solver;
//! * [`resolver`] — the scheme ([`SchemeKind`]) and the solve/publish
//!   step, plus the immediate renormalize-on-failure path;
//! * [`table`] / [`alias`] / [`swap`] — immutable routing tables (with a
//!   prebuilt Walker alias table for O(1) sampling) behind a lock-free
//!   epoch-swapped `Arc`, so the dispatch hot path never blocks on — or
//!   even takes a lock against — a re-solve;
//! * [`dispatcher`] — the single-stream hot path: one deterministic
//!   uniform draw, one O(1) alias lookup;
//! * [`shard`] — N per-core dispatchers over the same table, each with
//!   its own RNG stream (seed `base ^ shard_id`) and local counters
//!   merged on read — the dispatch path without a global lock;
//! * [`admission`] — target-utilization admission control in front of
//!   the shards: accept/defer/reject verdicts that keep the admitted
//!   load at the design point once `Φ̂` nears capacity;
//! * [`ingest`] — a bounded MPMC queue decoupling bursty producers from
//!   the dispatch shards (`try_submit` sheds, `submit` backpressures);
//! * [`driver`] — a closed-loop trace harness validating observed mean
//!   response times against the allocator's analytic prediction.
//!
//! The [`Runtime`] ties these together behind one handle that is cheap
//! to share across threads; [`Runtime::spawn_resolver`] runs the
//! re-solve loop in the background.

#![deny(unsafe_code)] // `swap` opts back in; see its safety argument.

pub mod admission;
pub mod alias;
pub mod control;
pub mod detector;
pub mod dispatcher;
pub mod driver;
pub mod dynamics;
pub mod error;
pub mod estimator;
pub mod fault;
pub mod ingest;
pub mod registry;
pub mod resolver;
pub mod retry;
pub mod shard;
pub mod swap;
pub mod table;
pub mod telemetry;
pub mod tracing;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use gtlb_desim::rng::Xoshiro256PlusPlus;

pub use admission::{
    AdmissionConfig, AdmissionControl, AdmissionPolicy, AdmissionStats, AdmissionVerdict,
};
pub use alias::{AliasTable, MAX_BELOW_ONE};
pub use control::{ClockAdapter, ControlPlaneHooks, NodeStatus};
pub use detector::{AccrualDetector, DetectorConfig, HealthTransition};
pub use dispatcher::{Decision, Dispatcher};
pub use driver::{TraceConfig, TraceDriver, TraceStats};
pub use dynamics::{
    BestReplyConfig, BestReplyOutcome, ConvergenceStats, SolverMode, DYNAMICS_STREAM,
};
pub use error::RuntimeError;
pub use estimator::EstimatorBank;
pub use fault::{
    DomainEvent, DropCause, FaultEvent, FaultInjector, FaultKind, FaultMarker, FaultMarkerKind,
    FaultPlan, PartitionDirection, ADVERSARIAL_STREAM, FAULT_STREAM,
};
pub use ingest::{IngestError, IngestQueue};
pub use registry::{Health, Node, NodeId, Registry};
pub use resolver::{ResolveOutcome, SchemeKind};
pub use retry::{RetryConfig, RetryPolicy, RETRY_STREAM};
pub use shard::{ShardGuard, ShardedDispatcher};
pub use swap::{EpochSwap, Lease, SwapStats};
pub use table::{RoutingTable, TableBuilder};
pub use telemetry::{RuntimeEvent, Telemetry, TelemetryHandle};
pub use tracing::Tracer;
// Trace primitives, re-exported so downstream crates name one source.
pub use gtlb_telemetry::trace::{
    to_chrome_json, AttemptOutcome, Span, SpanKind, Trace, TraceId, TracingConfig,
};

/// Tunables of a [`Runtime`]; built through [`RuntimeBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Base seed for the dispatcher's RNG stream.
    pub seed: u64,
    /// Allocation scheme the re-solver runs.
    pub scheme: SchemeKind,
    /// Arrival rate assumed until the estimator is warm (and whenever it
    /// goes cold again). `0.0` means "idle until measured": tables fall
    /// back to capacity-proportional routing.
    pub nominal_arrival_rate: f64,
    /// Smoothing factor of the arrival-rate EWMA.
    pub ewma_alpha: f64,
    /// Service times remembered per node.
    pub service_window: usize,
    /// Arrivals required before `Φ̂` is trusted.
    pub min_arrival_obs: u64,
    /// Per-node services required before `μ̂ᵢ` is trusted.
    pub min_service_obs: usize,
    /// Dispatch shards. `1` reproduces the single-dispatcher decision
    /// stream exactly (shard 0's RNG is seeded `seed ^ 0 = seed`);
    /// larger counts give per-core dispatchers that never contend.
    pub shards: usize,
    /// Admission control in front of the shards; `None` admits
    /// everything (the default).
    pub admission: Option<AdmissionConfig>,
    /// Tuning of the accrual failure detector behind
    /// [`Runtime::observe_success`] / [`Runtime::observe_failure`].
    pub detector: DetectorConfig,
    /// Whether the runtime records telemetry (metrics + event ring).
    /// Off by default. Telemetry consumes no RNG draws and leaves every
    /// decision sequence bit-identical; it only adds instruments.
    pub telemetry: bool,
    /// Per-job tracing (spans + flight recorder); `None` (the default)
    /// disables it. Tracing owns no RNG stream and no clock — trace
    /// ids hash from `seed` and the job sequence — so enabling it
    /// leaves every decision sequence and fingerprint bit-identical.
    pub tracing: Option<TracingConfig>,
    /// How the resolve path computes allocations: the centralized
    /// closed-form scheme (the default) or decentralized best-reply
    /// iteration. Switchable live via [`Runtime::set_solver_mode`].
    pub solver: SolverMode,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            scheme: SchemeKind::Coop,
            nominal_arrival_rate: 0.0,
            ewma_alpha: 0.05,
            service_window: 256,
            min_arrival_obs: 64,
            min_service_obs: 16,
            shards: 1,
            admission: None,
            detector: DetectorConfig::default(),
            telemetry: false,
            tracing: None,
            solver: SolverMode::Coop,
        }
    }
}

/// Builder for [`Runtime`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeBuilder {
    cfg: RuntimeConfig,
}

impl RuntimeBuilder {
    /// Default configuration: COOP, seed 0, idle nominal rate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the dispatcher seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the allocation scheme.
    #[must_use]
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Sets the designed-for arrival rate used until estimates warm up.
    #[must_use]
    pub fn nominal_arrival_rate(mut self, phi: f64) -> Self {
        self.cfg.nominal_arrival_rate = phi;
        self
    }

    /// Sets the arrival-EWMA smoothing factor.
    #[must_use]
    pub fn ewma_alpha(mut self, alpha: f64) -> Self {
        self.cfg.ewma_alpha = alpha;
        self
    }

    /// Sets the per-node service-time window.
    #[must_use]
    pub fn service_window(mut self, window: usize) -> Self {
        self.cfg.service_window = window;
        self
    }

    /// Sets the warm-up thresholds below which estimates are withheld.
    #[must_use]
    pub fn min_observations(mut self, arrivals: u64, services: usize) -> Self {
        self.cfg.min_arrival_obs = arrivals;
        self.cfg.min_service_obs = services;
        self
    }

    /// Sets the number of dispatch shards (clamped to at least 1).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards.max(1);
        self
    }

    /// Enables admission control with the given policy configuration.
    #[must_use]
    pub fn admission(mut self, cfg: AdmissionConfig) -> Self {
        self.cfg.admission = Some(cfg);
        self
    }

    /// Tunes the accrual failure detector (defaults apply otherwise).
    #[must_use]
    pub fn detector(mut self, cfg: DetectorConfig) -> Self {
        self.cfg.detector = cfg;
        self
    }

    /// Enables or disables telemetry (metrics + event ring). Disabled by
    /// default; enabling it never perturbs a decision sequence.
    #[must_use]
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.cfg.telemetry = enabled;
        self
    }

    /// Enables or disables per-job tracing with the default
    /// [`TracingConfig`] (1-in-16 head sampling). Disabled by default;
    /// enabling it never perturbs a decision sequence — trace identity
    /// and sampling are pure hash functions of the seed and job
    /// sequence number.
    #[must_use]
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.cfg.tracing = enabled.then(TracingConfig::default);
        self
    }

    /// Enables per-job tracing with an explicit configuration
    /// (sampling mask, recorder capacity, slow-trace threshold).
    #[must_use]
    pub fn tracing_config(mut self, cfg: TracingConfig) -> Self {
        self.cfg.tracing = Some(cfg);
        self
    }

    /// Selects the solver mode: centralized [`SolverMode::Coop`] (the
    /// default) or decentralized [`SolverMode::BestReply`]. Invalid
    /// best-reply tunables fail at the first solve, not here.
    #[must_use]
    pub fn solver_mode(mut self, mode: SolverMode) -> Self {
        self.cfg.solver = mode;
        self
    }

    /// Builds the runtime (no nodes, empty routing table).
    ///
    /// # Panics
    /// If the admission configuration is invalid (target utilization
    /// outside `(0, 1)`, negative defer band) or the detector
    /// configuration is inconsistent (see [`DetectorConfig`]).
    #[must_use]
    pub fn build(self) -> Runtime {
        Runtime::with_config(self.cfg)
    }
}

struct State {
    registry: Registry,
    bank: EstimatorBank,
}

struct DetectorState {
    detector: AccrualDetector,
    log: Vec<HealthTransition>,
}

struct SolverRuntime {
    /// Mode currently in effect (starts at `cfg.solver`, switchable
    /// live).
    mode: SolverMode,
    /// Tie-break stream of the best-reply solver ([`DYNAMICS_STREAM`]);
    /// untouched by `Coop` solves, so leaving the mode at its default
    /// keeps every pre-existing trace bit-identical.
    rng: Xoshiro256PlusPlus,
    /// Stats of the most recent best-reply solve.
    last: Option<ConvergenceStats>,
}

/// What happened to one job offered through [`Runtime::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// Admitted and routed.
    Dispatched(Decision),
    /// Shed with retry-later semantics (offered load inside the defer
    /// band above target).
    Deferred,
    /// Shed outright (offered load beyond the defer band).
    Rejected,
}

impl Submission {
    /// The routing decision, if the job was admitted.
    #[must_use]
    pub fn decision(self) -> Option<Decision> {
        match self {
            Self::Dispatched(d) => Some(d),
            Self::Deferred | Self::Rejected => None,
        }
    }
}

/// Outcome of a batch offered through [`Runtime::submit_batch`]: the
/// decisions of the admitted jobs (in submission order) plus how many
/// were shed either way.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchSubmission {
    /// Routing decisions of the admitted jobs, in submission order.
    pub decisions: Vec<Decision>,
    /// Jobs shed with retry-later semantics.
    pub deferred: u64,
    /// Jobs shed outright.
    pub rejected: u64,
}

impl BatchSubmission {
    /// Jobs admitted and routed.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.decisions.len() as u64
    }

    /// Jobs offered in total (dispatched + deferred + rejected).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.dispatched() + self.deferred + self.rejected
    }
}

/// The online dispatch runtime: registry + estimators + re-solver +
/// sharded dispatcher behind one shareable handle.
pub struct Runtime {
    cfg: RuntimeConfig,
    state: Mutex<State>,
    // Separate lock, never held together with `state` (each method
    // acquires them strictly in sequence), so detector bookkeeping can't
    // deadlock against the dispatch/telemetry paths.
    detector: Mutex<DetectorState>,
    // Lock order: `state` before `solver` (resolve_now holds both),
    // never the reverse; `solver` and `detector` are never held
    // together.
    solver: Mutex<SolverRuntime>,
    // Reusable table-construction scratch (alias stacks + repair
    // traces). Lock order: acquired last and released before any other
    // lock is taken — no method holds `builder` while acquiring
    // `state`, `solver`, or `detector`.
    builder: Mutex<TableBuilder>,
    table: Arc<EpochSwap<RoutingTable>>,
    sharded: ShardedDispatcher,
    admission: Option<AdmissionControl>,
    epoch: AtomicU64,
    telemetry: Telemetry,
    tracer: Tracer,
}

impl Runtime {
    /// Starts building a runtime.
    #[must_use]
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// Builds a runtime from an explicit configuration.
    ///
    /// # Panics
    /// If `cfg.admission` is invalid (see [`AdmissionPolicy::new`]) or
    /// `cfg.detector` is inconsistent (see [`DetectorConfig`]).
    #[must_use]
    pub fn with_config(cfg: RuntimeConfig) -> Self {
        let table = Arc::new(EpochSwap::new(RoutingTable::empty(0)));
        let telemetry = if cfg.telemetry {
            Telemetry::enabled(cfg.shards.max(1))
        } else {
            Telemetry::disabled()
        };
        let tracer = cfg
            .tracing
            .map_or_else(Tracer::disabled, |tc| Tracer::enabled(cfg.seed, cfg.shards.max(1), tc));
        let sharded = ShardedDispatcher::with_telemetry(
            Arc::clone(&table),
            cfg.seed,
            cfg.shards.max(1),
            telemetry.clone(),
        );
        let admission = cfg.admission.map(|a| {
            AdmissionControl::new(
                AdmissionPolicy::new(a).unwrap_or_else(|e| panic!("invalid admission config: {e}")),
            )
        });
        let bank = EstimatorBank::new(
            cfg.ewma_alpha,
            cfg.service_window,
            cfg.min_arrival_obs,
            cfg.min_service_obs,
        );
        Self {
            cfg,
            state: Mutex::new(State { registry: Registry::new(), bank }),
            detector: Mutex::new(DetectorState {
                detector: AccrualDetector::new(cfg.detector),
                log: Vec::new(),
            }),
            solver: Mutex::new(SolverRuntime {
                mode: cfg.solver,
                rng: Xoshiro256PlusPlus::stream(cfg.seed, DYNAMICS_STREAM),
                last: None,
            }),
            builder: Mutex::new(TableBuilder::new()),
            table,
            sharded,
            admission,
            epoch: AtomicU64::new(0),
            telemetry,
            tracer,
        }
    }

    /// The configuration this runtime was built with.
    #[must_use]
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    // ---- membership & health -------------------------------------------

    /// Registers a node with declared capacity `rate` (jobs/second). The
    /// node joins the routing table at the next resolve.
    ///
    /// # Errors
    /// [`RuntimeError::Core`] for a nonpositive or non-finite rate.
    pub fn register_node(&self, rate: f64) -> Result<NodeId, RuntimeError> {
        self.state().registry.register(rate)
    }

    /// Deregisters a node: removed from the registry and estimator bank,
    /// and — if it is in the live table — routed around immediately.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn deregister_node(&self, id: NodeId) -> Result<(), RuntimeError> {
        {
            let mut state = self.state();
            state.registry.deregister(id)?;
            state.bank.forget(id);
        }
        self.detector_state().detector.forget(id);
        self.republish_without(id);
        self.refresh_offered_utilization();
        Ok(())
    }

    /// Starts draining a node: it finishes queued work but stops
    /// receiving new jobs, immediately and at every future resolve.
    /// Returns the previous health.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn drain_node(&self, id: NodeId) -> Result<Health, RuntimeError> {
        let prev = self.set_health_synced(id, Health::Draining)?;
        self.republish_without(id);
        self.refresh_offered_utilization();
        Ok(prev)
    }

    /// Marks a node suspect (still serving, flagged for demotion).
    /// Returns the previous health.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn mark_suspect(&self, id: NodeId) -> Result<Health, RuntimeError> {
        self.set_health_synced(id, Health::Suspect)
    }

    /// Marks a node up. It rejoins the routing table at the next resolve
    /// (rejoining needs a real allocation, not a renormalization).
    /// Returns the previous health.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn mark_up(&self, id: NodeId) -> Result<Health, RuntimeError> {
        let prev = self.set_health_synced(id, Health::Up)?;
        self.refresh_offered_utilization();
        Ok(prev)
    }

    /// Marks a node down. Its probability mass is redistributed over the
    /// survivors **immediately** (renormalized table, next epoch); the
    /// full re-solve that rebalances everyone follows separately —
    /// "renormalize, then re-solve". Returns the previous health.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn mark_down(&self, id: NodeId) -> Result<Health, RuntimeError> {
        let prev = self.set_health_synced(id, Health::Down)?;
        self.republish_without(id);
        self.refresh_offered_utilization();
        Ok(prev)
    }

    /// A node's declared capacity, if registered.
    #[must_use]
    pub fn node_rate(&self, id: NodeId) -> Option<f64> {
        self.state().registry.node(id).map(Node::nominal_rate)
    }

    /// A node's health, if registered.
    #[must_use]
    pub fn node_health(&self, id: NodeId) -> Option<Health> {
        self.state().registry.node(id).map(Node::health)
    }

    /// Ids of all registered nodes (any health), in registration order.
    #[must_use]
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.state().registry.nodes().iter().map(Node::id).collect()
    }

    /// As [`Runtime::node_ids`], refilling a caller-owned buffer —
    /// periodic pollers (heartbeat loops and the like) reuse one `Vec`
    /// instead of allocating per tick. `out` is cleared first.
    pub fn node_ids_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.state().registry.nodes().iter().map(Node::id));
    }

    // ---- failure detection ---------------------------------------------

    /// Feeds the failure detector one successful observation (heartbeat
    /// ack or completed response) of `node` at virtual time `t`, and
    /// applies any health transition it decides on: Suspect→Up past the
    /// hysteresis band, Down→Up after the probation window (which also
    /// triggers a best-effort re-solve so the node regains routing
    /// mass). Unknown or draining nodes are ignored (`Ok(None)`) —
    /// observations may race deregistration, and drains are
    /// administrative, not health.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] when the node vanishes between the
    /// detector's decision and its application.
    pub fn observe_success(
        &self,
        node: NodeId,
        t: f64,
    ) -> Result<Option<HealthTransition>, RuntimeError> {
        self.observe(node, t, true)
    }

    /// Feeds the failure detector one failed observation (dropped
    /// attempt, missed heartbeat) of `node` at virtual time `t`, and
    /// applies any transition: Up→Suspect once suspicion crosses the
    /// suspect threshold, →Down once it crosses the down threshold
    /// (which renormalizes the routing table away from the node
    /// immediately and refreshes the brownout coupling).
    ///
    /// # Errors
    /// As [`Runtime::observe_success`].
    pub fn observe_failure(
        &self,
        node: NodeId,
        t: f64,
    ) -> Result<Option<HealthTransition>, RuntimeError> {
        self.observe(node, t, false)
    }

    /// Every health transition the detector has driven, in order.
    #[must_use]
    pub fn health_transitions(&self) -> Vec<HealthTransition> {
        self.detector_state().log.clone()
    }

    /// The detector's current suspicion level φ for `node` at time
    /// `now` (zero for unobserved nodes).
    #[must_use]
    pub fn suspicion(&self, node: NodeId, now: f64) -> f64 {
        self.detector_state().detector.phi(node, now)
    }

    /// The detector thresholds in force for `node` right now:
    /// `(suspect_phi, down_phi)` — the configured values in fixed mode,
    /// the variance-scaled effective values in self-tuning mode (see
    /// [`DetectorConfig::self_tuning`]).
    #[must_use]
    pub fn effective_thresholds(&self, node: NodeId) -> (f64, f64) {
        self.detector_state().detector.effective_thresholds(node)
    }

    // ---- telemetry ------------------------------------------------------

    /// Records a job arrival at time `t` (drives `Φ̂`).
    pub fn record_arrival(&self, t: f64) {
        self.state().bank.observe_arrival(t);
    }

    /// Records a completed service at `node` (drives `μ̂ᵢ`). Unknown
    /// nodes are accepted — completions may race deregistration.
    pub fn record_service(&self, node: NodeId, duration: f64) {
        self.state().bank.observe_service(node, duration);
    }

    /// The current arrival-rate estimate, once warm.
    #[must_use]
    pub fn estimated_arrival_rate(&self) -> Option<f64> {
        self.state().bank.arrival_rate()
    }

    /// The current service-rate estimate of one node, once warm.
    #[must_use]
    pub fn estimated_service_rate(&self, id: NodeId) -> Option<f64> {
        self.state().bank.service_rate(id)
    }

    // ---- solving & dispatching -----------------------------------------

    /// Runs a full solve now: snapshot the serving nodes, pick measured
    /// rates where warm (nominal otherwise), allocate — with the
    /// configured scheme in [`SolverMode::Coop`], by decentralized
    /// iteration in [`SolverMode::BestReply`] — and publish the
    /// resulting table at the next epoch.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] with nothing to solve over;
    /// [`RuntimeError::Core`] from the allocator (e.g. a nominal arrival
    /// rate at or above capacity, or invalid best-reply tunables).
    pub fn resolve_now(&self) -> Result<ResolveOutcome, RuntimeError> {
        let state = self.state();
        let State { ref registry, ref bank } = *state;
        let (ids, cluster) =
            registry.serving_cluster(|n| bank.service_rate(n.id()).unwrap_or(n.nominal_rate()))?;
        // Estimated Φ is clamped below capacity (transient overshoot must
        // not wedge the solver); the configured nominal rate is not — an
        // impossible design load should fail loudly.
        let phi_offered = bank.arrival_rate().unwrap_or(self.cfg.nominal_arrival_rate);
        let phi = match bank.arrival_rate() {
            Some(est) => resolver::clamp_phi(est, &cluster),
            None => self.cfg.nominal_arrival_rate,
        };
        // Admission sees the *unclamped* offered utilization: shedding
        // must react to the overload the solver is protected from.
        if let Some(control) = &self.admission {
            control.publish_offered_utilization(phi_offered / cluster.total_rate());
        }
        let epoch = self.next_epoch();
        let mode = self.solver_state().mode;
        let (table, outcome) = match mode.best_reply_config() {
            None => {
                // Lock order: `state` (held) then `builder`, released
                // when the solve returns.
                let solved = {
                    let mut builder = self.table_builder();
                    resolver::solve_table(self.cfg.scheme, epoch, ids, &cluster, phi, &mut builder)?
                };
                self.telemetry.record_solve(None);
                solved
            }
            Some(br_cfg) => {
                // Warm start from the live table: each serving node's
                // current routing share (0 for nodes not yet in it).
                // `best_reply` rescales the shares to Φ and falls back
                // to proportional if the current rates make them
                // infeasible.
                let current = self.table.load();
                let warm: Vec<f64> =
                    ids.iter().map(|&id| current.prob_of(id).unwrap_or(0.0)).collect();
                let warm = (warm.iter().sum::<f64>() > 0.0).then_some(&warm[..]);
                let out = {
                    // Lock order: `state` (held) then `solver`.
                    let mut solver = self.solver_state();
                    dynamics::best_reply(&cluster, phi, warm, &br_cfg, &mut solver.rng)?
                };
                let stats = ConvergenceStats {
                    epoch,
                    rounds: out.rounds,
                    residual: out.residual,
                    converged: out.converged,
                };
                self.solver_state().last = Some(stats);
                self.telemetry.record_solve(Some(stats));
                // Lock order: `state` (held) then `builder`.
                let table = self.table_builder().from_allocation(
                    epoch,
                    ids.clone(),
                    &out.allocation,
                    cluster.rates(),
                )?;
                let predicted_mean_response = out.allocation.mean_response_time(&cluster);
                let outcome = ResolveOutcome {
                    epoch,
                    nodes: ids,
                    rates: cluster.rates().to_vec(),
                    phi,
                    allocation: out.allocation,
                    predicted_mean_response,
                };
                (table, outcome)
            }
        };
        self.publish_table(table);
        Ok(outcome)
    }

    /// Immediately republishes the live table with node `id`'s routing
    /// weight scaled by `factor` — the k = 1 single-node publish path
    /// (e.g. a control-plane rate update). Goes through
    /// [`TableBuilder::update_weights`]: on its repair fast path the
    /// node's probability scales by exactly `factor` and the heaviest
    /// node absorbs the imbalance (O(affected) instead of O(n)); on the
    /// fallback the patched vector renormalizes across all nodes.
    /// Either way the published table is deterministic and exact (a
    /// fixed point of, or identical to, a full rebuild). This is a
    /// stopgap between solves: the next resolve replaces it with a
    /// proper allocation.
    ///
    /// Returns `Ok(None)` when the node is not in the live table
    /// (nothing to reweight — the next resolve picks the change up),
    /// `Ok(Some(epoch))` with the published epoch otherwise. A factor
    /// of exactly 1.0 still republishes (at a fresh epoch).
    ///
    /// # Errors
    /// [`RuntimeError::Core`] when `factor` is nonpositive or
    /// non-finite, or when the reweighted table would have no routable
    /// mass left.
    pub fn reweight_node(&self, id: NodeId, factor: f64) -> Result<Option<u64>, RuntimeError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(RuntimeError::Core(gtlb_core::error::CoreError::BadInput(format!(
                "reweight factor must be positive and finite, got {factor}"
            ))));
        }
        let current = self.table.load();
        let Some(idx) = current.nodes().iter().position(|&n| n == id) else {
            return Ok(None);
        };
        let epoch = self.next_epoch();
        let weight = current.probs()[idx] * factor;
        let table = self.table_builder().update_weights(&current, epoch, &[(idx, weight)])?;
        self.publish_table(table);
        Ok(Some(epoch))
    }

    /// Incremental-repair vs full-rebuild publish counts of this
    /// runtime's [`TableBuilder`] since construction, as
    /// `(repairs, rebuilds)`.
    #[must_use]
    pub fn table_build_stats(&self) -> (u64, u64) {
        let builder = self.table_builder();
        (builder.repairs(), builder.rebuilds())
    }

    /// The solver mode currently in effect.
    #[must_use]
    pub fn solver_mode(&self) -> SolverMode {
        self.solver_state().mode
    }

    /// Switches the solver mode live; the next resolve uses it. Returns
    /// the previous mode, and records a
    /// [`RuntimeEvent::SolverSwitched`] ring event on actual change.
    pub fn set_solver_mode(&self, mode: SolverMode) -> SolverMode {
        let prev = {
            let mut solver = self.solver_state();
            std::mem::replace(&mut solver.mode, mode)
        };
        if prev != mode {
            self.telemetry.record_solver_switch(mode);
        }
        prev
    }

    /// Stats of the most recent best-reply solve (`None` until one ran).
    #[must_use]
    pub fn last_convergence(&self) -> Option<ConvergenceStats> {
        self.solver_state().last
    }

    /// Routes one job via the published table, on the next shard in
    /// round-robin order. With one shard (the default) this replays the
    /// single-dispatcher decision stream exactly.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] before the first resolve or after
    /// the last node went down.
    pub fn dispatch(&self) -> Result<Decision, RuntimeError> {
        self.sharded.dispatch()
    }

    /// Routes one job on shard `shard` — the per-core path: workers that
    /// pin a shard never contend with each other.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] as [`Runtime::dispatch`].
    ///
    /// # Panics
    /// If `shard >= shard_count()`.
    pub fn dispatch_on(&self, shard: usize) -> Result<Decision, RuntimeError> {
        self.sharded.dispatch_on(shard)
    }

    /// Offers one job: admission control first (when configured), then
    /// dispatch, all on the next round-robin shard. Without admission
    /// this is [`Runtime::dispatch`] wrapped in
    /// [`Submission::Dispatched`].
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] when an *admitted* job has
    /// nowhere to route (shed verdicts return `Ok`).
    pub fn submit(&self) -> Result<Submission, RuntimeError> {
        self.submit_on(self.sharded.next_shard())
    }

    /// Offers one job on shard `shard`: the pinned-worker variant of
    /// [`Runtime::submit`]. The admission draw comes from the shard's
    /// dedicated admission stream, so the routing decision sequence is
    /// the same whether or not admission is enabled.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] as [`Runtime::submit`].
    ///
    /// # Panics
    /// If `shard >= shard_count()`.
    pub fn submit_on(&self, shard: usize) -> Result<Submission, RuntimeError> {
        let mut guard = self.sharded.shard(shard);
        if let Some(control) = &self.admission {
            let u = guard.next_admission_draw();
            match control.decide(u) {
                AdmissionVerdict::Accept => {}
                verdict @ (AdmissionVerdict::Defer | AdmissionVerdict::Reject) => {
                    self.telemetry.record_admission_shed(shard, verdict);
                    return Ok(match verdict {
                        AdmissionVerdict::Defer => Submission::Deferred,
                        _ => Submission::Rejected,
                    });
                }
            }
        }
        guard.dispatch().map(Submission::Dispatched)
    }

    /// Offers `count` jobs as one batch on the next round-robin shard:
    /// the guard (and its pinned table snapshot) is acquired once and
    /// the jobs route in a tight loop. See
    /// [`Runtime::submit_batch_on`] for the exact semantics.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] as [`Runtime::submit`].
    pub fn submit_batch(&self, count: usize) -> Result<BatchSubmission, RuntimeError> {
        self.submit_batch_on(self.sharded.next_shard(), count)
    }

    /// Offers `count` jobs as one batch on shard `shard`.
    ///
    /// Draw-for-draw equivalent to `count` successive
    /// [`Runtime::submit_on`] calls on the same shard — per job, one
    /// admission draw (when admission is configured) and one routing
    /// draw for each admitted job, in the same order — so batching
    /// never perturbs the decision sequence; it only amortizes the
    /// shard lock, the table load, and the counter merges. Without
    /// admission the whole batch goes through
    /// [`ShardGuard::route_batch`]'s dense-counting loop.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] when an admitted job has
    /// nowhere to route (shed verdicts are counted, not errors).
    ///
    /// # Panics
    /// If `shard >= shard_count()`.
    pub fn submit_batch_on(
        &self,
        shard: usize,
        count: usize,
    ) -> Result<BatchSubmission, RuntimeError> {
        let mut batch =
            BatchSubmission { decisions: Vec::with_capacity(count), deferred: 0, rejected: 0 };
        self.submit_batch_into(shard, count, &mut batch)?;
        Ok(batch)
    }

    /// As [`Runtime::submit_batch_on`], writing into a caller-owned
    /// [`BatchSubmission`] instead of allocating one — the
    /// zero-allocation batch path. `out` is cleared first; a caller that
    /// reuses one `BatchSubmission` across batches amortizes the
    /// decisions buffer to nothing (the only remaining allocation is
    /// its one-time growth).
    ///
    /// # Errors
    /// As [`Runtime::submit_batch_on`]. On error `out` holds only what
    /// this call produced before failing (never stale decisions from a
    /// previous batch).
    ///
    /// # Panics
    /// If `shard >= shard_count()`.
    pub fn submit_batch_into(
        &self,
        shard: usize,
        count: usize,
        out: &mut BatchSubmission,
    ) -> Result<(), RuntimeError> {
        out.decisions.clear();
        out.deferred = 0;
        out.rejected = 0;
        let mut guard = self.sharded.shard(shard);
        match &self.admission {
            None => guard.route_batch(count, &mut out.decisions)?,
            Some(control) => {
                for _ in 0..count {
                    let u = guard.next_admission_draw();
                    let verdict = control.decide(u);
                    match verdict {
                        AdmissionVerdict::Accept => out.decisions.push(guard.dispatch()?),
                        AdmissionVerdict::Defer => {
                            out.deferred += 1;
                            self.telemetry.record_admission_shed(shard, verdict);
                        }
                        AdmissionVerdict::Reject => {
                            out.rejected += 1;
                            self.telemetry.record_admission_shed(shard, verdict);
                        }
                    }
                }
            }
        }
        drop(guard);
        self.telemetry.record_batch(count as u64);
        Ok(())
    }

    /// Number of dispatch shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.sharded.shard_count()
    }

    /// Jobs dispatched so far, merged over all shards.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.sharded.dispatched()
    }

    /// Per-node dispatch counts merged over all shards, sorted by id.
    #[must_use]
    pub fn hit_counts(&self) -> Vec<(NodeId, u64)> {
        self.sharded.hit_counts()
    }

    /// The sharded dispatcher itself (benchmarks, pinned-worker loops
    /// that batch via [`ShardedDispatcher::shard`]).
    #[must_use]
    pub fn sharded_dispatcher(&self) -> &ShardedDispatcher {
        &self.sharded
    }

    /// Admission counters, when admission control is configured.
    #[must_use]
    pub fn admission_stats(&self) -> Option<AdmissionStats> {
        self.admission.as_ref().map(AdmissionControl::stats)
    }

    /// The offered utilization the admission policy currently acts on
    /// (refreshed by every resolve), when admission is configured.
    #[must_use]
    pub fn offered_utilization(&self) -> Option<f64> {
        self.admission.as_ref().map(AdmissionControl::offered_utilization)
    }

    /// The telemetry facade (disabled unless [`RuntimeBuilder::telemetry`]
    /// turned it on). Drivers use it to publish the virtual clock and to
    /// record per-job observations.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The tracing facade (disabled unless [`RuntimeBuilder::tracing`]
    /// turned it on). Drivers use it to begin sampled per-job traces
    /// and land them in the flight recorder.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Scrapes every telemetry instrument into one snapshot, after
    /// syncing the derived totals (merged dispatch counter, epoch-swap
    /// publish stats, admission counters, offered ρ, ring drops) and the
    /// per-node suspicion gauges (live φ at the telemetry clock plus the
    /// effective detector thresholds). `None` when telemetry is
    /// disabled.
    #[must_use]
    pub fn telemetry_snapshot(&self) -> Option<gtlb_telemetry::Snapshot> {
        let inner = self.telemetry.inner()?;
        inner.sync(
            self.sharded.dispatched(),
            self.table.stats(),
            self.admission.as_ref().map(|c| (c.stats(), c.offered_utilization())),
        );
        let now = self.telemetry.clock();
        // Collect node ids before touching the detector lock (the
        // detector mutex is never held together with `state`).
        let ids = self.node_ids();
        let suspicion: Vec<(NodeId, f64, f64, f64)> = {
            let guard = self.detector_state();
            ids.into_iter()
                .map(|id| {
                    let (suspect, down) = guard.detector.effective_thresholds(id);
                    (id, guard.detector.phi(id, now), suspect, down)
                })
                .collect()
        };
        inner.sync_node_suspicion(&suspicion);
        Some(inner.snapshot())
    }

    /// A polling handle a dashboard thread can scrape mid-run while the
    /// driver keeps submitting through the same shared runtime.
    #[must_use]
    pub fn telemetry_handle(self: &Arc<Self>) -> TelemetryHandle {
        TelemetryHandle::new(Arc::clone(self))
    }

    /// Writer-side statistics of the routing-table epoch swap: publish
    /// count and how far lease drains escalated.
    #[must_use]
    pub fn swap_stats(&self) -> SwapStats {
        self.table.stats()
    }

    /// Snapshot of the currently published routing table.
    #[must_use]
    pub fn current_table(&self) -> Arc<RoutingTable> {
        self.table.load()
    }

    /// The epoch-swap slot itself (benchmarks, custom dispatch loops).
    #[must_use]
    pub fn table_handle(&self) -> Arc<EpochSwap<RoutingTable>> {
        Arc::clone(&self.table)
    }

    /// Spawns the background re-solve loop: every `interval`, run
    /// [`Runtime::resolve_now`] and publish. Solve errors (e.g. a
    /// transient empty serving set) are tolerated; the loop retries next
    /// tick. Returns a handle that stops the loop when dropped.
    #[must_use]
    pub fn spawn_resolver(self: &Arc<Self>, interval: Duration) -> ResolverHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let rt = Arc::clone(self);
        let join = std::thread::spawn(move || {
            let mut solves = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                if rt.resolve_now().is_ok() {
                    solves += 1;
                }
                // Sleep in short slices so stop() returns promptly.
                let mut remaining = interval;
                while !remaining.is_zero() && !stop_flag.load(Ordering::Relaxed) {
                    let slice = remaining.min(Duration::from_millis(5));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
            solves
        });
        ResolverHandle { stop, join: Some(join) }
    }

    // ---- internals ------------------------------------------------------

    fn state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn detector_state(&self) -> MutexGuard<'_, DetectorState> {
        self.detector.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn solver_state(&self) -> MutexGuard<'_, SolverRuntime> {
        self.solver.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn table_builder(&self) -> MutexGuard<'_, TableBuilder> {
        self.builder.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Sets a node's health in the registry *and* forces the detector's
    /// view to match, so a manual mark and the detector never fight
    /// (without the sync, a manually-downed node would stay down forever:
    /// the detector, still believing it Up, would never emit the Up
    /// transition that readmits it).
    fn set_health_synced(&self, id: NodeId, health: Health) -> Result<Health, RuntimeError> {
        let prev = self.state().registry.set_health(id, health)?;
        self.detector_state().detector.set_view(id, health);
        if prev != health {
            // Manual marks are health transitions too; tag them with the
            // driver's published virtual clock (0 when no driver runs).
            self.telemetry.record_health(HealthTransition {
                node: id,
                from: prev,
                to: health,
                at: self.telemetry.clock(),
            });
        }
        Ok(prev)
    }

    /// Shared body of the `observe_*` pair: run the detector, log and
    /// apply whatever transition it decides on.
    fn observe(
        &self,
        node: NodeId,
        t: f64,
        success: bool,
    ) -> Result<Option<HealthTransition>, RuntimeError> {
        match self.node_health(node) {
            None | Some(Health::Draining) => return Ok(None),
            Some(_) => {}
        }
        let transition = {
            let mut det = self.detector_state();
            let tr = if success {
                det.detector.observe_success(node, t)
            } else {
                det.detector.observe_failure(node, t)
            };
            if let Some(tr) = tr {
                det.log.push(tr);
                self.telemetry.record_health(tr);
            }
            tr
        };
        if let Some(tr) = transition {
            self.apply_transition(tr)?;
        }
        Ok(transition)
    }

    /// Applies a detector-decided transition to the registry and the
    /// routing/admission layers.
    fn apply_transition(&self, tr: HealthTransition) -> Result<(), RuntimeError> {
        self.state().registry.set_health(tr.node, tr.to)?;
        match tr.to {
            Health::Down => {
                self.republish_without(tr.node);
                self.refresh_offered_utilization();
            }
            Health::Up => {
                // Rejoining needs a real allocation; a failed re-solve
                // (e.g. Φ transiently at capacity) is retried by the
                // resolver loop, so best-effort here.
                let _ = self.resolve_now();
                self.refresh_offered_utilization();
            }
            Health::Suspect | Health::Draining => {}
        }
        Ok(())
    }

    /// Re-publishes the offered utilization `ρ = Φ / Σμ(serving)` to the
    /// admission policy from the *current* serving set — the brownout
    /// coupling: when failures shrink surviving capacity below demand, ρ
    /// rises and Poisson thinning sheds the excess instead of letting
    /// queues diverge. No-op without admission control. With nothing
    /// serving and positive demand, ρ is published as `f64::MAX`
    /// (reject everything).
    fn refresh_offered_utilization(&self) {
        let Some(control) = &self.admission else { return };
        let (capacity, phi) = {
            let state = self.state();
            let State { ref registry, ref bank } = *state;
            let capacity: f64 = registry
                .serving()
                .map(|n| bank.service_rate(n.id()).unwrap_or(n.nominal_rate()))
                .sum();
            (capacity, bank.arrival_rate().unwrap_or(self.cfg.nominal_arrival_rate))
        };
        let rho = if capacity > 0.0 {
            phi / capacity
        } else if phi > 0.0 {
            f64::MAX
        } else {
            0.0
        };
        control.publish_offered_utilization(rho);
    }

    fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Publishes the current table minus `id` (failure/drain path). A
    /// no-op when the node is not in the table. When the survivors held
    /// zero probability (the departed node had all the mass — common
    /// under COOP at low load, which parks slow nodes at λ = 0), falls
    /// back to capacity-proportional routing over the serving nodes so
    /// the system stays routable until the next full solve; publishes the
    /// empty table only when nothing serves at all.
    fn republish_without(&self, id: NodeId) {
        let current = self.table.load();
        if !current.nodes().contains(&id) {
            return;
        }
        let epoch = self.next_epoch();
        // The builder lock is released before the fallback path takes
        // `state` (and re-taken after it drops) — `builder` is never
        // held while acquiring another lock.
        let renormalized = self.table_builder().without_node(&current, id, epoch);
        let table = renormalized.unwrap_or_else(|_| {
            let serving = {
                let state = self.state();
                state
                    .registry
                    .serving_cluster(|n| n.nominal_rate())
                    .map(|(ids, cluster)| (ids, cluster.rates().to_vec()))
            };
            match serving {
                Ok((ids, rates)) => self
                    .table_builder()
                    .build(epoch, ids, &rates)
                    .unwrap_or_else(|_| RoutingTable::empty(epoch)),
                Err(_) => RoutingTable::empty(epoch),
            }
        });
        self.publish_table(table);
    }

    /// Publishes a table through the epoch swap, recording the publish
    /// (and its wall-clock lease-drain wait) when telemetry is enabled.
    /// The wait is measured only with telemetry on — the value feeds one
    /// histogram and nothing else, so enabling it cannot perturb any
    /// deterministic output.
    fn publish_table(&self, table: RoutingTable) {
        let epoch = table.epoch();
        let timer = self.telemetry.is_enabled().then(std::time::Instant::now);
        self.table.publish(table);
        if let Some(start) = timer {
            self.telemetry.record_publish(epoch, start.elapsed().as_secs_f64());
        }
    }
}

/// Handle to the background re-solve loop; stops and joins on drop.
#[derive(Debug)]
pub struct ResolverHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<u64>>,
}

impl ResolverHandle {
    /// Stops the loop and returns how many successful solves it ran.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        match self.join.take() {
            Some(join) => join.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for ResolverHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coop_runtime(phi: f64) -> Runtime {
        Runtime::builder().seed(5).scheme(SchemeKind::Coop).nominal_arrival_rate(phi).build()
    }

    #[test]
    fn dispatch_before_resolve_fails() {
        let rt = coop_runtime(0.5);
        assert_eq!(rt.dispatch(), Err(RuntimeError::NoServingNodes));
        rt.register_node(1.0).unwrap();
        assert_eq!(rt.dispatch(), Err(RuntimeError::NoServingNodes), "not resolved yet");
        rt.resolve_now().unwrap();
        assert!(rt.dispatch().is_ok());
    }

    #[test]
    fn resolve_publishes_monotone_epochs() {
        let rt = coop_runtime(0.5);
        rt.register_node(1.0).unwrap();
        rt.register_node(2.0).unwrap();
        let e1 = rt.resolve_now().unwrap().epoch;
        let e2 = rt.resolve_now().unwrap().epoch;
        assert!(e2 > e1);
        assert_eq!(rt.current_table().epoch(), e2);
    }

    #[test]
    fn mark_down_renormalizes_immediately() {
        let rt = coop_runtime(0.9);
        let a = rt.register_node(2.0).unwrap();
        let b = rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        let before = rt.current_table();
        assert!(before.prob_of(a).unwrap() > 0.0);

        rt.mark_down(a).unwrap();
        let after = rt.current_table();
        assert!(after.epoch() > before.epoch());
        assert_eq!(after.prob_of(a), None, "down node left the table without a solve");
        assert!((after.prob_of(b).unwrap() - 1.0).abs() < 1e-12);

        // The follow-up full solve sees only the survivor.
        let outcome = rt.resolve_now().unwrap();
        assert_eq!(outcome.nodes, vec![b]);
    }

    #[test]
    fn last_node_down_empties_the_table() {
        let rt = coop_runtime(0.1);
        let a = rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        assert!(rt.dispatch().is_ok());
        rt.mark_down(a).unwrap();
        assert_eq!(rt.dispatch(), Err(RuntimeError::NoServingNodes));
        assert!(matches!(rt.resolve_now(), Err(RuntimeError::NoServingNodes)));
        // Recovery: back up, resolve, dispatch again.
        rt.mark_up(a).unwrap();
        rt.resolve_now().unwrap();
        assert!(rt.dispatch().is_ok());
    }

    #[test]
    fn drain_and_deregister_leave_the_table() {
        let rt = coop_runtime(1.0);
        let a = rt.register_node(2.0).unwrap();
        let b = rt.register_node(1.0).unwrap();
        let c = rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        rt.drain_node(a).unwrap();
        assert_eq!(rt.current_table().prob_of(a), None);
        assert_eq!(rt.node_health(a), Some(Health::Draining));
        rt.deregister_node(b).unwrap();
        assert_eq!(rt.current_table().prob_of(b), None);
        assert_eq!(rt.node_rate(b), None);
        assert!(rt.current_table().prob_of(c).is_some());
    }

    #[test]
    fn estimated_rates_feed_the_solve() {
        let rt = Runtime::builder()
            .scheme(SchemeKind::Coop)
            .nominal_arrival_rate(0.4)
            .min_observations(8, 4)
            .build();
        let a = rt.register_node(1.0).unwrap();
        rt.register_node(1.0).unwrap();
        // Feed arrivals at measured rate 2.0 and services showing node a
        // is really twice as fast as declared.
        for k in 0..32 {
            rt.record_arrival(k as f64 * 0.5);
            rt.record_service(a, 0.5);
        }
        assert!((rt.estimated_arrival_rate().unwrap() - 2.0).abs() < 1e-9);
        assert!((rt.estimated_service_rate(a).unwrap() - 2.0).abs() < 1e-9);
        let outcome = rt.resolve_now().unwrap();
        assert!((outcome.phi - 2.0).abs() < 1e-9, "solve used the measured Φ");
        assert!((outcome.rates[0] - 2.0).abs() < 1e-9, "solve used the measured μ");
        assert!((outcome.rates[1] - 1.0).abs() < 1e-9, "cold node keeps its nominal μ");
    }

    #[test]
    fn overloaded_estimate_is_clamped_not_fatal() {
        let rt = Runtime::builder().nominal_arrival_rate(0.5).min_observations(4, 1_000).build();
        rt.register_node(1.0).unwrap();
        // Estimated arrival rate 10 >> capacity 1.
        for k in 0..16 {
            rt.record_arrival(k as f64 * 0.1);
        }
        let outcome = rt.resolve_now().unwrap();
        assert!(outcome.phi < 1.0, "estimate clamped below capacity, got {}", outcome.phi);
    }

    #[test]
    fn single_shard_replays_the_unsharded_stream() {
        // shards = 1 (the default) must reproduce the decision sequence
        // of a bare Dispatcher on the same table and seed — the
        // backwards-compatibility half of the seed-derivation rule.
        let rt = coop_runtime(0.9);
        rt.register_node(2.0).unwrap();
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        assert_eq!(rt.shard_count(), 1);
        let mut reference = Dispatcher::new(rt.table_handle(), rt.config().seed);
        for _ in 0..256 {
            assert_eq!(rt.dispatch().unwrap(), reference.dispatch().unwrap());
        }
    }

    #[test]
    fn sharded_round_robin_spreads_and_counts() {
        let rt = Runtime::builder().seed(8).nominal_arrival_rate(1.5).shards(4).build();
        let a = rt.register_node(2.0).unwrap();
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        for _ in 0..4000 {
            rt.dispatch().unwrap();
        }
        assert_eq!(rt.dispatched(), 4000);
        let hits = rt.hit_counts();
        assert_eq!(hits.iter().map(|&(_, c)| c).sum::<u64>(), 4000);
        let p_a = rt.current_table().prob_of(a).unwrap();
        let f_a = hits.iter().find(|&&(id, _)| id == a).map_or(0, |&(_, c)| c) as f64 / 4000.0;
        assert!((f_a - p_a).abs() < 0.05, "merged freq {f_a} vs p {p_a}");
    }

    #[test]
    fn submit_without_admission_always_dispatches() {
        let rt = coop_runtime(0.5);
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        for _ in 0..64 {
            assert!(matches!(rt.submit().unwrap(), Submission::Dispatched(_)));
        }
        assert!(rt.admission_stats().is_none());
    }

    #[test]
    fn overloaded_runtime_sheds_and_conserves_counts() {
        // Capacity 1, design load 0.9 ⇒ ρ = 0.9 against a 0.5 target:
        // shed probability 1 − 0.5/0.9 ≈ 0.44, all rejected (no band).
        let rt = Runtime::builder()
            .seed(4)
            .nominal_arrival_rate(0.9)
            .admission(AdmissionConfig { target_utilization: 0.5, defer_band: 0.0 })
            .shards(2)
            .build();
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        assert!((rt.offered_utilization().unwrap() - 0.9).abs() < 1e-12);
        let mut dispatched = 0u64;
        for _ in 0..5_000 {
            match rt.submit().unwrap() {
                Submission::Dispatched(_) => dispatched += 1,
                Submission::Deferred => panic!("defer band is zero"),
                Submission::Rejected => {}
            }
        }
        let stats = rt.admission_stats().unwrap();
        assert_eq!(stats.submitted, 5_000);
        assert_eq!(stats.accepted + stats.deferred + stats.rejected, stats.submitted);
        assert_eq!(stats.accepted, dispatched);
        let rate = stats.rejection_rate();
        assert!((rate - (1.0 - 0.5 / 0.9)).abs() < 0.05, "rejection rate {rate}");
    }

    #[test]
    fn defer_band_turns_rejects_into_defers() {
        let rt = Runtime::builder()
            .seed(4)
            .nominal_arrival_rate(0.9)
            .admission(AdmissionConfig { target_utilization: 0.5, defer_band: 0.5 })
            .build();
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        for _ in 0..2_000 {
            assert_ne!(rt.submit().unwrap(), Submission::Rejected, "ρ is inside the band");
        }
        let stats = rt.admission_stats().unwrap();
        assert_eq!(stats.rejected, 0);
        assert!(stats.deferred > 0, "overload inside the band must defer");
    }

    #[test]
    fn below_target_admission_is_transparent() {
        let rt = Runtime::builder()
            .seed(6)
            .nominal_arrival_rate(0.3)
            .admission(AdmissionConfig::default())
            .build();
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        for _ in 0..1_000 {
            assert!(matches!(rt.submit().unwrap(), Submission::Dispatched(_)));
        }
        let stats = rt.admission_stats().unwrap();
        assert_eq!(stats.accepted, 1_000);
        assert_eq!(stats.rejected + stats.deferred, 0);
    }

    #[test]
    fn admission_draws_leave_routing_stream_untouched() {
        // Same seed, admission on vs off: the *routing* decisions of
        // admitted jobs must be identical (admission draws come from a
        // disjoint stream).
        let run = |admit: bool| {
            let mut b = Runtime::builder().seed(12).nominal_arrival_rate(0.4);
            if admit {
                b = b.admission(AdmissionConfig { target_utilization: 0.99, defer_band: 0.0 });
            }
            let rt = b.build();
            rt.register_node(2.0).unwrap();
            rt.register_node(1.0).unwrap();
            rt.resolve_now().unwrap();
            (0..128).map(|_| rt.submit().unwrap().decision().unwrap().node).collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn submit_batch_replays_per_job_submissions() {
        // Without admission: a batch on a pinned shard must equal the
        // per-job decision sequence on the same shard, draw for draw.
        let make = || {
            let rt = Runtime::builder().seed(17).nominal_arrival_rate(0.9).shards(2).build();
            rt.register_node(2.0).unwrap();
            rt.register_node(1.0).unwrap();
            rt.resolve_now().unwrap();
            rt
        };
        let batched = make();
        let batch = batched.submit_batch_on(1, 256).unwrap();
        assert_eq!(batch.dispatched(), 256);
        assert_eq!(batch.total(), 256);
        let reference = make();
        for d in &batch.decisions {
            assert_eq!(reference.submit_on(1).unwrap(), Submission::Dispatched(*d));
        }
        assert_eq!(batched.dispatched(), reference.dispatched());
        assert_eq!(batched.hit_counts(), reference.hit_counts());
    }

    #[test]
    fn submit_batch_with_admission_matches_per_job_and_conserves() {
        // ρ = 0.9 against a 0.5 target: band 0.0 rejects the sheds, band
        // 0.5 defers them — both modes must replay the per-job sequence.
        for band in [0.0, 0.5] {
            let make = || {
                let rt = Runtime::builder()
                    .seed(4)
                    .nominal_arrival_rate(0.9)
                    .admission(AdmissionConfig { target_utilization: 0.5, defer_band: band })
                    .build();
                rt.register_node(1.0).unwrap();
                rt.resolve_now().unwrap();
                rt
            };
            let batched = make();
            let batch = batched.submit_batch_on(0, 2_000).unwrap();
            assert_eq!(batch.total(), 2_000);
            assert!(batch.rejected + batch.deferred > 0, "overload must shed");
            let reference = make();
            let mut iter = batch.decisions.iter();
            let (mut deferred, mut rejected) = (0u64, 0u64);
            for _ in 0..2_000 {
                match reference.submit_on(0).unwrap() {
                    Submission::Dispatched(d) => assert_eq!(Some(&d), iter.next()),
                    Submission::Deferred => deferred += 1,
                    Submission::Rejected => rejected += 1,
                }
            }
            assert_eq!(iter.next(), None);
            assert_eq!((deferred, rejected), (batch.deferred, batch.rejected));
            let stats = batched.admission_stats().unwrap();
            assert_eq!(stats.submitted, 2_000);
            assert_eq!(stats.accepted, batch.dispatched());
        }
    }

    #[test]
    fn submit_batch_before_resolve_fails() {
        let rt = coop_runtime(0.5);
        rt.register_node(1.0).unwrap();
        assert_eq!(rt.submit_batch(8), Err(RuntimeError::NoServingNodes));
    }

    #[test]
    fn manual_marks_return_previous_health() {
        let rt = coop_runtime(0.5);
        let a = rt.register_node(1.0).unwrap();
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        assert_eq!(rt.mark_suspect(a).unwrap(), Health::Up);
        assert_eq!(rt.mark_down(a).unwrap(), Health::Suspect);
        assert_eq!(rt.mark_up(a).unwrap(), Health::Down);
        assert_eq!(rt.drain_node(a).unwrap(), Health::Up);
        let ghost = NodeId::from_raw(99);
        assert_eq!(rt.mark_down(ghost), Err(RuntimeError::UnknownNode(ghost)));
    }

    #[test]
    fn detector_drives_down_and_renormalizes() {
        let rt = coop_runtime(0.9);
        let a = rt.register_node(2.0).unwrap();
        let b = rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        // Warm the cadence, then drop three observations in a row.
        for k in 0..5 {
            assert_eq!(rt.observe_success(a, f64::from(k)).unwrap(), None);
        }
        let tr = rt.observe_failure(a, 5.0).unwrap().expect("Up→Suspect");
        assert_eq!((tr.from, tr.to), (Health::Up, Health::Suspect));
        assert_eq!(rt.node_health(a), Some(Health::Suspect));
        rt.observe_failure(a, 5.1).unwrap();
        let tr = rt.observe_failure(a, 5.2).unwrap().expect("Suspect→Down");
        assert_eq!(tr.to, Health::Down);
        assert_eq!(rt.node_health(a), Some(Health::Down));
        // Down applied the renormalization path: a left the table.
        let table = rt.current_table();
        assert_eq!(table.prob_of(a), None);
        assert!((table.prob_of(b).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(rt.health_transitions().len(), 2);
        // Probation: three clean successes readmit the node via a solve.
        for k in 0..3 {
            rt.observe_success(a, 6.0 + f64::from(k)).unwrap();
        }
        assert_eq!(rt.node_health(a), Some(Health::Up));
        assert!(rt.current_table().prob_of(a).is_some(), "re-solved back in");
        assert_eq!(rt.health_transitions().len(), 3, "Down→Up logged");
    }

    #[test]
    fn observations_on_unknown_or_draining_nodes_are_ignored() {
        let rt = coop_runtime(0.5);
        let a = rt.register_node(1.0).unwrap();
        rt.drain_node(a).unwrap();
        for k in 0..16 {
            assert_eq!(rt.observe_failure(a, f64::from(k)).unwrap(), None);
        }
        assert_eq!(rt.node_health(a), Some(Health::Draining));
        assert_eq!(rt.observe_success(NodeId::from_raw(42), 1.0).unwrap(), None);
        assert!(rt.health_transitions().is_empty());
    }

    #[test]
    fn node_loss_refreshes_offered_utilization() {
        // Two unit-rate nodes at design load 0.8: ρ = 0.4 with both up,
        // 0.8 after one dies — the brownout coupling admission acts on.
        let rt = Runtime::builder()
            .seed(3)
            .nominal_arrival_rate(0.8)
            .admission(AdmissionConfig { target_utilization: 0.9, defer_band: 0.0 })
            .build();
        let a = rt.register_node(1.0).unwrap();
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        assert!((rt.offered_utilization().unwrap() - 0.4).abs() < 1e-12);
        rt.mark_down(a).unwrap();
        assert!((rt.offered_utilization().unwrap() - 0.8).abs() < 1e-12);
        rt.mark_up(a).unwrap();
        assert!((rt.offered_utilization().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn node_ids_lists_registration_order() {
        let rt = coop_runtime(0.5);
        let a = rt.register_node(1.0).unwrap();
        let b = rt.register_node(2.0).unwrap();
        assert_eq!(rt.node_ids(), vec![a, b]);
        rt.mark_down(a).unwrap();
        assert_eq!(rt.node_ids(), vec![a, b], "health does not affect membership");
    }

    #[test]
    fn best_reply_mode_matches_the_coop_table() {
        let make = |mode| {
            let rt = Runtime::builder().seed(5).nominal_arrival_rate(1.8).solver_mode(mode).build();
            rt.register_node(2.0).unwrap();
            rt.register_node(1.0).unwrap();
            rt.resolve_now().unwrap();
            rt
        };
        let coop = make(SolverMode::Coop);
        let br = make(SolverMode::best_reply());
        let stats = br.last_convergence().expect("best-reply solve records stats");
        assert!(stats.converged, "residual {} after {} rounds", stats.residual, stats.rounds);
        assert!(stats.residual <= 1e-9);
        assert!(coop.last_convergence().is_none(), "coop solves record no convergence");
        for (a, b) in coop.current_table().probs().iter().zip(br.current_table().probs()) {
            assert!((a - b).abs() < 1e-6, "best-reply table {b} vs coop {a}");
        }
    }

    #[test]
    fn solver_mode_switches_live() {
        let rt = coop_runtime(0.9);
        rt.register_node(2.0).unwrap();
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        assert_eq!(rt.solver_mode(), SolverMode::Coop);
        assert_eq!(rt.set_solver_mode(SolverMode::best_reply()), SolverMode::Coop);
        rt.resolve_now().unwrap();
        let stats = rt.last_convergence().unwrap();
        assert!(stats.converged);
        assert_eq!(stats.epoch, rt.current_table().epoch());
        // Back to coop: the stats of the last best-reply solve remain.
        rt.set_solver_mode(SolverMode::Coop);
        rt.resolve_now().unwrap();
        assert_eq!(rt.last_convergence(), Some(stats));
    }

    #[test]
    fn solver_events_and_metrics_are_recorded() {
        let rt = Runtime::builder().seed(9).nominal_arrival_rate(0.8).telemetry(true).build();
        rt.register_node(1.0).unwrap();
        rt.register_node(1.0).unwrap();
        rt.set_solver_mode(SolverMode::best_reply());
        rt.set_solver_mode(SolverMode::best_reply()); // no-op: same mode
        rt.resolve_now().unwrap();
        let events = rt.telemetry().recent_events(16);
        let switches = events
            .iter()
            .filter(|e| matches!(e.event, RuntimeEvent::SolverSwitched { .. }))
            .count();
        assert_eq!(switches, 1, "only the actual change emits an event");
        assert!(events
            .iter()
            .any(|e| matches!(e.event, RuntimeEvent::SolverConverged { converged: true, .. })));
        let snap = rt.telemetry_snapshot().unwrap();
        assert_eq!(snap.counter(telemetry::names::SOLVER_RESOLVES), Some(1));
    }

    #[test]
    fn background_resolver_publishes() {
        let rt = Arc::new(coop_runtime(0.8));
        rt.register_node(1.0).unwrap();
        rt.register_node(2.0).unwrap();
        let handle = rt.spawn_resolver(Duration::from_millis(1));
        // Wait for at least one publish.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while rt.current_table().is_empty() {
            assert!(std::time::Instant::now() < deadline, "resolver never published");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(rt.dispatch().is_ok());
        let solves = handle.stop();
        assert!(solves >= 1);
    }
}
