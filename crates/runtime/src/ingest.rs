//! Bounded ingestion: the front door between bursty producers and the
//! dispatch shards.
//!
//! Producers and the dispatcher run at different speeds; an unbounded
//! buffer between them turns a burst into unbounded memory growth and
//! unbounded latency. [`IngestQueue`] is a fixed-depth MPMC queue with
//! two submission paths:
//!
//! * [`try_submit`](IngestQueue::try_submit) — non-blocking: a full
//!   queue returns the job to the caller immediately
//!   ([`IngestError::Full`]), which is the signal admission control and
//!   load-shedding act on;
//! * [`submit`](IngestQueue::submit) — blocking backpressure: the
//!   producer parks until a consumer makes room (or the queue closes).
//!
//! Consumers drain with [`try_pop`](IngestQueue::try_pop) /
//! [`pop`](IngestQueue::pop); [`close`](IngestQueue::close) wakes every
//! parked thread and lets the queue drain without accepting new work —
//! the shutdown path.
//!
//! The implementation is a `Mutex<VecDeque>` plus two condvars (`std`
//! only — the workspace is hermetic). The lock is held for a push or a
//! pop, never across a dispatch, so the queue adds a constant handoff
//! cost in front of whatever consumes it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::telemetry::Telemetry;

/// Why a submission did not enter the queue. The job is handed back so
/// the caller can defer, retry, or count it as shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError<T> {
    /// The queue is at depth; non-blocking submission sheds the job.
    Full(T),
    /// The queue is closed for new work (shutdown in progress).
    Closed(T),
}

impl<T> IngestError<T> {
    /// Recovers the job that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            Self::Full(job) | Self::Closed(job) => job,
        }
    }
}

#[derive(Debug)]
struct IngestState<T> {
    queue: VecDeque<T>,
    closed: bool,
    /// High-water mark of the queue length, for capacity planning.
    peak: usize,
}

/// A bounded MPMC job queue. See the [module docs](self).
#[derive(Debug)]
pub struct IngestQueue<T> {
    depth: usize,
    state: Mutex<IngestState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    telemetry: Telemetry,
}

impl<T> IngestQueue<T> {
    /// A queue holding at most `depth` jobs, with telemetry disabled
    /// (see [`with_telemetry`](Self::with_telemetry)).
    ///
    /// # Panics
    /// If `depth` is zero — a zero-depth queue can never accept work.
    #[must_use]
    pub fn with_depth(depth: usize) -> Self {
        Self::with_telemetry(depth, Telemetry::disabled())
    }

    /// Like [`with_depth`](Self::with_depth), mirroring queue depth,
    /// peak depth, and shed counts into `telemetry`'s instruments.
    ///
    /// # Panics
    /// If `depth` is zero.
    #[must_use]
    pub fn with_telemetry(depth: usize, telemetry: Telemetry) -> Self {
        assert!(depth > 0, "ingest queue depth must be positive");
        Self {
            depth,
            state: Mutex::new(IngestState {
                queue: VecDeque::with_capacity(depth),
                closed: false,
                peak: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            telemetry,
        }
    }

    /// The configured depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Jobs currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().queue.is_empty()
    }

    /// The deepest the queue has ever been.
    #[must_use]
    pub fn peak_depth(&self) -> usize {
        self.lock().peak
    }

    /// Non-blocking submission: enqueues `job`, or hands it back when
    /// the queue is full or closed.
    ///
    /// # Errors
    /// [`IngestError::Full`] at depth, [`IngestError::Closed`] after
    /// [`close`](IngestQueue::close).
    pub fn try_submit(&self, job: T) -> Result<(), IngestError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(IngestError::Closed(job));
        }
        if state.queue.len() >= self.depth {
            drop(state);
            self.telemetry.record_ingest_shed();
            return Err(IngestError::Full(job));
        }
        state.queue.push_back(job);
        state.peak = state.peak.max(state.queue.len());
        let depth = state.queue.len();
        drop(state);
        self.telemetry.record_ingest_push(depth);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking submission: parks until the queue has room, then
    /// enqueues `job`. Returns the job when the queue closes first.
    ///
    /// # Errors
    /// [`IngestError::Closed`] when the queue closed while waiting.
    pub fn submit(&self, job: T) -> Result<(), IngestError<T>> {
        let mut state = self.lock();
        while !state.closed && state.queue.len() >= self.depth {
            state = self.not_full.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if state.closed {
            return Err(IngestError::Closed(job));
        }
        state.queue.push_back(job);
        state.peak = state.peak.max(state.queue.len());
        let depth = state.queue.len();
        drop(state);
        self.telemetry.record_ingest_push(depth);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking drain: the oldest queued job, if any.
    #[must_use]
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.lock();
        let job = state.queue.pop_front();
        if job.is_some() {
            drop(state);
            self.telemetry.record_ingest_pop();
            self.not_full.notify_one();
        }
        job
    }

    /// Blocking drain: parks until a job arrives. Returns `None` only
    /// when the queue is closed *and* fully drained — consumers loop on
    /// `while let Some(job) = queue.pop()` for a clean shutdown.
    #[must_use]
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.queue.pop_front() {
                drop(state);
                self.telemetry.record_ingest_pop();
                self.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: no new submissions, queued jobs stay drainable,
    /// every parked producer and consumer wakes.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`close`](IngestQueue::close) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, IngestState<T>> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_depth() {
        let q = IngestQueue::with_depth(4);
        for job in 0..4 {
            q.try_submit(job).unwrap();
        }
        assert_eq!(q.len(), 4);
        for job in 0..4 {
            assert_eq!(q.try_pop(), Some(job));
        }
        assert!(q.is_empty());
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn try_submit_sheds_at_depth() {
        let q = IngestQueue::with_depth(2);
        q.try_submit(1).unwrap();
        q.try_submit(2).unwrap();
        assert_eq!(q.try_submit(3), Err(IngestError::Full(3)));
        assert_eq!(q.peak_depth(), 2);
        // Draining one makes room for exactly one.
        assert_eq!(q.try_pop(), Some(1));
        q.try_submit(3).unwrap();
        assert_eq!(q.try_submit(4), Err(IngestError::Full(4)));
    }

    #[test]
    fn close_rejects_new_work_but_drains_old() {
        let q = IngestQueue::with_depth(4);
        q.try_submit("a").unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_submit("b"), Err(IngestError::Closed("b")));
        assert_eq!(q.submit("c"), Err(IngestError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn into_inner_recovers_the_job() {
        assert_eq!(IngestError::Full(7).into_inner(), 7);
        assert_eq!(IngestError::Closed(9).into_inner(), 9);
    }

    #[test]
    fn blocking_handoff_across_threads() {
        let q = Arc::new(IngestQueue::with_depth(2));
        let producer_q = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            // 64 jobs through a depth-2 queue: must block and resume.
            for job in 0..64u64 {
                producer_q.submit(job).unwrap();
            }
            producer_q.close();
        });
        let mut received = Vec::new();
        while let Some(job) = q.pop() {
            received.push(job);
        }
        producer.join().unwrap();
        assert_eq!(received, (0..64).collect::<Vec<_>>());
        assert!(q.peak_depth() <= 2);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q = Arc::new(IngestQueue::<u32>::with_depth(1));
        let consumer_q = Arc::clone(&q);
        let consumer = std::thread::spawn(move || consumer_q.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_panics() {
        let _ = IngestQueue::<u8>::with_depth(0);
    }

    #[test]
    fn telemetry_mirrors_depth_peak_and_sheds() {
        use crate::telemetry::names;
        let tel = Telemetry::enabled(1);
        let q = IngestQueue::with_telemetry(2, tel.clone());
        q.try_submit(1).unwrap();
        q.try_submit(2).unwrap();
        assert!(q.try_submit(3).is_err());
        assert_eq!(q.try_pop(), Some(1));
        let snap = tel.inner().unwrap().snapshot();
        assert_eq!(snap.counter(names::INGEST_SHED), Some(1));
        assert_eq!(snap.gauge(names::INGEST_DEPTH), Some(1.0));
        assert_eq!(snap.gauge(names::INGEST_PEAK_DEPTH), Some(2.0));
    }
}
