//! Runtime observability: a [`Telemetry`] facade over the
//! `gtlb-telemetry` instruments, threaded through every subsystem.
//!
//! The facade is an `Option<Arc<_>>`: [`Telemetry::disabled`] (the
//! default) carries `None` and every record method compiles to a plain
//! branch on it, so the instrumented paths cost one predictable
//! never-taken branch when telemetry is off. [`Telemetry::enabled`]
//! allocates the instrument set and the per-shard event ring.
//!
//! ## Determinism contract
//!
//! Telemetry consumes **no RNG draws** and owns **no clock**: every
//! event is tagged with the virtual time the [`TraceDriver`] publishes
//! through [`Telemetry::set_clock`] (wall-clock enters exactly one
//! instrument — the publish-wait histogram, which measures real
//! lease-drain latency and is never folded into any fingerprint). The
//! `stream` tag on an event names the seed-stream family of the
//! subsystem that emitted it ([`DISPATCH_STREAM`], [`FAULT_STREAM`], …,
//! or `0` for subsystems that draw nothing); telemetry itself has no
//! entry in the stream-family map because it never draws. Enabling
//! telemetry therefore leaves every determinism fingerprint
//! bit-identical — CI's `telemetry-invariance` job diffs them.
//!
//! ## Hot-path budget
//!
//! The alias-routing hot path gains only the enabled-check branch plus,
//! every [`ROUTE_SAMPLE_EVERY`]-th dispatch of a shard, one sampled
//! [`RuntimeEvent::Routed`] ring push (amortized to well under a
//! nanosecond). Everything else (histograms, admission/fault/health
//! events) records on paths that are already cold or lock-bound. CI
//! gates the enabled/disabled ratio at ≤ 1.03× on the n=1024 route
//! bench.
//!
//! [`TraceDriver`]: crate::driver::TraceDriver
//! [`DISPATCH_STREAM`]: crate::dispatcher::DISPATCH_STREAM
//! [`FAULT_STREAM`]: crate::fault::FAULT_STREAM

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gtlb_telemetry::{
    Counter, EventRing, Gauge, Histogram, Registry as MetricRegistry, Snapshot, TaggedEvent,
    Watermark,
};

use crate::admission::{AdmissionStats, AdmissionVerdict};
use crate::detector::HealthTransition;
use crate::dispatcher::DISPATCH_STREAM;
use crate::dynamics::{ConvergenceStats, SolverMode, DYNAMICS_STREAM};
use crate::fault::{
    FaultMarker, FaultMarkerKind, PartitionDirection, ADVERSARIAL_STREAM, FAULT_STREAM,
};
use crate::registry::{Health, NodeId};
use crate::shard::ADMISSION_STREAM;
use crate::swap::SwapStats;
use crate::Runtime;

/// Events per event-ring lane (one lane per shard).
pub const TELEMETRY_EVENT_CAPACITY: usize = 1024;

/// A shard pushes one sampled [`RuntimeEvent::Routed`] event every this
/// many dispatches (a power of two, so the check is one mask). Routing
/// *counts* are exact regardless — they come from the shard counters —
/// only the per-decision event stream is sampled.
pub const ROUTE_SAMPLE_EVERY: u64 = 1024;

/// Canonical metric names, as they appear in [`Snapshot`] and both
/// exposition formats. The README's metric table documents each.
pub mod names {
    /// Jobs routed, merged over all shards (synced from shard counters).
    pub const DISPATCHES: &str = "gtlb_dispatches_total";
    /// Jobs that asked admission for a verdict.
    pub const ADMISSION_SUBMITTED: &str = "gtlb_admission_submitted_total";
    /// Jobs admitted to dispatch.
    pub const ADMISSION_ACCEPTED: &str = "gtlb_admission_accepted_total";
    /// Jobs shed with retry-later semantics.
    pub const ADMISSION_DEFERRED: &str = "gtlb_admission_deferred_total";
    /// Jobs shed outright.
    pub const ADMISSION_REJECTED: &str = "gtlb_admission_rejected_total";
    /// Redispatch attempts made by the trace driver.
    pub const RETRIES: &str = "gtlb_retries_total";
    /// Dispatch attempts dropped by injected faults.
    pub const FAULT_DROPS: &str = "gtlb_fault_drops_total";
    /// Health transitions applied (detector-driven and manual).
    pub const HEALTH_TRANSITIONS: &str = "gtlb_health_transitions_total";
    /// Routing tables published through the epoch swap.
    pub const TABLE_PUBLISHES: &str = "gtlb_table_publishes_total";
    /// Publishes whose lease drain needed a spin wait.
    pub const SWAP_DRAIN_SPIN: &str = "gtlb_swap_drain_spin_total";
    /// Publishes whose lease drain escalated to `yield_now`.
    pub const SWAP_DRAIN_YIELD: &str = "gtlb_swap_drain_yield_total";
    /// Publishes whose lease drain escalated to a parked sleep.
    pub const SWAP_DRAIN_SLEEP: &str = "gtlb_swap_drain_sleep_total";
    /// Jobs shed by a full ingest queue.
    pub const INGEST_SHED: &str = "gtlb_ingest_shed_total";
    /// Events overwritten in the ring (drop-oldest).
    pub const EVENTS_DROPPED: &str = "gtlb_events_dropped_total";
    /// Offered utilization `ρ = Φ̂ / Σμ̂` admission acts on.
    pub const OFFERED_UTILIZATION: &str = "gtlb_offered_utilization";
    /// The driver's virtual clock, in seconds.
    pub const VIRTUAL_CLOCK: &str = "gtlb_virtual_clock_seconds";
    /// Jobs currently queued in the ingest queue.
    pub const INGEST_DEPTH: &str = "gtlb_ingest_depth";
    /// Jobs dispatched whose completion has not been recorded yet
    /// (derived at scrape: dispatches − responses − fault drops).
    pub const JOBS_INFLIGHT: &str = "gtlb_jobs_inflight";
    /// Batch sizes offered through the `submit_batch` family.
    pub const BATCH_SIZE: &str = "gtlb_batch_size";
    /// High-water mark of the ingest queue depth.
    pub const INGEST_PEAK_DEPTH: &str = "gtlb_ingest_peak_depth";
    /// Response time, arrival → completion (virtual seconds).
    pub const RESPONSE_SECONDS: &str = "gtlb_response_seconds";
    /// Queue wait at the chosen node (virtual seconds).
    pub const QUEUE_WAIT_SECONDS: &str = "gtlb_queue_wait_seconds";
    /// Retry backoff waits (virtual seconds).
    pub const RETRY_BACKOFF_SECONDS: &str = "gtlb_retry_backoff_seconds";
    /// Table-publish lease-drain wait (wall-clock seconds; the one
    /// wall-clock instrument).
    pub const PUBLISH_WAIT_SECONDS: &str = "gtlb_publish_wait_seconds";
    /// Successful solves published, in either solver mode.
    pub const SOLVER_RESOLVES: &str = "gtlb_solver_resolves_total";
    /// Rounds-to-converge of best-reply solves.
    pub const SOLVER_ROUNDS: &str = "gtlb_solver_rounds";
    /// Final equilibrium residual of the last best-reply solve.
    pub const SOLVER_RESIDUAL: &str = "gtlb_solver_residual";

    /// Per-node suspicion gauge: node `raw`'s live accrual φ at the
    /// telemetry clock (synced on snapshot).
    #[must_use]
    pub fn node_phi(raw: u64) -> String {
        format!("gtlb_node_phi_{raw}")
    }
    /// Per-node effective Suspect threshold gauge (self-tuned when the
    /// detector runs in self-tuning mode, the configured value
    /// otherwise).
    #[must_use]
    pub fn node_suspect_phi(raw: u64) -> String {
        format!("gtlb_node_suspect_phi_{raw}")
    }
    /// Per-node effective Down threshold gauge.
    #[must_use]
    pub fn node_down_phi(raw: u64) -> String {
        format!("gtlb_node_down_phi_{raw}")
    }
}

/// A structured happening recorded in the event ring, tagged (by
/// [`TaggedEvent`]) with virtual time, shard, and seed-stream family.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeEvent {
    /// A sampled routing decision (every [`ROUTE_SAMPLE_EVERY`]-th
    /// dispatch per shard).
    Routed {
        /// The chosen node.
        node: NodeId,
        /// Epoch of the table that chose it.
        epoch: u64,
    },
    /// A health transition was applied.
    HealthChanged {
        /// The node that moved.
        node: NodeId,
        /// Health before.
        from: Health,
        /// Health after.
        to: Health,
    },
    /// An injected fault dropped a dispatch attempt.
    FaultDropped {
        /// The node whose attempt dropped.
        node: NodeId,
    },
    /// Admission shed a job.
    AdmissionShed {
        /// `true` for defer (retry-later), `false` for reject.
        deferred: bool,
    },
    /// A routing table was published.
    EpochPublished {
        /// The new table's epoch.
        epoch: u64,
    },
    /// The runtime's solver mode changed.
    SolverSwitched {
        /// The mode now in effect.
        mode: SolverMode,
    },
    /// A best-reply solve finished its iteration (`converged = false`
    /// means it ran out of rounds and published the best profile found).
    SolverConverged {
        /// Epoch of the table the solve published.
        epoch: u64,
        /// Synchronous rounds executed.
        rounds: u32,
        /// Whether the residual reached epsilon.
        converged: bool,
    },
    /// An asymmetric partition opened on a node (scheduled by the fault
    /// plan; surfaced by the driver at the plan's virtual time).
    PartitionOpened {
        /// The partitioned node.
        node: NodeId,
        /// Which link direction dropped.
        direction: PartitionDirection,
    },
    /// The asymmetric partition on a node healed.
    PartitionHealed {
        /// The healed node.
        node: NodeId,
        /// Which link direction had dropped.
        direction: PartitionDirection,
    },
    /// A domain-scoped fault struck every member of a failure domain
    /// atomically.
    DomainFault {
        /// The rack/zone label.
        domain: String,
    },
}

impl std::fmt::Display for RuntimeEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Routed { node, epoch } => write!(f, "routed {node} (epoch {epoch})"),
            Self::HealthChanged { node, from, to } => write!(f, "health {node} {from} -> {to}"),
            Self::FaultDropped { node } => write!(f, "fault dropped attempt at {node}"),
            Self::AdmissionShed { deferred: true } => write!(f, "admission deferred a job"),
            Self::AdmissionShed { deferred: false } => write!(f, "admission rejected a job"),
            Self::EpochPublished { epoch } => write!(f, "published table epoch {epoch}"),
            Self::SolverSwitched { mode } => write!(f, "solver switched to {}", mode.name()),
            Self::SolverConverged { epoch, rounds, converged: true } => {
                write!(f, "solver converged for epoch {epoch} in {rounds} rounds")
            }
            Self::SolverConverged { epoch, rounds, converged: false } => {
                write!(f, "solver hit the round budget ({rounds}) for epoch {epoch}")
            }
            Self::PartitionOpened { node, direction } => {
                write!(f, "partition opened on {node} ({direction})")
            }
            Self::PartitionHealed { node, direction } => {
                write!(f, "partition healed on {node} ({direction})")
            }
            Self::DomainFault { domain } => write!(f, "domain fault struck {domain}"),
        }
    }
}

/// The instrument set behind an enabled [`Telemetry`].
#[derive(Debug)]
pub(crate) struct TelemetryInner {
    registry: MetricRegistry,
    ring: EventRing<RuntimeEvent>,
    /// `f64` bits of the driver-published virtual clock.
    clock_bits: AtomicU64,
    dispatches: Arc<Counter>,
    admission_submitted: Arc<Counter>,
    admission_accepted: Arc<Counter>,
    admission_deferred: Arc<Counter>,
    admission_rejected: Arc<Counter>,
    retries: Arc<Counter>,
    fault_drops: Arc<Counter>,
    health_transitions: Arc<Counter>,
    table_publishes: Arc<Counter>,
    drain_spin: Arc<Counter>,
    drain_yield: Arc<Counter>,
    drain_sleep: Arc<Counter>,
    ingest_shed: Arc<Counter>,
    events_dropped: Arc<Counter>,
    offered_utilization: Arc<Gauge>,
    virtual_clock: Arc<Gauge>,
    ingest_depth: Arc<Gauge>,
    jobs_inflight: Arc<Gauge>,
    ingest_peak: Arc<Watermark>,
    response: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
    backoff: Arc<Histogram>,
    publish_wait: Arc<Histogram>,
    solver_resolves: Arc<Counter>,
    solver_rounds: Arc<Histogram>,
    solver_residual: Arc<Gauge>,
}

impl TelemetryInner {
    fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let registry = MetricRegistry::new();
        Self {
            ring: EventRing::new(shards, TELEMETRY_EVENT_CAPACITY),
            clock_bits: AtomicU64::new(0f64.to_bits()),
            dispatches: registry.counter(names::DISPATCHES, 1),
            admission_submitted: registry.counter(names::ADMISSION_SUBMITTED, 1),
            admission_accepted: registry.counter(names::ADMISSION_ACCEPTED, 1),
            admission_deferred: registry.counter(names::ADMISSION_DEFERRED, 1),
            admission_rejected: registry.counter(names::ADMISSION_REJECTED, 1),
            retries: registry.counter(names::RETRIES, shards),
            fault_drops: registry.counter(names::FAULT_DROPS, shards),
            health_transitions: registry.counter(names::HEALTH_TRANSITIONS, shards),
            table_publishes: registry.counter(names::TABLE_PUBLISHES, 1),
            drain_spin: registry.counter(names::SWAP_DRAIN_SPIN, 1),
            drain_yield: registry.counter(names::SWAP_DRAIN_YIELD, 1),
            drain_sleep: registry.counter(names::SWAP_DRAIN_SLEEP, 1),
            ingest_shed: registry.counter(names::INGEST_SHED, shards),
            events_dropped: registry.counter(names::EVENTS_DROPPED, 1),
            offered_utilization: registry.gauge(names::OFFERED_UTILIZATION, 1),
            virtual_clock: registry.gauge(names::VIRTUAL_CLOCK, 1),
            ingest_depth: registry.gauge(names::INGEST_DEPTH, shards),
            jobs_inflight: registry.gauge(names::JOBS_INFLIGHT, 1),
            ingest_peak: registry.watermark(names::INGEST_PEAK_DEPTH, shards),
            response: registry.histogram(names::RESPONSE_SECONDS),
            batch_size: registry.histogram(names::BATCH_SIZE),
            queue_wait: registry.histogram(names::QUEUE_WAIT_SECONDS),
            backoff: registry.histogram(names::RETRY_BACKOFF_SECONDS),
            publish_wait: registry.histogram(names::PUBLISH_WAIT_SECONDS),
            solver_resolves: registry.counter(names::SOLVER_RESOLVES, 1),
            solver_rounds: registry.histogram(names::SOLVER_ROUNDS),
            solver_residual: registry.gauge(names::SOLVER_RESIDUAL, 1),
            registry,
        }
    }

    fn clock(&self) -> f64 {
        f64::from_bits(self.clock_bits.load(Ordering::Relaxed))
    }

    fn push(&self, shard: usize, stream: u64, event: RuntimeEvent) {
        self.push_at(self.clock(), shard, stream, event);
    }

    fn push_at(&self, time: f64, shard: usize, stream: u64, event: RuntimeEvent) {
        self.ring.push(shard, TaggedEvent { time, shard: shard as u32, stream, event });
    }

    /// Mirrors externally-maintained totals into the registry so a
    /// scrape sees them; called by [`Runtime::telemetry_snapshot`].
    pub(crate) fn sync(
        &self,
        dispatched: u64,
        swap: SwapStats,
        admission: Option<(AdmissionStats, f64)>,
    ) {
        self.dispatches.set_total(dispatched);
        self.table_publishes.set_total(swap.publishes);
        self.drain_spin.set_total(swap.drains_spin);
        self.drain_yield.set_total(swap.drains_yield);
        self.drain_sleep.set_total(swap.drains_sleep);
        if let Some((stats, rho)) = admission {
            self.admission_submitted.set_total(stats.submitted);
            self.admission_accepted.set_total(stats.accepted);
            self.admission_deferred.set_total(stats.deferred);
            self.admission_rejected.set_total(stats.rejected);
            self.offered_utilization.set(rho);
        }
        self.events_dropped.set_total(self.ring.dropped());
        self.virtual_clock.set(self.clock());
        // Jobs routed whose completion was never recorded: dispatched
        // minus responses minus fault-dropped attempts, floored at 0
        // (drivers that don't record responses leave this at the raw
        // dispatch count, which is still the honest upper bound).
        let completed = self.response.snapshot().count();
        let drops = self.fault_drops.value();
        self.jobs_inflight.set(dispatched.saturating_sub(completed + drops) as f64);
    }

    /// Mirrors per-node suspicion state (live φ and the effective
    /// thresholds) into named gauges; called by
    /// [`Runtime::telemetry_snapshot`]. Gauges are get-or-create by
    /// name, so nodes appear in the snapshot on first sync.
    pub(crate) fn sync_node_suspicion(&self, rows: &[(NodeId, f64, f64, f64)]) {
        for &(node, phi, suspect, down) in rows {
            self.registry.gauge(&names::node_phi(node.raw()), 1).set(phi);
            self.registry.gauge(&names::node_suspect_phi(node.raw()), 1).set(suspect);
            self.registry.gauge(&names::node_down_phi(node.raw()), 1).set(down);
        }
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

/// The runtime's telemetry facade: either a no-op
/// ([`Telemetry::disabled`]) or a shared instrument set
/// ([`Telemetry::enabled`]). Cloning shares the instruments.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// The no-op facade: every record method is a never-taken branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled facade with one event-ring lane and one set of metric
    /// cells per shard.
    #[must_use]
    pub fn enabled(shards: usize) -> Self {
        Self { inner: Some(Arc::new(TelemetryInner::new(shards))) }
    }

    /// Whether this facade records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    pub(crate) fn inner(&self) -> Option<&TelemetryInner> {
        self.inner.as_deref()
    }

    /// Publishes the driver's virtual clock; subsequent events are
    /// tagged with it.
    #[inline]
    pub fn set_clock(&self, t: f64) {
        if let Some(inner) = self.inner() {
            inner.clock_bits.store(t.to_bits(), Ordering::Relaxed);
        }
    }

    /// The last published virtual time (0 when disabled).
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.inner().map_or(0.0, TelemetryInner::clock)
    }

    /// Records a sampled routing decision from `shard`.
    #[inline]
    pub(crate) fn record_routed(&self, shard: usize, node: NodeId, epoch: u64) {
        if let Some(inner) = self.inner() {
            inner.push(shard, DISPATCH_STREAM, RuntimeEvent::Routed { node, epoch });
        }
    }

    /// Records an admission shed verdict (accepts are counted via the
    /// synced [`AdmissionStats`], not per-event).
    #[inline]
    pub(crate) fn record_admission_shed(&self, shard: usize, verdict: AdmissionVerdict) {
        if let Some(inner) = self.inner() {
            let deferred = match verdict {
                AdmissionVerdict::Accept => return,
                AdmissionVerdict::Defer => true,
                AdmissionVerdict::Reject => false,
            };
            inner.push(shard, ADMISSION_STREAM, RuntimeEvent::AdmissionShed { deferred });
        }
    }

    /// Records a completed job's response time (virtual seconds).
    #[inline]
    pub fn record_response(&self, seconds: f64) {
        if let Some(inner) = self.inner() {
            inner.response.record(seconds);
        }
    }

    /// Records a completed job's response time together with its trace
    /// id as the bucket exemplar (when the job was sampled), so
    /// `gtlb_response_seconds` percentiles link to a concrete trace.
    #[inline]
    pub fn record_response_traced(&self, seconds: f64, exemplar: Option<u64>) {
        if let Some(inner) = self.inner() {
            match exemplar {
                Some(id) => inner.response.record_with_exemplar(seconds, id),
                None => inner.response.record(seconds),
            }
        }
    }

    /// Records one batch offered through the `submit_batch` family.
    #[inline]
    pub(crate) fn record_batch(&self, size: u64) {
        if let Some(inner) = self.inner() {
            inner.batch_size.record(size as f64);
        }
    }

    /// The current ingest-queue depth gauge (0 when disabled or when no
    /// ingest queue feeds this runtime).
    #[must_use]
    pub fn ingest_depth(&self) -> f64 {
        self.inner().map_or(0.0, |inner| inner.ingest_depth.value())
    }

    /// Records a completed job's queue wait (virtual seconds).
    #[inline]
    pub fn record_queue_wait(&self, seconds: f64) {
        if let Some(inner) = self.inner() {
            inner.queue_wait.record(seconds);
        }
    }

    /// Records one retry and the backoff it waited (virtual seconds).
    #[inline]
    pub fn record_retry(&self, shard: usize, backoff_seconds: f64) {
        if let Some(inner) = self.inner() {
            inner.retries.incr(shard);
            inner.backoff.record(backoff_seconds);
        }
    }

    /// Records a dispatch attempt dropped by an injected fault at
    /// virtual time `t`.
    #[inline]
    pub fn record_fault_drop(&self, shard: usize, node: NodeId, t: f64) {
        if let Some(inner) = self.inner() {
            inner.fault_drops.incr(shard);
            inner.push_at(t, shard, FAULT_STREAM, RuntimeEvent::FaultDropped { node });
        }
    }

    /// Records a fault-schedule milestone (partition opened/healed,
    /// domain fault struck) at the marker's own virtual time, on the
    /// adversarial stream family.
    #[inline]
    pub(crate) fn record_fault_marker(&self, marker: &FaultMarker) {
        if let Some(inner) = self.inner() {
            let event = match &marker.kind {
                FaultMarkerKind::PartitionOpened { node, direction } => {
                    RuntimeEvent::PartitionOpened { node: *node, direction: *direction }
                }
                FaultMarkerKind::PartitionHealed { node, direction } => {
                    RuntimeEvent::PartitionHealed { node: *node, direction: *direction }
                }
                FaultMarkerKind::DomainFault { domain } => {
                    RuntimeEvent::DomainFault { domain: domain.clone() }
                }
            };
            inner.push_at(marker.at, 0, ADVERSARIAL_STREAM, event);
        }
    }

    /// Records an applied health transition.
    #[inline]
    pub(crate) fn record_health(&self, tr: HealthTransition) {
        if let Some(inner) = self.inner() {
            inner.health_transitions.incr(0);
            inner.push_at(
                tr.at,
                0,
                0,
                RuntimeEvent::HealthChanged { node: tr.node, from: tr.from, to: tr.to },
            );
        }
    }

    /// Records one successful solve: the re-solve counter always, plus
    /// — for best-reply solves — the rounds-to-converge histogram, the
    /// residual gauge, and a [`RuntimeEvent::SolverConverged`] ring
    /// event on the solver's stream family.
    #[inline]
    pub(crate) fn record_solve(&self, stats: Option<ConvergenceStats>) {
        if let Some(inner) = self.inner() {
            inner.solver_resolves.incr(0);
            if let Some(s) = stats {
                inner.solver_rounds.record(f64::from(s.rounds));
                inner.solver_residual.set(s.residual);
                inner.push(
                    0,
                    DYNAMICS_STREAM,
                    RuntimeEvent::SolverConverged {
                        epoch: s.epoch,
                        rounds: s.rounds,
                        converged: s.converged,
                    },
                );
            }
        }
    }

    /// Records a live solver-mode switch.
    #[inline]
    pub(crate) fn record_solver_switch(&self, mode: SolverMode) {
        if let Some(inner) = self.inner() {
            inner.push(0, DYNAMICS_STREAM, RuntimeEvent::SolverSwitched { mode });
        }
    }

    /// Records a table publish and its lease-drain wait (wall-clock
    /// seconds — the one wall-clock instrument; see the module docs).
    #[inline]
    pub(crate) fn record_publish(&self, epoch: u64, wait_seconds: f64) {
        if let Some(inner) = self.inner() {
            inner.publish_wait.record(wait_seconds);
            inner.push(0, 0, RuntimeEvent::EpochPublished { epoch });
        }
    }

    /// Records the ingest queue reaching `depth` after a push.
    #[inline]
    pub(crate) fn record_ingest_push(&self, depth: usize) {
        if let Some(inner) = self.inner() {
            inner.ingest_depth.add(0, 1.0);
            inner.ingest_peak.observe(0, depth as f64);
        }
    }

    /// Records a pop from the ingest queue.
    #[inline]
    pub(crate) fn record_ingest_pop(&self) {
        if let Some(inner) = self.inner() {
            inner.ingest_depth.add(0, -1.0);
        }
    }

    /// Records a job shed by a full ingest queue.
    #[inline]
    pub(crate) fn record_ingest_shed(&self) {
        if let Some(inner) = self.inner() {
            inner.ingest_shed.incr(0);
        }
    }

    /// The most recent `n` ring events in virtual-time order (empty
    /// when disabled).
    #[must_use]
    pub fn recent_events(&self, n: usize) -> Vec<TaggedEvent<RuntimeEvent>> {
        self.inner().map_or_else(Vec::new, |inner| inner.ring.recent(n))
    }

    /// Events overwritten in the ring so far (0 when disabled).
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.inner().map_or(0, |inner| inner.ring.dropped())
    }
}

/// A polling handle over a shared [`Runtime`]'s telemetry: scrape
/// snapshots and exposition formats mid-run, e.g. from a dashboard
/// thread while the [`TraceDriver`](crate::driver::TraceDriver) pushes
/// jobs elsewhere.
#[derive(Clone)]
pub struct TelemetryHandle {
    runtime: Arc<Runtime>,
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHandle").field("enabled", &self.is_enabled()).finish()
    }
}

impl TelemetryHandle {
    pub(crate) fn new(runtime: Arc<Runtime>) -> Self {
        Self { runtime }
    }

    /// Whether the underlying runtime records telemetry.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.runtime.telemetry().is_enabled()
    }

    /// A merged snapshot of every instrument (`None` when disabled).
    #[must_use]
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.runtime.telemetry_snapshot()
    }

    /// The snapshot rendered as Prometheus text exposition.
    #[must_use]
    pub fn prometheus(&self) -> Option<String> {
        self.snapshot().map(|s| s.to_prometheus())
    }

    /// The snapshot rendered as JSON.
    #[must_use]
    pub fn json(&self) -> Option<String> {
        self.snapshot().map(|s| s.to_json())
    }

    /// The most recent `n` structured events.
    #[must_use]
    pub fn recent_events(&self, n: usize) -> Vec<TaggedEvent<RuntimeEvent>> {
        self.runtime.telemetry().recent_events(n)
    }

    /// Whether the underlying runtime records per-job traces.
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.runtime.tracer().is_enabled()
    }

    /// Every trace currently held in the flight recorder, in start-time
    /// order (empty when tracing is disabled).
    #[must_use]
    pub fn traces(&self) -> Vec<gtlb_telemetry::trace::Trace> {
        self.runtime.tracer().traces()
    }

    /// One recorded trace by id.
    #[must_use]
    pub fn trace(
        &self,
        id: gtlb_telemetry::trace::TraceId,
    ) -> Option<gtlb_telemetry::trace::Trace> {
        self.runtime.tracer().trace(id)
    }

    /// The flight recorder's contents rendered as Chrome `trace_event`
    /// JSON (`None` when tracing is disabled).
    #[must_use]
    pub fn traces_chrome(&self) -> Option<String> {
        self.tracing_enabled().then(|| gtlb_telemetry::trace::to_chrome_json(&self.traces()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.set_clock(5.0);
        tel.record_response(1.0);
        tel.record_retry(0, 0.1);
        assert_eq!(tel.clock(), 0.0);
        assert!(tel.recent_events(8).is_empty());
        assert_eq!(tel.events_dropped(), 0);
    }

    #[test]
    fn enabled_records_and_tags_with_virtual_time() {
        let tel = Telemetry::enabled(2);
        tel.set_clock(3.5);
        tel.record_routed(1, NodeId::from_raw(7), 4);
        let events = tel.recent_events(8);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time, 3.5);
        assert_eq!(events[0].shard, 1);
        assert_eq!(events[0].stream, DISPATCH_STREAM);
        assert_eq!(events[0].event, RuntimeEvent::Routed { node: NodeId::from_raw(7), epoch: 4 });
    }

    #[test]
    fn sync_mirrors_external_totals() {
        let tel = Telemetry::enabled(1);
        let inner = tel.inner().unwrap();
        inner.sync(
            42,
            SwapStats { publishes: 7, drains_spin: 2, drains_yield: 1, drains_sleep: 0 },
            Some((AdmissionStats { submitted: 10, accepted: 8, deferred: 1, rejected: 1 }, 0.75)),
        );
        let snap = inner.snapshot();
        assert_eq!(snap.counter(names::DISPATCHES), Some(42));
        assert_eq!(snap.counter(names::TABLE_PUBLISHES), Some(7));
        assert_eq!(snap.counter(names::SWAP_DRAIN_SPIN), Some(2));
        assert_eq!(snap.counter(names::ADMISSION_ACCEPTED), Some(8));
        assert_eq!(snap.gauge(names::OFFERED_UTILIZATION), Some(0.75));
    }

    #[test]
    fn event_display_is_readable() {
        let e = RuntimeEvent::HealthChanged {
            node: NodeId::from_raw(3),
            from: Health::Up,
            to: Health::Suspect,
        };
        assert_eq!(e.to_string(), "health node-3 up -> suspect");
        assert_eq!(
            RuntimeEvent::EpochPublished { epoch: 9 }.to_string(),
            "published table epoch 9"
        );
    }
}
