//! The runtime's control-plane port: everything an external control
//! plane (the `gtlb-net` HTTP listener, or any other transport) needs
//! to drive node lifecycle from *real messages* instead of the trace
//! driver.
//!
//! The runtime's detector, estimator bank, and registry all speak
//! **virtual time** — the trace driver owns that clock and stamps every
//! observation with it. An external node agent has no virtual clock; it
//! has wall time. [`ClockAdapter`] bridges the two: it pins an origin at
//! attach time and maps every subsequent wall-clock instant to seconds
//! since that origin, producing a monotone `f64` timeline with the same
//! shape the detector already consumes. The two timelines never mix *per
//! node*: a node is either driven by the trace driver (virtual stamps)
//! or by the control plane (wall stamps), and the detector keeps one
//! independent track per node, so cross-node timeline skew is
//! irrelevant.
//!
//! Determinism: [`ControlPlaneHooks`] owns **no RNG stream** and draws
//! nothing. Every method either reads runtime state or forwards an
//! observation through APIs the deterministic path already exposes
//! (`observe_success`, `record_service`, …). Attaching hooks to a
//! runtime and leaving them idle is therefore invisible to every
//! determinism fingerprint — CI's `control-plane-smoke` job diffs them.

use std::sync::Arc;
use std::time::Instant;

use crate::detector::HealthTransition;
use crate::error::RuntimeError;
use crate::registry::{Health, Node, NodeId};
use crate::Runtime;

/// Maps wall-clock instants onto the `f64` seconds timeline the
/// detector and estimators consume: `now()` is seconds since the
/// adapter's origin (attach time), monotone and starting near zero —
/// exactly the shape of the trace driver's virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct ClockAdapter {
    origin: Instant,
}

impl ClockAdapter {
    /// An adapter whose timeline starts now.
    #[must_use]
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }

    /// Seconds elapsed since the adapter's origin.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

impl Default for ClockAdapter {
    fn default() -> Self {
        Self::new()
    }
}

/// One row of the control plane's node table: registry + detector +
/// estimator state for a single node, snapshotted at query time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStatus {
    /// The node's id.
    pub id: NodeId,
    /// Declared capacity `μ` (jobs/second).
    pub nominal_rate: f64,
    /// Measured capacity `μ̂`, once the estimator is warm.
    pub estimated_rate: Option<f64>,
    /// Current health.
    pub health: Health,
    /// The detector's suspicion level φ at the hooks' current time.
    pub phi: f64,
    /// The Suspect threshold in force for this node (self-tuned when
    /// the detector runs in self-tuning mode, configured otherwise) —
    /// with `phi`, how close the node is to demotion.
    pub effective_suspect_phi: f64,
    /// The Down threshold in force for this node.
    pub effective_down_phi: f64,
}

/// The control-plane port of a [`Runtime`]: a shareable handle bundling
/// the wall→virtual [`ClockAdapter`] with the lifecycle, observation,
/// and scrape methods an external control plane drives. Obtained from
/// [`Runtime::attach_control_plane`]; cloning shares the runtime and
/// the clock origin.
#[derive(Clone)]
pub struct ControlPlaneHooks {
    runtime: Arc<Runtime>,
    clock: ClockAdapter,
}

impl std::fmt::Debug for ControlPlaneHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlaneHooks")
            .field("clock", &self.clock)
            .field("telemetry_enabled", &self.telemetry_enabled())
            .finish_non_exhaustive()
    }
}

impl ControlPlaneHooks {
    pub(crate) fn new(runtime: Arc<Runtime>) -> Self {
        Self { runtime, clock: ClockAdapter::new() }
    }

    /// The current time on the hooks' timeline (seconds since attach).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// The underlying runtime.
    #[must_use]
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    // ---- lifecycle -----------------------------------------------------

    /// Registers a node with declared capacity `rate`; it joins the
    /// routing table at the next resolve.
    ///
    /// # Errors
    /// [`RuntimeError::Core`] for a nonpositive or non-finite rate.
    pub fn register_node(&self, rate: f64) -> Result<NodeId, RuntimeError> {
        self.runtime.register_node(rate)
    }

    /// Updates a node's declared capacity (a control-plane
    /// `metrics-update` can carry a revised self-reported rate).
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] / [`RuntimeError::Core`] as
    /// [`Runtime::set_node_rate`].
    pub fn set_node_rate(&self, id: NodeId, rate: f64) -> Result<(), RuntimeError> {
        self.runtime.set_node_rate(id, rate)
    }

    /// Starts draining a node (finishes queued work, receives no new
    /// jobs). Returns the previous health.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn drain(&self, id: NodeId) -> Result<Health, RuntimeError> {
        self.runtime.drain_node(id)
    }

    /// Deregisters a node entirely.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids.
    pub fn deregister(&self, id: NodeId) -> Result<(), RuntimeError> {
        self.runtime.deregister_node(id)
    }

    // ---- observations ---------------------------------------------------

    /// Feeds one received heartbeat into the accrual detector, stamped
    /// with the hooks' clock — the external twin of the trace driver's
    /// heartbeat path. Returns the health transition it drove, if any.
    ///
    /// # Errors
    /// As [`Runtime::observe_success`].
    pub fn heartbeat(&self, id: NodeId) -> Result<Option<HealthTransition>, RuntimeError> {
        self.runtime.observe_success(id, self.now())
    }

    /// Feeds one *missed* heartbeat (deadline passed with no message)
    /// into the accrual detector. Returns the demotion it drove, if
    /// any — repeated misses walk a node Up→Suspect→Down through the
    /// same machinery the trace driver exercises.
    ///
    /// # Errors
    /// As [`Runtime::observe_failure`].
    pub fn heartbeat_miss(&self, id: NodeId) -> Result<Option<HealthTransition>, RuntimeError> {
        self.runtime.observe_failure(id, self.now())
    }

    /// Feeds one observed service completion (seconds) into the
    /// estimator bank — the external `metrics-update` path.
    pub fn record_service(&self, id: NodeId, seconds: f64) {
        self.runtime.record_service(id, seconds);
    }

    // ---- state & scrape -------------------------------------------------

    /// A node's current health, if registered.
    #[must_use]
    pub fn node_health(&self, id: NodeId) -> Option<Health> {
        self.runtime.node_health(id)
    }

    /// The detector's suspicion level φ for `id` at the hooks' current
    /// time (zero for unobserved nodes).
    #[must_use]
    pub fn suspicion(&self, id: NodeId) -> f64 {
        self.runtime.suspicion(id, self.now())
    }

    /// Status rows for every registered node, in registration order.
    #[must_use]
    pub fn nodes(&self) -> Vec<NodeStatus> {
        let now = self.now();
        let rows: Vec<(NodeId, f64, Health)> = {
            let nodes = self.runtime.node_ids();
            nodes
                .into_iter()
                .filter_map(|id| {
                    let rate = self.runtime.node_rate(id)?;
                    let health = self.runtime.node_health(id)?;
                    Some((id, rate, health))
                })
                .collect()
        };
        rows.into_iter()
            .map(|(id, nominal_rate, health)| {
                let (effective_suspect_phi, effective_down_phi) =
                    self.runtime.effective_thresholds(id);
                NodeStatus {
                    id,
                    nominal_rate,
                    estimated_rate: self.runtime.estimated_service_rate(id),
                    health,
                    phi: self.runtime.suspicion(id, now),
                    effective_suspect_phi,
                    effective_down_phi,
                }
            })
            .collect()
    }

    /// The solver mode currently in effect.
    #[must_use]
    pub fn solver_mode(&self) -> crate::SolverMode {
        self.runtime.solver_mode()
    }

    /// Stats of the most recent best-reply solve (`None` until one
    /// ran) — surfaced on the `/nodes` endpoint.
    #[must_use]
    pub fn last_convergence(&self) -> Option<crate::ConvergenceStats> {
        self.runtime.last_convergence()
    }

    /// Whether the runtime records telemetry.
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.runtime.telemetry().is_enabled()
    }

    /// The telemetry snapshot rendered as Prometheus text exposition
    /// (`None` when telemetry is disabled). Byte-identical to
    /// [`TelemetryHandle::prometheus`](crate::TelemetryHandle::prometheus)
    /// at the same instant — the `/metrics` endpoint serves exactly
    /// this.
    #[must_use]
    pub fn prometheus(&self) -> Option<String> {
        self.runtime.telemetry_snapshot().map(|s| s.to_prometheus())
    }

    /// The telemetry snapshot rendered as JSON (`None` when telemetry
    /// is disabled).
    #[must_use]
    pub fn telemetry_json(&self) -> Option<String> {
        self.runtime.telemetry_snapshot().map(|s| s.to_json())
    }

    /// Whether the runtime records per-job traces.
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.runtime.tracer().is_enabled()
    }

    /// Every trace currently held in the flight recorder, in start-time
    /// order (empty when tracing is disabled) — the `/traces` endpoint
    /// serves exactly this.
    #[must_use]
    pub fn traces(&self) -> Vec<crate::Trace> {
        self.runtime.tracer().traces()
    }

    /// One recorded trace looked up by id across every recorder lane.
    #[must_use]
    pub fn trace(&self, id: crate::TraceId) -> Option<crate::Trace> {
        self.runtime.tracer().trace(id)
    }

    /// The flight recorder's contents rendered as Chrome `trace_event`
    /// JSON (`None` when tracing is disabled) — the `/traces.chrome`
    /// endpoint serves exactly this.
    #[must_use]
    pub fn traces_chrome(&self) -> Option<String> {
        self.tracing_enabled().then(|| crate::to_chrome_json(&self.runtime.tracer().traces()))
    }

    /// Flight-recorder accounting as `(recorded, dropped)` whole-trace
    /// counts, both zero when tracing is disabled.
    #[must_use]
    pub fn trace_counters(&self) -> (u64, u64) {
        (self.runtime.tracer().recorded(), self.runtime.tracer().dropped())
    }
}

impl Runtime {
    /// Attaches a control plane to this runtime: returns the
    /// [`ControlPlaneHooks`] port an external transport (e.g. the
    /// `gtlb-net` HTTP listener) drives. The hooks' clock origin is
    /// pinned at attach time; multiple attachments get independent
    /// origins, which is fine — the detector tracks are per node, and a
    /// node should be driven by exactly one control plane.
    #[must_use]
    pub fn attach_control_plane(self: &Arc<Self>) -> ControlPlaneHooks {
        ControlPlaneHooks::new(Arc::clone(self))
    }

    /// Updates a node's declared capacity `μ` (e.g. a control-plane
    /// metrics update carrying a revised self-reported rate), then
    /// best-effort republishes the live table with the node's routing
    /// weight scaled by `new/old` — the k = 1 incremental publish path
    /// ([`Runtime::reweight_node`]), so a rate change takes effect in
    /// routing immediately instead of waiting out the resolve interval.
    /// The next resolve still recomputes the proper allocation, and the
    /// measured estimate still wins once warm; the reweight is skipped
    /// (not an error) when the node has no routing mass yet or the
    /// scaled table would be unroutable.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unregistered ids,
    /// [`RuntimeError::Core`] for a nonpositive or non-finite rate.
    pub fn set_node_rate(&self, id: NodeId, rate: f64) -> Result<(), RuntimeError> {
        let old = {
            let mut state = self.state();
            let old = state.registry.node(id).map(Node::nominal_rate);
            state.registry.set_nominal_rate(id, rate)?;
            // set_nominal_rate validated `id`, so `old` is present.
            old.unwrap_or(rate)
        };
        if old > 0.0 && old.is_finite() {
            // Best-effort: a factor-1 change still republishes (cheap —
            // incremental alias repair), and a failure here must not
            // fail the registry update that already happened.
            let _ = self.reweight_node(id, rate / old);
        }
        Ok(())
    }

    /// Ids, declared rates, and health of all registered nodes, in
    /// registration order (one locked pass, unlike per-field queries).
    #[must_use]
    pub fn node_table(&self) -> Vec<(NodeId, f64, Health)> {
        self.state()
            .registry
            .nodes()
            .iter()
            .map(|n: &Node| (n.id(), n.nominal_rate(), n.health()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemeKind;

    fn arc_runtime() -> Arc<Runtime> {
        Arc::new(
            Runtime::builder().seed(11).scheme(SchemeKind::Coop).nominal_arrival_rate(0.5).build(),
        )
    }

    #[test]
    fn clock_adapter_is_monotone_from_zero() {
        let clock = ClockAdapter::new();
        let a = clock.now();
        let b = clock.now();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn hooks_register_heartbeat_and_report() {
        let rt = arc_runtime();
        let hooks = rt.attach_control_plane();
        let id = hooks.register_node(2.0).unwrap();
        assert_eq!(hooks.node_health(id), Some(Health::Up));
        assert_eq!(hooks.heartbeat(id).unwrap(), None, "healthy heartbeat, no transition");
        let rows = hooks.nodes();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, id);
        assert_eq!(rows[0].nominal_rate, 2.0);
        assert_eq!(rows[0].health, Health::Up);
        assert!(rows[0].estimated_rate.is_none(), "cold estimator");
        assert_eq!(
            (rows[0].effective_suspect_phi, rows[0].effective_down_phi),
            (2.0, 6.0),
            "fixed-config thresholds surface as configured"
        );
    }

    #[test]
    fn repeated_misses_drive_down_through_the_detector() {
        let rt = arc_runtime();
        let hooks = rt.attach_control_plane();
        let id = hooks.register_node(1.0).unwrap();
        hooks.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        // Two beats stay under the detector's min_samples, so the
        // wall-clock silence term is withheld and suspicion is exactly
        // the deterministic boost term (2 per consecutive miss;
        // machine-speed beats would otherwise make the interval EWMA —
        // and thus this test — timing-dependent).
        for _ in 0..2 {
            hooks.heartbeat(id).unwrap();
        }
        // Default detector: boost 2 per miss, suspect at 2, down at 6.
        let tr = hooks.heartbeat_miss(id).unwrap().expect("Up→Suspect");
        assert_eq!((tr.from, tr.to), (Health::Up, Health::Suspect));
        hooks.heartbeat_miss(id).unwrap();
        let tr = hooks.heartbeat_miss(id).unwrap().expect("Suspect→Down");
        assert_eq!(tr.to, Health::Down);
        assert_eq!(hooks.node_health(id), Some(Health::Down));
        assert!(hooks.suspicion(id) > 0.0);
    }

    #[test]
    fn service_observations_feed_the_estimator() {
        let rt =
            Arc::new(Runtime::builder().nominal_arrival_rate(0.4).min_observations(8, 4).build());
        let hooks = rt.attach_control_plane();
        let id = hooks.register_node(1.0).unwrap();
        for _ in 0..8 {
            hooks.record_service(id, 0.25);
        }
        assert_eq!(hooks.nodes()[0].estimated_rate, Some(4.0));
    }

    #[test]
    fn set_node_rate_validates_and_applies() {
        let rt = arc_runtime();
        let id = rt.register_node(1.0).unwrap();
        rt.set_node_rate(id, 3.0).unwrap();
        assert_eq!(rt.node_rate(id), Some(3.0));
        assert!(rt.set_node_rate(id, 0.0).is_err());
        assert!(rt.set_node_rate(NodeId::from_raw(99), 1.0).is_err());
        assert_eq!(rt.node_table(), vec![(id, 3.0, Health::Up)]);
    }

    #[test]
    fn scrapes_match_telemetry_handle() {
        let rt =
            Arc::new(Runtime::builder().seed(2).nominal_arrival_rate(0.5).telemetry(true).build());
        let hooks = rt.attach_control_plane();
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();
        for _ in 0..64 {
            rt.dispatch().unwrap();
        }
        assert!(hooks.telemetry_enabled());
        let handle = rt.telemetry_handle();
        assert_eq!(hooks.prometheus(), handle.prometheus());
        assert_eq!(hooks.telemetry_json(), handle.json());
        // Swap stats surface in the scrape, not only via swap_stats().
        let text = hooks.prometheus().unwrap();
        assert!(text.contains("gtlb_table_publishes_total 1"), "swap stats missing:\n{text}");
        assert!(text.contains("gtlb_swap_drain_spin_total"), "drain tiers missing:\n{text}");
    }

    #[test]
    fn disabled_telemetry_scrapes_nothing() {
        let rt = arc_runtime();
        let hooks = rt.attach_control_plane();
        assert!(!hooks.telemetry_enabled());
        assert_eq!(hooks.prometheus(), None);
        assert_eq!(hooks.telemetry_json(), None);
    }
}
