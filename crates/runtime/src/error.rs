//! Runtime-layer errors.

use gtlb_core::error::CoreError;

use crate::registry::NodeId;

/// Errors produced by the online dispatch runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// An allocation-layer error (overload, bad input, non-convergence)
    /// surfaced while building a cluster or solving for a routing table.
    Core(CoreError),
    /// The referenced node is not (or no longer) registered.
    UnknownNode(NodeId),
    /// No node is currently accepting work, so there is nothing to route
    /// to and nothing to solve over.
    NoServingNodes,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Core(e) => write!(f, "allocation error: {e}"),
            Self::UnknownNode(id) => write!(f, "unknown node {id}"),
            Self::NoServingNodes => write!(f, "no serving nodes"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: RuntimeError = CoreError::BadInput("x".into()).into();
        assert!(e.to_string().contains("allocation error"));
        assert!(RuntimeError::NoServingNodes.to_string().contains("no serving nodes"));
        assert!(RuntimeError::UnknownNode(NodeId::from_raw(3)).to_string().contains("node-3"));
    }
}
