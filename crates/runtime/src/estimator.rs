//! Online rate estimation: the measured `Φ` and `μ_i` that drive
//! re-solves.
//!
//! The offline schemes take the arrival rate and processing rates as
//! givens; a live system has to measure them. Two estimators feed the
//! re-solver:
//!
//! * an EWMA over job inter-arrival times estimates the aggregate
//!   arrival rate `Φ̂` — exponentially forgetting, so it tracks load
//!   drift at a tunable time constant;
//! * a sliding window over each node's recent service times estimates
//!   its processing rate `μ̂_i = k / Σ_{last k} s` (the MLE for an
//!   exponential server over the window) — windowed, so a degraded node
//!   is re-rated within a bounded number of jobs.
//!
//! Both report `None` until they have enough observations; the runtime
//! then falls back to configured nominal values, so a cold system is
//! solvable from the first dispatch.

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::registry::NodeId;

/// EWMA estimator of an event rate from event timestamps.
#[derive(Debug, Clone)]
pub struct EwmaRate {
    alpha: f64,
    last_event: Option<f64>,
    mean_gap: Option<f64>,
    count: u64,
}

impl EwmaRate {
    /// Estimator with smoothing factor `alpha ∈ (0, 1]` (weight of the
    /// newest inter-arrival gap).
    ///
    /// # Panics
    /// If `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must lie in (0, 1]");
        Self { alpha, last_event: None, mean_gap: None, count: 0 }
    }

    /// Records an event at time `t` (nondecreasing; a backwards step is
    /// treated as a restart of the clock).
    pub fn observe(&mut self, t: f64) {
        self.count += 1;
        if let Some(last) = self.last_event {
            let gap = t - last;
            if gap >= 0.0 {
                self.mean_gap = Some(match self.mean_gap {
                    Some(m) => m + self.alpha * (gap - m),
                    None => gap,
                });
            }
        }
        self.last_event = Some(t);
    }

    /// Estimated event rate (1 / smoothed gap); `None` before the second
    /// event or while the smoothed gap is zero.
    #[must_use]
    pub fn rate(&self) -> Option<f64> {
        match self.mean_gap {
            Some(gap) if gap > 0.0 => Some(1.0 / gap),
            _ => None,
        }
    }

    /// Events observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Sliding-window estimator of a service rate from service durations.
#[derive(Debug, Clone)]
pub struct WindowRate {
    window: VecDeque<f64>,
    capacity: usize,
}

impl WindowRate {
    /// Estimator remembering the last `capacity` service times.
    ///
    /// # Panics
    /// If `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "service window must be positive");
        Self { window: VecDeque::with_capacity(capacity), capacity }
    }

    /// Records one service duration (nonpositive durations are ignored —
    /// they carry no rate information).
    pub fn observe(&mut self, service_time: f64) {
        if !(service_time.is_finite() && service_time > 0.0) {
            return;
        }
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(service_time);
    }

    /// Estimated service rate over the window, `k / Σs`; `None` while
    /// empty.
    #[must_use]
    pub fn rate(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let sum: f64 = self.window.iter().sum();
        (sum > 0.0).then(|| self.window.len() as f64 / sum)
    }

    /// Observations currently in the window.
    #[must_use]
    pub fn count(&self) -> usize {
        self.window.len()
    }
}

/// The runtime's estimators: one arrival EWMA plus one service window per
/// node, with warm-up thresholds below which estimates are withheld.
#[derive(Debug, Clone)]
pub struct EstimatorBank {
    arrivals: EwmaRate,
    services: HashMap<NodeId, WindowRate>,
    service_window: usize,
    min_arrival_obs: u64,
    min_service_obs: usize,
}

impl EstimatorBank {
    /// Builds the bank.
    ///
    /// * `alpha` — arrival EWMA smoothing factor;
    /// * `service_window` — service times remembered per node;
    /// * `min_arrival_obs` / `min_service_obs` — observations required
    ///   before an estimate is reported (cold-start guard).
    #[must_use]
    pub fn new(
        alpha: f64,
        service_window: usize,
        min_arrival_obs: u64,
        min_service_obs: usize,
    ) -> Self {
        Self {
            arrivals: EwmaRate::new(alpha),
            services: HashMap::new(),
            service_window,
            min_arrival_obs,
            min_service_obs,
        }
    }

    /// Records a job arrival at (virtual or wall-clock) time `t`.
    pub fn observe_arrival(&mut self, t: f64) {
        self.arrivals.observe(t);
    }

    /// Records a completed service of `duration` seconds at `node`.
    pub fn observe_service(&mut self, node: NodeId, duration: f64) {
        self.services
            .entry(node)
            .or_insert_with(|| WindowRate::new(self.service_window))
            .observe(duration);
    }

    /// Drops a node's service history (deregistration).
    pub fn forget(&mut self, node: NodeId) {
        self.services.remove(&node);
    }

    /// Estimated aggregate arrival rate `Φ̂`, once warm.
    #[must_use]
    pub fn arrival_rate(&self) -> Option<f64> {
        (self.arrivals.count() >= self.min_arrival_obs).then(|| self.arrivals.rate()).flatten()
    }

    /// Arrivals observed so far.
    #[must_use]
    pub fn arrival_count(&self) -> u64 {
        self.arrivals.count()
    }

    /// Estimated service rate `μ̂_i` of one node, once warm.
    #[must_use]
    pub fn service_rate(&self, node: NodeId) -> Option<f64> {
        let w = self.services.get(&node)?;
        (w.count() >= self.min_service_obs).then(|| w.rate()).flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_tracks_a_steady_stream() {
        let mut e = EwmaRate::new(0.1);
        assert!(e.rate().is_none());
        for k in 0..100 {
            e.observe(k as f64 * 0.5); // 2 events per second
        }
        let rate = e.rate().unwrap();
        assert!((rate - 2.0).abs() < 1e-9, "rate {rate}");
        assert_eq!(e.count(), 100);
    }

    #[test]
    fn ewma_adapts_to_a_rate_change() {
        let mut e = EwmaRate::new(0.2);
        let mut t = 0.0;
        for _ in 0..50 {
            t += 1.0; // rate 1
            e.observe(t);
        }
        for _ in 0..100 {
            t += 0.1; // rate 10
            e.observe(t);
        }
        let rate = e.rate().unwrap();
        assert!(rate > 8.0, "EWMA should have largely forgotten the old rate, got {rate}");
    }

    #[test]
    fn window_rate_is_mle_over_window() {
        let mut w = WindowRate::new(4);
        assert!(w.rate().is_none());
        for s in [1.0, 1.0, 1.0, 1.0] {
            w.observe(s);
        }
        assert!((w.rate().unwrap() - 1.0).abs() < 1e-12);
        // Four faster services push the old ones out of the window.
        for s in [0.25, 0.25, 0.25, 0.25] {
            w.observe(s);
        }
        assert!((w.rate().unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(w.count(), 4);
    }

    #[test]
    fn window_ignores_degenerate_durations() {
        let mut w = WindowRate::new(8);
        w.observe(0.0);
        w.observe(-1.0);
        w.observe(f64::NAN);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn bank_withholds_cold_estimates() {
        let mut bank = EstimatorBank::new(0.1, 16, 5, 3);
        let node = NodeId::from_raw(0);
        for k in 0..4 {
            bank.observe_arrival(k as f64);
            bank.observe_service(node, 0.5);
        }
        assert!(bank.arrival_rate().is_none(), "4 arrivals < min 5");
        assert!(bank.service_rate(node).is_some(), "4 services >= min 3");
        bank.observe_arrival(4.0);
        assert!((bank.arrival_rate().unwrap() - 1.0).abs() < 1e-9);
        bank.forget(node);
        assert!(bank.service_rate(node).is_none());
    }
}
