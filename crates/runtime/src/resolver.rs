//! The re-solver: turns a registry snapshot plus rate estimates into a
//! fresh allocation and routing table.
//!
//! Two paths publish tables:
//!
//! * the **solve path** ([`solve_table`]) runs a full game-theoretic
//!   allocation (COOP / NASH / PROP / OPTIM / WARDROP) over the serving
//!   nodes — periodic, driven by the background loop or called
//!   synchronously;
//! * the **failure path** ([`RoutingTable::without_node`]) renormalizes
//!   the live table immediately when a node goes down, so no job is
//!   routed into the failed node during the (comparatively slow) next
//!   full solve. "Renormalize, then re-solve."

use gtlb_core::allocation::Allocation;
use gtlb_core::error::CoreError;
use gtlb_core::model::Cluster;
use gtlb_core::noncoop::{nash, NashInit, NashOptions, UserSystem};
use gtlb_core::schemes::{Coop, Optim, Prop, SingleClassScheme, Wardrop};

use crate::error::RuntimeError;
use crate::registry::NodeId;
use crate::table::{RoutingTable, TableBuilder};

/// Which allocator the re-solver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// The paper's cooperative scheme (Nash Bargaining Solution).
    Coop,
    /// Overall-optimal baseline.
    Optim,
    /// Rate-proportional baseline.
    Prop,
    /// Individually-optimal (Wardrop equilibrium) baseline.
    Wardrop,
    /// The Chapter-4 noncooperative scheme: the Nash equilibrium among
    /// `users` equal-demand dispatchers, aggregated into one routing
    /// distribution.
    Nash {
        /// Number of symmetric users sharing the stream (`m ≥ 1`).
        users: usize,
    },
}

impl SchemeKind {
    /// Display name matching the paper's scheme labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Coop => "COOP",
            Self::Optim => "OPTIM",
            Self::Prop => "PROP",
            Self::Wardrop => "WARDROP",
            Self::Nash { .. } => "NASH",
        }
    }

    /// Computes the scheme's allocation of total rate `phi` over
    /// `cluster`.
    ///
    /// # Errors
    /// [`CoreError::Overloaded`] when `phi` meets capacity,
    /// [`CoreError::BadInput`] on malformed parameters (including
    /// `Nash { users: 0 }`), [`CoreError::NoConvergence`] from the
    /// iterative solvers.
    pub fn allocate(&self, cluster: &Cluster, phi: f64) -> Result<Allocation, CoreError> {
        match *self {
            Self::Coop => Coop.allocate(cluster, phi),
            Self::Optim => Optim.allocate(cluster, phi),
            Self::Prop => Prop.allocate(cluster, phi),
            Self::Wardrop => Wardrop::default().allocate(cluster, phi),
            Self::Nash { users } => {
                if users == 0 {
                    return Err(CoreError::BadInput("NASH needs at least one user".into()));
                }
                cluster.check_arrival_rate(phi)?;
                if phi == 0.0 {
                    return Ok(Allocation::new(vec![0.0; cluster.n()]));
                }
                let system = UserSystem::new(cluster.clone(), vec![phi / users as f64; users])?;
                let outcome =
                    nash::solve(&system, &NashInit::Proportional, &NashOptions::default())?;
                Ok(outcome.profile.to_allocation(&system))
            }
        }
    }
}

/// The result of one successful solve: everything the caller needs to
/// publish, log, or validate against.
#[derive(Debug, Clone)]
pub struct ResolveOutcome {
    /// Epoch assigned to the published table.
    pub epoch: u64,
    /// Serving nodes the solve ran over, in table order.
    pub nodes: Vec<NodeId>,
    /// Processing rates used (measured where warm, nominal otherwise).
    pub rates: Vec<f64>,
    /// Total arrival rate used (estimated where warm, nominal otherwise).
    pub phi: f64,
    /// The allocation the scheme produced.
    pub allocation: Allocation,
    /// The scheme's own prediction of mean response time under this
    /// allocation (`NaN` when `phi = 0`) — the analytic reference the
    /// trace driver validates the closed loop against.
    pub predicted_mean_response: f64,
}

/// Runs `scheme` over `(ids, cluster)` at arrival rate `phi` and builds
/// the table for `epoch`.
///
/// An estimated `phi` can transiently exceed capacity (EWMA overshoot
/// during a burst); `clamp_phi` is applied first so such spikes degrade
/// to a near-critical allocation instead of failing the solve. Pass the
/// raw value through when `phi` is nominal and overload should be loud.
///
/// # Errors
/// [`RuntimeError::Core`] from the allocator, [`RuntimeError::NoServingNodes`]
/// when the allocation cannot be turned into a table.
pub fn solve_table(
    scheme: SchemeKind,
    epoch: u64,
    ids: Vec<NodeId>,
    cluster: &Cluster,
    phi: f64,
    builder: &mut TableBuilder,
) -> Result<(RoutingTable, ResolveOutcome), RuntimeError> {
    let allocation = scheme.allocate(cluster, phi)?;
    let table = builder.from_allocation(epoch, ids.clone(), &allocation, cluster.rates())?;
    let predicted_mean_response = allocation.mean_response_time(cluster);
    let outcome = ResolveOutcome {
        epoch,
        nodes: ids,
        rates: cluster.rates().to_vec(),
        phi,
        allocation,
        predicted_mean_response,
    };
    Ok((table, outcome))
}

/// Caps an *estimated* arrival rate just below the cluster capacity so a
/// transient estimator overshoot still yields a solvable (if heavily
/// loaded) system.
#[must_use]
pub fn clamp_phi(phi: f64, cluster: &Cluster) -> f64 {
    let cap = cluster.total_rate();
    phi.min(0.995 * cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::from_groups(&[(2, 0.13), (3, 0.065), (5, 0.026), (6, 0.013)]).unwrap()
    }

    #[test]
    fn scheme_names() {
        assert_eq!(SchemeKind::Coop.name(), "COOP");
        assert_eq!(SchemeKind::Nash { users: 3 }.name(), "NASH");
    }

    #[test]
    fn all_schemes_produce_feasible_allocations() {
        let cl = cluster();
        let phi = cl.arrival_rate_for_utilization(0.6);
        for scheme in [
            SchemeKind::Coop,
            SchemeKind::Optim,
            SchemeKind::Prop,
            SchemeKind::Wardrop,
            SchemeKind::Nash { users: 4 },
        ] {
            let alloc = scheme.allocate(&cl, phi).unwrap();
            alloc.verify(&cl, phi, 1e-6).unwrap_or_else(|e| {
                panic!("{} produced infeasible allocation: {e}", scheme.name())
            });
        }
    }

    #[test]
    fn nash_with_one_user_matches_optim() {
        let cl = cluster();
        let phi = cl.arrival_rate_for_utilization(0.5);
        let nash1 = SchemeKind::Nash { users: 1 }.allocate(&cl, phi).unwrap();
        let optim = SchemeKind::Optim.allocate(&cl, phi).unwrap();
        for (a, b) in nash1.loads().iter().zip(optim.loads()) {
            assert!((a - b).abs() < 1e-6, "single-user NASH should equal OPTIM");
        }
    }

    #[test]
    fn nash_rejects_zero_users() {
        assert!(SchemeKind::Nash { users: 0 }.allocate(&cluster(), 0.1).is_err());
    }

    #[test]
    fn solve_table_routes_proportionally_to_loads() {
        let cl = cluster();
        let phi = cl.arrival_rate_for_utilization(0.6);
        let ids: Vec<NodeId> = (0..cl.n() as u64).map(NodeId::from_raw).collect();
        let (table, outcome) =
            solve_table(SchemeKind::Coop, 3, ids, &cl, phi, &mut TableBuilder::new()).unwrap();
        assert_eq!(table.epoch(), 3);
        assert_eq!(outcome.epoch, 3);
        for (p, l) in table.probs().iter().zip(outcome.allocation.loads()) {
            assert!((p - l / phi).abs() < 1e-12);
        }
        assert!(outcome.predicted_mean_response.is_finite());
        assert!(outcome.predicted_mean_response > 0.0);
    }

    #[test]
    fn idle_solve_still_routable() {
        let cl = cluster();
        let ids: Vec<NodeId> = (0..cl.n() as u64).map(NodeId::from_raw).collect();
        let (table, outcome) =
            solve_table(SchemeKind::Coop, 1, ids, &cl, 0.0, &mut TableBuilder::new()).unwrap();
        // Φ = 0: loads are all zero; routing falls back to capacity.
        assert!(outcome.predicted_mean_response.is_nan());
        let total = cl.total_rate();
        for (p, mu) in table.probs().iter().zip(cl.rates()) {
            assert!((p - mu / total).abs() < 1e-12);
        }
    }

    #[test]
    fn clamp_phi_caps_estimates() {
        let cl = cluster();
        let cap = cl.total_rate();
        assert_eq!(clamp_phi(0.1, &cl), 0.1);
        assert!(clamp_phi(2.0 * cap, &cl) < cap);
    }
}
