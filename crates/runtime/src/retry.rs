//! Retry/timeout/backoff policy for the dispatch path.
//!
//! A job whose attempt drops (crashed or flaky node) is not lost: the
//! driver charges the attempt a timeout, waits a backoff, and
//! redispatches through the *current* routing snapshot — which the
//! failure path has typically already renormalized away from the sick
//! node. The policy here is pure arithmetic: it owns the budget and the
//! backoff curve, not the RNG or the clock.
//!
//! Backoff is **decorrelated jitter** (`min(cap, base + u·(3·prev −
//! base))`): each wait is drawn uniformly between `base` and three times
//! the previous wait, which empirically spreads retry storms better than
//! either full jitter or plain exponential doubling. The uniform draw
//! `u` comes from the driver's dedicated retry stream
//! ([`RETRY_STREAM`]), so enabling retries never perturbs the arrival,
//! service, routing, or admission sequences.

use gtlb_core::error::CoreError;

use crate::error::RuntimeError;

/// RNG stream id of the retry-backoff family (seed: the driver's trace
/// seed). Disjoint from arrival `0x0500`, per-node service `0x0600+i`,
/// admission `0x0700`, and fault `0x0800+i`.
pub const RETRY_STREAM: u64 = 0x0900;

/// Tuning of the retry/timeout policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Total attempts per job, first try included (≥ 1). `1` means no
    /// retries: a dropped attempt immediately exhausts the budget.
    pub max_attempts: u32,
    /// Virtual seconds charged to an attempt before it is declared
    /// dropped (the per-attempt deadline).
    pub timeout: f64,
    /// Lower bound of every backoff wait.
    pub base_backoff: f64,
    /// Upper bound (cap) of every backoff wait.
    pub max_backoff: f64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self { max_attempts: 4, timeout: 1.0, base_backoff: 0.05, max_backoff: 2.0 }
    }
}

/// A validated retry policy (see [`RetryConfig`] for the semantics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    cfg: RetryConfig,
}

impl RetryPolicy {
    /// Validates and wraps a configuration.
    ///
    /// # Errors
    /// [`RuntimeError::Core`] when the budget is zero, a duration is
    /// nonpositive or non-finite, or the cap is below the base.
    pub fn new(cfg: RetryConfig) -> Result<Self, RuntimeError> {
        if cfg.max_attempts == 0 {
            return Err(CoreError::BadInput(
                "retry: max_attempts must be at least 1 (the first try)".into(),
            )
            .into());
        }
        for (name, v) in [
            ("timeout", cfg.timeout),
            ("base_backoff", cfg.base_backoff),
            ("max_backoff", cfg.max_backoff),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::BadInput(format!(
                    "retry: {name} must be positive and finite, got {v}"
                ))
                .into());
            }
        }
        if cfg.max_backoff < cfg.base_backoff {
            return Err(CoreError::BadInput(format!(
                "retry: max_backoff {} is below base_backoff {}",
                cfg.max_backoff, cfg.base_backoff
            ))
            .into());
        }
        Ok(Self { cfg })
    }

    /// The validated configuration.
    #[must_use]
    pub fn config(&self) -> &RetryConfig {
        &self.cfg
    }

    /// Total attempts per job (first try included).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.cfg.max_attempts
    }

    /// The per-attempt deadline.
    #[must_use]
    pub fn timeout(&self) -> f64 {
        self.cfg.timeout
    }

    /// The next backoff wait after a wait of `prev` (`0.0` before the
    /// first retry), given a uniform draw `u ∈ [0, 1)`: decorrelated
    /// jitter, always within `[base_backoff, max_backoff]`.
    #[must_use]
    pub fn backoff(&self, prev: f64, u: f64) -> f64 {
        let base = self.cfg.base_backoff;
        let span = (3.0 * prev).max(base) - base;
        (base + u * span).min(self.cfg.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(
            RetryPolicy::new(RetryConfig { max_attempts: 0, ..RetryConfig::default() }).is_err()
        );
        assert!(RetryPolicy::new(RetryConfig { timeout: 0.0, ..RetryConfig::default() }).is_err());
        assert!(RetryPolicy::new(RetryConfig { base_backoff: f64::NAN, ..RetryConfig::default() })
            .is_err());
        assert!(RetryPolicy::new(RetryConfig {
            base_backoff: 1.0,
            max_backoff: 0.5,
            ..RetryConfig::default()
        })
        .is_err());
        assert!(RetryPolicy::new(RetryConfig::default()).is_ok());
    }

    #[test]
    fn backoff_stays_within_bounds_and_grows() {
        let p = RetryPolicy::new(RetryConfig {
            max_attempts: 8,
            timeout: 1.0,
            base_backoff: 0.1,
            max_backoff: 1.0,
        })
        .unwrap();
        // First wait ignores prev = 0: collapses to the base.
        assert!((p.backoff(0.0, 0.99) - 0.1).abs() < 1e-12);
        // Subsequent waits are uniform on [base, 3·prev], capped.
        let w = p.backoff(0.1, 0.5);
        assert!((0.1..=0.3).contains(&w), "got {w}");
        assert_eq!(p.backoff(10.0, 0.9), 1.0, "cap binds");
        // u = 0 pins to the base; u → 1 approaches 3·prev.
        assert!((p.backoff(0.2, 0.0) - 0.1).abs() < 1e-12);
        assert!((p.backoff(0.2, 1.0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn accessors_expose_the_config() {
        let p = RetryPolicy::new(RetryConfig::default()).unwrap();
        assert_eq!(p.max_attempts(), 4);
        assert!((p.timeout() - 1.0).abs() < 1e-12);
        assert_eq!(p.config().max_attempts, 4);
    }
}
