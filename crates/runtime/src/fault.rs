//! Deterministic fault injection: scripted node failures the closed loop
//! can be driven through, reproducibly.
//!
//! A [`FaultPlan`] is a seeded script of per-node fault events on the
//! driver's virtual clock — crash, crash-and-recover, slow-node (degraded
//! `μ`), flaky (intermittent drops), asymmetric link partitions, and gray
//! failures — plus rack/zone *failure domains* whose events strike a
//! whole node group atomically. A [`FaultInjector`] evaluates the plan:
//! "is this node crashed at time `t`?", "by what factor is its service
//! rate degraded?", "does this particular dispatch (or heartbeat) drop?".
//!
//! ## The adversarial network model
//!
//! The original fault kinds assume a perfect star network: a node is
//! either reachable by everyone or by no one. Three kinds break that
//! symmetry:
//!
//! * **Asymmetric partitions** ([`FaultKind::Partition`]) cut exactly
//!   one direction of the link. With
//!   [`PartitionDirection::DropDispatch`] the node keeps heartbeating —
//!   the detector sees it Up — while every job dispatched to it drops;
//!   with [`PartitionDirection::DropHeartbeats`] dispatch works but the
//!   detector watches the node go silent. Detector and retry path are
//!   forced to disagree.
//! * **Failure domains**: [`FaultPlan::assign_domain`] labels nodes with
//!   a rack/zone, and `domain_*` events apply one fault to every member
//!   atomically — the correlated-failure regime where independence
//!   assumptions in the detector break.
//! * **Gray failures** ([`FaultKind::Gray`]) inflate service times and
//!   drop a fraction of attempts while staying *below* the crash
//!   threshold — the degraded-but-Up state a fixed-threshold detector
//!   tuned for clean crashes misses.
//!
//! ## Determinism contract
//!
//! The crash/recover/slow/partition/domain schedule is pure data — a
//! function of the plan alone, identical for every shard count and
//! thread count. Randomness is confined to two disjoint stream
//! families of the plan seed:
//!
//! * flaky drop draws on [`FAULT_STREAM`]` + node id` (`0x0800`), the
//!   legacy family — its draw sequence is byte-identical to the
//!   pre-adversarial injector for any plan that schedules no gray
//!   faults;
//! * gray loss draws on [`ADVERSARIAL_STREAM`]` + node id` (`0x0B00`),
//!   a new family no other subsystem touches, so scheduling gray faults
//!   never perturbs dispatch (`0x0400`), admission (`0x0700`), the
//!   driver's arrival/service streams (`0x0500`/`0x0600`), retry
//!   backoff (`0x0900`), dynamics tie-breaks (`0x0A00`), or the legacy
//!   flaky draws.
//!
//! Consequences: enabling a fault plan never perturbs the routing or
//! admission decision sequence of the jobs that don't hit a fault —
//! toggling faults off reproduces the fault-free trace bit for bit; and
//! per-node drop draws are consumed in attempt order, which the
//! single-threaded trace driver fixes, so a chaos trace is a pure
//! function of `(seed, plan, shard count)`.

use std::collections::HashMap;
use std::fmt;

use gtlb_desim::rng::Xoshiro256PlusPlus;

use crate::registry::NodeId;

/// Base RNG stream id of the fault family: node `i`'s flaky-drop draws
/// come from stream `FAULT_STREAM + i` of the plan seed. Disjoint from
/// every routing/admission/driver/retry family, so chaos is
/// routing-invariant.
pub const FAULT_STREAM: u64 = 0x0800;

/// Base RNG stream id of the adversarial family: node `i`'s gray-loss
/// draws come from stream `ADVERSARIAL_STREAM + i` of the plan seed.
/// Disjoint from the legacy [`FAULT_STREAM`] family, so scheduling gray
/// faults never shifts a flaky draw sequence (and vice versa), and
/// legacy plans reproduce their traces bit for bit.
pub const ADVERSARIAL_STREAM: u64 = 0x0B00;

/// Which direction of a node's link an asymmetric partition cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionDirection {
    /// Dispatch to the node drops; heartbeats still get through. The
    /// detector keeps seeing the node Up while every job sent to it
    /// fails — the retry path, not the detector, must notice.
    DropDispatch,
    /// Heartbeats from the node drop; dispatch still works. The
    /// detector watches a perfectly healthy node go silent — a false
    /// demotion the probation path must recover from after heal.
    DropHeartbeats,
}

impl PartitionDirection {
    /// Stable label for logs and fingerprints.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::DropDispatch => "drop-dispatch",
            Self::DropHeartbeats => "drop-heartbeats",
        }
    }
}

impl fmt::Display for PartitionDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One kind of injected fault. Durations are in the driver's virtual
/// seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node stops serving at the event time and never recovers:
    /// every attempt (job or heartbeat) against it drops.
    Crash,
    /// As [`FaultKind::Crash`], but the node comes back `down_for`
    /// seconds later.
    CrashRecover {
        /// How long the node stays dead.
        down_for: f64,
    },
    /// The node keeps serving but its service rate is scaled by `factor`
    /// (`0 < factor ≤ 1`) for `lasts` seconds — a brownout/overheat
    /// model the `μ̂` estimator should catch.
    Slow {
        /// Multiplier applied to the node's true service rate.
        factor: f64,
        /// Window length.
        lasts: f64,
    },
    /// Each attempt against the node independently drops with
    /// probability `drop_probability` for `lasts` seconds — the
    /// intermittent, hysteresis-exercising failure mode.
    Flaky {
        /// Per-attempt drop probability in `(0, 1]`.
        drop_probability: f64,
        /// Window length.
        lasts: f64,
    },
    /// Asymmetric link partition: for `lasts` seconds exactly one
    /// direction of the node's link is cut (see [`PartitionDirection`]).
    /// Pure data — partitions consume no randomness.
    Partition {
        /// Which direction drops.
        direction: PartitionDirection,
        /// Window length.
        lasts: f64,
    },
    /// Gray failure: for `lasts` seconds the node's service times are
    /// inflated by `inflation` (≥ 1) and each attempt independently
    /// drops with probability `loss_probability` (< 1, below the crash
    /// threshold). Loss draws come from the node's
    /// [`ADVERSARIAL_STREAM`] stream.
    Gray {
        /// Service-time multiplier (≥ 1); the service *rate* is scaled
        /// by its reciprocal.
        inflation: f64,
        /// Per-attempt loss probability in `[0, 1)`.
        loss_probability: f64,
        /// Window length.
        lasts: f64,
    },
}

/// One scheduled fault: `kind` strikes `node` at virtual time `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The victim.
    pub node: NodeId,
    /// Virtual time the fault begins.
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// One scheduled domain fault: `kind` strikes every node assigned to
/// `domain` at virtual time `at`, atomically.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainEvent {
    /// The rack/zone label (see [`FaultPlan::assign_domain`]).
    pub domain: String,
    /// Virtual time the fault begins.
    pub at: f64,
    /// What happens to every member.
    pub kind: FaultKind,
}

/// A fault-schedule milestone the injector surfaces for telemetry: the
/// moments partitions open and heal, and the moments domain faults
/// strike. Pure data, derived from the plan at injector construction.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMarker {
    /// Virtual time of the milestone.
    pub at: f64,
    /// What happened.
    pub kind: FaultMarkerKind,
}

/// What a [`FaultMarker`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultMarkerKind {
    /// An asymmetric partition opened on `node`.
    PartitionOpened {
        /// The partitioned node.
        node: NodeId,
        /// Which direction dropped.
        direction: PartitionDirection,
    },
    /// The partition on `node` healed.
    PartitionHealed {
        /// The healed node.
        node: NodeId,
        /// Which direction had dropped.
        direction: PartitionDirection,
    },
    /// A domain-scoped fault struck every member of `domain`.
    DomainFault {
        /// The rack/zone label.
        domain: String,
    },
}

/// A seeded, scripted schedule of fault events. Build with the chaining
/// constructors; hand to [`FaultInjector::new`] (or
/// `TraceDriver::with_faults`) to enact.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
    domains: Vec<(NodeId, String)>,
    domain_events: Vec<DomainEvent>,
}

fn assert_time(at: f64, what: &str) {
    assert!(at.is_finite() && at >= 0.0, "fault plan: {what} must be finite and nonnegative");
}

fn assert_window(lasts: f64, what: &str) {
    assert!(lasts.is_finite() && lasts > 0.0, "fault plan: {what} window must be positive");
}

fn checked_slow(factor: f64, lasts: f64) -> FaultKind {
    assert_window(lasts, "slow");
    assert!(
        factor.is_finite() && factor > 0.0 && factor <= 1.0,
        "fault plan: slow factor must lie in (0, 1], got {factor}"
    );
    FaultKind::Slow { factor, lasts }
}

fn checked_flaky(drop_probability: f64, lasts: f64) -> FaultKind {
    assert_window(lasts, "flaky");
    assert!(
        drop_probability.is_finite() && drop_probability > 0.0 && drop_probability <= 1.0,
        "fault plan: drop probability must lie in (0, 1], got {drop_probability}"
    );
    FaultKind::Flaky { drop_probability, lasts }
}

fn checked_partition(direction: PartitionDirection, lasts: f64) -> FaultKind {
    assert_window(lasts, "partition");
    FaultKind::Partition { direction, lasts }
}

fn checked_gray(inflation: f64, loss_probability: f64, lasts: f64) -> FaultKind {
    assert_window(lasts, "gray");
    assert!(
        inflation.is_finite() && inflation >= 1.0,
        "fault plan: gray inflation must be ≥ 1, got {inflation}"
    );
    assert!(
        loss_probability.is_finite() && (0.0..1.0).contains(&loss_probability),
        "fault plan: gray loss probability must lie in [0, 1), got {loss_probability}"
    );
    assert!(
        inflation > 1.0 || loss_probability > 0.0,
        "fault plan: a gray fault must inflate service times or lose attempts"
    );
    FaultKind::Gray { inflation, loss_probability, lasts }
}

fn checked_crash_recover(down_for: f64) -> FaultKind {
    assert!(down_for.is_finite() && down_for > 0.0, "fault plan: down_for must be positive");
    FaultKind::CrashRecover { down_for }
}

fn fnv_fold(h: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn fnv_fold_bytes(h: &mut u64, bytes: &[u8]) {
    fnv_fold(h, bytes.len() as u64);
    for &byte in bytes {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn fold_kind(h: &mut u64, kind: &FaultKind) {
    match *kind {
        FaultKind::Crash => fnv_fold(h, 1),
        FaultKind::CrashRecover { down_for } => {
            fnv_fold(h, 2);
            fnv_fold(h, down_for.to_bits());
        }
        FaultKind::Slow { factor, lasts } => {
            fnv_fold(h, 3);
            fnv_fold(h, factor.to_bits());
            fnv_fold(h, lasts.to_bits());
        }
        FaultKind::Flaky { drop_probability, lasts } => {
            fnv_fold(h, 4);
            fnv_fold(h, drop_probability.to_bits());
            fnv_fold(h, lasts.to_bits());
        }
        FaultKind::Partition { direction, lasts } => {
            fnv_fold(h, 5);
            fnv_fold(
                h,
                match direction {
                    PartitionDirection::DropDispatch => 0,
                    PartitionDirection::DropHeartbeats => 1,
                },
            );
            fnv_fold(h, lasts.to_bits());
        }
        FaultKind::Gray { inflation, loss_probability, lasts } => {
            fnv_fold(h, 6);
            fnv_fold(h, inflation.to_bits());
            fnv_fold(h, loss_probability.to_bits());
            fnv_fold(h, lasts.to_bits());
        }
    }
}

impl FaultPlan {
    /// An empty plan whose flaky and gray draws (if any are scheduled
    /// later) come from the [`FAULT_STREAM`] / [`ADVERSARIAL_STREAM`]
    /// families of `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed, events: Vec::new(), domains: Vec::new(), domain_events: Vec::new() }
    }

    /// Schedules a permanent crash of `node` at time `at`.
    ///
    /// # Panics
    /// If `at` is negative or non-finite.
    #[must_use]
    pub fn crash(mut self, node: NodeId, at: f64) -> Self {
        assert_time(at, "crash time");
        self.events.push(FaultEvent { node, at, kind: FaultKind::Crash });
        self
    }

    /// Schedules a crash of `node` at `at` that heals `down_for` seconds
    /// later.
    ///
    /// # Panics
    /// If `at` or `down_for` is invalid (`down_for` must be positive).
    #[must_use]
    pub fn crash_recover(mut self, node: NodeId, at: f64, down_for: f64) -> Self {
        assert_time(at, "crash time");
        let kind = checked_crash_recover(down_for);
        self.events.push(FaultEvent { node, at, kind });
        self
    }

    /// Schedules a slow-node window: `node`'s service rate is multiplied
    /// by `factor` on `[at, at + lasts)`.
    ///
    /// # Panics
    /// If `factor` is outside `(0, 1]` or a time is invalid.
    #[must_use]
    pub fn slow(mut self, node: NodeId, at: f64, lasts: f64, factor: f64) -> Self {
        assert_time(at, "slow-window start");
        let kind = checked_slow(factor, lasts);
        self.events.push(FaultEvent { node, at, kind });
        self
    }

    /// Schedules a flaky window: attempts against `node` drop with
    /// probability `drop_probability` on `[at, at + lasts)`.
    ///
    /// # Panics
    /// If `drop_probability` is outside `(0, 1]` or a time is invalid.
    #[must_use]
    pub fn flaky(mut self, node: NodeId, at: f64, lasts: f64, drop_probability: f64) -> Self {
        assert_time(at, "flaky-window start");
        let kind = checked_flaky(drop_probability, lasts);
        self.events.push(FaultEvent { node, at, kind });
        self
    }

    /// Schedules an asymmetric partition of `node` on `[at, at + lasts)`:
    /// exactly one link direction drops (see [`PartitionDirection`]).
    ///
    /// # Panics
    /// If a time is invalid.
    #[must_use]
    pub fn partition(
        mut self,
        node: NodeId,
        at: f64,
        lasts: f64,
        direction: PartitionDirection,
    ) -> Self {
        assert_time(at, "partition start");
        let kind = checked_partition(direction, lasts);
        self.events.push(FaultEvent { node, at, kind });
        self
    }

    /// Schedules a gray failure of `node` on `[at, at + lasts)`: service
    /// times inflate by `inflation` (≥ 1) and attempts drop with
    /// probability `loss_probability` (< 1).
    ///
    /// # Panics
    /// If `inflation < 1`, `loss_probability` is outside `[0, 1)`, both
    /// are no-ops, or a time is invalid.
    #[must_use]
    pub fn gray(
        mut self,
        node: NodeId,
        at: f64,
        lasts: f64,
        inflation: f64,
        loss_probability: f64,
    ) -> Self {
        assert_time(at, "gray-window start");
        let kind = checked_gray(inflation, loss_probability, lasts);
        self.events.push(FaultEvent { node, at, kind });
        self
    }

    /// Assigns `node` to failure domain `label` (a rack/zone). A node
    /// belongs to at most one domain; re-assigning replaces the label.
    /// Domain membership is pure data and may be declared before or
    /// after the domain's events — evaluation is lazy.
    #[must_use]
    pub fn assign_domain(mut self, node: NodeId, label: &str) -> Self {
        if let Some(slot) = self.domains.iter_mut().find(|(n, _)| *n == node) {
            slot.1 = label.to_string();
        } else {
            self.domains.push((node, label.to_string()));
        }
        self
    }

    /// Schedules a permanent crash of every member of `label` at `at`.
    ///
    /// # Panics
    /// If `at` is invalid.
    #[must_use]
    pub fn domain_crash(mut self, label: &str, at: f64) -> Self {
        assert_time(at, "domain crash time");
        self.domain_events.push(DomainEvent {
            domain: label.to_string(),
            at,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Schedules a crash of every member of `label` at `at`, healing
    /// `down_for` seconds later — the whole rack power-cycles together.
    ///
    /// # Panics
    /// If `at` or `down_for` is invalid.
    #[must_use]
    pub fn domain_crash_recover(mut self, label: &str, at: f64, down_for: f64) -> Self {
        assert_time(at, "domain crash time");
        let kind = checked_crash_recover(down_for);
        self.domain_events.push(DomainEvent { domain: label.to_string(), at, kind });
        self
    }

    /// Schedules a slow window on every member of `label`.
    ///
    /// # Panics
    /// If `factor` is outside `(0, 1]` or a time is invalid.
    #[must_use]
    pub fn domain_slow(mut self, label: &str, at: f64, lasts: f64, factor: f64) -> Self {
        assert_time(at, "domain slow-window start");
        let kind = checked_slow(factor, lasts);
        self.domain_events.push(DomainEvent { domain: label.to_string(), at, kind });
        self
    }

    /// Schedules an asymmetric partition of every member of `label` —
    /// the top-of-rack switch loses one direction for the whole group.
    ///
    /// # Panics
    /// If a time is invalid.
    #[must_use]
    pub fn domain_partition(
        mut self,
        label: &str,
        at: f64,
        lasts: f64,
        direction: PartitionDirection,
    ) -> Self {
        assert_time(at, "domain partition start");
        let kind = checked_partition(direction, lasts);
        self.domain_events.push(DomainEvent { domain: label.to_string(), at, kind });
        self
    }

    /// Schedules a gray failure of every member of `label`.
    ///
    /// # Panics
    /// As [`FaultPlan::gray`].
    #[must_use]
    pub fn domain_gray(
        mut self,
        label: &str,
        at: f64,
        lasts: f64,
        inflation: f64,
        loss_probability: f64,
    ) -> Self {
        assert_time(at, "domain gray-window start");
        let kind = checked_gray(inflation, loss_probability, lasts);
        self.domain_events.push(DomainEvent { domain: label.to_string(), at, kind });
        self
    }

    /// The plan seed (flaky draws use its [`FAULT_STREAM`] family, gray
    /// loss draws its [`ADVERSARIAL_STREAM`] family).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled per-node events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The scheduled domain events, in insertion order.
    #[must_use]
    pub fn domain_events(&self) -> &[DomainEvent] {
        &self.domain_events
    }

    /// The domain assignments, in insertion order.
    #[must_use]
    pub fn domains(&self) -> &[(NodeId, String)] {
        &self.domains
    }

    /// The failure domain `node` belongs to, if any.
    #[must_use]
    pub fn domain_of(&self, node: NodeId) -> Option<&str> {
        self.domains.iter().find(|(n, _)| *n == node).map(|(_, label)| label.as_str())
    }

    /// Whether the plan schedules nothing (domain assignments without
    /// events are inert and don't count).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.domain_events.is_empty()
    }

    /// Every `(at, kind)` pair that applies to `node`: its own events
    /// plus its domain's events, lazily joined.
    fn events_on(&self, node: NodeId) -> impl Iterator<Item = (f64, FaultKind)> + '_ {
        let domain = self.domain_of(node);
        self.events.iter().filter(move |e| e.node == node).map(|e| (e.at, e.kind)).chain(
            self.domain_events
                .iter()
                .filter(move |e| domain == Some(e.domain.as_str()))
                .map(|e| (e.at, e.kind)),
        )
    }

    /// FNV-1a fingerprint of the schedule (seed + every event, domain
    /// assignment, and domain event, payloads included — two plans
    /// differing only in a partition direction or a domain label hash
    /// differently). Because the schedule is pure data, this fingerprint
    /// is invariant across shard counts and thread counts — the chaos CI
    /// job diffs it alongside the decision-stream fingerprints.
    #[must_use]
    pub fn schedule_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        fnv_fold(&mut h, self.seed);
        for e in &self.events {
            fnv_fold(&mut h, e.node.raw());
            fnv_fold(&mut h, e.at.to_bits());
            fold_kind(&mut h, &e.kind);
        }
        for (node, label) in &self.domains {
            fnv_fold(&mut h, 7);
            fnv_fold(&mut h, node.raw());
            fnv_fold_bytes(&mut h, label.as_bytes());
        }
        for e in &self.domain_events {
            fnv_fold(&mut h, 8);
            fnv_fold_bytes(&mut h, e.domain.as_bytes());
            fnv_fold(&mut h, e.at.to_bits());
            fold_kind(&mut h, &e.kind);
        }
        h
    }

    /// The telemetry milestones the plan implies, sorted by time:
    /// partition open/heal edges (per node, domain partitions expanded
    /// per member) and domain-fault strikes.
    fn markers(&self) -> Vec<FaultMarker> {
        let mut out = Vec::new();
        fn push_partition(
            out: &mut Vec<FaultMarker>,
            node: NodeId,
            at: f64,
            lasts: f64,
            d: PartitionDirection,
        ) {
            out.push(FaultMarker {
                at,
                kind: FaultMarkerKind::PartitionOpened { node, direction: d },
            });
            out.push(FaultMarker {
                at: at + lasts,
                kind: FaultMarkerKind::PartitionHealed { node, direction: d },
            });
        }
        for e in &self.events {
            if let FaultKind::Partition { direction, lasts } = e.kind {
                push_partition(&mut out, e.node, e.at, lasts, direction);
            }
        }
        for e in &self.domain_events {
            out.push(FaultMarker {
                at: e.at,
                kind: FaultMarkerKind::DomainFault { domain: e.domain.clone() },
            });
            if let FaultKind::Partition { direction, lasts } = e.kind {
                for (node, label) in &self.domains {
                    if *label == e.domain {
                        push_partition(&mut out, *node, e.at, lasts, direction);
                    }
                }
            }
        }
        out.sort_by(|a, b| a.at.total_cmp(&b.at));
        out
    }
}

/// Which step of the dispatch-drop decision procedure dropped an
/// attempt (see [`FaultInjector::dispatch_drop_cause`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The node is crashed (own event or its domain's).
    Crash,
    /// An active dispatch-cutting asymmetric partition.
    Partition,
    /// A flaky-window draw on the node's [`FAULT_STREAM`] stream.
    Flaky,
    /// A gray-loss draw on the node's [`ADVERSARIAL_STREAM`] stream.
    Gray,
}

/// Evaluates a [`FaultPlan`] against the virtual clock. Stateless for
/// crash/slow/partition queries; flaky and gray drop draws advance the
/// per-node fault streams (hence `&mut` on
/// [`FaultInjector::dispatch_drops`] / [`FaultInjector::heartbeat_drops`]).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    flaky_rng: HashMap<u64, Xoshiro256PlusPlus>,
    gray_rng: HashMap<u64, Xoshiro256PlusPlus>,
    markers: Vec<FaultMarker>,
    marker_cursor: usize,
}

impl FaultInjector {
    /// An injector enacting `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let markers = plan.markers();
        Self {
            plan,
            flaky_rng: HashMap::new(),
            gray_rng: HashMap::new(),
            markers,
            marker_cursor: 0,
        }
    }

    /// The plan being enacted.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `node` is dead at time `t` (inside a crash, or a
    /// crash-recover window that has not healed yet), its own events and
    /// its domain's counted alike.
    #[must_use]
    pub fn crashed(&self, node: NodeId, t: f64) -> bool {
        self.plan.events_on(node).any(|(at, kind)| match kind {
            FaultKind::Crash => t >= at,
            FaultKind::CrashRecover { down_for } => t >= at && t < at + down_for,
            _ => false,
        })
    }

    /// Whether an asymmetric partition cutting `direction` is active on
    /// `node` at `t`. Pure data — consumes no randomness.
    #[must_use]
    pub fn partitioned(&self, node: NodeId, t: f64, direction: PartitionDirection) -> bool {
        self.plan.events_on(node).any(|(at, kind)| match kind {
            FaultKind::Partition { direction: d, lasts } => {
                d == direction && t >= at && t < at + lasts
            }
            _ => false,
        })
    }

    /// The service-rate multiplier active on `node` at `t`: the product
    /// of all overlapping slow windows and gray inflations (each gray
    /// window contributes `1 / inflation`), `1.0` when none.
    #[must_use]
    pub fn service_factor(&self, node: NodeId, t: f64) -> f64 {
        self.plan
            .events_on(node)
            .filter_map(|(at, kind)| match kind {
                FaultKind::Slow { factor, lasts } if t >= at && t < at + lasts => Some(factor),
                FaultKind::Gray { inflation, lasts, .. } if t >= at && t < at + lasts => {
                    Some(1.0 / inflation)
                }
                _ => None,
            })
            .product()
    }

    /// The per-attempt drop probability active on `node` at `t` from the
    /// legacy kinds (the maximum over overlapping flaky windows; `1.0`
    /// while crashed). Gray loss is reported separately by
    /// [`FaultInjector::gray_loss_probability`] because it draws from a
    /// different stream.
    #[must_use]
    pub fn drop_probability(&self, node: NodeId, t: f64) -> f64 {
        if self.crashed(node, t) {
            return 1.0;
        }
        self.plan
            .events_on(node)
            .filter_map(|(at, kind)| match kind {
                FaultKind::Flaky { drop_probability, lasts } if t >= at && t < at + lasts => {
                    Some(drop_probability)
                }
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// The per-attempt gray loss probability active on `node` at `t`
    /// (the maximum over overlapping gray windows).
    #[must_use]
    pub fn gray_loss_probability(&self, node: NodeId, t: f64) -> f64 {
        self.plan
            .events_on(node)
            .filter_map(|(at, kind)| match kind {
                FaultKind::Gray { loss_probability, lasts, .. } if t >= at && t < at + lasts => {
                    Some(loss_probability)
                }
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Decides one dispatch attempt against `node` at time `t`: `true`
    /// means the attempt drops. Deterministic draw-order contract, per
    /// attempt: (1) crashed nodes drop everything without consuming
    /// randomness; (2) an active dispatch-cutting partition drops
    /// everything, also without randomness; (3) an active flaky window
    /// draws from the node's [`FAULT_STREAM`] stream — byte-identical to
    /// the legacy injector; (4) an active gray window draws from the
    /// node's [`ADVERSARIAL_STREAM`] stream. A step that fires
    /// short-circuits the later ones.
    pub fn dispatch_drops(&mut self, node: NodeId, t: f64) -> bool {
        self.dispatch_drop_cause(node, t).is_some()
    }

    /// As [`FaultInjector::dispatch_drops`], but reports *which* step
    /// dropped the attempt. The draw-order contract is identical —
    /// this is the same decision procedure, not a second one — so the
    /// tracing layer can label attempt outcomes without perturbing a
    /// single RNG draw.
    pub fn dispatch_drop_cause(&mut self, node: NodeId, t: f64) -> Option<DropCause> {
        if self.crashed(node, t) {
            return Some(DropCause::Crash);
        }
        if self.partitioned(node, t, PartitionDirection::DropDispatch) {
            return Some(DropCause::Partition);
        }
        if self.flaky_draw(node, t) {
            return Some(DropCause::Flaky);
        }
        self.gray_draw(node, t).then_some(DropCause::Gray)
    }

    /// Decides one heartbeat attempt against `node` at time `t`: same
    /// contract as [`FaultInjector::dispatch_drops`] — sharing the flaky
    /// and gray streams with dispatch, in attempt order — except step
    /// (2) tests for a *heartbeat*-cutting partition.
    pub fn heartbeat_drops(&mut self, node: NodeId, t: f64) -> bool {
        if self.crashed(node, t) {
            return true;
        }
        if self.partitioned(node, t, PartitionDirection::DropHeartbeats) {
            return true;
        }
        if self.flaky_draw(node, t) {
            return true;
        }
        self.gray_draw(node, t)
    }

    /// Legacy alias for [`FaultInjector::dispatch_drops`] — the
    /// symmetric-network entry point from before partitions existed.
    pub fn attempt_drops(&mut self, node: NodeId, t: f64) -> bool {
        self.dispatch_drops(node, t)
    }

    /// Drains the fault markers scheduled at or before `upto`, in time
    /// order, each at most once. O(1) when no adversarial faults are
    /// scheduled.
    pub fn drain_markers(&mut self, upto: f64) -> Vec<FaultMarker> {
        let start = self.marker_cursor;
        let mut end = start;
        while end < self.markers.len() && self.markers[end].at <= upto {
            end += 1;
        }
        self.marker_cursor = end;
        self.markers[start..end].to_vec()
    }

    fn flaky_draw(&mut self, node: NodeId, t: f64) -> bool {
        let p = self.drop_probability(node, t);
        if p <= 0.0 {
            return false;
        }
        let seed = self.plan.seed;
        let rng = self
            .flaky_rng
            .entry(node.raw())
            .or_insert_with(|| Xoshiro256PlusPlus::stream(seed, FAULT_STREAM + node.raw()));
        rng.next_open01() < p
    }

    fn gray_draw(&mut self, node: NodeId, t: f64) -> bool {
        let p = self.gray_loss_probability(node, t);
        if p <= 0.0 {
            return false;
        }
        let seed = self.plan.seed;
        let rng = self
            .gray_rng
            .entry(node.raw())
            .or_insert_with(|| Xoshiro256PlusPlus::stream(seed, ADVERSARIAL_STREAM + node.raw()));
        rng.next_open01() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(raw: u64) -> NodeId {
        NodeId::from_raw(raw)
    }

    #[test]
    fn crash_is_permanent_and_crash_recover_heals() {
        let plan = FaultPlan::new(1).crash(node(0), 10.0).crash_recover(node(1), 5.0, 3.0);
        let inj = FaultInjector::new(plan);
        assert!(!inj.crashed(node(0), 9.9));
        assert!(inj.crashed(node(0), 10.0));
        assert!(inj.crashed(node(0), 1e9));
        assert!(!inj.crashed(node(1), 4.9));
        assert!(inj.crashed(node(1), 5.0));
        assert!(inj.crashed(node(1), 7.9));
        assert!(!inj.crashed(node(1), 8.0), "recovered");
        assert!(!inj.crashed(node(2), 50.0), "bystander untouched");
    }

    #[test]
    fn slow_windows_scale_and_compose() {
        let plan = FaultPlan::new(2).slow(node(0), 2.0, 4.0, 0.5).slow(node(0), 4.0, 4.0, 0.5);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.service_factor(node(0), 1.0), 1.0);
        assert_eq!(inj.service_factor(node(0), 3.0), 0.5);
        assert_eq!(inj.service_factor(node(0), 5.0), 0.25, "overlap multiplies");
        assert_eq!(inj.service_factor(node(0), 7.0), 0.5);
        assert_eq!(inj.service_factor(node(0), 8.0), 1.0);
        assert_eq!(inj.service_factor(node(1), 3.0), 1.0);
    }

    #[test]
    fn flaky_drops_at_the_configured_rate() {
        let plan = FaultPlan::new(3).flaky(node(0), 0.0, 1e6, 0.3);
        let mut inj = FaultInjector::new(plan);
        let drops = (0..10_000).filter(|_| inj.attempt_drops(node(0), 1.0)).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate} vs p 0.3");
        // Outside the window (or for other nodes) nothing drops and no
        // randomness is consumed.
        assert!(!inj.attempt_drops(node(1), 1.0));
    }

    #[test]
    fn flaky_draw_sequence_is_reproducible_and_per_node() {
        let run = |probe_other: bool| {
            let plan =
                FaultPlan::new(9).flaky(node(0), 0.0, 100.0, 0.5).flaky(node(1), 0.0, 100.0, 0.5);
            let mut inj = FaultInjector::new(plan);
            (0..64)
                .map(|k| {
                    if probe_other {
                        // Interleave draws on node 1; node 0's sequence
                        // must not shift.
                        let _ = inj.attempt_drops(node(1), k as f64);
                    }
                    inj.attempt_drops(node(0), k as f64)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true), "per-node streams are independent");
    }

    #[test]
    fn crashed_attempts_drop_without_consuming_draws() {
        let plan = FaultPlan::new(4).crash(node(0), 0.0).flaky(node(0), 0.0, 100.0, 0.5);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..16 {
            assert!(inj.attempt_drops(node(0), 1.0));
        }
        assert!(inj.flaky_rng.is_empty(), "crash short-circuits the flaky draw");
        assert_eq!(inj.drop_probability(node(0), 1.0), 1.0);
    }

    #[test]
    fn partition_cuts_exactly_one_direction() {
        let plan = FaultPlan::new(5)
            .partition(node(0), 10.0, 5.0, PartitionDirection::DropDispatch)
            .partition(node(1), 10.0, 5.0, PartitionDirection::DropHeartbeats);
        let mut inj = FaultInjector::new(plan);
        // Dispatch-cut: jobs drop, heartbeats pass.
        assert!(inj.dispatch_drops(node(0), 12.0));
        assert!(!inj.heartbeat_drops(node(0), 12.0));
        // Heartbeat-cut: the mirror.
        assert!(!inj.dispatch_drops(node(1), 12.0));
        assert!(inj.heartbeat_drops(node(1), 12.0));
        // Outside the window nothing drops; partitions are pure data.
        assert!(!inj.dispatch_drops(node(0), 9.9));
        assert!(!inj.dispatch_drops(node(0), 15.0));
        assert!(inj.flaky_rng.is_empty() && inj.gray_rng.is_empty(), "no draws consumed");
        assert!(!inj.crashed(node(0), 12.0), "partitioned is not crashed");
    }

    #[test]
    fn gray_inflates_service_and_loses_attempts() {
        let plan = FaultPlan::new(6).gray(node(0), 0.0, 1e6, 2.0, 0.25);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.service_factor(node(0), 1.0), 0.5, "inflation 2 halves the rate");
        assert_eq!(inj.gray_loss_probability(node(0), 1.0), 0.25);
        assert_eq!(inj.drop_probability(node(0), 1.0), 0.0, "gray is not flaky");
        let drops = (0..10_000).filter(|_| inj.dispatch_drops(node(0), 1.0)).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "loss rate {rate} vs p 0.25");
        assert!(inj.flaky_rng.is_empty(), "gray draws never touch the legacy stream");
    }

    #[test]
    fn gray_draws_leave_the_flaky_stream_untouched() {
        let run = |with_gray: bool| {
            let mut plan = FaultPlan::new(11).flaky(node(0), 0.0, 100.0, 0.5);
            if with_gray {
                plan = plan.gray(node(1), 0.0, 100.0, 1.5, 0.5);
            }
            let mut inj = FaultInjector::new(plan);
            (0..64)
                .map(|k| {
                    if with_gray {
                        let _ = inj.dispatch_drops(node(1), k as f64);
                    }
                    inj.dispatch_drops(node(0), k as f64)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true), "0x0B00 draws never perturb 0x0800");
    }

    #[test]
    fn domain_events_strike_members_atomically() {
        let plan = FaultPlan::new(12)
            .assign_domain(node(0), "rack-a")
            .domain_crash_recover("rack-a", 10.0, 5.0)
            // Assignment after the event must work: evaluation is lazy.
            .assign_domain(node(1), "rack-a")
            .assign_domain(node(2), "rack-b");
        let inj = FaultInjector::new(plan);
        assert!(inj.crashed(node(0), 12.0) && inj.crashed(node(1), 12.0), "whole rack down");
        assert!(!inj.crashed(node(2), 12.0), "other rack untouched");
        assert!(!inj.crashed(node(0), 15.0) && !inj.crashed(node(1), 15.0), "heals together");
        assert_eq!(inj.plan().domain_of(node(1)), Some("rack-a"));
        assert_eq!(inj.plan().domain_of(node(3)), None);
        assert!(!inj.plan().is_empty());
        assert!(FaultPlan::new(0).assign_domain(node(0), "rack-a").is_empty(), "inert labels");
    }

    #[test]
    fn domain_partition_and_gray_cover_the_group() {
        let plan = FaultPlan::new(13)
            .assign_domain(node(0), "zone-1")
            .assign_domain(node(1), "zone-1")
            .domain_partition("zone-1", 5.0, 5.0, PartitionDirection::DropDispatch)
            .domain_gray("zone-1", 20.0, 5.0, 4.0, 0.0);
        let inj = FaultInjector::new(plan);
        assert!(inj.partitioned(node(0), 7.0, PartitionDirection::DropDispatch));
        assert!(inj.partitioned(node(1), 7.0, PartitionDirection::DropDispatch));
        assert!(!inj.partitioned(node(1), 7.0, PartitionDirection::DropHeartbeats));
        assert_eq!(inj.service_factor(node(0), 22.0), 0.25);
        assert_eq!(inj.service_factor(node(1), 22.0), 0.25);
    }

    #[test]
    fn markers_drain_in_time_order_once() {
        let plan = FaultPlan::new(14)
            .assign_domain(node(1), "rack-a")
            .partition(node(0), 10.0, 5.0, PartitionDirection::DropDispatch)
            .domain_crash("rack-a", 12.0);
        let mut inj = FaultInjector::new(plan);
        let early = inj.drain_markers(11.0);
        assert_eq!(early.len(), 1);
        assert!(matches!(
            early[0].kind,
            FaultMarkerKind::PartitionOpened { direction: PartitionDirection::DropDispatch, .. }
        ));
        let late = inj.drain_markers(100.0);
        assert_eq!(late.len(), 2, "domain strike then heal, each once");
        assert!(
            matches!(&late[0].kind, FaultMarkerKind::DomainFault { domain } if domain == "rack-a")
        );
        assert!(matches!(late[1].kind, FaultMarkerKind::PartitionHealed { .. }));
        assert!(inj.drain_markers(1e9).is_empty(), "cursor never rewinds");
    }

    #[test]
    fn schedule_fingerprint_is_stable_and_sensitive() {
        let a = FaultPlan::new(7).crash(node(0), 10.0).slow(node(1), 2.0, 3.0, 0.5);
        let b = FaultPlan::new(7).crash(node(0), 10.0).slow(node(1), 2.0, 3.0, 0.5);
        assert_eq!(a.schedule_fingerprint(), b.schedule_fingerprint());
        let c = FaultPlan::new(7).crash(node(0), 10.5).slow(node(1), 2.0, 3.0, 0.5);
        assert_ne!(a.schedule_fingerprint(), c.schedule_fingerprint());
        let d = FaultPlan::new(8).crash(node(0), 10.0).slow(node(1), 2.0, 3.0, 0.5);
        assert_ne!(a.schedule_fingerprint(), d.schedule_fingerprint());
        assert!(FaultPlan::new(0).is_empty());
        assert_eq!(a.events().len(), 2);
        assert_eq!(a.seed(), 7);
    }

    #[test]
    fn schedule_fingerprint_folds_adversarial_payloads() {
        let mk = |d: PartitionDirection| FaultPlan::new(7).partition(node(0), 10.0, 5.0, d);
        assert_ne!(
            mk(PartitionDirection::DropDispatch).schedule_fingerprint(),
            mk(PartitionDirection::DropHeartbeats).schedule_fingerprint(),
            "direction is folded"
        );
        let label = |l: &str| FaultPlan::new(7).assign_domain(node(0), l).domain_crash(l, 5.0);
        assert_ne!(
            label("rack-a").schedule_fingerprint(),
            label("rack-b").schedule_fingerprint(),
            "domain labels are folded"
        );
        let gray = |inflation: f64| FaultPlan::new(7).gray(node(0), 1.0, 2.0, inflation, 0.1);
        assert_ne!(gray(1.5).schedule_fingerprint(), gray(2.5).schedule_fingerprint());
        // Same node-level schedule, one expressed via a domain: must not
        // collide.
        let direct = FaultPlan::new(7).crash(node(0), 5.0);
        let via_domain = FaultPlan::new(7).assign_domain(node(0), "r").domain_crash("r", 5.0);
        assert_ne!(direct.schedule_fingerprint(), via_domain.schedule_fingerprint());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn flaky_rejects_bad_probability() {
        let _ = FaultPlan::new(0).flaky(node(0), 0.0, 1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "slow factor")]
    fn slow_rejects_bad_factor() {
        let _ = FaultPlan::new(0).slow(node(0), 0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "gray inflation")]
    fn gray_rejects_deflation() {
        let _ = FaultPlan::new(0).gray(node(0), 0.0, 1.0, 0.5, 0.1);
    }

    #[test]
    #[should_panic(expected = "inflate service times or lose attempts")]
    fn gray_rejects_the_noop() {
        let _ = FaultPlan::new(0).gray(node(0), 0.0, 1.0, 1.0, 0.0);
    }
}
