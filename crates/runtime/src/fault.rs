//! Deterministic fault injection: scripted node failures the closed loop
//! can be driven through, reproducibly.
//!
//! A [`FaultPlan`] is a seeded script of per-node fault events on the
//! driver's virtual clock — crash, crash-and-recover, slow-node (degraded
//! `μ`), and flaky (intermittent drops). A [`FaultInjector`] evaluates
//! the plan: "is this node crashed at time `t`?", "by what factor is its
//! service rate degraded?", "does this particular attempt drop?".
//!
//! ## Determinism contract
//!
//! The crash/recover/slow schedule is pure data — a function of the plan
//! alone, identical for every shard count and thread count. The only
//! randomness is the flaky drop draw, taken from the **fault stream
//! family** ([`FAULT_STREAM`]`+ node id`), disjoint from dispatch
//! (`0x0400`), admission (`0x0700`), the driver's arrival/service streams
//! (`0x0500`/`0x0600`), and retry backoff (`0x0900`). Consequences:
//!
//! * enabling a fault plan never perturbs the routing or admission
//!   decision sequence of the jobs that don't hit a fault — toggling
//!   faults off reproduces the fault-free trace bit for bit;
//! * per-node drop draws are consumed in attempt order, which the
//!   single-threaded trace driver fixes, so a chaos trace is a pure
//!   function of `(seed, plan, shard count)`.

use std::collections::HashMap;

use gtlb_desim::rng::Xoshiro256PlusPlus;

use crate::registry::NodeId;

/// Base RNG stream id of the fault family: node `i`'s flaky-drop draws
/// come from stream `FAULT_STREAM + i` of the plan seed. Disjoint from
/// every routing/admission/driver/retry family, so chaos is
/// routing-invariant.
pub const FAULT_STREAM: u64 = 0x0800;

/// One kind of injected fault. Durations are in the driver's virtual
/// seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node stops serving at the event time and never recovers:
    /// every attempt (job or heartbeat) against it drops.
    Crash,
    /// As [`FaultKind::Crash`], but the node comes back `down_for`
    /// seconds later.
    CrashRecover {
        /// How long the node stays dead.
        down_for: f64,
    },
    /// The node keeps serving but its service rate is scaled by `factor`
    /// (`0 < factor ≤ 1`) for `lasts` seconds — a brownout/overheat
    /// model the `μ̂` estimator should catch.
    Slow {
        /// Multiplier applied to the node's true service rate.
        factor: f64,
        /// Window length.
        lasts: f64,
    },
    /// Each attempt against the node independently drops with
    /// probability `drop_probability` for `lasts` seconds — the
    /// intermittent, hysteresis-exercising failure mode.
    Flaky {
        /// Per-attempt drop probability in `(0, 1]`.
        drop_probability: f64,
        /// Window length.
        lasts: f64,
    },
}

/// One scheduled fault: `kind` strikes `node` at virtual time `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The victim.
    pub node: NodeId,
    /// Virtual time the fault begins.
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, scripted schedule of fault events. Build with the chaining
/// constructors; hand to [`FaultInjector::new`] (or
/// `TraceDriver::with_faults`) to enact.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

fn assert_time(at: f64, what: &str) {
    assert!(at.is_finite() && at >= 0.0, "fault plan: {what} must be finite and nonnegative");
}

impl FaultPlan {
    /// An empty plan whose flaky draws (if any are scheduled later) come
    /// from the [`FAULT_STREAM`] family of `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed, events: Vec::new() }
    }

    /// Schedules a permanent crash of `node` at time `at`.
    ///
    /// # Panics
    /// If `at` is negative or non-finite.
    #[must_use]
    pub fn crash(mut self, node: NodeId, at: f64) -> Self {
        assert_time(at, "crash time");
        self.events.push(FaultEvent { node, at, kind: FaultKind::Crash });
        self
    }

    /// Schedules a crash of `node` at `at` that heals `down_for` seconds
    /// later.
    ///
    /// # Panics
    /// If `at` or `down_for` is invalid (`down_for` must be positive).
    #[must_use]
    pub fn crash_recover(mut self, node: NodeId, at: f64, down_for: f64) -> Self {
        assert_time(at, "crash time");
        assert!(down_for.is_finite() && down_for > 0.0, "fault plan: down_for must be positive");
        self.events.push(FaultEvent { node, at, kind: FaultKind::CrashRecover { down_for } });
        self
    }

    /// Schedules a slow-node window: `node`'s service rate is multiplied
    /// by `factor` on `[at, at + lasts)`.
    ///
    /// # Panics
    /// If `factor` is outside `(0, 1]` or a time is invalid.
    #[must_use]
    pub fn slow(mut self, node: NodeId, at: f64, lasts: f64, factor: f64) -> Self {
        assert_time(at, "slow-window start");
        assert!(lasts.is_finite() && lasts > 0.0, "fault plan: slow window must be positive");
        assert!(
            factor.is_finite() && factor > 0.0 && factor <= 1.0,
            "fault plan: slow factor must lie in (0, 1], got {factor}"
        );
        self.events.push(FaultEvent { node, at, kind: FaultKind::Slow { factor, lasts } });
        self
    }

    /// Schedules a flaky window: attempts against `node` drop with
    /// probability `drop_probability` on `[at, at + lasts)`.
    ///
    /// # Panics
    /// If `drop_probability` is outside `(0, 1]` or a time is invalid.
    #[must_use]
    pub fn flaky(mut self, node: NodeId, at: f64, lasts: f64, drop_probability: f64) -> Self {
        assert_time(at, "flaky-window start");
        assert!(lasts.is_finite() && lasts > 0.0, "fault plan: flaky window must be positive");
        assert!(
            drop_probability.is_finite() && drop_probability > 0.0 && drop_probability <= 1.0,
            "fault plan: drop probability must lie in (0, 1], got {drop_probability}"
        );
        self.events.push(FaultEvent {
            node,
            at,
            kind: FaultKind::Flaky { drop_probability, lasts },
        });
        self
    }

    /// The plan seed (flaky draws use its [`FAULT_STREAM`] family).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a fingerprint of the schedule (seed + every event). Because
    /// the crash/slow/flaky schedule is pure data, this fingerprint is
    /// invariant across shard counts and thread counts — the chaos CI
    /// job diffs it alongside the decision-stream fingerprints.
    #[must_use]
    pub fn schedule_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut fold = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        fold(self.seed);
        for e in &self.events {
            fold(e.node.raw());
            fold(e.at.to_bits());
            match e.kind {
                FaultKind::Crash => fold(1),
                FaultKind::CrashRecover { down_for } => {
                    fold(2);
                    fold(down_for.to_bits());
                }
                FaultKind::Slow { factor, lasts } => {
                    fold(3);
                    fold(factor.to_bits());
                    fold(lasts.to_bits());
                }
                FaultKind::Flaky { drop_probability, lasts } => {
                    fold(4);
                    fold(drop_probability.to_bits());
                    fold(lasts.to_bits());
                }
            }
        }
        h
    }
}

/// Evaluates a [`FaultPlan`] against the virtual clock. Stateless for
/// crash/slow queries; flaky drop draws advance the per-node fault
/// streams (hence `&mut` on [`FaultInjector::attempt_drops`]).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    flaky_rng: HashMap<u64, Xoshiro256PlusPlus>,
}

impl FaultInjector {
    /// An injector enacting `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, flaky_rng: HashMap::new() }
    }

    /// The plan being enacted.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `node` is dead at time `t` (inside a crash, or a
    /// crash-recover window that has not healed yet).
    #[must_use]
    pub fn crashed(&self, node: NodeId, t: f64) -> bool {
        self.plan.events.iter().any(|e| {
            e.node == node
                && match e.kind {
                    FaultKind::Crash => t >= e.at,
                    FaultKind::CrashRecover { down_for } => t >= e.at && t < e.at + down_for,
                    _ => false,
                }
        })
    }

    /// The service-rate multiplier active on `node` at `t`: the product
    /// of all overlapping slow windows, `1.0` when none.
    #[must_use]
    pub fn service_factor(&self, node: NodeId, t: f64) -> f64 {
        self.plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Slow { factor, lasts }
                    if e.node == node && t >= e.at && t < e.at + lasts =>
                {
                    Some(factor)
                }
                _ => None,
            })
            .product()
    }

    /// The per-attempt drop probability active on `node` at `t` (the
    /// maximum over overlapping flaky windows; `1.0` while crashed).
    #[must_use]
    pub fn drop_probability(&self, node: NodeId, t: f64) -> f64 {
        if self.crashed(node, t) {
            return 1.0;
        }
        self.plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Flaky { drop_probability, lasts }
                    if e.node == node && t >= e.at && t < e.at + lasts =>
                {
                    Some(drop_probability)
                }
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Decides one attempt (job dispatch or heartbeat) against `node` at
    /// time `t`: `true` means the attempt drops. Crashed nodes drop
    /// everything without consuming randomness; flaky windows draw from
    /// the node's [`FAULT_STREAM`] stream, so the draw sequence is
    /// per-node and independent of every other stream family.
    pub fn attempt_drops(&mut self, node: NodeId, t: f64) -> bool {
        if self.crashed(node, t) {
            return true;
        }
        let p = self.drop_probability(node, t);
        if p <= 0.0 {
            return false;
        }
        let seed = self.plan.seed;
        let rng = self
            .flaky_rng
            .entry(node.raw())
            .or_insert_with(|| Xoshiro256PlusPlus::stream(seed, FAULT_STREAM + node.raw()));
        rng.next_open01() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(raw: u64) -> NodeId {
        NodeId::from_raw(raw)
    }

    #[test]
    fn crash_is_permanent_and_crash_recover_heals() {
        let plan = FaultPlan::new(1).crash(node(0), 10.0).crash_recover(node(1), 5.0, 3.0);
        let inj = FaultInjector::new(plan);
        assert!(!inj.crashed(node(0), 9.9));
        assert!(inj.crashed(node(0), 10.0));
        assert!(inj.crashed(node(0), 1e9));
        assert!(!inj.crashed(node(1), 4.9));
        assert!(inj.crashed(node(1), 5.0));
        assert!(inj.crashed(node(1), 7.9));
        assert!(!inj.crashed(node(1), 8.0), "recovered");
        assert!(!inj.crashed(node(2), 50.0), "bystander untouched");
    }

    #[test]
    fn slow_windows_scale_and_compose() {
        let plan = FaultPlan::new(2).slow(node(0), 2.0, 4.0, 0.5).slow(node(0), 4.0, 4.0, 0.5);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.service_factor(node(0), 1.0), 1.0);
        assert_eq!(inj.service_factor(node(0), 3.0), 0.5);
        assert_eq!(inj.service_factor(node(0), 5.0), 0.25, "overlap multiplies");
        assert_eq!(inj.service_factor(node(0), 7.0), 0.5);
        assert_eq!(inj.service_factor(node(0), 8.0), 1.0);
        assert_eq!(inj.service_factor(node(1), 3.0), 1.0);
    }

    #[test]
    fn flaky_drops_at_the_configured_rate() {
        let plan = FaultPlan::new(3).flaky(node(0), 0.0, 1e6, 0.3);
        let mut inj = FaultInjector::new(plan);
        let drops = (0..10_000).filter(|_| inj.attempt_drops(node(0), 1.0)).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate} vs p 0.3");
        // Outside the window (or for other nodes) nothing drops and no
        // randomness is consumed.
        assert!(!inj.attempt_drops(node(1), 1.0));
    }

    #[test]
    fn flaky_draw_sequence_is_reproducible_and_per_node() {
        let run = |probe_other: bool| {
            let plan =
                FaultPlan::new(9).flaky(node(0), 0.0, 100.0, 0.5).flaky(node(1), 0.0, 100.0, 0.5);
            let mut inj = FaultInjector::new(plan);
            (0..64)
                .map(|k| {
                    if probe_other {
                        // Interleave draws on node 1; node 0's sequence
                        // must not shift.
                        let _ = inj.attempt_drops(node(1), k as f64);
                    }
                    inj.attempt_drops(node(0), k as f64)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true), "per-node streams are independent");
    }

    #[test]
    fn crashed_attempts_drop_without_consuming_draws() {
        let plan = FaultPlan::new(4).crash(node(0), 0.0).flaky(node(0), 0.0, 100.0, 0.5);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..16 {
            assert!(inj.attempt_drops(node(0), 1.0));
        }
        assert!(inj.flaky_rng.is_empty(), "crash short-circuits the flaky draw");
        assert_eq!(inj.drop_probability(node(0), 1.0), 1.0);
    }

    #[test]
    fn schedule_fingerprint_is_stable_and_sensitive() {
        let a = FaultPlan::new(7).crash(node(0), 10.0).slow(node(1), 2.0, 3.0, 0.5);
        let b = FaultPlan::new(7).crash(node(0), 10.0).slow(node(1), 2.0, 3.0, 0.5);
        assert_eq!(a.schedule_fingerprint(), b.schedule_fingerprint());
        let c = FaultPlan::new(7).crash(node(0), 10.5).slow(node(1), 2.0, 3.0, 0.5);
        assert_ne!(a.schedule_fingerprint(), c.schedule_fingerprint());
        let d = FaultPlan::new(8).crash(node(0), 10.0).slow(node(1), 2.0, 3.0, 0.5);
        assert_ne!(a.schedule_fingerprint(), d.schedule_fingerprint());
        assert!(FaultPlan::new(0).is_empty());
        assert_eq!(a.events().len(), 2);
        assert_eq!(a.seed(), 7);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn flaky_rejects_bad_probability() {
        let _ = FaultPlan::new(0).flaky(node(0), 0.0, 1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "slow factor")]
    fn slow_rejects_bad_factor() {
        let _ = FaultPlan::new(0).slow(node(0), 0.0, 1.0, 0.0);
    }
}
