//! The node registry: cluster membership and health for the online
//! runtime.
//!
//! Where the offline crates take a fixed [`Cluster`], a live system's
//! membership changes: nodes join, degrade, drain for maintenance, and
//! fail. The registry is the runtime's single source of truth for "which
//! computers exist, how fast are they nominally, and which are currently
//! accepting work". The re-solver snapshots it into a [`Cluster`] on
//! every solve.

use std::fmt;

use gtlb_core::error::CoreError;
use gtlb_core::model::Cluster;

use crate::error::RuntimeError;

/// Stable identifier of a registered node. Ids are never reused, even
/// after the node deregisters, so stale ids fail loudly instead of
/// silently addressing a newer node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u64);

impl NodeId {
    /// The numeric id (stream derivation, logging).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its numeric form (tests, persistence).
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Health of a registered node, as seen by the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Serving normally.
    Up,
    /// Missed a health signal; still routed to, but a candidate for
    /// demotion to [`Health::Down`].
    Suspect,
    /// Administratively draining: finishes queued work but receives no
    /// new jobs, and is excluded from future allocations.
    Draining,
    /// Failed: receives no jobs and is excluded from allocations.
    Down,
}

impl Health {
    /// Whether a node in this state accepts new jobs (and therefore
    /// belongs in the cluster handed to the allocators).
    #[must_use]
    pub fn serves(self) -> bool {
        matches!(self, Self::Up | Self::Suspect)
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Up => "up",
            Self::Suspect => "suspect",
            Self::Draining => "draining",
            Self::Down => "down",
        }
    }
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One registered node.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    nominal_rate: f64,
    health: Health,
}

impl Node {
    /// The node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Declared processing capacity `μ_i` (jobs/second), used until the
    /// online estimator has enough observations to measure it.
    #[must_use]
    pub fn nominal_rate(&self) -> f64 {
        self.nominal_rate
    }

    /// Current health.
    #[must_use]
    pub fn health(&self) -> Health {
        self.health
    }
}

/// Membership and health of the cluster's nodes, in registration order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    next_id: u64,
    nodes: Vec<Node>,
}

impl Registry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node with declared capacity `rate`, initially
    /// [`Health::Up`].
    ///
    /// # Errors
    /// [`RuntimeError::Core`] when `rate` is nonpositive or non-finite.
    pub fn register(&mut self, rate: f64) -> Result<NodeId, RuntimeError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(CoreError::BadInput(format!(
                "node capacity must be positive and finite, got {rate}"
            ))
            .into());
        }
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.nodes.push(Node { id, nominal_rate: rate, health: Health::Up });
        Ok(id)
    }

    /// Removes a node entirely.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] when `id` is not registered.
    pub fn deregister(&mut self, id: NodeId) -> Result<Node, RuntimeError> {
        let pos = self.position(id)?;
        Ok(self.nodes.remove(pos))
    }

    /// Sets a node's health, returning the previous state.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] when `id` is not registered.
    pub fn set_health(&mut self, id: NodeId, health: Health) -> Result<Health, RuntimeError> {
        let pos = self.position(id)?;
        let old = self.nodes[pos].health;
        self.nodes[pos].health = health;
        Ok(old)
    }

    /// Updates a node's declared capacity (e.g. after a hardware change).
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] for unknown ids, [`RuntimeError::Core`]
    /// for nonpositive/non-finite rates.
    pub fn set_nominal_rate(&mut self, id: NodeId, rate: f64) -> Result<(), RuntimeError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(CoreError::BadInput(format!(
                "node capacity must be positive and finite, got {rate}"
            ))
            .into());
        }
        let pos = self.position(id)?;
        self.nodes[pos].nominal_rate = rate;
        Ok(())
    }

    /// Looks a node up.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// All nodes in registration order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of registered nodes (any health).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes currently accepting work ([`Health::serves`]).
    pub fn serving(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.health.serves())
    }

    /// Total declared capacity of the serving nodes (`Σμᵢ` over
    /// [`Registry::serving`]) — the denominator of the offered
    /// utilization admission control acts on. Zero when nothing serves.
    #[must_use]
    pub fn serving_capacity(&self) -> f64 {
        self.serving().map(Node::nominal_rate).sum()
    }

    /// Snapshots the serving nodes as an allocation-layer [`Cluster`],
    /// using `rate_of(node)` for each capacity (callers substitute
    /// measured rates where available, nominal rates otherwise).
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] when nothing serves;
    /// [`RuntimeError::Core`] when a supplied rate is invalid.
    pub fn serving_cluster(
        &self,
        mut rate_of: impl FnMut(&Node) -> f64,
    ) -> Result<(Vec<NodeId>, Cluster), RuntimeError> {
        let mut ids = Vec::new();
        let mut rates = Vec::new();
        for node in self.serving() {
            ids.push(node.id);
            rates.push(rate_of(node));
        }
        if ids.is_empty() {
            return Err(RuntimeError::NoServingNodes);
        }
        let cluster = Cluster::new(rates)?;
        Ok((ids, cluster))
    }

    fn position(&self, id: NodeId) -> Result<usize, RuntimeError> {
        self.nodes.iter().position(|n| n.id == id).ok_or(RuntimeError::UnknownNode(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_fresh_ids() {
        let mut r = Registry::new();
        let a = r.register(1.0).unwrap();
        let b = r.register(2.0).unwrap();
        assert_ne!(a, b);
        r.deregister(a).unwrap();
        let c = r.register(3.0).unwrap();
        assert_ne!(c, a, "ids must not be reused");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn register_rejects_bad_rates() {
        let mut r = Registry::new();
        assert!(r.register(0.0).is_err());
        assert!(r.register(-1.0).is_err());
        assert!(r.register(f64::NAN).is_err());
    }

    #[test]
    fn health_transitions_gate_serving() {
        let mut r = Registry::new();
        let a = r.register(1.0).unwrap();
        let b = r.register(2.0).unwrap();
        assert_eq!(r.serving().count(), 2);
        assert_eq!(r.set_health(a, Health::Suspect).unwrap(), Health::Up);
        assert_eq!(r.serving().count(), 2, "suspect nodes still serve");
        r.set_health(a, Health::Down).unwrap();
        assert_eq!(r.serving().count(), 1);
        r.set_health(b, Health::Draining).unwrap();
        assert_eq!(r.serving().count(), 0);
    }

    #[test]
    fn unknown_ids_fail_loudly() {
        let mut r = Registry::new();
        let ghost = NodeId::from_raw(99);
        assert_eq!(r.set_health(ghost, Health::Down), Err(RuntimeError::UnknownNode(ghost)));
        assert!(r.deregister(ghost).is_err());
        assert!(r.node(ghost).is_none());
    }

    #[test]
    fn serving_cluster_snapshots_in_order() {
        let mut r = Registry::new();
        let a = r.register(4.0).unwrap();
        let b = r.register(2.0).unwrap();
        let c = r.register(1.0).unwrap();
        r.set_health(b, Health::Down).unwrap();
        let (ids, cluster) = r.serving_cluster(|n| n.nominal_rate()).unwrap();
        assert_eq!(ids, vec![a, c]);
        assert_eq!(cluster.rates(), &[4.0, 1.0]);
    }

    #[test]
    fn serving_capacity_tracks_health() {
        let mut r = Registry::new();
        assert_eq!(r.serving_capacity(), 0.0);
        let a = r.register(4.0).unwrap();
        r.register(2.0).unwrap();
        assert_eq!(r.serving_capacity(), 6.0);
        r.set_health(a, Health::Draining).unwrap();
        assert_eq!(r.serving_capacity(), 2.0);
    }

    #[test]
    fn empty_serving_set_is_an_error() {
        let mut r = Registry::new();
        assert!(matches!(
            r.serving_cluster(|n| n.nominal_rate()),
            Err(RuntimeError::NoServingNodes)
        ));
        let a = r.register(1.0).unwrap();
        r.set_health(a, Health::Down).unwrap();
        assert!(matches!(
            r.serving_cluster(|n| n.nominal_rate()),
            Err(RuntimeError::NoServingNodes)
        ));
    }
}
