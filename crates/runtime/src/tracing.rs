//! The runtime's tracing facade: deterministic per-job traces over the
//! `gtlb-telemetry` [`trace`](gtlb_telemetry::trace) primitives.
//!
//! Like [`Telemetry`](crate::telemetry::Telemetry), the facade is an
//! `Option<Arc<_>>`: [`Tracer::disabled`] (the default) costs one
//! never-taken branch per record site. [`Tracer::enabled`] allocates
//! the [`FlightRecorder`] and pins the identity scheme.
//!
//! ## Determinism contract
//!
//! Tracing owns **no RNG stream and no clock**. A job's [`TraceId`] is
//! a SplitMix64 hash of the runtime's base seed and the job's sequence
//! number ([`gtlb_telemetry::trace_id`]); the sampling decision is a
//! mask test on that id. Every span timestamp is the driver's virtual
//! time, already computed for the decision being traced. Enabling
//! tracing therefore leaves all determinism fingerprints bit-identical
//! — CI's `tracing-invariance` job diffs them — and the trace *set*
//! itself is a pure function of `(seed, plan, shard count)`, identical
//! across thread counts.
//!
//! ## Hot-path budget
//!
//! An unsampled job costs exactly one hash and one mask test
//! ([`Tracer::begin`] returning `None`); only sampled jobs build spans
//! (a handful of `Vec` pushes on the driver's already-cold per-job
//! path) and take the recorder lock once, at the terminal span. CI
//! gates sampled tracing at ≤ 1.03× the untraced driver loop.

use std::sync::Arc;

use gtlb_telemetry::trace::{trace_id, FlightRecorder, Trace, TraceId, TracingConfig};

/// The instrument behind an enabled [`Tracer`].
#[derive(Debug)]
struct TracerInner {
    cfg: TracingConfig,
    recorder: FlightRecorder,
}

/// The runtime's tracing facade: either a no-op ([`Tracer::disabled`])
/// or a shared flight recorder plus the deterministic identity scheme
/// ([`Tracer::enabled`]). Cloning shares the recorder.
///
/// The identity seed and sampling mask live inline (not behind the
/// `Arc`) so the per-job unsampled path — hash, mask test, return —
/// never chases the shared pointer; only sampled jobs touch the
/// shared recorder state.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    seed: u64,
    mask: u64,
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// The no-op facade: [`Tracer::begin`] always returns `None`.
    #[must_use]
    pub fn disabled() -> Self {
        Self { seed: 0, mask: 0, inner: None }
    }

    /// An enabled facade: trace ids hash from `seed`, the flight
    /// recorder gets one lane per shard plus the tail-sampling lane.
    #[must_use]
    pub fn enabled(seed: u64, shards: usize, cfg: TracingConfig) -> Self {
        let recorder = FlightRecorder::new(shards, cfg.recorder_capacity, cfg.slow_threshold);
        Self { seed, mask: cfg.sample_mask, inner: Some(Arc::new(TracerInner { cfg, recorder })) }
    }

    /// Whether this facade records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The active configuration, when enabled.
    #[must_use]
    pub fn config(&self) -> Option<TracingConfig> {
        self.inner.as_ref().map(|i| i.cfg)
    }

    /// The deterministic id job `sequence` would get (hash of the base
    /// seed and the sequence number), even when the job is not sampled.
    /// `None` when tracing is disabled.
    #[must_use]
    pub fn id_of(&self, sequence: u64) -> Option<TraceId> {
        self.inner.is_some().then(|| trace_id(self.seed, sequence))
    }

    /// Starts a trace for job `sequence` if tracing is enabled and the
    /// job's id falls under the sampling mask. Pure: one hash, one mask
    /// test against inline fields, no draws, no clock, no pointer
    /// chase.
    #[must_use]
    pub fn begin(&self, sequence: u64) -> Option<Trace> {
        self.inner.as_ref()?;
        let id = trace_id(self.seed, sequence);
        id.sampled(self.mask).then(|| Trace::new(id, sequence))
    }

    /// Lands a finished trace in the flight recorder's lane for
    /// `shard` (and the tail lane when it is slow or failed).
    pub fn finish(&self, shard: usize, trace: Trace) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(shard, trace);
        }
    }

    /// All currently-held traces, in start-time order (empty when
    /// disabled).
    #[must_use]
    pub fn traces(&self) -> Vec<Trace> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.recorder.traces())
    }

    /// Looks up one recorded trace by id.
    #[must_use]
    pub fn trace(&self, id: TraceId) -> Option<Trace> {
        self.inner.as_ref()?.recorder.trace(id)
    }

    /// Traces ever recorded (tail-lane copies counted; 0 when
    /// disabled).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.recorder.recorded())
    }

    /// Traces evicted across every lane (0 when disabled).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.recorder.dropped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtlb_telemetry::trace::SpanKind;

    #[test]
    fn disabled_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(t.begin(1).is_none());
        assert!(t.id_of(1).is_none());
        assert!(t.traces().is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_id() {
        let t = Tracer::enabled(
            0xF1A6,
            2,
            TracingConfig { sample_mask: 0x3, ..TracingConfig::default() },
        );
        let sampled: Vec<u64> = (1..=100).filter(|&s| t.begin(s).is_some()).collect();
        let again: Vec<u64> = (1..=100).filter(|&s| t.begin(s).is_some()).collect();
        assert_eq!(sampled, again, "replayable");
        assert!(!sampled.is_empty() && sampled.len() < 100, "mask thins: {}", sampled.len());
        // Every sampled sequence's id passes the mask test.
        for s in sampled {
            assert!(t.id_of(s).unwrap().sampled(0x3));
        }
    }

    #[test]
    fn finished_traces_are_queryable() {
        let t = Tracer::enabled(7, 1, TracingConfig::sample_all());
        let mut trace = t.begin(1).unwrap();
        trace.instant(SpanKind::Admitted, 0.5);
        trace.instant(SpanKind::Completed, 1.0);
        let id = trace.id;
        t.finish(0, trace);
        assert_eq!(t.recorded(), 1);
        assert_eq!(t.traces().len(), 1);
        assert_eq!(t.trace(id).unwrap().sequence, 1);
    }
}
