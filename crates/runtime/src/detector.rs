//! Accrual-style failure detection: per-node suspicion accumulates from
//! missed responses and silence, and drives [`Health`] transitions with
//! hysteresis instead of manual marking.
//!
//! The detector keeps one track per node. Every heartbeat or response
//! outcome feeds it:
//!
//! * **success** — updates the inter-observation EWMA, decays the
//!   accrued failure boost, and (past hysteresis) promotes the node back
//!   toward [`Health::Up`];
//! * **failure** — adds a fixed boost to the suspicion level.
//!
//! Suspicion is an accrual value `φ(now) = boost + silence`, where the
//! silence term grows with time since the last *successful* observation,
//! scaled by the node's own observed cadence (`(now − last) /
//! (mean_interval · ln 10)` — the φ-detector's exponential-tail
//! approximation). Crossing `suspect_phi` demotes Up→Suspect; crossing
//! `down_phi` demotes to Down. Recovery is deliberately harder than
//! demotion: Suspect→Up needs φ to fall *below* `recovery_factor ·
//! suspect_phi` (hysteresis, so a node flapping around the threshold
//! does not oscillate), and Down→Up additionally needs
//! `probation_successes` consecutive successes (the probation window).
//!
//! ## Self-tuning thresholds
//!
//! Fixed `suspect_phi`/`down_phi` assume a clean, steady heartbeat
//! cadence; under gray failures and partial partitions the observed
//! cadence is jittery and a hand-set threshold either flaps or sleeps.
//! [`DetectorConfig::self_tuning`] opts a detector into true φ-accrual:
//! each track keeps a sliding window of the last `window` heartbeat
//! interarrival gaps and scales both thresholds by `1 + CV`, where `CV =
//! σ/μ` is the window's coefficient of variation. A steady cadence (`CV
//! → 0`) recovers the configured baselines exactly; a jittery cadence
//! raises the bar in proportion to its own noise, so the thresholds are
//! monotone in the observed variance and never invert (`down > suspect`
//! is preserved by the common scale). The silence term uses the windowed
//! mean instead of the EWMA. Hysteresis and probation semantics are
//! untouched — recovery compares against the *effective* suspect
//! threshold. With `self_tuning_window == 0` (the default) every code
//! path is bit-identical to the fixed-threshold detector.
//!
//! The detector is pure bookkeeping — it owns no clock and no RNG, and
//! never touches the registry itself. It *returns* the transition it
//! wants ([`HealthTransition`]); the runtime applies it (and its routing
//! consequences: renormalization on Down, re-solve on recovery).

use crate::registry::{Health, NodeId};
use gtlb_desim::stats::Ewma;
use std::collections::{HashMap, VecDeque};

/// Tunables of the accrual detector. Defaults are deliberately snappy
/// for simulation timescales; production deployments would scale them
/// with real heartbeat cadences.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Suspicion level at which an Up node is demoted to Suspect.
    pub suspect_phi: f64,
    /// Suspicion level at which a node is demoted to Down.
    pub down_phi: f64,
    /// Suspect→Up requires φ below `recovery_factor * suspect_phi`
    /// (hysteresis band; must lie in `(0, 1)`).
    pub recovery_factor: f64,
    /// Suspicion added by each observed failure.
    pub failure_boost: f64,
    /// Multiplier applied to the accrued boost on each success (in
    /// `[0, 1)`; smaller forgives faster).
    pub success_decay: f64,
    /// Successful observations required before the silence term is
    /// trusted (the interval EWMA needs a baseline).
    pub min_samples: u64,
    /// Smoothing factor of the inter-observation interval EWMA.
    pub interval_alpha: f64,
    /// Consecutive successes a Down node must string together before it
    /// is promoted back to Up (the probation window).
    pub probation_successes: u32,
    /// Size of the per-node interarrival history window the self-tuning
    /// mode derives effective thresholds from. `0` (the default)
    /// disables self-tuning: the detector is bit-identical to the
    /// fixed-threshold detector. Nonzero values must be ≥ 2 (variance
    /// needs two samples); see [`DetectorConfig::self_tuning`].
    pub self_tuning_window: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            suspect_phi: 2.0,
            down_phi: 6.0,
            recovery_factor: 0.5,
            failure_boost: 2.0,
            success_decay: 0.5,
            min_samples: 3,
            interval_alpha: 0.2,
            probation_successes: 3,
            self_tuning_window: 0,
        }
    }
}

impl DetectorConfig {
    /// The self-tuning preset: defaults everywhere, plus a sliding
    /// window of the last `window` interarrival gaps per node from which
    /// the *effective* `suspect_phi`/`down_phi` are derived (`threshold
    /// × (1 + σ/μ)` over the window). No hand-set thresholds needed —
    /// the configured values act as the steady-cadence baseline.
    ///
    /// # Panics
    /// If `window < 2`.
    #[must_use]
    pub fn self_tuning(window: usize) -> Self {
        assert!(window >= 2, "detector: self-tuning window must be at least 2");
        Self { self_tuning_window: window, ..Self::default() }
    }

    fn validate(&self) {
        assert!(
            self.suspect_phi.is_finite() && self.suspect_phi > 0.0,
            "detector: suspect_phi must be positive and finite"
        );
        assert!(
            self.down_phi.is_finite() && self.down_phi > self.suspect_phi,
            "detector: down_phi must exceed suspect_phi"
        );
        assert!(
            self.recovery_factor > 0.0 && self.recovery_factor < 1.0,
            "detector: recovery_factor must lie in (0, 1)"
        );
        assert!(
            self.failure_boost.is_finite() && self.failure_boost > 0.0,
            "detector: failure_boost must be positive and finite"
        );
        assert!(
            (0.0..1.0).contains(&self.success_decay),
            "detector: success_decay must lie in [0, 1)"
        );
        assert!(self.probation_successes >= 1, "detector: probation window must be at least 1");
        assert!(
            self.self_tuning_window == 0 || self.self_tuning_window >= 2,
            "detector: self-tuning window must be at least 2 (or 0 to disable)"
        );
    }
}

/// One health transition the detector decided on: `node` moved `from` →
/// `to` at virtual time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthTransition {
    /// The node that moved.
    pub node: NodeId,
    /// Health before.
    pub from: Health,
    /// Health after.
    pub to: Health,
    /// Virtual time of the observation that triggered the move.
    pub at: f64,
}

impl std::fmt::Display for HealthTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} -> {} at t={:.3}", self.node, self.from, self.to, self.at)
    }
}

#[derive(Debug)]
struct Track {
    intervals: Ewma,
    /// Sliding window of the last `self_tuning_window` interarrival
    /// gaps; empty (and never pushed) in fixed-threshold mode.
    gaps: VecDeque<f64>,
    last_seen: Option<f64>,
    boost: f64,
    consecutive_successes: u32,
    view: Health,
}

/// `1 + σ/μ` over the track's gap window — the common factor both
/// effective thresholds scale by. `1.0` in fixed mode or before two
/// gaps have landed, so fixed-mode arithmetic is untouched.
fn tuning_scale(cfg: &DetectorConfig, track: &Track) -> f64 {
    if cfg.self_tuning_window == 0 || track.gaps.len() < 2 {
        return 1.0;
    }
    let n = track.gaps.len() as f64;
    let mean = track.gaps.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 1.0;
    }
    let var = track.gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / (n - 1.0);
    1.0 + var.sqrt() / mean
}

/// The cadence estimate backing the silence term: the windowed mean in
/// self-tuning mode (gated on `min(min_samples, window)` gaps), the
/// interval EWMA in fixed mode (gated on `min_samples`, exactly as
/// before).
fn mean_interval(cfg: &DetectorConfig, track: &Track) -> Option<f64> {
    if cfg.self_tuning_window > 0 {
        let need = cfg.min_samples.min(cfg.self_tuning_window as u64) as usize;
        let n = track.gaps.len();
        (n >= need && n > 0).then(|| track.gaps.iter().sum::<f64>() / n as f64)
    } else {
        track.intervals.value().filter(|_| track.intervals.count() >= cfg.min_samples)
    }
}

/// The accrual failure detector: per-node suspicion tracks feeding
/// [`Health`] transitions. Deterministic — no clock, no randomness; the
/// caller supplies observation times.
#[derive(Debug)]
pub struct AccrualDetector {
    cfg: DetectorConfig,
    tracks: HashMap<u64, Track>,
}

impl AccrualDetector {
    /// A detector with the given tuning.
    ///
    /// # Panics
    /// If the configuration is inconsistent (see the field docs).
    #[must_use]
    pub fn new(cfg: DetectorConfig) -> Self {
        cfg.validate();
        Self { cfg, tracks: HashMap::new() }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    fn track(&mut self, node: NodeId) -> &mut Track {
        let alpha = self.cfg.interval_alpha;
        self.tracks.entry(node.raw()).or_insert_with(|| Track {
            intervals: Ewma::new(alpha),
            gaps: VecDeque::new(),
            last_seen: None,
            boost: 0.0,
            consecutive_successes: 0,
            view: Health::Up,
        })
    }

    /// Current suspicion level of `node` at time `now`: accrued boost
    /// plus the silence term. Zero for unknown nodes.
    #[must_use]
    pub fn phi(&self, node: NodeId, now: f64) -> f64 {
        let Some(track) = self.tracks.get(&node.raw()) else { return 0.0 };
        let silence = match (track.last_seen, mean_interval(&self.cfg, track)) {
            (Some(last), Some(mean)) if mean > 0.0 => {
                ((now - last).max(0.0)) / (mean * std::f64::consts::LN_10)
            }
            _ => 0.0,
        };
        track.boost + silence
    }

    /// The thresholds in force for `node` right now: the configured
    /// `(suspect_phi, down_phi)` in fixed mode (and for unknown nodes),
    /// both scaled by `1 + σ/μ` of the node's observed interarrival
    /// window in self-tuning mode. Monotone in the observed variance;
    /// `down > suspect` always.
    #[must_use]
    pub fn effective_thresholds(&self, node: NodeId) -> (f64, f64) {
        let scale =
            self.tracks.get(&node.raw()).map_or(1.0, |track| tuning_scale(&self.cfg, track));
        (self.cfg.suspect_phi * scale, self.cfg.down_phi * scale)
    }

    /// The detector's current view of `node`'s health (its own state
    /// machine, which the runtime mirrors into the registry).
    #[must_use]
    pub fn view(&self, node: NodeId) -> Health {
        self.tracks.get(&node.raw()).map_or(Health::Up, |t| t.view)
    }

    /// Forgets a node entirely (deregistration).
    pub fn forget(&mut self, node: NodeId) {
        self.tracks.remove(&node.raw());
    }

    /// Forces the detector's view of `node` (operator override): when
    /// the runtime is marked manually, the detector must agree or it
    /// would never emit the transition that undoes the mark. Clears the
    /// probation streak so a forced Down still earns its way back.
    pub fn set_view(&mut self, node: NodeId, health: Health) {
        let track = self.track(node);
        track.view = health;
        track.consecutive_successes = 0;
    }

    /// Feeds one successful observation (heartbeat ack or completed
    /// response) of `node` at time `t`. Returns the transition this
    /// implies, if any (Suspect→Up past hysteresis, Down→Up after
    /// probation).
    pub fn observe_success(&mut self, node: NodeId, t: f64) -> Option<HealthTransition> {
        let cfg = self.cfg;
        let track = self.track(node);
        if let Some(last) = track.last_seen {
            let gap = (t - last).max(0.0);
            if gap > 0.0 {
                track.intervals.observe(gap);
                if cfg.self_tuning_window > 0 {
                    track.gaps.push_back(gap);
                    if track.gaps.len() > cfg.self_tuning_window {
                        track.gaps.pop_front();
                    }
                }
            }
        }
        track.last_seen = Some(t);
        track.boost *= cfg.success_decay;
        track.consecutive_successes += 1;
        let from = track.view;
        let boost = track.boost;
        let successes = track.consecutive_successes;
        // Effective suspect threshold after this observation landed (the
        // identity in fixed mode).
        let (eff_suspect, _) = self.effective_thresholds(node);
        let track = self.tracks.get_mut(&node.raw()).expect("track just created");
        match from {
            Health::Down if successes >= cfg.probation_successes => {
                track.view = Health::Up;
            }
            // Re-read φ with the refreshed boost/last_seen; the silence
            // term is zero at the observation instant.
            Health::Suspect if boost < cfg.recovery_factor * eff_suspect => {
                track.view = Health::Up;
            }
            _ => {}
        }
        let to = track.view;
        (from != to).then_some(HealthTransition { node, from, to, at: t })
    }

    /// Feeds one failed observation (dropped attempt, missed heartbeat)
    /// of `node` at time `t`. Returns the demotion this implies, if any.
    pub fn observe_failure(&mut self, node: NodeId, t: f64) -> Option<HealthTransition> {
        let cfg = self.cfg;
        let track = self.track(node);
        track.boost += cfg.failure_boost;
        track.consecutive_successes = 0;
        let from = track.view;
        let phi = self.phi(node, t);
        let (eff_suspect, eff_down) = self.effective_thresholds(node);
        let track = self.tracks.get_mut(&node.raw()).expect("track just created");
        match from {
            Health::Up | Health::Suspect if phi >= eff_down => track.view = Health::Down,
            Health::Up if phi >= eff_suspect => track.view = Health::Suspect,
            _ => {}
        }
        let to = track.view;
        (from != to).then_some(HealthTransition { node, from, to, at: t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(raw: u64) -> NodeId {
        NodeId::from_raw(raw)
    }

    fn warm(det: &mut AccrualDetector, n: NodeId, upto: f64) {
        let mut t = 0.0;
        while t < upto {
            assert!(det.observe_success(n, t).is_none());
            t += 1.0;
        }
    }

    #[test]
    fn repeated_failures_walk_up_to_suspect_then_down() {
        let mut det = AccrualDetector::new(DetectorConfig::default());
        let n = node(0);
        warm(&mut det, n, 5.0);
        assert_eq!(det.view(n), Health::Up);
        let t1 = det.observe_failure(n, 5.0).expect("boost 2 crosses suspect_phi 2");
        assert_eq!((t1.from, t1.to), (Health::Up, Health::Suspect));
        assert!(det.observe_failure(n, 5.1).is_none(), "boost 4 < down_phi 6");
        let t2 = det.observe_failure(n, 5.2).expect("boost 6 crosses down_phi 6");
        assert_eq!((t2.from, t2.to), (Health::Suspect, Health::Down));
        assert_eq!(det.view(n), Health::Down);
    }

    #[test]
    fn silence_alone_accrues_suspicion() {
        let mut det = AccrualDetector::new(DetectorConfig::default());
        let n = node(0);
        warm(&mut det, n, 10.0); // cadence 1s, EWMA warm
        let base = det.phi(n, 9.0);
        assert!(base < 0.1, "just observed, φ ≈ 0, got {base}");
        let quiet = det.phi(n, 40.0);
        assert!(quiet > 6.0, "~30s of silence at 1s cadence must exceed down_phi, got {quiet}");
    }

    #[test]
    fn suspect_recovers_with_hysteresis() {
        let mut det = AccrualDetector::new(DetectorConfig::default());
        let n = node(0);
        warm(&mut det, n, 5.0);
        // One failure → Suspect, boost 2.
        det.observe_failure(n, 5.0).unwrap();
        // One success: boost 1.0 ≥ 0.5·2.0 — still inside the band.
        assert!(det.observe_success(n, 5.5).is_none());
        assert_eq!(det.view(n), Health::Suspect);
        // Second success: boost 0.5 < 1.0 — recovered.
        let t = det.observe_success(n, 6.0).expect("past hysteresis");
        assert_eq!((t.from, t.to), (Health::Suspect, Health::Up));
    }

    #[test]
    fn down_recovers_only_after_probation() {
        let mut det = AccrualDetector::new(DetectorConfig::default());
        let n = node(0);
        warm(&mut det, n, 5.0);
        for k in 0..3 {
            det.observe_failure(n, 5.0 + 0.1 * f64::from(k));
        }
        assert_eq!(det.view(n), Health::Down);
        assert!(det.observe_success(n, 6.0).is_none(), "probation 1/3");
        assert!(det.observe_success(n, 7.0).is_none(), "probation 2/3");
        let t = det.observe_success(n, 8.0).expect("probation complete");
        assert_eq!((t.from, t.to), (Health::Down, Health::Up));
        // A failure mid-probation resets the streak.
        for k in 0..3 {
            det.observe_failure(n, 9.0 + 0.1 * f64::from(k));
        }
        det.observe_success(n, 10.0);
        det.observe_failure(n, 10.5);
        assert!(det.observe_success(n, 11.0).is_none());
        assert!(det.observe_success(n, 12.0).is_none());
        assert_eq!(det.view(n), Health::Down, "streak was reset");
    }

    #[test]
    fn unknown_nodes_are_benign() {
        let mut det = AccrualDetector::new(DetectorConfig::default());
        assert_eq!(det.phi(node(7), 100.0), 0.0);
        assert_eq!(det.view(node(7)), Health::Up);
        det.forget(node(7)); // no-op
    }

    #[test]
    fn self_tuning_on_a_steady_cadence_matches_the_fixed_thresholds() {
        let mut det = AccrualDetector::new(DetectorConfig::self_tuning(8));
        let n = node(0);
        warm(&mut det, n, 10.0); // perfectly steady 1s cadence: CV = 0
        let (s, d) = det.effective_thresholds(n);
        assert!((s - 2.0).abs() < 1e-12 && (d - 6.0).abs() < 1e-12, "CV 0 recovers baselines");
        // Same demotion walk as the fixed detector.
        let t1 = det.observe_failure(n, 10.0).expect("boost 2 crosses effective suspect 2");
        assert_eq!((t1.from, t1.to), (Health::Up, Health::Suspect));
    }

    #[test]
    fn self_tuning_raises_thresholds_under_jitter() {
        let mut det = AccrualDetector::new(DetectorConfig::self_tuning(8));
        let n = node(0);
        // Jittery cadence: gaps alternate 0.2s / 1.8s (mean 1, high CV).
        let mut t = 0.0;
        for k in 0..12 {
            t += if k % 2 == 0 { 0.2 } else { 1.8 };
            det.observe_success(n, t);
        }
        let (s, d) = det.effective_thresholds(n);
        assert!(s > 2.0 && d > 6.0, "jitter must raise both thresholds, got ({s}, {d})");
        assert!(d > s, "ordering preserved");
        // One failure (boost 2) no longer demotes: the bar moved with
        // the observed noise.
        assert!(det.observe_failure(n, t).is_none(), "eff suspect {s} > boost 2");
        assert_eq!(det.view(n), Health::Up);
    }

    #[test]
    fn effective_thresholds_default_to_the_config() {
        let det = AccrualDetector::new(DetectorConfig::default());
        assert_eq!(det.effective_thresholds(node(9)), (2.0, 6.0), "unknown node");
    }

    #[test]
    #[should_panic(expected = "self-tuning window")]
    fn config_rejects_tiny_tuning_window() {
        let _ = DetectorConfig::self_tuning(1);
    }

    #[test]
    #[should_panic(expected = "down_phi must exceed suspect_phi")]
    fn config_rejects_inverted_thresholds() {
        let _ = AccrualDetector::new(DetectorConfig {
            suspect_phi: 5.0,
            down_phi: 2.0,
            ..DetectorConfig::default()
        });
    }
}
