//! Accrual-style failure detection: per-node suspicion accumulates from
//! missed responses and silence, and drives [`Health`] transitions with
//! hysteresis instead of manual marking.
//!
//! The detector keeps one track per node. Every heartbeat or response
//! outcome feeds it:
//!
//! * **success** — updates the inter-observation EWMA, decays the
//!   accrued failure boost, and (past hysteresis) promotes the node back
//!   toward [`Health::Up`];
//! * **failure** — adds a fixed boost to the suspicion level.
//!
//! Suspicion is an accrual value `φ(now) = boost + silence`, where the
//! silence term grows with time since the last *successful* observation,
//! scaled by the node's own observed cadence (`(now − last) /
//! (mean_interval · ln 10)` — the φ-detector's exponential-tail
//! approximation). Crossing `suspect_phi` demotes Up→Suspect; crossing
//! `down_phi` demotes to Down. Recovery is deliberately harder than
//! demotion: Suspect→Up needs φ to fall *below* `recovery_factor ·
//! suspect_phi` (hysteresis, so a node flapping around the threshold
//! does not oscillate), and Down→Up additionally needs
//! `probation_successes` consecutive successes (the probation window).
//!
//! The detector is pure bookkeeping — it owns no clock and no RNG, and
//! never touches the registry itself. It *returns* the transition it
//! wants ([`HealthTransition`]); the runtime applies it (and its routing
//! consequences: renormalization on Down, re-solve on recovery).

use crate::registry::{Health, NodeId};
use gtlb_desim::stats::Ewma;
use std::collections::HashMap;

/// Tunables of the accrual detector. Defaults are deliberately snappy
/// for simulation timescales; production deployments would scale them
/// with real heartbeat cadences.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Suspicion level at which an Up node is demoted to Suspect.
    pub suspect_phi: f64,
    /// Suspicion level at which a node is demoted to Down.
    pub down_phi: f64,
    /// Suspect→Up requires φ below `recovery_factor * suspect_phi`
    /// (hysteresis band; must lie in `(0, 1)`).
    pub recovery_factor: f64,
    /// Suspicion added by each observed failure.
    pub failure_boost: f64,
    /// Multiplier applied to the accrued boost on each success (in
    /// `[0, 1)`; smaller forgives faster).
    pub success_decay: f64,
    /// Successful observations required before the silence term is
    /// trusted (the interval EWMA needs a baseline).
    pub min_samples: u64,
    /// Smoothing factor of the inter-observation interval EWMA.
    pub interval_alpha: f64,
    /// Consecutive successes a Down node must string together before it
    /// is promoted back to Up (the probation window).
    pub probation_successes: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            suspect_phi: 2.0,
            down_phi: 6.0,
            recovery_factor: 0.5,
            failure_boost: 2.0,
            success_decay: 0.5,
            min_samples: 3,
            interval_alpha: 0.2,
            probation_successes: 3,
        }
    }
}

impl DetectorConfig {
    fn validate(&self) {
        assert!(
            self.suspect_phi.is_finite() && self.suspect_phi > 0.0,
            "detector: suspect_phi must be positive and finite"
        );
        assert!(
            self.down_phi.is_finite() && self.down_phi > self.suspect_phi,
            "detector: down_phi must exceed suspect_phi"
        );
        assert!(
            self.recovery_factor > 0.0 && self.recovery_factor < 1.0,
            "detector: recovery_factor must lie in (0, 1)"
        );
        assert!(
            self.failure_boost.is_finite() && self.failure_boost > 0.0,
            "detector: failure_boost must be positive and finite"
        );
        assert!(
            (0.0..1.0).contains(&self.success_decay),
            "detector: success_decay must lie in [0, 1)"
        );
        assert!(self.probation_successes >= 1, "detector: probation window must be at least 1");
    }
}

/// One health transition the detector decided on: `node` moved `from` →
/// `to` at virtual time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthTransition {
    /// The node that moved.
    pub node: NodeId,
    /// Health before.
    pub from: Health,
    /// Health after.
    pub to: Health,
    /// Virtual time of the observation that triggered the move.
    pub at: f64,
}

impl std::fmt::Display for HealthTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} -> {} at t={:.3}", self.node, self.from, self.to, self.at)
    }
}

#[derive(Debug)]
struct Track {
    intervals: Ewma,
    last_seen: Option<f64>,
    boost: f64,
    consecutive_successes: u32,
    view: Health,
}

/// The accrual failure detector: per-node suspicion tracks feeding
/// [`Health`] transitions. Deterministic — no clock, no randomness; the
/// caller supplies observation times.
#[derive(Debug)]
pub struct AccrualDetector {
    cfg: DetectorConfig,
    tracks: HashMap<u64, Track>,
}

impl AccrualDetector {
    /// A detector with the given tuning.
    ///
    /// # Panics
    /// If the configuration is inconsistent (see the field docs).
    #[must_use]
    pub fn new(cfg: DetectorConfig) -> Self {
        cfg.validate();
        Self { cfg, tracks: HashMap::new() }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    fn track(&mut self, node: NodeId) -> &mut Track {
        let alpha = self.cfg.interval_alpha;
        self.tracks.entry(node.raw()).or_insert_with(|| Track {
            intervals: Ewma::new(alpha),
            last_seen: None,
            boost: 0.0,
            consecutive_successes: 0,
            view: Health::Up,
        })
    }

    /// Current suspicion level of `node` at time `now`: accrued boost
    /// plus the silence term. Zero for unknown nodes.
    #[must_use]
    pub fn phi(&self, node: NodeId, now: f64) -> f64 {
        let Some(track) = self.tracks.get(&node.raw()) else { return 0.0 };
        let silence = match (track.last_seen, track.intervals.value()) {
            (Some(last), Some(mean))
                if track.intervals.count() >= self.cfg.min_samples && mean > 0.0 =>
            {
                ((now - last).max(0.0)) / (mean * std::f64::consts::LN_10)
            }
            _ => 0.0,
        };
        track.boost + silence
    }

    /// The detector's current view of `node`'s health (its own state
    /// machine, which the runtime mirrors into the registry).
    #[must_use]
    pub fn view(&self, node: NodeId) -> Health {
        self.tracks.get(&node.raw()).map_or(Health::Up, |t| t.view)
    }

    /// Forgets a node entirely (deregistration).
    pub fn forget(&mut self, node: NodeId) {
        self.tracks.remove(&node.raw());
    }

    /// Forces the detector's view of `node` (operator override): when
    /// the runtime is marked manually, the detector must agree or it
    /// would never emit the transition that undoes the mark. Clears the
    /// probation streak so a forced Down still earns its way back.
    pub fn set_view(&mut self, node: NodeId, health: Health) {
        let track = self.track(node);
        track.view = health;
        track.consecutive_successes = 0;
    }

    /// Feeds one successful observation (heartbeat ack or completed
    /// response) of `node` at time `t`. Returns the transition this
    /// implies, if any (Suspect→Up past hysteresis, Down→Up after
    /// probation).
    pub fn observe_success(&mut self, node: NodeId, t: f64) -> Option<HealthTransition> {
        let cfg = self.cfg;
        let track = self.track(node);
        if let Some(last) = track.last_seen {
            let gap = (t - last).max(0.0);
            if gap > 0.0 {
                track.intervals.observe(gap);
            }
        }
        track.last_seen = Some(t);
        track.boost *= cfg.success_decay;
        track.consecutive_successes += 1;
        let from = track.view;
        match from {
            Health::Down if track.consecutive_successes >= cfg.probation_successes => {
                track.view = Health::Up;
            }
            // Re-read φ with the refreshed boost/last_seen; the silence
            // term is zero at the observation instant.
            Health::Suspect if track.boost < cfg.recovery_factor * cfg.suspect_phi => {
                track.view = Health::Up;
            }
            _ => {}
        }
        let to = self.tracks.get(&node.raw()).map_or(Health::Up, |t2| t2.view);
        (from != to).then_some(HealthTransition { node, from, to, at: t })
    }

    /// Feeds one failed observation (dropped attempt, missed heartbeat)
    /// of `node` at time `t`. Returns the demotion this implies, if any.
    pub fn observe_failure(&mut self, node: NodeId, t: f64) -> Option<HealthTransition> {
        let cfg = self.cfg;
        let track = self.track(node);
        track.boost += cfg.failure_boost;
        track.consecutive_successes = 0;
        let from = track.view;
        let phi = self.phi(node, t);
        let track = self.tracks.get_mut(&node.raw()).expect("track just created");
        match from {
            Health::Up | Health::Suspect if phi >= cfg.down_phi => track.view = Health::Down,
            Health::Up if phi >= cfg.suspect_phi => track.view = Health::Suspect,
            _ => {}
        }
        let to = track.view;
        (from != to).then_some(HealthTransition { node, from, to, at: t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(raw: u64) -> NodeId {
        NodeId::from_raw(raw)
    }

    fn warm(det: &mut AccrualDetector, n: NodeId, upto: f64) {
        let mut t = 0.0;
        while t < upto {
            assert!(det.observe_success(n, t).is_none());
            t += 1.0;
        }
    }

    #[test]
    fn repeated_failures_walk_up_to_suspect_then_down() {
        let mut det = AccrualDetector::new(DetectorConfig::default());
        let n = node(0);
        warm(&mut det, n, 5.0);
        assert_eq!(det.view(n), Health::Up);
        let t1 = det.observe_failure(n, 5.0).expect("boost 2 crosses suspect_phi 2");
        assert_eq!((t1.from, t1.to), (Health::Up, Health::Suspect));
        assert!(det.observe_failure(n, 5.1).is_none(), "boost 4 < down_phi 6");
        let t2 = det.observe_failure(n, 5.2).expect("boost 6 crosses down_phi 6");
        assert_eq!((t2.from, t2.to), (Health::Suspect, Health::Down));
        assert_eq!(det.view(n), Health::Down);
    }

    #[test]
    fn silence_alone_accrues_suspicion() {
        let mut det = AccrualDetector::new(DetectorConfig::default());
        let n = node(0);
        warm(&mut det, n, 10.0); // cadence 1s, EWMA warm
        let base = det.phi(n, 9.0);
        assert!(base < 0.1, "just observed, φ ≈ 0, got {base}");
        let quiet = det.phi(n, 40.0);
        assert!(quiet > 6.0, "~30s of silence at 1s cadence must exceed down_phi, got {quiet}");
    }

    #[test]
    fn suspect_recovers_with_hysteresis() {
        let mut det = AccrualDetector::new(DetectorConfig::default());
        let n = node(0);
        warm(&mut det, n, 5.0);
        // One failure → Suspect, boost 2.
        det.observe_failure(n, 5.0).unwrap();
        // One success: boost 1.0 ≥ 0.5·2.0 — still inside the band.
        assert!(det.observe_success(n, 5.5).is_none());
        assert_eq!(det.view(n), Health::Suspect);
        // Second success: boost 0.5 < 1.0 — recovered.
        let t = det.observe_success(n, 6.0).expect("past hysteresis");
        assert_eq!((t.from, t.to), (Health::Suspect, Health::Up));
    }

    #[test]
    fn down_recovers_only_after_probation() {
        let mut det = AccrualDetector::new(DetectorConfig::default());
        let n = node(0);
        warm(&mut det, n, 5.0);
        for k in 0..3 {
            det.observe_failure(n, 5.0 + 0.1 * f64::from(k));
        }
        assert_eq!(det.view(n), Health::Down);
        assert!(det.observe_success(n, 6.0).is_none(), "probation 1/3");
        assert!(det.observe_success(n, 7.0).is_none(), "probation 2/3");
        let t = det.observe_success(n, 8.0).expect("probation complete");
        assert_eq!((t.from, t.to), (Health::Down, Health::Up));
        // A failure mid-probation resets the streak.
        for k in 0..3 {
            det.observe_failure(n, 9.0 + 0.1 * f64::from(k));
        }
        det.observe_success(n, 10.0);
        det.observe_failure(n, 10.5);
        assert!(det.observe_success(n, 11.0).is_none());
        assert!(det.observe_success(n, 12.0).is_none());
        assert_eq!(det.view(n), Health::Down, "streak was reset");
    }

    #[test]
    fn unknown_nodes_are_benign() {
        let mut det = AccrualDetector::new(DetectorConfig::default());
        assert_eq!(det.phi(node(7), 100.0), 0.0);
        assert_eq!(det.view(node(7)), Health::Up);
        det.forget(node(7)); // no-op
    }

    #[test]
    #[should_panic(expected = "down_phi must exceed suspect_phi")]
    fn config_rejects_inverted_thresholds() {
        let _ = AccrualDetector::new(DetectorConfig {
            suspect_phi: 5.0,
            down_phi: 2.0,
            ..DetectorConfig::default()
        });
    }
}
