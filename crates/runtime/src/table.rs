//! Probabilistic routing tables: the immutable artifact the re-solver
//! publishes and the dispatcher reads.
//!
//! A table maps a uniform draw `u ∈ [0,1)` to a node with probability
//! `p_i = λ_i / Φ` of the current allocation, in O(1) per draw via a
//! Walker [`AliasTable`] built once at construction (the inverse-CDF
//! path is retained as [`RoutingTable::route_cdf`] for comparison and
//! benchmarking). Tables are immutable once built; every change
//! (re-solve, node failure) produces a new table with a larger epoch,
//! published through [`EpochSwap`](crate::swap::EpochSwap).

use std::sync::Arc;

use gtlb_core::allocation::Allocation;
use gtlb_core::error::CoreError;

use crate::alias::{AliasBuilder, AliasTable, MAX_BELOW_ONE};
use crate::error::RuntimeError;
use crate::registry::NodeId;

/// An immutable routing table: node ids, routing probabilities, the
/// alias table used by the hot path, and the cumulative distribution
/// kept for the reference CDF path.
///
/// The node list and probability vector are refcounted: publishing a
/// repaired successor shares the (immutable) node list instead of
/// deep-copying it, and the shared probability allocation doubles as
/// [`TableBuilder`]'s O(1) proof that a repair base is its own latest
/// output.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTable {
    epoch: u64,
    nodes: Arc<Vec<NodeId>>,
    probs: Arc<Vec<f64>>,
    cum: Vec<f64>,
    alias: AliasTable,
}

impl RoutingTable {
    /// A placeholder with no nodes: every dispatch fails with
    /// `NoServingNodes` until a real table lands. Published before the
    /// first resolve, and again when the last serving node goes down.
    /// [`RoutingTable::route`] must not be called on it.
    #[must_use]
    pub fn empty(epoch: u64) -> Self {
        Self {
            epoch,
            nodes: Arc::new(Vec::new()),
            probs: Arc::new(Vec::new()),
            cum: Vec::new(),
            alias: AliasTable::empty(),
        }
    }

    /// Whether this is the empty placeholder.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Builds a table from per-node routing weights (not necessarily
    /// normalized — loads `λ_i` work directly).
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] when `nodes` is empty or the
    /// weights sum to zero; [`RuntimeError::Core`] when lengths mismatch
    /// or any weight is negative or non-finite.
    pub fn new(epoch: u64, nodes: Vec<NodeId>, weights: &[f64]) -> Result<Self, RuntimeError> {
        Self::with_alias_source(epoch, nodes, weights, AliasTable::new)
    }

    /// The shared construction pipeline: validation, normalization, and
    /// the pinned cumulative vector are identical for every builder; the
    /// alias table comes from `alias_for` (a fresh build here, a
    /// scratch-reusing or repairing build in [`TableBuilder`]), called
    /// with the normalized probabilities. Keeping one pipeline is what
    /// makes builder-produced tables bit-identical to [`Self::new`] by
    /// construction.
    fn with_alias_source(
        epoch: u64,
        nodes: Vec<NodeId>,
        weights: &[f64],
        alias_for: impl FnOnce(&[f64]) -> AliasTable,
    ) -> Result<Self, RuntimeError> {
        if nodes.len() != weights.len() {
            return Err(CoreError::BadInput(format!(
                "routing table has {} nodes but {} weights",
                nodes.len(),
                weights.len()
            ))
            .into());
        }
        if nodes.is_empty() {
            return Err(RuntimeError::NoServingNodes);
        }
        if let Some((i, &w)) =
            weights.iter().enumerate().find(|&(_, &w)| !(w.is_finite() && w >= 0.0))
        {
            return Err(CoreError::BadInput(format!(
                "routing weight for {} must be nonnegative and finite, got {w}",
                nodes[i]
            ))
            .into());
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(RuntimeError::NoServingNodes);
        }
        let probs: Vec<f64> = weights.iter().map(|&w| w / total).collect();
        let cum = Self::pinned_cum(&probs);
        let alias = alias_for(&probs);
        Ok(Self { epoch, nodes: Arc::new(nodes), probs: Arc::new(probs), cum, alias })
    }

    /// The cumulative distribution for `probs`: a serial prefix sum,
    /// pinned to exactly 1.0 from the last positive-probability node
    /// onward — draws arbitrarily close to 1 land on a node despite
    /// rounding in the partial sums, and trailing zero-probability
    /// nodes can never capture the rounding sliver below 1 (their
    /// pinned cum is never `<= u` for `u < 1`). Shared between the
    /// fresh-build pipeline and `TableBuilder`'s repair path so both
    /// assemble bitwise the same vector.
    fn pinned_cum(probs: &[f64]) -> Vec<f64> {
        let mut cum = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in probs {
            acc += p;
            cum.push(acc);
        }
        let last_positive = probs.iter().rposition(|&p| p > 0.0).expect("total > 0");
        for c in cum.iter_mut().skip(last_positive) {
            *c = 1.0;
        }
        cum
    }

    /// Builds a table from an [`Allocation`] over the same nodes (in
    /// order). Zero-total allocations (Φ = 0) fall back to capacity
    /// weights supplied in `fallback_weights`, keeping an idle system
    /// routable.
    ///
    /// # Errors
    /// As [`RoutingTable::new`].
    pub fn from_allocation(
        epoch: u64,
        nodes: Vec<NodeId>,
        allocation: &Allocation,
        fallback_weights: &[f64],
    ) -> Result<Self, RuntimeError> {
        if allocation.total() > 0.0 {
            Self::new(epoch, nodes, allocation.loads())
        } else {
            Self::new(epoch, nodes, fallback_weights)
        }
    }

    /// The publish epoch: strictly increasing across the tables a runtime
    /// publishes.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Node ids, in table order.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Normalized routing probabilities, in table order.
    #[must_use]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Routing probability of one node, if present.
    #[must_use]
    pub fn prob_of(&self, id: NodeId) -> Option<f64> {
        self.nodes.iter().position(|&n| n == id).map(|i| self.probs[i])
    }

    /// Routes one uniform draw `u ∈ [0,1)` to a node: one alias-table
    /// lookup, `O(1)` regardless of the node count. Consumes exactly
    /// the one draw it is given; out-of-range draws clamp into `[0,1)`.
    ///
    /// The mapping `u → node` differs from
    /// [`route_cdf`](Self::route_cdf) draw-by-draw but agrees with it
    /// in distribution: both select node `i` with probability `p_i`.
    #[must_use]
    #[inline]
    pub fn route(&self, u: f64) -> NodeId {
        self.nodes[self.alias.sample(u)]
    }

    /// Routes by table *position* instead of id — the batch hot path,
    /// which counts hits densely before resolving ids.
    #[must_use]
    #[inline]
    pub fn route_index(&self, u: f64) -> usize {
        self.alias.sample(u)
    }

    /// The reference inverse-CDF path: `O(log n)` `partition_point`
    /// over the cumulative distribution. Kept for the cdf-vs-alias
    /// benchmark and for distribution-agreement tests; the dispatchers
    /// use [`route`](Self::route).
    ///
    /// Draws are clamped to the largest `f64` below one (not
    /// `1.0 - f64::EPSILON`, which is two ulps down and unreachable
    /// from above anyway), so `u = 1.0` lands on the last node;
    /// non-finite draws pin to `0.0`, as in the alias path.
    #[must_use]
    pub fn route_cdf(&self, u: f64) -> NodeId {
        // NaN defeats `clamp` (NaN.clamp is NaN) and would make
        // `partition_point` return index 0 — possibly a leading
        // zero-probability node; pin non-finite draws to 0.0 instead
        // (a zero-prob leading node has `cum == 0.0 <= u`, so it is
        // still skipped).
        let u = if u.is_finite() { u.clamp(0.0, MAX_BELOW_ONE) } else { 0.0 };
        let i = self.cum.partition_point(|&c| c <= u).min(self.nodes.len() - 1);
        self.nodes[i]
    }

    /// The failure path: a new table (stamped `epoch`) with `id` removed
    /// and its probability mass redistributed proportionally over the
    /// survivors. This is the cheap immediate response to a node going
    /// down; the full re-solve follows asynchronously.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] when `id` is not in the table;
    /// [`RuntimeError::NoServingNodes`] when it was the last node (or
    /// held all the mass).
    pub fn without_node(&self, id: NodeId, epoch: u64) -> Result<Self, RuntimeError> {
        // One pass: collect the survivors and notice the victim on the
        // way through, instead of a `contains` scan followed by a
        // second filtering loop.
        let survivors = self.nodes.len().saturating_sub(1);
        let mut nodes = Vec::with_capacity(survivors);
        let mut weights = Vec::with_capacity(survivors);
        let mut found = false;
        for (&n, &p) in self.nodes.iter().zip(self.probs.iter()) {
            if n == id {
                found = true;
            } else {
                nodes.push(n);
                weights.push(p);
            }
        }
        if !found {
            return Err(RuntimeError::UnknownNode(id));
        }
        Self::new(epoch, nodes, &weights)
    }
}

/// A reusable routing-table builder for the publish path: wraps an
/// [`AliasBuilder`] (scratch stacks reused across publishes, build
/// traces recorded for incremental repair) plus a weights scratch
/// vector, so repeat publishes allocate only what the published table
/// itself owns.
///
/// Every table a builder produces is **bit-identical** to one the
/// stateless constructors ([`RoutingTable::new`] etc.) would produce:
/// the validation/normalization pipeline is literally shared, and the
/// [`update_weights`](Self::update_weights) repair path publishes a
/// vector that is a *fixed point* of that pipeline, with the alias
/// repair proven equivalent to a fresh build (see `alias.rs`). The
/// builder is an amortization — determinism fingerprints cannot tell
/// its tables from stateless ones.
#[derive(Debug, Default)]
pub struct TableBuilder {
    alias: AliasBuilder,
    /// Scratch for assembling perturbed weight vectors in
    /// [`update_weights`](Self::update_weights) and
    /// [`without_node`](Self::without_node).
    weights: Vec<f64>,
    /// The probability vector of the last table this builder produced,
    /// by allocation: the recorded alias trace describes exactly that
    /// table, so [`update_weights`](Self::update_weights) repairs only
    /// when its `base` shares this allocation (pointer equality implies
    /// bitwise equality) — any other base falls back to a rebuild.
    last: Option<Arc<Vec<f64>>>,
    /// Scratch for the changed-bucket list handed to the alias repair.
    changed: Vec<u32>,
    repairs: u64,
    rebuilds: u64,
}

impl TableBuilder {
    /// An empty builder; scratch grows to the table size on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Tables built via the incremental alias repair path since
    /// construction.
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Tables built via the full (scratch-reusing) alias rebuild path
    /// since construction.
    #[must_use]
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// As [`RoutingTable::new`], reusing this builder's alias scratch
    /// and recording the repair trace. Always a full alias rebuild.
    ///
    /// # Errors
    /// As [`RoutingTable::new`].
    pub fn build(
        &mut self,
        epoch: u64,
        nodes: Vec<NodeId>,
        weights: &[f64],
    ) -> Result<RoutingTable, RuntimeError> {
        let Self { alias, rebuilds, .. } = self;
        let table = RoutingTable::with_alias_source(epoch, nodes, weights, |probs| {
            *rebuilds += 1;
            alias.build(probs)
        })?;
        self.last = Some(Arc::clone(&table.probs));
        Ok(table)
    }

    /// As [`RoutingTable::from_allocation`], through the builder.
    ///
    /// # Errors
    /// As [`RoutingTable::new`].
    pub fn from_allocation(
        &mut self,
        epoch: u64,
        nodes: Vec<NodeId>,
        allocation: &Allocation,
        fallback_weights: &[f64],
    ) -> Result<RoutingTable, RuntimeError> {
        if allocation.total() > 0.0 {
            self.build(epoch, nodes, allocation.loads())
        } else {
            self.build(epoch, nodes, fallback_weights)
        }
    }

    /// As [`RoutingTable::without_node`], through the builder. Removing
    /// a node shrinks the table, which no trace can replay — this is
    /// always a full rebuild, just without the scratch allocations.
    ///
    /// # Errors
    /// As [`RoutingTable::without_node`].
    pub fn without_node(
        &mut self,
        base: &RoutingTable,
        id: NodeId,
        epoch: u64,
    ) -> Result<RoutingTable, RuntimeError> {
        let survivors = base.nodes.len().saturating_sub(1);
        let mut nodes = Vec::with_capacity(survivors);
        let mut weights = std::mem::take(&mut self.weights);
        weights.clear();
        let mut found = false;
        for (&n, &p) in base.nodes.iter().zip(base.probs.iter()) {
            if n == id {
                found = true;
            } else {
                nodes.push(n);
                weights.push(p);
            }
        }
        let result = if found {
            self.build(epoch, nodes, &weights)
        } else {
            Err(RuntimeError::UnknownNode(id))
        };
        self.weights = weights;
        result
    }

    /// The k ≪ n publish path: a new table (stamped `epoch`) over the
    /// same nodes as `base`, with the routing probability at each
    /// `(index, weight)` update replaced. Two publish paths, both
    /// deterministic, discriminated by [`repairs`](Self::repairs) /
    /// [`rebuilds`](Self::rebuilds):
    ///
    /// * **Repair** (the k ≪ n fast path): the updated probabilities
    ///   are published **verbatim** and the imbalance they introduce is
    ///   absorbed by the heaviest bucket (plus an ulp-level dust nudge
    ///   on the last positive bucket), making the patched vector's
    ///   serial sum *exactly* `1.0` — so normalization divides by one
    ///   (an IEEE identity), every other bucket keeps its bits, and the
    ///   alias table is repaired along only the affected donation
    ///   chains in O(affected) (see `alias.rs`). The published table is
    ///   a *fixed point* of the full pipeline: rebuilding from its own
    ///   probabilities reproduces it bit-for-bit.
    /// * **Rebuild** (the fallback, taken whenever the repair's
    ///   verified preconditions fail — large deltas, absorber
    ///   conflicts, a `base` that is not this builder's latest output):
    ///   the patched vector is renormalized exactly as
    ///   [`RoutingTable::new`] would, with a full scratch-reusing alias
    ///   build.
    ///
    /// # Errors
    /// As [`RoutingTable::new`], plus `BadInput` for an out-of-range
    /// index or a negative/non-finite update weight.
    pub fn update_weights(
        &mut self,
        base: &RoutingTable,
        epoch: u64,
        updates: &[(usize, f64)],
    ) -> Result<RoutingTable, RuntimeError> {
        for &(i, w) in updates {
            if i >= base.nodes.len() {
                return Err(CoreError::BadInput(format!(
                    "weight update index {i} out of range for a {}-node table",
                    base.nodes.len()
                ))
                .into());
            }
            if !(w.is_finite() && w >= 0.0) {
                return Err(CoreError::BadInput(format!(
                    "routing weight for {} must be nonnegative and finite, got {w}",
                    base.nodes[i]
                ))
                .into());
            }
        }
        if let Some(table) = self.try_repair(base, epoch, updates) {
            self.repairs += 1;
            self.last = Some(Arc::clone(&table.probs));
            return Ok(table);
        }
        // Fallback: P* (the live probabilities with the updates spliced
        // in) renormalized through the shared pipeline with a full
        // (scratch-reusing, trace-re-recording) alias build.
        self.weights.clear();
        self.weights.extend_from_slice(&base.probs);
        for &(i, w) in updates {
            self.weights[i] = w;
        }
        let Self { alias, weights, rebuilds, .. } = self;
        let nodes = (*base.nodes).clone();
        let table = RoutingTable::with_alias_source(epoch, nodes, weights, |probs| {
            *rebuilds += 1;
            alias.build(probs)
        })?;
        self.last = Some(Arc::clone(&table.probs));
        Ok(table)
    }

    /// The absorber fast path of [`update_weights`](Self::update_weights):
    /// splices the updates into a copy of `base`'s probabilities,
    /// adjusts the copy so its index-order serial sum is exactly
    /// `1.0`, then repairs the alias table along the affected donation
    /// chains. `None` means ineligible — fall back to the full
    /// rebuild. Touches no builder scratch until it commits.
    fn try_repair(
        &mut self,
        base: &RoutingTable,
        epoch: u64,
        updates: &[(usize, f64)],
    ) -> Option<RoutingTable> {
        let n = base.nodes.len();
        // Trace ↔ base coherence: the repair splices values out of
        // `base`'s arrays under the recorded build schedule, so that
        // schedule must describe exactly this table — i.e. `base` must
        // be this builder's own latest output. Sharing the probability
        // allocation proves it in O(1): pointer equality implies
        // bitwise equality.
        match &self.last {
            Some(last) if Arc::ptr_eq(last, &base.probs) => {}
            _ => return None,
        }
        let h = self.alias.heaviest()? as usize;
        let updated = |i: usize| updates.iter().any(|&(u, _)| u == i);
        // The heaviest bucket is the mass absorber; it cannot itself
        // carry a requested weight.
        if updated(h) {
            return None;
        }
        // P* with the absorber adjustments applied in place — the
        // repair path's candidate probability vector.
        let mut probs = (*base.probs).clone();
        for &(i, w) in updates {
            probs[i] = w;
        }
        // δ ≈ total − 1 is the imbalance the updates introduced. The
        // absorber's value only needs to be *approximately* right —
        // exactness comes from the dust solve below — so δ is a k-term
        // sum over the distinct update deltas, not an O(n) refold of
        // the whole vector.
        let mut delta = 0.0;
        for (pos, &(i, _)) in updates.iter().enumerate() {
            if updates[pos + 1..].iter().any(|&(i2, _)| i2 == i) {
                continue; // superseded: the last update at `i` wins
            }
            delta += probs[i] - base.probs[i];
        }
        let absorbed = base.probs[h] - delta;
        if !(absorbed > 0.0 && absorbed.is_finite()) {
            return None;
        }
        // Dust absorber: the last positive bucket (`h ≤ j`, since `h`
        // has positive mass). Everything past it contributes exact
        // zeros to the serial sum, so the fold's value responds to a
        // nudge here in O(1). When `j == h` one bucket plays both
        // roles.
        let j = probs.iter().rposition(|&p| p > 0.0)?;
        if j != h && updated(j) {
            return None;
        }
        if j != h {
            probs[h] = absorbed;
        }
        // The hot path's single O(n) serial fold: build the new cum
        // prefix *and* the dust solve's prefix in one pass. Serial
        // sums over bitwise-identical prefixes are bitwise identical,
        // so `base.cum` is reused verbatim up to the first index whose
        // bits moved — capped at the base's pin start (`base.cum` holds
        // `1.0`, not the raw fold, from its last positive bucket on).
        let j_base = base.probs.iter().rposition(|&p| p > 0.0)?;
        let mut fold_start = j.min(j_base);
        for &(i, _) in updates {
            if i < fold_start && probs[i].to_bits() != base.probs[i].to_bits() {
                fold_start = i;
            }
        }
        if h < fold_start && probs[h].to_bits() != base.probs[h].to_bits() {
            fold_start = h;
        }
        let mut cum = Vec::with_capacity(n);
        cum.extend_from_slice(&base.cum[..fold_start]);
        let mut acc = if fold_start == 0 { 0.0 } else { base.cum[fold_start - 1] };
        for &w in &probs[fold_start..j] {
            acc += w;
            cum.push(acc);
        }
        // Solve fl(prefix ⊕ x) == 1.0 for the dust bucket's value. For
        // prefix ∈ [0.5, 2] the Sterbenz lemma makes `1 − prefix` exact
        // and the first candidate lands; otherwise a few
        // correction-then-ulp steps close the gap.
        let prefix = acc;
        let mut x = 1.0 - prefix;
        let mut solved = false;
        for _ in 0..16 {
            if !(x > 0.0 && x.is_finite()) {
                break;
            }
            let sum = prefix + x;
            if sum == 1.0 {
                solved = true;
                break;
            }
            let corrected = x + (1.0 - sum);
            x = if corrected == x {
                // Below the correction's resolution: step one ulp.
                if sum > 1.0 {
                    f64::from_bits(x.to_bits() - 1)
                } else {
                    f64::from_bits(x.to_bits() + 1)
                }
            } else {
                corrected
            };
        }
        if !solved {
            return None;
        }
        probs[j] = x;
        // The buckets whose bits actually moved: updates and absorbers
        // that landed back on their old value drop out — in particular
        // the dust bucket usually keeps its bits (with exact base
        // arithmetic the solve reproduces them), which matters because
        // the last positive bucket acts *early* in the construction
        // schedule, and an early perturbation cascades through
        // everything after it.
        self.changed.clear();
        for &(i, _) in updates {
            if probs[i].to_bits() != base.probs[i].to_bits() {
                self.changed.push(i as u32);
            }
        }
        if probs[h].to_bits() != base.probs[h].to_bits() {
            self.changed.push(h as u32);
        }
        if j != h && probs[j].to_bits() != base.probs[j].to_bits() {
            self.changed.push(j as u32);
        }
        if self.changed.is_empty() {
            // A bitwise no-op patch: nothing to repair against (and the
            // degenerate republish is not worth a dedicated path).
            return None;
        }
        let repaired = self.alias.repair(&base.alias, &base.probs, &probs, &self.changed)?;
        // Assemble exactly what `RoutingTable::new` computes on this
        // vector: its serial total is exactly 1.0 (what the solve
        // bought), so normalization divides by one — the IEEE identity
        // `p / 1.0 == p` — and the published probabilities are the
        // adjusted vector verbatim. The fold above already produced
        // `cum[..j]`; `j` is the new last positive bucket (`x > 0`), so
        // the pinned region [`j`, `n`) is all `1.0` — exactly what
        // `pinned_cum` would write there.
        cum.resize(n, 1.0);
        let nodes = Arc::clone(&base.nodes);
        Some(RoutingTable { epoch, nodes, probs: Arc::new(probs), cum, alias: repaired })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raws: &[u64]) -> Vec<NodeId> {
        raws.iter().map(|&r| NodeId::from_raw(r)).collect()
    }

    #[test]
    fn normalizes_weights() {
        let t = RoutingTable::new(1, ids(&[0, 1, 2]), &[2.0, 1.0, 1.0]).unwrap();
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.probs(), &[0.5, 0.25, 0.25]);
        assert_eq!(t.prob_of(NodeId::from_raw(1)), Some(0.25));
        assert_eq!(t.prob_of(NodeId::from_raw(9)), None);
    }

    #[test]
    fn rejects_malformed_tables() {
        assert!(matches!(RoutingTable::new(0, vec![], &[]), Err(RuntimeError::NoServingNodes)));
        assert!(matches!(
            RoutingTable::new(0, ids(&[0]), &[0.0]),
            Err(RuntimeError::NoServingNodes)
        ));
        assert!(RoutingTable::new(0, ids(&[0, 1]), &[1.0]).is_err());
        assert!(RoutingTable::new(0, ids(&[0, 1]), &[1.0, -0.1]).is_err());
        assert!(RoutingTable::new(0, ids(&[0, 1]), &[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn route_cdf_respects_the_cdf() {
        let t = RoutingTable::new(0, ids(&[10, 20, 30]), &[0.5, 0.25, 0.25]).unwrap();
        assert_eq!(t.route_cdf(0.0), NodeId::from_raw(10));
        assert_eq!(t.route_cdf(0.49), NodeId::from_raw(10));
        assert_eq!(t.route_cdf(0.5), NodeId::from_raw(20));
        assert_eq!(t.route_cdf(0.74), NodeId::from_raw(20));
        assert_eq!(t.route_cdf(0.75), NodeId::from_raw(30));
        assert_eq!(t.route_cdf(0.999_999), NodeId::from_raw(30));
        // Out-of-range draws clamp instead of panicking.
        assert_eq!(t.route_cdf(1.0), NodeId::from_raw(30));
        assert_eq!(t.route_cdf(-0.5), NodeId::from_raw(10));
    }

    #[test]
    fn route_agrees_with_cdf_in_distribution() {
        // Alias and inverse-CDF routing differ draw-by-draw but must
        // produce the same per-node frequencies over a fine grid.
        let probs = [0.5, 0.25, 0.25];
        let t = RoutingTable::new(0, ids(&[10, 20, 30]), &probs).unwrap();
        let draws = 200_000;
        let mut alias_counts = [0u64; 3];
        let mut cdf_counts = [0u64; 3];
        let slot = |id: NodeId| (id.raw() / 10 - 1) as usize;
        for k in 0..draws {
            let u = k as f64 / draws as f64;
            alias_counts[slot(t.route(u))] += 1;
            cdf_counts[slot(t.route_cdf(u))] += 1;
        }
        for i in 0..3 {
            let (a, c) = (alias_counts[i] as f64, cdf_counts[i] as f64);
            assert!((a - c).abs() / (draws as f64) < 1e-3, "node {i}: alias {a} vs cdf {c}");
            assert!((a / draws as f64 - probs[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn draws_rounding_to_one_land_on_a_node() {
        // Regression: 1.0 − 1e-17 rounds to exactly 1.0 in f64; both
        // paths must clamp it below one instead of indexing past the
        // table (the CDF path used 1.0 − ε, two ulps down — the new
        // clamp is the largest f64 strictly below one).
        let u: f64 = 1.0 - 1e-17;
        assert_eq!(u.to_bits(), 1.0f64.to_bits());
        let t = RoutingTable::new(0, ids(&[10, 20]), &[0.5, 0.5]).unwrap();
        assert_eq!(t.route_cdf(u), NodeId::from_raw(20));
        let routed = t.route(u);
        assert!(t.prob_of(routed).unwrap() > 0.0);
        let single = RoutingTable::new(0, ids(&[7]), &[1.0]).unwrap();
        assert_eq!(single.route(u), NodeId::from_raw(7));
        assert_eq!(single.route_cdf(u), NodeId::from_raw(7));
    }

    #[test]
    fn zero_probability_nodes_are_never_routed() {
        let t = RoutingTable::new(0, ids(&[0, 1, 2]), &[0.5, 0.0, 0.5]).unwrap();
        for k in 0..1000 {
            let u = k as f64 / 1000.0;
            assert_ne!(t.route(u), NodeId::from_raw(1));
            assert_ne!(t.route_cdf(u), NodeId::from_raw(1));
        }
    }

    #[test]
    fn non_finite_draws_never_route_zero_probability_nodes() {
        // Regression: NaN defeats `clamp` (NaN.clamp is NaN), and a NaN
        // reaching `partition_point` returns index 0 — the *leading*
        // zero-probability node here. Both public paths must pin
        // non-finite draws to 0.0 instead.
        let t = RoutingTable::new(0, ids(&[0, 1]), &[0.0, 1.0]).unwrap();
        for u in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(t.route(u), NodeId::from_raw(1));
            assert_eq!(t.route_cdf(u), NodeId::from_raw(1));
            assert_eq!(t.route_index(u), 1);
        }
    }

    #[test]
    fn route_index_matches_route() {
        let t = RoutingTable::new(0, ids(&[5, 9, 12]), &[0.2, 0.5, 0.3]).unwrap();
        for k in 0..4096 {
            let u = k as f64 / 4096.0;
            assert_eq!(t.nodes()[t.route_index(u)], t.route(u));
        }
    }

    #[test]
    fn without_node_renormalizes_proportionally() {
        let t = RoutingTable::new(5, ids(&[0, 1, 2]), &[0.5, 0.3, 0.2]).unwrap();
        let t2 = t.without_node(NodeId::from_raw(1), 6).unwrap();
        assert_eq!(t2.epoch(), 6);
        assert_eq!(t2.nodes(), &ids(&[0, 2])[..]);
        assert!((t2.probs()[0] - 0.5 / 0.7).abs() < 1e-12);
        assert!((t2.probs()[1] - 0.2 / 0.7).abs() < 1e-12);
    }

    #[test]
    fn without_node_edge_cases() {
        let t = RoutingTable::new(0, ids(&[0]), &[1.0]).unwrap();
        assert!(matches!(
            t.without_node(NodeId::from_raw(0), 1),
            Err(RuntimeError::NoServingNodes)
        ));
        assert!(matches!(
            t.without_node(NodeId::from_raw(7), 1),
            Err(RuntimeError::UnknownNode(_))
        ));
        assert!(RoutingTable::empty(2).is_empty());
        assert_eq!(RoutingTable::empty(2).epoch(), 2);
    }

    #[test]
    fn from_allocation_falls_back_when_idle() {
        let alloc = Allocation::new(vec![0.0, 0.0]);
        let t = RoutingTable::from_allocation(3, ids(&[0, 1]), &alloc, &[3.0, 1.0]).unwrap();
        assert_eq!(t.probs(), &[0.75, 0.25]);
        let alloc = Allocation::new(vec![0.2, 0.6]);
        let t = RoutingTable::from_allocation(4, ids(&[0, 1]), &alloc, &[3.0, 1.0]).unwrap();
        assert!((t.probs()[0] - 0.25).abs() < 1e-12);
    }

    /// Bitwise table equality: fingerprints hash the exact bits of the
    /// routed decisions, so `PartialEq`'s `-0.0 == 0.0` is too loose.
    fn assert_tables_bit_identical(a: &RoutingTable, b: &RoutingTable) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.nodes, b.nodes);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.probs), bits(&b.probs), "probs differ");
        assert_eq!(bits(&a.cum), bits(&b.cum), "cum differ");
        assert_eq!(a.alias, b.alias, "alias tables differ");
    }

    fn irregular_weights(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 1.0 + ((i as u64).wrapping_mul(2_654_435_761) % 997) as f64 / 997.0)
            .collect()
    }

    #[test]
    fn builder_build_matches_stateless_constructors() {
        let mut builder = TableBuilder::new();
        let weights = irregular_weights(48);
        let built = builder.build(7, ids(&(0..48).collect::<Vec<_>>()), &weights).unwrap();
        let fresh = RoutingTable::new(7, ids(&(0..48).collect::<Vec<_>>()), &weights).unwrap();
        assert_tables_bit_identical(&built, &fresh);

        let alloc = Allocation::new(vec![0.2, 0.6]);
        assert_tables_bit_identical(
            &builder.from_allocation(8, ids(&[0, 1]), &alloc, &[3.0, 1.0]).unwrap(),
            &RoutingTable::from_allocation(8, ids(&[0, 1]), &alloc, &[3.0, 1.0]).unwrap(),
        );

        assert_tables_bit_identical(
            &builder.without_node(&built, NodeId::from_raw(13), 9).unwrap(),
            &built.without_node(NodeId::from_raw(13), 9).unwrap(),
        );
        assert!(matches!(
            builder.without_node(&built, NodeId::from_raw(999), 9),
            Err(RuntimeError::UnknownNode(_))
        ));
        // Builder errors mirror the stateless path too.
        assert!(builder.build(0, ids(&[0, 1]), &[1.0]).is_err());
        assert!(matches!(builder.build(0, vec![], &[]), Err(RuntimeError::NoServingNodes)));
    }

    /// The `update_weights` postcondition for whichever path ran: a
    /// repair publishes a **fixed point** of the full pipeline (a fresh
    /// build of its own probabilities is bit-identical), a fallback
    /// publishes exactly the renormalized patched vector.
    fn assert_update_exact(
        was_repair: bool,
        base: &RoutingTable,
        result: &RoutingTable,
        updates: &[(usize, f64)],
    ) {
        let expect = if was_repair {
            result.probs().to_vec()
        } else {
            let mut patched = base.probs().to_vec();
            for &(i, w) in updates {
                patched[i] = w;
            }
            patched
        };
        assert_tables_bit_identical(
            result,
            &RoutingTable::new(result.epoch(), base.nodes().to_vec(), &expect).unwrap(),
        );
    }

    /// A weight family engineered so the repair fast path is
    /// *guaranteed* to engage for low-index updates: bucket 0 is the
    /// unique heaviest (the absorber — and, as the lowest-index large,
    /// the last active receiver, so its recorded steps sit at the end
    /// of the construction schedule), every weight is dyadic with the
    /// total a power of two (the serial probability fold is exact, so
    /// the dust absorber keeps its bits), and a trailing run of
    /// zero-weight buckets rides the small stack.
    fn absorber_weights(n: usize) -> Vec<f64> {
        assert!(n.is_power_of_two() && n >= 8);
        let mut w = vec![1.0; n];
        w[0] = 4.0;
        for x in w.iter_mut().skip(n - 3) {
            *x = 0.0;
        }
        w
    }

    #[test]
    fn update_weights_repairs_and_matches_fresh_build() {
        let n = 256;
        let node_ids = ids(&(0..n as u64).collect::<Vec<_>>());
        let weights = absorber_weights(n);
        let mut builder = TableBuilder::new();
        let base = builder.build(1, node_ids.clone(), &weights).unwrap();
        assert_eq!((builder.repairs(), builder.rebuilds()), (0, 1));

        // A small k=1 perturbation must take the repair path: the
        // requested probability is published verbatim, the heaviest
        // bucket absorbs the imbalance, everything else keeps its bits,
        // and the vector still sums to exactly one.
        let requested = base.probs()[17] * 1.5;
        let updated = builder.update_weights(&base, 2, &[(17, requested)]).unwrap();
        assert_eq!((builder.repairs(), builder.rebuilds()), (1, 1), "k=1 delta must repair");
        assert_eq!(updated.probs()[17].to_bits(), requested.to_bits(), "update lands verbatim");
        assert_eq!(updated.probs().iter().sum::<f64>(), 1.0, "exact unit mass");
        let moved = updated
            .probs()
            .iter()
            .zip(base.probs())
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        assert!(moved <= 3, "k=1 repair moved {moved} probabilities (update + 2 absorbers max)");
        assert_update_exact(true, &base, &updated, &[(17, requested)]);

        // Zero-prob transition: park a node at zero, then bring it
        // back. Whichever path serves it, the published table is exact.
        let repairs = builder.repairs();
        let parked = builder.update_weights(&updated, 3, &[(40, 0.0)]).unwrap();
        assert_eq!(parked.probs()[40], 0.0);
        assert_update_exact(builder.repairs() > repairs, &updated, &parked, &[(40, 0.0)]);
        let repairs = builder.repairs();
        let revived = builder.update_weights(&parked, 4, &[(40, 0.004)]).unwrap();
        assert_update_exact(builder.repairs() > repairs, &parked, &revived, &[(40, 0.004)]);

        // Every publish is accounted for on exactly one counter.
        assert_eq!(builder.repairs() + builder.rebuilds(), 4);
    }

    #[test]
    fn update_weights_falls_back_when_repair_cannot_apply() {
        // Small enough that the cascade budgets never bind: whether the
        // repair engages is decided purely by its verified
        // preconditions.
        let n = 32;
        let node_ids = ids(&(0..n as u64).collect::<Vec<_>>());
        let weights = irregular_weights(n);
        let mut builder = TableBuilder::new();
        let base = builder.build(1, node_ids.clone(), &weights).unwrap();

        // A delta far past the absorber's capacity: caught and served
        // by the fallback — exactly `RoutingTable::new` on the patched
        // vector.
        let big = [(3usize, base.probs()[3] * 40.0)];
        let rebuilds = builder.rebuilds();
        let updated = builder.update_weights(&base, 2, &big).unwrap();
        assert_eq!(builder.rebuilds(), rebuilds + 1, "oversized delta must rebuild");
        assert_update_exact(false, &base, &updated, &big);

        // A base that is not the builder's latest output fails the
        // coherence check (the recorded trace describes `updated`, not
        // `base`) and falls back too: correctness never depends on the
        // caller passing the freshest table.
        let small = [(5usize, base.probs()[5] * (1.0 + 1e-6))];
        let rebuilds = builder.rebuilds();
        let stale = builder.update_weights(&base, 3, &small).unwrap();
        assert_eq!(builder.rebuilds(), rebuilds + 1, "stale base must rebuild");
        assert_update_exact(false, &base, &stale, &small);

        // The rebuild re-recorded the trace, so a small delta on the
        // fresh table repairs again — but updating the heaviest node
        // (the absorber itself) cannot, and rebuilds instead.
        let mut h = 0;
        for (i, &p) in stale.probs().iter().enumerate() {
            if p > stale.probs()[h] {
                h = i;
            }
        }
        let idx = if h <= 1 { 2 } else { h - 1 };
        let small = [(idx, stale.probs()[idx] * (1.0 - 1e-9))];
        let repairs = builder.repairs();
        let chained = builder.update_weights(&stale, 4, &small).unwrap();
        assert_eq!(builder.repairs(), repairs + 1, "fresh trace must repair");
        assert_update_exact(true, &stale, &chained, &small);
        let via_h = [(h, chained.probs()[h] * 1.001)];
        let rebuilds = builder.rebuilds();
        let absorbed = builder.update_weights(&chained, 5, &via_h).unwrap();
        assert_eq!(builder.rebuilds(), rebuilds + 1, "updating the absorber rebuilds");
        assert_update_exact(false, &chained, &absorbed, &via_h);
    }

    #[test]
    fn update_weights_validates_input() {
        let mut builder = TableBuilder::new();
        let base = builder.build(1, ids(&[0, 1]), &[1.0, 3.0]).unwrap();
        assert!(builder.update_weights(&base, 2, &[(2, 1.0)]).is_err(), "index out of range");
        assert!(builder.update_weights(&base, 2, &[(0, -1.0)]).is_err(), "negative weight");
        assert!(builder.update_weights(&base, 2, &[(0, f64::NAN)]).is_err(), "non-finite weight");
        assert!(
            matches!(
                builder.update_weights(&base, 2, &[(0, 0.0), (1, 0.0)]),
                Err(RuntimeError::NoServingNodes)
            ),
            "zeroing all mass"
        );
        // An empty update list is just a republish of the same vector
        // (its serial sum is exactly 1.0 here, so even the absorbers
        // keep their bits).
        let same = builder.update_weights(&base, 5, &[]).unwrap();
        assert_eq!(same.probs(), base.probs());
        assert_eq!(same.epoch(), 5);
    }
}
