//! Probabilistic routing tables: the immutable artifact the re-solver
//! publishes and the dispatcher reads.
//!
//! A table maps a uniform draw `u ∈ [0,1)` to a node with probability
//! `p_i = λ_i / Φ` of the current allocation, in O(1) per draw via a
//! Walker [`AliasTable`] built once at construction (the inverse-CDF
//! path is retained as [`RoutingTable::route_cdf`] for comparison and
//! benchmarking). Tables are immutable once built; every change
//! (re-solve, node failure) produces a new table with a larger epoch,
//! published through [`EpochSwap`](crate::swap::EpochSwap).

use gtlb_core::allocation::Allocation;
use gtlb_core::error::CoreError;

use crate::alias::{AliasTable, MAX_BELOW_ONE};
use crate::error::RuntimeError;
use crate::registry::NodeId;

/// An immutable routing table: node ids, routing probabilities, the
/// alias table used by the hot path, and the cumulative distribution
/// kept for the reference CDF path.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTable {
    epoch: u64,
    nodes: Vec<NodeId>,
    probs: Vec<f64>,
    cum: Vec<f64>,
    alias: AliasTable,
}

impl RoutingTable {
    /// A placeholder with no nodes: every dispatch fails with
    /// `NoServingNodes` until a real table lands. Published before the
    /// first resolve, and again when the last serving node goes down.
    /// [`RoutingTable::route`] must not be called on it.
    #[must_use]
    pub fn empty(epoch: u64) -> Self {
        Self {
            epoch,
            nodes: Vec::new(),
            probs: Vec::new(),
            cum: Vec::new(),
            alias: AliasTable::empty(),
        }
    }

    /// Whether this is the empty placeholder.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Builds a table from per-node routing weights (not necessarily
    /// normalized — loads `λ_i` work directly).
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] when `nodes` is empty or the
    /// weights sum to zero; [`RuntimeError::Core`] when lengths mismatch
    /// or any weight is negative or non-finite.
    pub fn new(epoch: u64, nodes: Vec<NodeId>, weights: &[f64]) -> Result<Self, RuntimeError> {
        if nodes.len() != weights.len() {
            return Err(CoreError::BadInput(format!(
                "routing table has {} nodes but {} weights",
                nodes.len(),
                weights.len()
            ))
            .into());
        }
        if nodes.is_empty() {
            return Err(RuntimeError::NoServingNodes);
        }
        if let Some((i, &w)) =
            weights.iter().enumerate().find(|&(_, &w)| !(w.is_finite() && w >= 0.0))
        {
            return Err(CoreError::BadInput(format!(
                "routing weight for {} must be nonnegative and finite, got {w}",
                nodes[i]
            ))
            .into());
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(RuntimeError::NoServingNodes);
        }
        let probs: Vec<f64> = weights.iter().map(|&w| w / total).collect();
        let mut cum = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cum.push(acc);
        }
        // Pin the cumulative values from the last positive-probability
        // node onward to exactly 1.0: draws arbitrarily close to 1 land
        // on a node despite rounding in the partial sums, and trailing
        // zero-probability nodes can never capture the rounding sliver
        // below 1 (their pinned cum is never `<= u` for `u < 1`).
        let last_positive = probs.iter().rposition(|&p| p > 0.0).expect("total > 0");
        for c in cum.iter_mut().skip(last_positive) {
            *c = 1.0;
        }
        let alias = AliasTable::new(&probs);
        Ok(Self { epoch, nodes, probs, cum, alias })
    }

    /// Builds a table from an [`Allocation`] over the same nodes (in
    /// order). Zero-total allocations (Φ = 0) fall back to capacity
    /// weights supplied in `fallback_weights`, keeping an idle system
    /// routable.
    ///
    /// # Errors
    /// As [`RoutingTable::new`].
    pub fn from_allocation(
        epoch: u64,
        nodes: Vec<NodeId>,
        allocation: &Allocation,
        fallback_weights: &[f64],
    ) -> Result<Self, RuntimeError> {
        if allocation.total() > 0.0 {
            Self::new(epoch, nodes, allocation.loads())
        } else {
            Self::new(epoch, nodes, fallback_weights)
        }
    }

    /// The publish epoch: strictly increasing across the tables a runtime
    /// publishes.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Node ids, in table order.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Normalized routing probabilities, in table order.
    #[must_use]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Routing probability of one node, if present.
    #[must_use]
    pub fn prob_of(&self, id: NodeId) -> Option<f64> {
        self.nodes.iter().position(|&n| n == id).map(|i| self.probs[i])
    }

    /// Routes one uniform draw `u ∈ [0,1)` to a node: one alias-table
    /// lookup, `O(1)` regardless of the node count. Consumes exactly
    /// the one draw it is given; out-of-range draws clamp into `[0,1)`.
    ///
    /// The mapping `u → node` differs from
    /// [`route_cdf`](Self::route_cdf) draw-by-draw but agrees with it
    /// in distribution: both select node `i` with probability `p_i`.
    #[must_use]
    #[inline]
    pub fn route(&self, u: f64) -> NodeId {
        self.nodes[self.alias.sample(u)]
    }

    /// Routes by table *position* instead of id — the batch hot path,
    /// which counts hits densely before resolving ids.
    #[must_use]
    #[inline]
    pub fn route_index(&self, u: f64) -> usize {
        self.alias.sample(u)
    }

    /// The reference inverse-CDF path: `O(log n)` `partition_point`
    /// over the cumulative distribution. Kept for the cdf-vs-alias
    /// benchmark and for distribution-agreement tests; the dispatchers
    /// use [`route`](Self::route).
    ///
    /// Draws are clamped to the largest `f64` below one (not
    /// `1.0 - f64::EPSILON`, which is two ulps down and unreachable
    /// from above anyway), so `u = 1.0` lands on the last node;
    /// non-finite draws pin to `0.0`, as in the alias path.
    #[must_use]
    pub fn route_cdf(&self, u: f64) -> NodeId {
        // NaN defeats `clamp` (NaN.clamp is NaN) and would make
        // `partition_point` return index 0 — possibly a leading
        // zero-probability node; pin non-finite draws to 0.0 instead
        // (a zero-prob leading node has `cum == 0.0 <= u`, so it is
        // still skipped).
        let u = if u.is_finite() { u.clamp(0.0, MAX_BELOW_ONE) } else { 0.0 };
        let i = self.cum.partition_point(|&c| c <= u).min(self.nodes.len() - 1);
        self.nodes[i]
    }

    /// The failure path: a new table (stamped `epoch`) with `id` removed
    /// and its probability mass redistributed proportionally over the
    /// survivors. This is the cheap immediate response to a node going
    /// down; the full re-solve follows asynchronously.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownNode`] when `id` is not in the table;
    /// [`RuntimeError::NoServingNodes`] when it was the last node (or
    /// held all the mass).
    pub fn without_node(&self, id: NodeId, epoch: u64) -> Result<Self, RuntimeError> {
        // One pass: collect the survivors and notice the victim on the
        // way through, instead of a `contains` scan followed by a
        // second filtering loop.
        let survivors = self.nodes.len().saturating_sub(1);
        let mut nodes = Vec::with_capacity(survivors);
        let mut weights = Vec::with_capacity(survivors);
        let mut found = false;
        for (&n, &p) in self.nodes.iter().zip(&self.probs) {
            if n == id {
                found = true;
            } else {
                nodes.push(n);
                weights.push(p);
            }
        }
        if !found {
            return Err(RuntimeError::UnknownNode(id));
        }
        Self::new(epoch, nodes, &weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raws: &[u64]) -> Vec<NodeId> {
        raws.iter().map(|&r| NodeId::from_raw(r)).collect()
    }

    #[test]
    fn normalizes_weights() {
        let t = RoutingTable::new(1, ids(&[0, 1, 2]), &[2.0, 1.0, 1.0]).unwrap();
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.probs(), &[0.5, 0.25, 0.25]);
        assert_eq!(t.prob_of(NodeId::from_raw(1)), Some(0.25));
        assert_eq!(t.prob_of(NodeId::from_raw(9)), None);
    }

    #[test]
    fn rejects_malformed_tables() {
        assert!(matches!(RoutingTable::new(0, vec![], &[]), Err(RuntimeError::NoServingNodes)));
        assert!(matches!(
            RoutingTable::new(0, ids(&[0]), &[0.0]),
            Err(RuntimeError::NoServingNodes)
        ));
        assert!(RoutingTable::new(0, ids(&[0, 1]), &[1.0]).is_err());
        assert!(RoutingTable::new(0, ids(&[0, 1]), &[1.0, -0.1]).is_err());
        assert!(RoutingTable::new(0, ids(&[0, 1]), &[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn route_cdf_respects_the_cdf() {
        let t = RoutingTable::new(0, ids(&[10, 20, 30]), &[0.5, 0.25, 0.25]).unwrap();
        assert_eq!(t.route_cdf(0.0), NodeId::from_raw(10));
        assert_eq!(t.route_cdf(0.49), NodeId::from_raw(10));
        assert_eq!(t.route_cdf(0.5), NodeId::from_raw(20));
        assert_eq!(t.route_cdf(0.74), NodeId::from_raw(20));
        assert_eq!(t.route_cdf(0.75), NodeId::from_raw(30));
        assert_eq!(t.route_cdf(0.999_999), NodeId::from_raw(30));
        // Out-of-range draws clamp instead of panicking.
        assert_eq!(t.route_cdf(1.0), NodeId::from_raw(30));
        assert_eq!(t.route_cdf(-0.5), NodeId::from_raw(10));
    }

    #[test]
    fn route_agrees_with_cdf_in_distribution() {
        // Alias and inverse-CDF routing differ draw-by-draw but must
        // produce the same per-node frequencies over a fine grid.
        let probs = [0.5, 0.25, 0.25];
        let t = RoutingTable::new(0, ids(&[10, 20, 30]), &probs).unwrap();
        let draws = 200_000;
        let mut alias_counts = [0u64; 3];
        let mut cdf_counts = [0u64; 3];
        let slot = |id: NodeId| (id.raw() / 10 - 1) as usize;
        for k in 0..draws {
            let u = k as f64 / draws as f64;
            alias_counts[slot(t.route(u))] += 1;
            cdf_counts[slot(t.route_cdf(u))] += 1;
        }
        for i in 0..3 {
            let (a, c) = (alias_counts[i] as f64, cdf_counts[i] as f64);
            assert!((a - c).abs() / (draws as f64) < 1e-3, "node {i}: alias {a} vs cdf {c}");
            assert!((a / draws as f64 - probs[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn draws_rounding_to_one_land_on_a_node() {
        // Regression: 1.0 − 1e-17 rounds to exactly 1.0 in f64; both
        // paths must clamp it below one instead of indexing past the
        // table (the CDF path used 1.0 − ε, two ulps down — the new
        // clamp is the largest f64 strictly below one).
        let u: f64 = 1.0 - 1e-17;
        assert_eq!(u.to_bits(), 1.0f64.to_bits());
        let t = RoutingTable::new(0, ids(&[10, 20]), &[0.5, 0.5]).unwrap();
        assert_eq!(t.route_cdf(u), NodeId::from_raw(20));
        let routed = t.route(u);
        assert!(t.prob_of(routed).unwrap() > 0.0);
        let single = RoutingTable::new(0, ids(&[7]), &[1.0]).unwrap();
        assert_eq!(single.route(u), NodeId::from_raw(7));
        assert_eq!(single.route_cdf(u), NodeId::from_raw(7));
    }

    #[test]
    fn zero_probability_nodes_are_never_routed() {
        let t = RoutingTable::new(0, ids(&[0, 1, 2]), &[0.5, 0.0, 0.5]).unwrap();
        for k in 0..1000 {
            let u = k as f64 / 1000.0;
            assert_ne!(t.route(u), NodeId::from_raw(1));
            assert_ne!(t.route_cdf(u), NodeId::from_raw(1));
        }
    }

    #[test]
    fn non_finite_draws_never_route_zero_probability_nodes() {
        // Regression: NaN defeats `clamp` (NaN.clamp is NaN), and a NaN
        // reaching `partition_point` returns index 0 — the *leading*
        // zero-probability node here. Both public paths must pin
        // non-finite draws to 0.0 instead.
        let t = RoutingTable::new(0, ids(&[0, 1]), &[0.0, 1.0]).unwrap();
        for u in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(t.route(u), NodeId::from_raw(1));
            assert_eq!(t.route_cdf(u), NodeId::from_raw(1));
            assert_eq!(t.route_index(u), 1);
        }
    }

    #[test]
    fn route_index_matches_route() {
        let t = RoutingTable::new(0, ids(&[5, 9, 12]), &[0.2, 0.5, 0.3]).unwrap();
        for k in 0..4096 {
            let u = k as f64 / 4096.0;
            assert_eq!(t.nodes()[t.route_index(u)], t.route(u));
        }
    }

    #[test]
    fn without_node_renormalizes_proportionally() {
        let t = RoutingTable::new(5, ids(&[0, 1, 2]), &[0.5, 0.3, 0.2]).unwrap();
        let t2 = t.without_node(NodeId::from_raw(1), 6).unwrap();
        assert_eq!(t2.epoch(), 6);
        assert_eq!(t2.nodes(), &ids(&[0, 2])[..]);
        assert!((t2.probs()[0] - 0.5 / 0.7).abs() < 1e-12);
        assert!((t2.probs()[1] - 0.2 / 0.7).abs() < 1e-12);
    }

    #[test]
    fn without_node_edge_cases() {
        let t = RoutingTable::new(0, ids(&[0]), &[1.0]).unwrap();
        assert!(matches!(
            t.without_node(NodeId::from_raw(0), 1),
            Err(RuntimeError::NoServingNodes)
        ));
        assert!(matches!(
            t.without_node(NodeId::from_raw(7), 1),
            Err(RuntimeError::UnknownNode(_))
        ));
        assert!(RoutingTable::empty(2).is_empty());
        assert_eq!(RoutingTable::empty(2).epoch(), 2);
    }

    #[test]
    fn from_allocation_falls_back_when_idle() {
        let alloc = Allocation::new(vec![0.0, 0.0]);
        let t = RoutingTable::from_allocation(3, ids(&[0, 1]), &alloc, &[3.0, 1.0]).unwrap();
        assert_eq!(t.probs(), &[0.75, 0.25]);
        let alloc = Allocation::new(vec![0.2, 0.6]);
        let t = RoutingTable::from_allocation(4, ids(&[0, 1]), &alloc, &[3.0, 1.0]).unwrap();
        assert!((t.probs()[0] - 0.25).abs() < 1e-12);
    }
}
