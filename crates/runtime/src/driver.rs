//! The trace driver: a closed-loop harness replaying a synthetic job
//! stream through a [`Runtime`].
//!
//! The driver plays two roles at once:
//!
//! * **workload** — it generates Poisson arrivals at rate `Φ` on a
//!   virtual clock and draws exponential service times at the chosen
//!   node's true (nominal) rate, modeling each node as an FCFS queue via
//!   its next-free time;
//! * **telemetry** — it feeds every arrival and completed service back
//!   into the runtime's estimators, closing the loop the re-solver runs
//!   on.
//!
//! Response times are accumulated both raw (Welford) and as batch means,
//! so a run yields a 95 % confidence interval to hold against the
//! allocator's analytic prediction — the validation the integration test
//! and example perform. `run_jobs` is resumable: callers interleave
//! chunks of jobs with control-plane events (failures, drains,
//! re-solves) to exercise mid-run transitions.

use std::collections::HashMap;
use std::fmt;

use gtlb_desim::rng::Xoshiro256PlusPlus;
use gtlb_desim::stats::{BatchMeans, ConfidenceInterval, Welford};

use crate::error::RuntimeError;
use crate::fault::{DropCause, FaultInjector, FaultPlan};
use crate::registry::NodeId;
use crate::retry::{RetryPolicy, RETRY_STREAM};
use crate::{AttemptOutcome, Runtime, SpanKind, Submission, Trace};

/// RNG stream id of the driver's arrival process.
pub const DRIVER_ARRIVAL_STREAM: u64 = 0x0500;
/// Base RNG stream id of per-node service processes (node `i` uses
/// `DRIVER_SERVICE_STREAM_BASE + i`).
pub const DRIVER_SERVICE_STREAM_BASE: u64 = 0x0600;

/// Driver parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Base seed; arrival and per-node service streams are derived from
    /// it, so a trace is exactly reproducible.
    pub seed: u64,
    /// Response times per batch for the batch-means interval.
    pub batch_size: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { seed: 0x5EED, batch_size: 1_000 }
    }
}

/// Measurements accumulated since the last reset.
///
/// The per-job counters satisfy the conservation invariant
/// `accepted + rejected + deferred + failed == submitted` — every
/// offered job ends in exactly one of: completed (`accepted`, and
/// `jobs == accepted`), shed at first admission (`rejected` /
/// `deferred`), or abandoned with its retry budget exhausted
/// (`failed`). Without faults and retries, `failed` stays zero and the
/// invariant reduces to PR 2's admission partition.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Jobs completed (accepted jobs that ran to completion).
    pub jobs: u64,
    /// Jobs offered to the runtime.
    pub submitted: u64,
    /// Jobs eventually dispatched to a node that served them.
    pub accepted: u64,
    /// Jobs shed outright by admission control (first attempt).
    pub rejected: u64,
    /// Jobs shed with retry-later semantics by admission control
    /// (first attempt).
    pub deferred: u64,
    /// Jobs abandoned after their last attempt dropped or was shed
    /// (retry budget exhausted). Zero without fault injection.
    pub failed: u64,
    /// Redispatch attempts made (count of backoff waits, not jobs; one
    /// job can contribute up to `max_attempts − 1`).
    pub retried: u64,
    /// Dispatch attempts that dropped against a crashed, flaky,
    /// partitioned, or gray node (attempt count, not jobs). The
    /// mis-routing measure: each one is a job the routing table sent at
    /// a node dispatch could not reach. Zero without fault injection.
    pub dropped: u64,
    /// Mean observed response time (arrival → completion, retry delays
    /// included).
    pub mean_response: f64,
    /// 95 % batch-means confidence interval (needs ≥ 2 full batches).
    pub ci: Option<ConfidenceInterval>,
    /// Jobs per node, in node-id order (the node that completed them).
    pub per_node: Vec<(NodeId, u64)>,
    /// Terminal-attempt distribution: `attempts[k]` is the number of
    /// jobs that ended (completed, shed, or abandoned) on attempt
    /// `k + 1`. Without retries everything lands in `attempts[0]`; the
    /// vector's length is the deepest attempt any job reached.
    pub attempts: Vec<u64>,
}

impl TraceStats {
    /// Fraction of submitted jobs rejected (0 when nothing submitted).
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected as f64 / self.submitted as f64
        }
    }

    /// Fraction of submitted jobs abandoned with an exhausted retry
    /// budget (0 when nothing submitted).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.failed as f64 / self.submitted as f64
        }
    }

    /// Checks the conservation invariant; `true` when every submitted
    /// job is accounted for exactly once.
    #[must_use]
    pub fn is_conserved(&self) -> bool {
        self.accepted + self.rejected + self.deferred + self.failed == self.submitted
            && self.jobs == self.accepted
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} submitted: {} completed, {} rejected, {} deferred, {} failed ({} retries)",
            self.submitted, self.jobs, self.rejected, self.deferred, self.failed, self.retried
        )?;
        write!(f, "\nmean response {:.4}s", self.mean_response)?;
        if let Some(ci) = self.ci {
            write!(f, " ± {:.4} (95% CI)", ci.half_width)?;
        }
        if self.attempts.len() > 1 {
            write!(f, "\nattempts:")?;
            for (k, &count) in self.attempts.iter().enumerate() {
                write!(f, " {}×{count}", k + 1)?;
            }
        }
        for &(node, count) in &self.per_node {
            write!(f, "\n  {node}: {count} jobs")?;
        }
        Ok(())
    }
}

#[derive(Debug)]
struct Heartbeat {
    interval: f64,
    next: f64,
    /// Reused probe-target buffer, refilled from the registry each
    /// tick via [`Runtime::node_ids_into`] — heartbeats allocate
    /// nothing in steady state.
    ids: Vec<NodeId>,
}

/// Replays a synthetic arrival stream against a runtime.
#[derive(Debug)]
pub struct TraceDriver {
    phi: f64,
    seed: u64,
    batch_size: u64,
    clock: f64,
    arrivals: Xoshiro256PlusPlus,
    services: HashMap<NodeId, Xoshiro256PlusPlus>,
    next_free: HashMap<NodeId, f64>,
    responses: Welford,
    batches: BatchMeans,
    per_node: HashMap<NodeId, u64>,
    submitted: u64,
    accepted: u64,
    rejected: u64,
    deferred: u64,
    failed: u64,
    retried: u64,
    dropped: u64,
    attempts: Vec<u64>,
    faults: Option<FaultInjector>,
    retry: Option<(RetryPolicy, Xoshiro256PlusPlus)>,
    heartbeat: Option<Heartbeat>,
}

impl TraceDriver {
    /// Driver generating Poisson arrivals at total rate `phi`.
    ///
    /// # Panics
    /// If `phi` is nonpositive or non-finite.
    #[must_use]
    pub fn new(phi: f64, cfg: TraceConfig) -> Self {
        assert!(phi.is_finite() && phi > 0.0, "trace arrival rate must be positive");
        Self {
            phi,
            seed: cfg.seed,
            batch_size: cfg.batch_size,
            clock: 0.0,
            arrivals: Xoshiro256PlusPlus::stream(cfg.seed, DRIVER_ARRIVAL_STREAM),
            services: HashMap::new(),
            next_free: HashMap::new(),
            responses: Welford::new(),
            batches: BatchMeans::new(cfg.batch_size),
            per_node: HashMap::new(),
            submitted: 0,
            accepted: 0,
            rejected: 0,
            deferred: 0,
            failed: 0,
            retried: 0,
            dropped: 0,
            attempts: Vec::new(),
            faults: None,
            retry: None,
            heartbeat: None,
        }
    }

    /// Enacts a scripted fault plan: dispatch attempts against crashed
    /// or flaky nodes drop, slow windows degrade the true service rate
    /// the driver simulates with, and every drop/ack feeds the
    /// runtime's failure detector. Flaky draws come from the plan's own
    /// stream family, so the arrival/service/routing/admission
    /// sequences are untouched.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(FaultInjector::new(plan));
        self
    }

    /// Enables retry/timeout/backoff on dropped attempts. Backoff draws
    /// come from the driver seed's [`RETRY_STREAM`], disjoint from every
    /// other stream family.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        let rng = Xoshiro256PlusPlus::stream(self.seed, RETRY_STREAM);
        self.retry = Some((policy, rng));
        self
    }

    /// Probes every registered node each `interval` virtual seconds
    /// (Down nodes included — that is the probation path), feeding the
    /// runtime's failure detector. Without heartbeats the detector only
    /// sees dispatch outcomes, so an idle dead node is never noticed.
    ///
    /// # Panics
    /// If `interval` is nonpositive or non-finite.
    #[must_use]
    pub fn with_heartbeats(mut self, interval: f64) -> Self {
        assert!(
            interval.is_finite() && interval > 0.0,
            "heartbeat interval must be positive and finite"
        );
        self.heartbeat = Some(Heartbeat { interval, next: self.clock + interval, ids: Vec::new() });
        self
    }

    /// Current virtual time.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Pushes `jobs` jobs through the runtime: generate arrival →
    /// admission → dispatch → queue at the chosen node → record the
    /// response time and feed the estimators. Jobs shed by admission
    /// control are counted ([`TraceStats::rejected`] /
    /// [`TraceStats::deferred`]) and leave no queueing footprint; every
    /// arrival still feeds `Φ̂`, because admission reacts to *offered*
    /// load.
    ///
    /// Resumable: queues, clocks and RNG streams persist across calls, so
    /// callers can inject control-plane events between chunks.
    ///
    /// With a fault plan ([`TraceDriver::with_faults`]) attempts against
    /// sick nodes drop; with a retry policy ([`TraceDriver::with_retry`])
    /// a dropped attempt waits out its timeout, backs off with
    /// decorrelated jitter, and redispatches through the *current*
    /// routing snapshot — which the detector has typically already
    /// renormalized away from the sick node. A job whose budget runs out
    /// counts as [`TraceStats::failed`].
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] when an admitted job has nowhere
    /// to route and no faults are being injected (with faults on, a
    /// transiently empty table is a retryable condition, not an error);
    /// [`RuntimeError::UnknownNode`] when a chosen node was deregistered
    /// mid-flight.
    pub fn run_jobs(&mut self, runtime: &Runtime, jobs: u64) -> Result<(), RuntimeError> {
        for _ in 0..jobs {
            let gap = -self.arrivals.next_open01().ln() / self.phi;
            self.clock += gap;
            let arrived = self.clock;
            // Publish the virtual clock so telemetry events carry it.
            runtime.telemetry().set_clock(arrived);
            // Surface due partition/domain milestones before the
            // detector observations they explain.
            if let Some(f) = self.faults.as_mut() {
                for marker in f.drain_markers(arrived) {
                    runtime.telemetry().record_fault_marker(&marker);
                }
            }
            self.run_heartbeats(runtime, arrived)?;
            runtime.record_arrival(arrived);

            self.submitted += 1;
            // Tracing is draw-free: begin() is a hash plus a mask test,
            // so the sampled/unsampled decision cannot perturb the run.
            let mut trace = runtime.tracer().begin(self.submitted);
            let outcome = self.offer_job(runtime, arrived, &mut trace);
            if let Some(t) = trace.take() {
                let shard = t
                    .spans
                    .iter()
                    .find_map(|s| match s.kind {
                        SpanKind::Routed { shard, .. } => Some(shard as usize),
                        _ => None,
                    })
                    .unwrap_or(0);
                runtime.tracer().finish(shard, t);
            }
            outcome?;
        }
        Ok(())
    }

    /// Delivers all heartbeat ticks due at or before `upto`: every
    /// registered node is probed in registration order (Down nodes too —
    /// the probation path runs on probes), and the outcome feeds the
    /// runtime's failure detector.
    fn run_heartbeats(&mut self, runtime: &Runtime, upto: f64) -> Result<(), RuntimeError> {
        let Some(hb) = &mut self.heartbeat else { return Ok(()) };
        while hb.next <= upto {
            let t = hb.next;
            hb.next += hb.interval;
            runtime.node_ids_into(&mut hb.ids);
            for &node in &hb.ids {
                let dropped = self.faults.as_mut().is_some_and(|f| f.heartbeat_drops(node, t));
                if dropped {
                    runtime.observe_failure(node, t)?;
                } else {
                    runtime.observe_success(node, t)?;
                }
            }
        }
        Ok(())
    }

    /// Offers one job through admission/dispatch, simulating drops and
    /// the retry loop. Exactly one terminal counter is bumped per call
    /// (`accepted`, `rejected`, `deferred`, or `failed`) — the
    /// conservation invariant [`TraceStats::is_conserved`] checks.
    ///
    /// When the job is sampled (`trace` is `Some`), every decision the
    /// loop already makes is mirrored into a span — admission verdict,
    /// routing choice, each attempt's outcome, and the terminal — all
    /// stamped with the virtual times the loop computed anyway, so
    /// tracing adds no draws and no clock reads.
    fn offer_job(
        &mut self,
        runtime: &Runtime,
        arrived: f64,
        trace: &mut Option<Trace>,
    ) -> Result<(), RuntimeError> {
        let budget = self.retry.as_ref().map_or(1, |(p, _)| p.max_attempts());
        let timeout = self.retry.as_ref().map_or(0.0, |(p, _)| p.timeout());
        let chaos = self.faults.is_some();
        let mut t_attempt = arrived;
        let mut prev_backoff = 0.0;
        for attempt in 1..=budget {
            // Claim the round-robin shard explicitly so the trace can
            // name it; `submit()` is exactly `submit_on(next_shard())`,
            // so the decision stream is untouched.
            let shard = runtime.sharded_dispatcher().next_shard();
            let submission = match runtime.submit_on(shard) {
                Ok(s) => s,
                // With faults on, an empty table is transient (the last
                // serving node just went Down; recovery or probation will
                // repopulate it) — retryable, not fatal.
                Err(RuntimeError::NoServingNodes) if chaos => {
                    if let Some(t) = trace.as_mut() {
                        t.instant(
                            SpanKind::Attempt {
                                n: attempt,
                                outcome: AttemptOutcome::Timeout,
                                backoff: prev_backoff,
                            },
                            t_attempt,
                        );
                    }
                    if self.schedule_retry(
                        runtime,
                        attempt,
                        budget,
                        &mut t_attempt,
                        &mut prev_backoff,
                    ) {
                        continue;
                    }
                    if let Some(t) = trace.as_mut() {
                        t.instant(SpanKind::Failed, t_attempt);
                    }
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            let decision = match submission {
                Submission::Dispatched(d) => d,
                Submission::Rejected => {
                    if attempt == 1 {
                        if let Some(t) = trace.as_mut() {
                            t.instant(SpanKind::Rejected, arrived);
                        }
                        self.rejected += 1;
                        self.note_terminal(1);
                        return Ok(());
                    }
                    // Shed mid-retry: consumes budget like a drop.
                    if let Some(t) = trace.as_mut() {
                        t.instant(
                            SpanKind::Attempt {
                                n: attempt,
                                outcome: AttemptOutcome::Timeout,
                                backoff: prev_backoff,
                            },
                            t_attempt,
                        );
                    }
                    if self.schedule_retry(
                        runtime,
                        attempt,
                        budget,
                        &mut t_attempt,
                        &mut prev_backoff,
                    ) {
                        continue;
                    }
                    if let Some(t) = trace.as_mut() {
                        t.instant(SpanKind::Failed, t_attempt);
                    }
                    return Ok(());
                }
                Submission::Deferred => {
                    if attempt == 1 {
                        if let Some(t) = trace.as_mut() {
                            t.instant(SpanKind::Deferred, arrived);
                        }
                        self.deferred += 1;
                        self.note_terminal(1);
                        return Ok(());
                    }
                    if let Some(t) = trace.as_mut() {
                        t.instant(
                            SpanKind::Attempt {
                                n: attempt,
                                outcome: AttemptOutcome::Timeout,
                                backoff: prev_backoff,
                            },
                            t_attempt,
                        );
                    }
                    if self.schedule_retry(
                        runtime,
                        attempt,
                        budget,
                        &mut t_attempt,
                        &mut prev_backoff,
                    ) {
                        continue;
                    }
                    if let Some(t) = trace.as_mut() {
                        t.instant(SpanKind::Failed, t_attempt);
                    }
                    return Ok(());
                }
            };
            let node = decision.node;
            let mu = runtime.node_rate(node).ok_or(RuntimeError::UnknownNode(node))?;
            if let Some(t) = trace.as_mut() {
                // Head spans once, on the first attempt that dispatched.
                if t.spans.is_empty() {
                    t.instant(SpanKind::Admitted, arrived);
                    let depth = runtime.telemetry().ingest_depth().max(0.0) as u64;
                    t.instant(SpanKind::Queued { depth }, arrived);
                }
                t.instant(
                    SpanKind::Routed {
                        node: node.raw(),
                        epoch: decision.epoch,
                        shard: shard as u32,
                    },
                    t_attempt,
                );
            }

            let cause = self.faults.as_mut().and_then(|f| f.dispatch_drop_cause(node, t_attempt));
            if let Some(cause) = cause {
                // The attempt times out against the sick node; the
                // detector hears about it at the deadline.
                self.dropped += 1;
                runtime.telemetry().record_fault_drop(0, node, t_attempt);
                runtime.observe_failure(node, t_attempt + timeout)?;
                if let Some(t) = trace.as_mut() {
                    let outcome = match cause {
                        DropCause::Partition => AttemptOutcome::PartitionDrop,
                        DropCause::Crash | DropCause::Flaky | DropCause::Gray => {
                            AttemptOutcome::FaultDrop
                        }
                    };
                    t.interval(
                        SpanKind::Attempt { n: attempt, outcome, backoff: prev_backoff },
                        t_attempt,
                        t_attempt + timeout,
                    );
                }
                t_attempt += timeout;
                if self.schedule_retry(runtime, attempt, budget, &mut t_attempt, &mut prev_backoff)
                {
                    continue;
                }
                if let Some(t) = trace.as_mut() {
                    t.instant(SpanKind::Failed, t_attempt);
                }
                return Ok(());
            }

            // Served. Slow windows degrade the *true* rate the service
            // time is drawn with — the estimator's μ̂ then lags reality,
            // exactly the mismatch the re-solver must absorb.
            let factor = self.faults.as_ref().map_or(1.0, |f| f.service_factor(node, t_attempt));
            let seed = self.seed;
            let rng = self.services.entry(node).or_insert_with(|| {
                Xoshiro256PlusPlus::stream(seed, DRIVER_SERVICE_STREAM_BASE + node.raw())
            });
            let service = -rng.next_open01().ln() / (mu * factor);

            let free = self.next_free.entry(node).or_insert(0.0);
            let start = t_attempt.max(*free);
            let done = start + service;
            *free = done;

            runtime.record_service(node, service);
            if chaos {
                runtime.observe_success(node, done)?;
            }
            self.accepted += 1;
            self.note_terminal(attempt);
            let response = done - arrived;
            if let Some(t) = trace.as_mut() {
                t.interval(
                    SpanKind::Attempt {
                        n: attempt,
                        outcome: AttemptOutcome::Ok,
                        backoff: prev_backoff,
                    },
                    t_attempt,
                    done,
                );
                t.instant(SpanKind::Completed, done);
            }
            runtime.telemetry().record_queue_wait(start - t_attempt);
            runtime
                .telemetry()
                .record_response_traced(response, trace.as_ref().map(|t| t.id.raw()));
            self.responses.add(response);
            self.batches.add(response);
            *self.per_node.entry(node).or_insert(0) += 1;
            return Ok(());
        }
        unreachable!("every attempt either returns or schedules a retry");
    }

    /// Records a job ending (completed, shed, or abandoned) on attempt
    /// `attempt` in the terminal-attempt distribution.
    fn note_terminal(&mut self, attempt: u32) {
        let idx = attempt as usize - 1;
        if idx >= self.attempts.len() {
            self.attempts.resize(idx + 1, 0);
        }
        self.attempts[idx] += 1;
    }

    /// After a dropped or shed attempt: waits a decorrelated-jitter
    /// backoff and reports `true` when budget remains; otherwise charges
    /// the job to `failed` and reports `false`.
    fn schedule_retry(
        &mut self,
        runtime: &Runtime,
        attempt: u32,
        budget: u32,
        t_attempt: &mut f64,
        prev_backoff: &mut f64,
    ) -> bool {
        if attempt >= budget {
            self.failed += 1;
            self.note_terminal(attempt);
            return false;
        }
        let (policy, rng) = self.retry.as_mut().expect("budget > 1 implies a retry policy");
        let u = rng.next_open01();
        *prev_backoff = policy.backoff(*prev_backoff, u);
        *t_attempt += *prev_backoff;
        self.retried += 1;
        runtime.telemetry().record_retry(0, *prev_backoff);
        true
    }

    /// Drops accumulated measurements (warm-up deletion, or isolating a
    /// post-failure phase) while keeping the clock, queues, and RNG
    /// streams — the workload continues seamlessly.
    pub fn reset_measurements(&mut self) {
        self.responses = Welford::new();
        self.batches = BatchMeans::new(self.batch_size);
        self.per_node.clear();
        self.submitted = 0;
        self.accepted = 0;
        self.rejected = 0;
        self.deferred = 0;
        self.failed = 0;
        self.retried = 0;
        self.dropped = 0;
        self.attempts.clear();
    }

    /// Measurements since construction or the last reset.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        let mut per_node: Vec<(NodeId, u64)> =
            self.per_node.iter().map(|(&id, &c)| (id, c)).collect();
        per_node.sort_by_key(|&(id, _)| id);
        TraceStats {
            jobs: self.responses.count(),
            submitted: self.submitted,
            accepted: self.accepted,
            rejected: self.rejected,
            deferred: self.deferred,
            failed: self.failed,
            retried: self.retried,
            dropped: self.dropped,
            mean_response: self.responses.mean(),
            ci: (self.batches.batches() >= 2).then(|| self.batches.confidence_interval()),
            per_node,
            attempts: self.attempts.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::SchemeKind;
    use crate::RuntimeBuilder;

    fn runtime(rates: &[f64], phi: f64) -> (Runtime, Vec<NodeId>) {
        let rt = RuntimeBuilder::new()
            .seed(11)
            .scheme(SchemeKind::Coop)
            .nominal_arrival_rate(phi)
            .build();
        let ids: Vec<NodeId> = rates.iter().map(|&r| rt.register_node(r).unwrap()).collect();
        rt.resolve_now().unwrap();
        (rt, ids)
    }

    #[test]
    fn single_node_matches_mm1() {
        // One node: the closed loop is an M/M/1 queue with ρ = 0.5, whose
        // mean response time is 1/(μ − λ) = 2.
        let (rt, _) = runtime(&[1.0], 0.5);
        let mut driver = TraceDriver::new(0.5, TraceConfig { seed: 3, batch_size: 2_000 });
        driver.run_jobs(&rt, 10_000).unwrap();
        driver.reset_measurements(); // warm-up deletion
        driver.run_jobs(&rt, 40_000).unwrap();
        let stats = driver.stats();
        assert_eq!(stats.jobs, 40_000);
        let ci = stats.ci.expect("enough batches");
        let tol = (3.0 * ci.half_width).max(0.05 * 2.0);
        assert!(
            (stats.mean_response - 2.0).abs() < tol,
            "observed {} vs analytic 2.0 (tol {tol})",
            stats.mean_response
        );
    }

    #[test]
    fn trace_is_reproducible() {
        let run = || {
            let (rt, _) = runtime(&[1.0, 0.5], 0.6);
            let mut driver = TraceDriver::new(0.6, TraceConfig { seed: 9, batch_size: 100 });
            driver.run_jobs(&rt, 2_000).unwrap();
            (driver.stats().mean_response, driver.clock())
        };
        let (a, ta) = run();
        let (b, tb) = run();
        assert_eq!(a.to_bits(), b.to_bits(), "same seed ⇒ bit-identical trace");
        assert_eq!(ta.to_bits(), tb.to_bits());
    }

    #[test]
    fn stats_count_submissions_without_admission() {
        let (rt, _) = runtime(&[1.0], 0.5);
        let mut driver = TraceDriver::new(0.5, TraceConfig { seed: 2, batch_size: 100 });
        driver.run_jobs(&rt, 1_000).unwrap();
        let stats = driver.stats();
        assert_eq!(stats.submitted, 1_000);
        assert_eq!(stats.accepted, 1_000, "no admission control: everything admitted");
        assert_eq!(stats.rejected + stats.deferred, 0);
        assert_eq!(stats.rejection_rate(), 0.0);
    }

    #[test]
    fn admission_counts_are_conserved_and_surface_in_stats() {
        // Capacity 2, design load 1.8 ⇒ ρ = 0.9 against a 0.6 target.
        let rt = RuntimeBuilder::new()
            .seed(2)
            .scheme(SchemeKind::Coop)
            .nominal_arrival_rate(1.8)
            .admission(crate::AdmissionConfig { target_utilization: 0.6, defer_band: 0.0 })
            .build();
        rt.register_node(1.0).unwrap();
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();

        let mut driver = TraceDriver::new(1.8, TraceConfig { seed: 6, batch_size: 500 });
        driver.run_jobs(&rt, 10_000).unwrap();
        let stats = driver.stats();
        assert_eq!(stats.submitted, 10_000);
        assert_eq!(stats.accepted + stats.rejected + stats.deferred, stats.submitted);
        assert_eq!(stats.jobs, stats.accepted, "every admitted job completes");
        let expected = 1.0 - 0.6 / 0.9;
        assert!(
            (stats.rejection_rate() - expected).abs() < 0.05,
            "rejection rate {} vs thinning prediction {expected}",
            stats.rejection_rate()
        );
        // The runtime's own counters agree with the driver's view.
        let rt_stats = rt.admission_stats().unwrap();
        assert_eq!(rt_stats.submitted, stats.submitted);
        assert_eq!(rt_stats.rejected, stats.rejected);

        // reset_measurements clears the admission window too.
        driver.reset_measurements();
        assert_eq!(driver.stats().submitted, 0);
    }

    #[test]
    fn empty_fault_plan_reproduces_the_fault_free_trace() {
        // Chaos machinery enabled but idle must not perturb the trace:
        // the fault and retry streams are only drawn on actual drops.
        let base = || {
            let (rt, _) = runtime(&[1.0, 0.5], 0.6);
            let mut driver = TraceDriver::new(0.6, TraceConfig { seed: 9, batch_size: 100 });
            driver.run_jobs(&rt, 2_000).unwrap();
            (driver.stats().mean_response, driver.clock())
        };
        let chaos = || {
            let (rt, _) = runtime(&[1.0, 0.5], 0.6);
            let mut driver = TraceDriver::new(0.6, TraceConfig { seed: 9, batch_size: 100 })
                .with_faults(FaultPlan::new(77))
                .with_retry(RetryPolicy::new(crate::RetryConfig::default()).unwrap())
                .with_heartbeats(0.5);
            driver.run_jobs(&rt, 2_000).unwrap();
            (driver.stats().mean_response, driver.clock())
        };
        let (a, ta) = base();
        let (b, tb) = chaos();
        assert_eq!(a.to_bits(), b.to_bits(), "idle chaos must be invisible");
        assert_eq!(ta.to_bits(), tb.to_bits());
    }

    #[test]
    fn crash_with_retry_conserves_and_redispatches() {
        let (rt, ids) = runtime(&[1.0, 1.0], 0.8);
        let plan = FaultPlan::new(21).crash(ids[0], 50.0);
        let mut driver = TraceDriver::new(0.8, TraceConfig { seed: 13, batch_size: 500 })
            .with_faults(plan)
            .with_retry(RetryPolicy::new(crate::RetryConfig::default()).unwrap())
            .with_heartbeats(1.0);
        driver.run_jobs(&rt, 8_000).unwrap();
        let stats = driver.stats();
        assert!(stats.is_conserved(), "conservation violated: {stats:?}");
        assert!(stats.retried > 0, "attempts against the corpse must retry");
        assert_eq!(rt.node_health(ids[0]), Some(crate::Health::Down), "detector caught the crash");
        // After the detector downs node 0, everything lands on node 1.
        let survivors = stats.per_node.iter().find(|&&(n, _)| n == ids[1]).unwrap().1;
        assert!(survivors > stats.jobs / 2);
        assert!(stats.failure_rate() < 0.05, "retries should save nearly every job");
    }

    #[test]
    fn crash_without_retry_exhausts_budget_immediately() {
        let (rt, ids) = runtime(&[1.0, 1.0], 0.8);
        // No heartbeats: the detector only hears dispatch outcomes, so it
        // needs several dropped jobs before it downs the node — each one
        // a budget-1 failure.
        let plan = FaultPlan::new(5).crash(ids[0], 10.0);
        let mut driver =
            TraceDriver::new(0.8, TraceConfig { seed: 13, batch_size: 500 }).with_faults(plan);
        driver.run_jobs(&rt, 4_000).unwrap();
        let stats = driver.stats();
        assert!(stats.is_conserved(), "conservation violated: {stats:?}");
        assert_eq!(stats.retried, 0, "no retry policy, no retries");
        assert!(stats.failed >= 3, "attempts at the corpse before detection are lost: {stats:?}");
        assert_eq!(rt.node_health(ids[0]), Some(crate::Health::Down));
        assert_eq!(stats.jobs + stats.failed, stats.submitted);
    }

    #[test]
    fn chaos_trace_is_reproducible() {
        let run = || {
            let (rt, ids) = runtime(&[1.0, 0.5], 0.6);
            let plan =
                FaultPlan::new(3).crash_recover(ids[0], 40.0, 30.0).flaky(ids[1], 10.0, 20.0, 0.4);
            let mut driver = TraceDriver::new(0.6, TraceConfig { seed: 9, batch_size: 100 })
                .with_faults(plan)
                .with_retry(RetryPolicy::new(crate::RetryConfig::default()).unwrap())
                .with_heartbeats(1.0);
            driver.run_jobs(&rt, 4_000).unwrap();
            let s = driver.stats();
            (s.mean_response.to_bits(), s.failed, s.retried, driver.clock().to_bits())
        };
        assert_eq!(run(), run(), "same seed and plan ⇒ bit-identical chaos trace");
    }

    #[test]
    fn tracing_is_observation_only_and_records_causal_traces() {
        let run = |traced: bool| {
            let mut b =
                RuntimeBuilder::new().seed(11).scheme(SchemeKind::Coop).nominal_arrival_rate(0.6);
            if traced {
                b = b.tracing_config(crate::TracingConfig::sample_all());
            }
            let rt = b.build();
            let ids: Vec<NodeId> =
                [1.0, 0.5].iter().map(|&r| rt.register_node(r).unwrap()).collect();
            rt.resolve_now().unwrap();
            let plan =
                FaultPlan::new(3).crash_recover(ids[0], 40.0, 30.0).flaky(ids[1], 10.0, 20.0, 0.4);
            let mut driver = TraceDriver::new(0.6, TraceConfig { seed: 9, batch_size: 100 })
                .with_faults(plan)
                .with_retry(RetryPolicy::new(crate::RetryConfig::default()).unwrap())
                .with_heartbeats(1.0);
            driver.run_jobs(&rt, 2_000).unwrap();
            (driver.stats().mean_response.to_bits(), driver.clock().to_bits(), rt.tracer().traces())
        };
        let (a, ta, none) = run(false);
        let (b, tb, traces) = run(true);
        assert_eq!(a, b, "tracing must not perturb the trace");
        assert_eq!(ta, tb);
        assert!(none.is_empty(), "disabled tracer records nothing");
        assert!(!traces.is_empty(), "sample-all chaos run must record traces");
        for t in &traces {
            t.terminal().expect("every trace ends in a terminal span");
            assert_eq!(
                t.spans.iter().filter(|s| s.kind.is_terminal()).count(),
                1,
                "exactly one terminal: {t:?}"
            );
            for w in t.spans.windows(2) {
                assert!(w[1].start >= w[0].start, "spans out of causal order: {t:?}");
            }
        }
    }

    #[test]
    fn per_node_counts_follow_the_table() {
        // ρ = 0.8, high enough that COOP loads the slow node too.
        let (rt, ids) = runtime(&[4.0, 1.0], 4.0);
        let mut driver = TraceDriver::new(4.0, TraceConfig::default());
        driver.run_jobs(&rt, 20_000).unwrap();
        let stats = driver.stats();
        let table = rt.current_table();
        let total: u64 = stats.per_node.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 20_000);
        for &id in &ids {
            let p = table.prob_of(id).unwrap();
            let count = stats.per_node.iter().find(|&&(n, _)| n == id).map_or(0, |&(_, c)| c);
            let freq = count as f64 / total as f64;
            assert!((freq - p).abs() < 0.02, "{id}: freq {freq} vs p {p}");
            assert!(p > 0.0 && count > 0, "{id} should carry load at ρ = 0.8");
        }
    }
}
