//! The trace driver: a closed-loop harness replaying a synthetic job
//! stream through a [`Runtime`].
//!
//! The driver plays two roles at once:
//!
//! * **workload** — it generates Poisson arrivals at rate `Φ` on a
//!   virtual clock and draws exponential service times at the chosen
//!   node's true (nominal) rate, modeling each node as an FCFS queue via
//!   its next-free time;
//! * **telemetry** — it feeds every arrival and completed service back
//!   into the runtime's estimators, closing the loop the re-solver runs
//!   on.
//!
//! Response times are accumulated both raw (Welford) and as batch means,
//! so a run yields a 95 % confidence interval to hold against the
//! allocator's analytic prediction — the validation the integration test
//! and example perform. `run_jobs` is resumable: callers interleave
//! chunks of jobs with control-plane events (failures, drains,
//! re-solves) to exercise mid-run transitions.

use std::collections::HashMap;

use gtlb_desim::rng::Xoshiro256PlusPlus;
use gtlb_desim::stats::{BatchMeans, ConfidenceInterval, Welford};

use crate::error::RuntimeError;
use crate::registry::NodeId;
use crate::Runtime;

/// RNG stream id of the driver's arrival process.
pub const DRIVER_ARRIVAL_STREAM: u64 = 0x0500;
/// Base RNG stream id of per-node service processes (node `i` uses
/// `DRIVER_SERVICE_STREAM_BASE + i`).
pub const DRIVER_SERVICE_STREAM_BASE: u64 = 0x0600;

/// Driver parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Base seed; arrival and per-node service streams are derived from
    /// it, so a trace is exactly reproducible.
    pub seed: u64,
    /// Response times per batch for the batch-means interval.
    pub batch_size: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { seed: 0x5EED, batch_size: 1_000 }
    }
}

/// Measurements accumulated since the last reset.
///
/// The admission counters satisfy the conservation invariant
/// `accepted + rejected + deferred == submitted`; without admission
/// control every submitted job is accepted.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Jobs completed (accepted jobs that ran to completion).
    pub jobs: u64,
    /// Jobs offered to the runtime.
    pub submitted: u64,
    /// Jobs admitted and dispatched.
    pub accepted: u64,
    /// Jobs shed outright by admission control.
    pub rejected: u64,
    /// Jobs shed with retry-later semantics by admission control.
    pub deferred: u64,
    /// Mean observed response time.
    pub mean_response: f64,
    /// 95 % batch-means confidence interval (needs ≥ 2 full batches).
    pub ci: Option<ConfidenceInterval>,
    /// Jobs per node, in node-id order.
    pub per_node: Vec<(NodeId, u64)>,
}

impl TraceStats {
    /// Fraction of submitted jobs rejected (0 when nothing submitted).
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected as f64 / self.submitted as f64
        }
    }
}

/// Replays a synthetic arrival stream against a runtime.
#[derive(Debug)]
pub struct TraceDriver {
    phi: f64,
    seed: u64,
    batch_size: u64,
    clock: f64,
    arrivals: Xoshiro256PlusPlus,
    services: HashMap<NodeId, Xoshiro256PlusPlus>,
    next_free: HashMap<NodeId, f64>,
    responses: Welford,
    batches: BatchMeans,
    per_node: HashMap<NodeId, u64>,
    submitted: u64,
    accepted: u64,
    rejected: u64,
    deferred: u64,
}

impl TraceDriver {
    /// Driver generating Poisson arrivals at total rate `phi`.
    ///
    /// # Panics
    /// If `phi` is nonpositive or non-finite.
    #[must_use]
    pub fn new(phi: f64, cfg: TraceConfig) -> Self {
        assert!(phi.is_finite() && phi > 0.0, "trace arrival rate must be positive");
        Self {
            phi,
            seed: cfg.seed,
            batch_size: cfg.batch_size,
            clock: 0.0,
            arrivals: Xoshiro256PlusPlus::stream(cfg.seed, DRIVER_ARRIVAL_STREAM),
            services: HashMap::new(),
            next_free: HashMap::new(),
            responses: Welford::new(),
            batches: BatchMeans::new(cfg.batch_size),
            per_node: HashMap::new(),
            submitted: 0,
            accepted: 0,
            rejected: 0,
            deferred: 0,
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Pushes `jobs` jobs through the runtime: generate arrival →
    /// admission → dispatch → queue at the chosen node → record the
    /// response time and feed the estimators. Jobs shed by admission
    /// control are counted ([`TraceStats::rejected`] /
    /// [`TraceStats::deferred`]) and leave no queueing footprint; every
    /// arrival still feeds `Φ̂`, because admission reacts to *offered*
    /// load.
    ///
    /// Resumable: queues, clocks and RNG streams persist across calls, so
    /// callers can inject control-plane events between chunks.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] when an admitted job has nowhere
    /// to route; [`RuntimeError::UnknownNode`] when a chosen node was
    /// deregistered mid-flight.
    pub fn run_jobs(&mut self, runtime: &Runtime, jobs: u64) -> Result<(), RuntimeError> {
        for _ in 0..jobs {
            let gap = -self.arrivals.next_open01().ln() / self.phi;
            self.clock += gap;
            let arrived = self.clock;
            runtime.record_arrival(arrived);

            self.submitted += 1;
            let decision = match runtime.submit()? {
                crate::Submission::Dispatched(decision) => decision,
                crate::Submission::Rejected => {
                    self.rejected += 1;
                    continue;
                }
                crate::Submission::Deferred => {
                    self.deferred += 1;
                    continue;
                }
            };
            self.accepted += 1;
            let node = decision.node;
            let mu = runtime.node_rate(node).ok_or(RuntimeError::UnknownNode(node))?;

            let seed = self.seed;
            let rng = self.services.entry(node).or_insert_with(|| {
                Xoshiro256PlusPlus::stream(seed, DRIVER_SERVICE_STREAM_BASE + node.raw())
            });
            let service = -rng.next_open01().ln() / mu;

            let free = self.next_free.entry(node).or_insert(0.0);
            let start = arrived.max(*free);
            let done = start + service;
            *free = done;

            runtime.record_service(node, service);
            let response = done - arrived;
            self.responses.add(response);
            self.batches.add(response);
            *self.per_node.entry(node).or_insert(0) += 1;
        }
        Ok(())
    }

    /// Drops accumulated measurements (warm-up deletion, or isolating a
    /// post-failure phase) while keeping the clock, queues, and RNG
    /// streams — the workload continues seamlessly.
    pub fn reset_measurements(&mut self) {
        self.responses = Welford::new();
        self.batches = BatchMeans::new(self.batch_size);
        self.per_node.clear();
        self.submitted = 0;
        self.accepted = 0;
        self.rejected = 0;
        self.deferred = 0;
    }

    /// Measurements since construction or the last reset.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        let mut per_node: Vec<(NodeId, u64)> =
            self.per_node.iter().map(|(&id, &c)| (id, c)).collect();
        per_node.sort_by_key(|&(id, _)| id);
        TraceStats {
            jobs: self.responses.count(),
            submitted: self.submitted,
            accepted: self.accepted,
            rejected: self.rejected,
            deferred: self.deferred,
            mean_response: self.responses.mean(),
            ci: (self.batches.batches() >= 2).then(|| self.batches.confidence_interval()),
            per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::SchemeKind;
    use crate::RuntimeBuilder;

    fn runtime(rates: &[f64], phi: f64) -> (Runtime, Vec<NodeId>) {
        let rt = RuntimeBuilder::new()
            .seed(11)
            .scheme(SchemeKind::Coop)
            .nominal_arrival_rate(phi)
            .build();
        let ids: Vec<NodeId> = rates.iter().map(|&r| rt.register_node(r).unwrap()).collect();
        rt.resolve_now().unwrap();
        (rt, ids)
    }

    #[test]
    fn single_node_matches_mm1() {
        // One node: the closed loop is an M/M/1 queue with ρ = 0.5, whose
        // mean response time is 1/(μ − λ) = 2.
        let (rt, _) = runtime(&[1.0], 0.5);
        let mut driver = TraceDriver::new(0.5, TraceConfig { seed: 3, batch_size: 2_000 });
        driver.run_jobs(&rt, 10_000).unwrap();
        driver.reset_measurements(); // warm-up deletion
        driver.run_jobs(&rt, 40_000).unwrap();
        let stats = driver.stats();
        assert_eq!(stats.jobs, 40_000);
        let ci = stats.ci.expect("enough batches");
        let tol = (3.0 * ci.half_width).max(0.05 * 2.0);
        assert!(
            (stats.mean_response - 2.0).abs() < tol,
            "observed {} vs analytic 2.0 (tol {tol})",
            stats.mean_response
        );
    }

    #[test]
    fn trace_is_reproducible() {
        let run = || {
            let (rt, _) = runtime(&[1.0, 0.5], 0.6);
            let mut driver = TraceDriver::new(0.6, TraceConfig { seed: 9, batch_size: 100 });
            driver.run_jobs(&rt, 2_000).unwrap();
            (driver.stats().mean_response, driver.clock())
        };
        let (a, ta) = run();
        let (b, tb) = run();
        assert_eq!(a.to_bits(), b.to_bits(), "same seed ⇒ bit-identical trace");
        assert_eq!(ta.to_bits(), tb.to_bits());
    }

    #[test]
    fn stats_count_submissions_without_admission() {
        let (rt, _) = runtime(&[1.0], 0.5);
        let mut driver = TraceDriver::new(0.5, TraceConfig { seed: 2, batch_size: 100 });
        driver.run_jobs(&rt, 1_000).unwrap();
        let stats = driver.stats();
        assert_eq!(stats.submitted, 1_000);
        assert_eq!(stats.accepted, 1_000, "no admission control: everything admitted");
        assert_eq!(stats.rejected + stats.deferred, 0);
        assert_eq!(stats.rejection_rate(), 0.0);
    }

    #[test]
    fn admission_counts_are_conserved_and_surface_in_stats() {
        // Capacity 2, design load 1.8 ⇒ ρ = 0.9 against a 0.6 target.
        let rt = RuntimeBuilder::new()
            .seed(2)
            .scheme(SchemeKind::Coop)
            .nominal_arrival_rate(1.8)
            .admission(crate::AdmissionConfig { target_utilization: 0.6, defer_band: 0.0 })
            .build();
        rt.register_node(1.0).unwrap();
        rt.register_node(1.0).unwrap();
        rt.resolve_now().unwrap();

        let mut driver = TraceDriver::new(1.8, TraceConfig { seed: 6, batch_size: 500 });
        driver.run_jobs(&rt, 10_000).unwrap();
        let stats = driver.stats();
        assert_eq!(stats.submitted, 10_000);
        assert_eq!(stats.accepted + stats.rejected + stats.deferred, stats.submitted);
        assert_eq!(stats.jobs, stats.accepted, "every admitted job completes");
        let expected = 1.0 - 0.6 / 0.9;
        assert!(
            (stats.rejection_rate() - expected).abs() < 0.05,
            "rejection rate {} vs thinning prediction {expected}",
            stats.rejection_rate()
        );
        // The runtime's own counters agree with the driver's view.
        let rt_stats = rt.admission_stats().unwrap();
        assert_eq!(rt_stats.submitted, stats.submitted);
        assert_eq!(rt_stats.rejected, stats.rejected);

        // reset_measurements clears the admission window too.
        driver.reset_measurements();
        assert_eq!(driver.stats().submitted, 0);
    }

    #[test]
    fn per_node_counts_follow_the_table() {
        // ρ = 0.8, high enough that COOP loads the slow node too.
        let (rt, ids) = runtime(&[4.0, 1.0], 4.0);
        let mut driver = TraceDriver::new(4.0, TraceConfig::default());
        driver.run_jobs(&rt, 20_000).unwrap();
        let stats = driver.stats();
        let table = rt.current_table();
        let total: u64 = stats.per_node.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 20_000);
        for &id in &ids {
            let p = table.prob_of(id).unwrap();
            let count = stats.per_node.iter().find(|&&(n, _)| n == id).map_or(0, |&(_, c)| c);
            let freq = count as f64 / total as f64;
            assert!((freq - p).abs() < 0.02, "{id}: freq {freq} vs p {p}");
            assert!(p > 0.0 && count > 0, "{id} should carry load at ρ = 0.8");
        }
    }
}
