//! Walker alias method: O(1) sampling from a discrete distribution.
//!
//! The COOP allocation is a *static* probability vector, so routing is
//! pure sampling — and sampling a categorical distribution does not
//! need the O(log n) inverse-CDF binary search the first runtime
//! shipped with. Walker's alias method precomputes, per bucket `i`, a
//! threshold `prob[i]` and an alternative `alias[i]`; a single uniform
//! draw `u ∈ [0, 1)` is split into a bucket index `⌊u·n⌋` and a
//! leftover fraction, and the sample is `i` if the fraction clears the
//! threshold, `alias[i]` otherwise. One multiply, one floor, one
//! compare — O(1) per draw, independent of the node count.
//!
//! ## Determinism
//!
//! The table is built with the classic two-stack (Vose) construction,
//! seeded by scanning the probabilities **in index order** and using
//! `Vec` stacks popped from the back — every step is a deterministic
//! function of the probability vector alone, so the same vector always
//! yields bit-identical `prob`/`alias` arrays on every platform. That
//! matters because routing decisions are part of the runtime's
//! determinism fingerprint: the mapping `u → node` must be a pure
//! function of the published table.
//!
//! ## Zero-probability buckets
//!
//! A bucket with zero weight gets `prob[i] = 0`, which the leftover
//! fraction (always ≥ 0) never undercuts, so the sample falls through
//! to its alias — always a positive-weight bucket. Rounding in the
//! stack arithmetic can strand a zero-weight bucket in the small stack
//! after the large stack empties; the drain pass pins such buckets to
//! `prob = 0` with the heaviest bucket as alias, preserving the
//! "zero-probability nodes are never routed" invariant exactly (not
//! merely with high probability).

/// The largest `f64` strictly below `1.0` (`1 − 2⁻⁵³`): the clamp bound
/// for uniform draws, so `u = 1.0` (or anything that rounds to it)
/// still lands in the last bucket instead of indexing out of range.
/// `1.0 - f64::EPSILON` is *two* ulps below one and would skip the top
/// sliver of the distribution; this is exactly one.
pub const MAX_BELOW_ONE: f64 = 1.0 - f64::EPSILON / 2.0;

/// A prebuilt Walker alias table over `n` buckets.
///
/// Built once per [`RoutingTable`](crate::table::RoutingTable) publish;
/// [`sample`](Self::sample) is the per-dispatch hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Threshold in `[0, 1]` for keeping bucket `i` itself.
    prob: Vec<f64>,
    /// Alternative bucket taken when the fraction clears `prob[i]`.
    alias: Vec<u32>,
}

impl AliasTable {
    /// An empty table (zero buckets). [`sample`](Self::sample) must not
    /// be called on it; paired with `RoutingTable::empty`.
    #[must_use]
    pub fn empty() -> Self {
        Self { prob: Vec::new(), alias: Vec::new() }
    }

    /// Builds the table from normalized probabilities (nonnegative,
    /// finite, summing to 1 up to rounding — the invariants
    /// `RoutingTable::new` already enforces).
    ///
    /// # Panics
    /// If `probs` is empty, exceeds `u32::MAX` buckets, or contains no
    /// positive entry (callers validate; this is a programming error).
    #[must_use]
    pub fn new(probs: &[f64]) -> Self {
        let n = probs.len();
        assert!(n > 0, "alias table needs at least one bucket");
        assert!(u32::try_from(n).is_ok(), "alias table capped at u32::MAX buckets");
        // The heaviest bucket backs zero-weight buckets stranded by
        // rounding (see the module docs); scanning in index order keeps
        // ties deterministic.
        let mut heaviest = 0usize;
        for (i, &p) in probs.iter().enumerate() {
            if p > probs[heaviest] {
                heaviest = i;
            }
        }
        assert!(probs[heaviest] > 0.0, "alias table needs a positive probability");

        let mut scaled: Vec<f64> = probs.iter().map(|&p| p * n as f64).collect();
        let mut prob = vec![0.0; n];
        let mut alias: Vec<u32> = vec![heaviest as u32; n];
        // Two stacks, filled in index order, popped from the back: the
        // construction is a pure function of `probs`.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            let (s_idx, l_idx) = (s as usize, l as usize);
            prob[s_idx] = scaled[s_idx];
            alias[s_idx] = l;
            // Donate the deficit 1 − scaled[s] out of the large bucket.
            scaled[l_idx] = (scaled[l_idx] + scaled[s_idx]) - 1.0;
            if scaled[l_idx] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers hold exactly 1.0 in exact arithmetic; under
        // rounding, pin genuine mass to "always keep" and stranded
        // zero-weight buckets to "always alias" (to the heaviest).
        for &l in &large {
            prob[l as usize] = 1.0;
        }
        for &s in &small {
            prob[s as usize] = if probs[s as usize] > 0.0 { 1.0 } else { 0.0 };
        }
        Self { prob, alias }
    }

    /// Number of buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has zero buckets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Samples a bucket from one uniform draw: `u` is clamped into
    /// `[0, 1)` (non-finite draws pin to `0.0`), split into
    /// `bucket = ⌊u·n⌋` and its leftover fraction, and resolved through
    /// the threshold/alias pair — O(1).
    ///
    /// # Panics
    /// If the table is empty (debug builds; release indexing panics).
    #[inline]
    #[must_use]
    pub fn sample(&self, u: f64) -> usize {
        debug_assert!(!self.is_empty(), "sample on an empty alias table");
        let n = self.prob.len();
        // NaN defeats `clamp` (NaN.clamp is NaN); pin non-finite draws
        // to 0.0 so arbitrary caller input keeps every invariant —
        // in particular "zero-probability buckets are never sampled".
        let u = if u.is_finite() { u.clamp(0.0, MAX_BELOW_ONE) } else { 0.0 };
        let scaled = u * n as f64;
        // `u < 1` bounds `⌊u·n⌋ ≤ n−1` in exact arithmetic, but the
        // product can round up to exactly `n` — clamp defensively.
        let bucket = (scaled as usize).min(n - 1);
        let fraction = scaled - bucket as f64;
        if fraction < self.prob[bucket] {
            bucket
        } else {
            self.alias[bucket] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(table: &AliasTable, draws: usize) -> Vec<f64> {
        let mut counts = vec![0u64; table.len()];
        for k in 0..draws {
            // A fine deterministic grid covers every bucket boundary.
            counts[table.sample(k as f64 / draws as f64)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn grid_frequencies_match_probabilities() {
        for probs in [
            vec![1.0],
            vec![0.5, 0.5],
            vec![0.6, 0.3, 0.1],
            vec![0.05, 0.05, 0.45, 0.45],
            vec![0.25; 4],
        ] {
            let table = AliasTable::new(&probs);
            let freq = frequencies(&table, 100_000);
            for (i, (&f, &p)) in freq.iter().zip(&probs).enumerate() {
                assert!((f - p).abs() < 1e-3, "bucket {i}: freq {f} vs p {p} in {probs:?}");
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let probs = [0.3, 0.1, 0.25, 0.05, 0.3];
        assert_eq!(AliasTable::new(&probs), AliasTable::new(&probs));
    }

    #[test]
    fn zero_probability_buckets_never_sampled() {
        let table = AliasTable::new(&[0.5, 0.0, 0.5, 0.0]);
        for k in 0..100_000 {
            let got = table.sample(k as f64 / 100_000.0);
            assert!(got != 1 && got != 3, "sampled zero-probability bucket {got}");
        }
    }

    #[test]
    fn extreme_draws_clamp_into_range() {
        let table = AliasTable::new(&[0.2, 0.8]);
        for u in [
            0.0,
            -1.0,
            1.0,
            2.5,
            1.0 - 1e-17,
            MAX_BELOW_ONE,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            assert!(table.sample(u) < 2);
        }
        // A non-finite draw pins to 0.0 and must still respect the
        // zero-probability invariant, even with a zero-weight bucket 0.
        let leading_zero = AliasTable::new(&[0.0, 1.0]);
        for u in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0] {
            assert_eq!(leading_zero.sample(u), 1);
        }
        // u = 1.0 − 1e-17 rounds to exactly 1.0; it must land in the
        // last bucket's range, not index out of bounds.
        assert_eq!((1.0f64 - 1e-17).to_bits(), 1.0f64.to_bits());
        let single = AliasTable::new(&[1.0]);
        assert_eq!(single.sample(1.0 - 1e-17), 0);
    }

    #[test]
    fn singleton_and_heavily_skewed() {
        assert_eq!(AliasTable::new(&[1.0]).sample(0.7), 0);
        let skewed = AliasTable::new(&[1e-9, 1.0 - 1e-9]);
        let freq = frequencies(&skewed, 1_000_000);
        assert!(freq[1] > 0.999_99, "heavy bucket starved: {freq:?}");
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn empty_probs_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive probability")]
    fn all_zero_probs_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
