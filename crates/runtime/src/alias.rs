//! Walker alias method: O(1) sampling from a discrete distribution.
//!
//! The COOP allocation is a *static* probability vector, so routing is
//! pure sampling — and sampling a categorical distribution does not
//! need the O(log n) inverse-CDF binary search the first runtime
//! shipped with. Walker's alias method precomputes, per bucket `i`, a
//! threshold `prob[i]` and an alternative `alias[i]`; a single uniform
//! draw `u ∈ [0, 1)` is split into a bucket index `⌊u·n⌋` and a
//! leftover fraction, and the sample is `i` if the fraction clears the
//! threshold, `alias[i]` otherwise. One multiply, one floor, one
//! compare — O(1) per draw, independent of the node count.
//!
//! ## Determinism
//!
//! The table is built with the classic two-stack (Vose) construction,
//! seeded by scanning the probabilities **in index order** and using
//! `Vec` stacks popped from the back — every step is a deterministic
//! function of the probability vector alone, so the same vector always
//! yields bit-identical `prob`/`alias` arrays on every platform. That
//! matters because routing decisions are part of the runtime's
//! determinism fingerprint: the mapping `u → node` must be a pure
//! function of the published table.
//!
//! ## Zero-probability buckets
//!
//! A bucket with zero weight gets `prob[i] = 0`, which the leftover
//! fraction (always ≥ 0) never undercuts, so the sample falls through
//! to its alias — always a positive-weight bucket. Rounding in the
//! stack arithmetic can strand a zero-weight bucket in the small stack
//! after the large stack empties; the drain pass pins such buckets to
//! `prob = 0` with the heaviest bucket as alias, preserving the
//! "zero-probability nodes are never routed" invariant exactly (not
//! merely with high probability).
//!
//! ## Incremental repair of sparse deltas
//!
//! A wrong-but-fast repair is forbidden: the `prob`/`alias` arrays are
//! part of the determinism fingerprint, so a repaired table must be
//! **bit-identical** to a fresh build of the same vector. The key
//! observation is that the two-stack construction's control flow — the
//! pairing schedule — is a function of (a) each bucket's initial
//! small/large classification, (b) the stays-large/turns-small branch
//! after each donation, and (c) the heaviest-bucket index, and that a
//! bucket whose probability is *bitwise unchanged* contributes exactly
//! the recorded arithmetic to it. So when a new vector differs from the
//! recorded one only at a few `changed` buckets (the caller's
//! guarantee; `TableBuilder::update_weights` arranges it by absorbing
//! the normalization residual instead of renormalizing densely),
//! [`repair`](AliasBuilder::repair) re-runs **only the donation chains
//! the changed buckets touch**: it walks the recorded schedule's
//! affected steps in order (a trace index maps each bucket to its
//! recorded steps), recomputes their float arithmetic against the new
//! values, and verifies that every recorded branch decision still
//! holds. Everything off those chains is copied from the base table's
//! arrays, which already hold the exact bits a fresh build would write.
//! If any verified decision diverges — the delta was too large in the
//! only sense that matters — repair reports failure and the caller
//! falls back to a full (scratch-reusing) rebuild; the successful
//! verification *is* the proof that a fresh build of the new vector
//! would follow the recorded schedule, so the output is bit-identical
//! by construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The largest `f64` strictly below `1.0` (`1 − 2⁻⁵³`): the clamp bound
/// for uniform draws, so `u = 1.0` (or anything that rounds to it)
/// still lands in the last bucket instead of indexing out of range.
/// `1.0 - f64::EPSILON` is *two* ulps below one and would skip the top
/// sliver of the distribution; this is exactly one.
pub const MAX_BELOW_ONE: f64 = 1.0 - f64::EPSILON / 2.0;

/// A prebuilt Walker alias table over `n` buckets.
///
/// Built once per [`RoutingTable`](crate::table::RoutingTable) publish;
/// [`sample`](Self::sample) is the per-dispatch hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Threshold in `[0, 1]` for keeping bucket `i` itself.
    prob: Vec<f64>,
    /// Alternative bucket taken when the fraction clears `prob[i]`.
    /// Refcounted because a repaired table's schedule — and therefore
    /// its partner array — is proven identical to its base's: repairs
    /// share the allocation instead of copying it.
    alias: Arc<Vec<u32>>,
}

impl AliasTable {
    /// An empty table (zero buckets). [`sample`](Self::sample) must not
    /// be called on it; paired with `RoutingTable::empty`.
    #[must_use]
    pub fn empty() -> Self {
        Self { prob: Vec::new(), alias: Arc::new(Vec::new()) }
    }

    /// Builds the table from normalized probabilities (nonnegative,
    /// finite, summing to 1 up to rounding — the invariants
    /// `RoutingTable::new` already enforces).
    ///
    /// # Panics
    /// If `probs` is empty, exceeds `u32::MAX` buckets, or contains no
    /// positive entry (callers validate; this is a programming error).
    #[must_use]
    pub fn new(probs: &[f64]) -> Self {
        // One source of truth for the construction: a throwaway builder
        // runs the identical algorithm (the trace it records adds no
        // arithmetic), so `new` and a scratch-reusing builder are
        // bit-identical by construction.
        AliasBuilder::new().build(probs)
    }

    /// Number of buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has zero buckets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Samples a bucket from one uniform draw: `u` is clamped into
    /// `[0, 1)` (non-finite draws pin to `0.0`), split into
    /// `bucket = ⌊u·n⌋` and its leftover fraction, and resolved through
    /// the threshold/alias pair — O(1).
    ///
    /// # Panics
    /// If the table is empty (debug builds; release indexing panics).
    #[inline]
    #[must_use]
    pub fn sample(&self, u: f64) -> usize {
        debug_assert!(!self.is_empty(), "sample on an empty alias table");
        let n = self.prob.len();
        // NaN defeats `clamp` (NaN.clamp is NaN); pin non-finite draws
        // to 0.0 so arbitrary caller input keeps every invariant —
        // in particular "zero-probability buckets are never sampled".
        let u = if u.is_finite() { u.clamp(0.0, MAX_BELOW_ONE) } else { 0.0 };
        let scaled = u * n as f64;
        // `u < 1` bounds `⌊u·n⌋ ≤ n−1` in exact arithmetic, but the
        // product can round up to exactly `n` — clamp defensively.
        let bucket = (scaled as usize).min(n - 1);
        let fraction = scaled - bucket as f64;
        if fraction < self.prob[bucket] {
            bucket
        } else {
            self.alias[bucket] as usize
        }
    }
}

/// One pairing step of the two-stack construction: `small` was popped,
/// took `large` as its alias, and after the donation `large` either
/// stayed on the large stack or moved to the small stack.
#[derive(Debug, Clone, Copy)]
struct PairStep {
    small: u32,
    large: u32,
    large_moved: bool,
}

/// The complete branch schedule of one build, recorded so a later
/// [`repair`](AliasBuilder::repair) can re-run (and verify) only the
/// affected donation chains against a sparsely perturbed probability
/// vector — see the module docs.
#[derive(Debug, Default)]
struct BuildTrace {
    /// Bucket count the trace was recorded at; a repair against a
    /// different length can never replay.
    n: usize,
    /// Index-order argmax of the recorded vector (alias of stranded
    /// zero-weight buckets).
    heaviest: u32,
    /// Greatest probability strictly before (`max_lo`) / after
    /// (`max_hi`) the argmax in the vector the trace describes (`0.0`
    /// when that side is empty): conservative bounds for checking that
    /// a patched vector re-elects the same argmax under the build's
    /// first-wins strict-`>` scan. Successful repairs fold the changed
    /// buckets' new values in (monotone growth), so the bounds stay
    /// sound across repair chains at the price of an occasional
    /// unnecessary fallback when a runner-up has since shrunk.
    max_lo: f64,
    max_hi: f64,
    /// Initial classification: `true` iff bucket `i` started on the
    /// small stack (`scaled < 1`).
    init_small: Vec<bool>,
    /// The pairing steps, in execution order.
    steps: Vec<PairStep>,
    /// Small-stack leftovers after the loop, in stack order.
    tail_small: Vec<u32>,
    /// Large-stack leftovers after the loop, in stack order.
    tail_large: Vec<u32>,
    /// Step index at which bucket `i` was popped from the small stack
    /// (`u32::MAX` when it never was — a tail bucket).
    small_step: Vec<u32>,
    /// CSR index of the steps where bucket `i` received a donation as
    /// the large bucket: row `i` is
    /// `large_list[large_off[i]..large_off[i+1]]`, ascending.
    large_off: Vec<u32>,
    large_list: Vec<u32>,
}

impl BuildTrace {
    /// The recorded donation-receiving steps of `bucket`, ascending.
    fn large_row(&self, bucket: u32) -> &[u32] {
        let b = bucket as usize;
        &self.large_list[self.large_off[b] as usize..self.large_off[b + 1] as usize]
    }
}

/// A reusable alias-table builder: owns the `scaled` working vector and
/// the two construction stacks (so repeat publishes stop allocating
/// scratch), and records a build trace every build so k-node weight
/// perturbations can be [`repair`](Self::repair)-ed — re-running only
/// the affected donation chains, bit-identical to a fresh build —
/// instead of paying the full stack construction.
#[derive(Debug, Default)]
pub struct AliasBuilder {
    scaled: Vec<f64>,
    small: Vec<u32>,
    large: Vec<u32>,
    trace: BuildTrace,
    /// Repair scratch: the min-heap of pending step indices, the
    /// visited-step bitmap, and the sparse map of affected buckets'
    /// running residuals.
    pending: BinaryHeap<Reverse<u32>>,
    seen: Vec<u64>,
    affected: Vec<(u32, f64)>,
}

impl AliasBuilder {
    /// An empty builder; scratch grows to the table size on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table exactly like [`AliasTable::new`] (same arithmetic
    /// in the same order — `new` delegates here), reusing this
    /// builder's scratch and recording the trace [`repair`](Self::repair)
    /// replays. Only the output `prob`/`alias` arrays are allocated.
    ///
    /// # Panics
    /// As [`AliasTable::new`].
    pub fn build(&mut self, probs: &[f64]) -> AliasTable {
        let n = probs.len();
        assert!(n > 0, "alias table needs at least one bucket");
        assert!(u32::try_from(n).is_ok(), "alias table capped at u32::MAX buckets");
        let Self { scaled, small, large, trace, .. } = self;
        // The heaviest bucket backs zero-weight buckets stranded by
        // rounding (see the module docs); scanning in index order keeps
        // ties deterministic.
        let mut heaviest = 0usize;
        for (i, &p) in probs.iter().enumerate() {
            if p > probs[heaviest] {
                heaviest = i;
            }
        }
        assert!(probs[heaviest] > 0.0, "alias table needs a positive probability");

        scaled.clear();
        scaled.extend(probs.iter().map(|&p| p * n as f64));
        let mut prob = vec![0.0; n];
        let mut alias: Vec<u32> = vec![heaviest as u32; n];
        // Two stacks, filled in index order, popped from the back: the
        // construction is a pure function of `probs`.
        small.clear();
        large.clear();
        trace.n = n;
        trace.heaviest = heaviest as u32;
        trace.init_small.clear();
        trace.steps.clear();
        for (i, &s) in scaled.iter().enumerate() {
            let is_small = s < 1.0;
            trace.init_small.push(is_small);
            if is_small {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            let (s_idx, l_idx) = (s as usize, l as usize);
            prob[s_idx] = scaled[s_idx];
            alias[s_idx] = l;
            // Donate the deficit 1 − scaled[s] out of the large bucket.
            scaled[l_idx] = (scaled[l_idx] + scaled[s_idx]) - 1.0;
            let large_moved = scaled[l_idx] < 1.0;
            trace.steps.push(PairStep { small: s, large: l, large_moved });
            if large_moved {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers hold exactly 1.0 in exact arithmetic; under
        // rounding, pin genuine mass to "always keep" and stranded
        // zero-weight buckets to "always alias" (to the heaviest).
        for &l in large.iter() {
            prob[l as usize] = 1.0;
        }
        for &s in small.iter() {
            prob[s as usize] = if probs[s as usize] > 0.0 { 1.0 } else { 0.0 };
        }
        trace.tail_small.clear();
        trace.tail_small.extend_from_slice(small);
        trace.tail_large.clear();
        trace.tail_large.extend_from_slice(large);
        // Index the schedule by bucket so `repair` can find the steps a
        // changed bucket participates in without scanning: the small-pop
        // step per bucket, and a CSR row of donation-receiving steps.
        trace.small_step.clear();
        trace.small_step.resize(n, u32::MAX);
        trace.large_off.clear();
        trace.large_off.resize(n + 1, 0);
        for step in &trace.steps {
            trace.large_off[step.large as usize + 1] += 1;
        }
        for i in 0..n {
            trace.large_off[i + 1] += trace.large_off[i];
        }
        trace.large_list.clear();
        trace.large_list.resize(trace.steps.len(), 0);
        // The stacks are spent; reuse `small` as the CSR fill cursors.
        small.clear();
        small.extend_from_slice(&trace.large_off[..n]);
        for (t, step) in trace.steps.iter().enumerate() {
            trace.small_step[step.small as usize] = t as u32;
            let cursor = &mut small[step.large as usize];
            trace.large_list[*cursor as usize] = t as u32;
            *cursor += 1;
        }
        let (mut max_lo, mut max_hi) = (0.0f64, 0.0f64);
        for (i, &p) in probs.iter().enumerate() {
            if i < heaviest && p > max_lo {
                max_lo = p;
            }
            if i > heaviest && p > max_hi {
                max_hi = p;
            }
        }
        trace.max_lo = max_lo;
        trace.max_hi = max_hi;
        AliasTable { prob, alias: Arc::new(alias) }
    }

    /// The argmax bucket of the last recorded build (`None` before any
    /// build). [`repair`](Self::repair) keeps it valid across
    /// successful repairs: a repair that would move the argmax refuses.
    #[must_use]
    pub fn heaviest(&self) -> Option<u32> {
        (self.trace.n > 0).then_some(self.trace.heaviest)
    }

    /// Attempts to build the table for `new_probs` by cloning `base`
    /// (the table the last recorded trace describes, whose input vector
    /// was `base_probs`) and re-running **only the donation chains the
    /// `changed` buckets touch**. `Some` is **bit-identical** to
    /// [`build`](Self::build) on `new_probs` — the verified branch
    /// decisions prove a fresh build would follow the recorded
    /// schedule, and every off-chain entry is copied from `base`, which
    /// already holds the fresh build's bits for bitwise-unchanged
    /// buckets. `None` means the construction path diverged (or the
    /// affected region grew past the sublinear budget) and the caller
    /// must fall back to `build`.
    ///
    /// # Contract (the caller's obligations; violations yield `None`
    /// or, for the last two, silently wrong tables)
    ///
    /// * `new_probs` is validated like `build`'s input (nonnegative,
    ///   finite, positive mass);
    /// * `base` is bit-identical to the last [`build`](Self::build) (or
    ///   successful repair) output and `base_probs` to its input
    ///   vector;
    /// * `new_probs[i] == base_probs[i]` **bitwise** for every
    ///   `i ∉ changed`.
    ///
    /// Cost: O(affected chains) heap-ordered step walk plus the
    /// `prob`/`alias` clones — no O(n) scan, no stack traffic.
    pub fn repair(
        &mut self,
        base: &AliasTable,
        base_probs: &[f64],
        new_probs: &[f64],
        changed: &[u32],
    ) -> Option<AliasTable> {
        let n = new_probs.len();
        let Self { trace, pending, seen, affected, .. } = self;
        if n == 0
            || trace.n != n
            || base.prob.len() != n
            || base_probs.len() != n
            || changed.is_empty()
        {
            return None;
        }
        let nf = n as f64;
        let h = trace.heaviest as usize;
        // The fresh build's first-wins strict-`>` argmax scan must
        // re-elect `h` (it is baked into the default alias array). The
        // recorded side maxima still include the changed buckets' old
        // values, so the check is conservative: it can force an
        // unnecessary fallback, never accept a moved argmax — each
        // changed bucket is also checked directly below.
        let ph = new_probs[h];
        if !(ph > 0.0 && trace.max_lo < ph && trace.max_hi <= ph) {
            return None;
        }
        // Sublinear budgets: a delta whose influence cascades this far
        // is cheaper to rebuild (and the bench gate assumes repair cost
        // stays O(affected), not O(n)).
        let max_steps = 64 + n / 8;
        let max_buckets = 32 + n / 16;
        affected.clear();
        pending.clear();
        seen.clear();
        seen.resize(trace.steps.len().div_ceil(64), 0);
        for &c in changed {
            let ci = c as usize;
            if ci >= n {
                return None;
            }
            let p = new_probs[ci];
            // Argmax re-election, changed side: ties break to the lower
            // index, so before `h` the new value must stay strictly
            // below, after `h` at-or-below. Negated comparisons on
            // purpose: a NaN must land in the bail-to-rebuild branch,
            // which `p >= ph` would let slip through.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if (ci < h && !(p < ph)) || (ci > h && !(p <= ph)) {
                return None;
            }
            if affected.iter().any(|&(b, _)| b == c) {
                continue;
            }
            // The initial small/large classification must hold — it
            // decides which stack the bucket seeds.
            let scaled = p * nf;
            if (scaled < 1.0) != trace.init_small[ci] {
                return None;
            }
            if affected.len() >= max_buckets {
                return None;
            }
            affected.push((c, scaled));
            Self::push_bucket_steps(pending, trace, c, 0);
        }
        let mut prob = base.prob.clone();
        // Partners are schedule, not arithmetic: an unchanged schedule
        // means an unchanged alias array — shared, not copied.
        let alias = Arc::clone(&base.alias);
        let mut budget = max_steps;
        while let Some(Reverse(t)) = pending.pop() {
            let (word, bit) = ((t / 64) as usize, 1u64 << (t % 64));
            if seen[word] & bit != 0 {
                continue;
            }
            seen[word] |= bit;
            budget = budget.checked_sub(1)?;
            let step = trace.steps[t as usize];
            let (si, li) = (step.small as usize, step.large as usize);
            // The popped small's residual: its running value when
            // affected (all its earlier steps have been processed — a
            // bucket's donation-receiving steps precede its small-pop
            // step, and the heap pops in step order), otherwise exactly
            // the threshold the base build stored for it.
            let s_val = match affected.iter().find(|&&(b, _)| b == step.small) {
                Some(&(_, v)) => v,
                None => base.prob[si],
            };
            // The receiver's running residual. First touched mid-chain
            // means every earlier donor was unaffected when this step
            // popped — pops are monotone in step index and pushes only
            // ever add later steps, so no step before `t` can still
            // become affected — and an unaffected donor's threshold is
            // its stored base value: the prefix replays bitwise.
            let l_pos = match affected.iter().position(|&(b, _)| b == step.large) {
                Some(pos) => pos,
                None => {
                    if affected.len() >= max_buckets {
                        return None;
                    }
                    let mut residual = base_probs[li] * nf;
                    for &t2 in trace.large_row(step.large) {
                        if t2 >= t {
                            break;
                        }
                        budget = budget.checked_sub(1)?;
                        let donor = trace.steps[t2 as usize].small as usize;
                        residual = (residual + base.prob[donor]) - 1.0;
                    }
                    affected.push((step.large, residual));
                    Self::push_bucket_steps(pending, trace, step.large, t + 1);
                    affected.len() - 1
                }
            };
            prob[si] = s_val;
            let donated = (affected[l_pos].1 + s_val) - 1.0;
            // The stays-large/turns-small branch must match the record,
            // or the schedule (stack contents from here on) diverges.
            // One carve-out: on the very last recorded step, if the
            // receiver is the lone stack leftover either way, the flip
            // is benign — no further step can exist and the drain pins
            // the leftover to `1.0` regardless of which stack holds it.
            // This case is *common*, not rare: whenever the published
            // serial sum is exactly `1.0`, the final residual sits
            // within ulps of `1.0`, so any cascade that reaches the end
            // of the schedule brushes this knife edge.
            if (donated < 1.0) != step.large_moved {
                let tail = if step.large_moved { &trace.tail_small } else { &trace.tail_large };
                let benign =
                    t as usize == trace.steps.len() - 1 && tail.len() == 1 && tail[0] == step.large;
                if !benign {
                    return None;
                }
            }
            affected[l_pos].1 = donated;
        }
        // Tails: a bucket never popped small is a stack leftover, and
        // the drain pass pins leftovers by positivity — 1.0 for genuine
        // mass (always the case for large leftovers), 0.0 for stranded
        // zero-weight buckets. Re-derive for affected buckets; the
        // clone already holds the rest.
        for &(b, _) in affected.iter() {
            if trace.small_step[b as usize] == u32::MAX {
                prob[b as usize] = if new_probs[b as usize] > 0.0 { 1.0 } else { 0.0 };
            }
        }
        // The trace now describes the repaired table: fold the changed
        // values into the argmax bounds so chained repairs stay sound.
        for &c in changed {
            let (ci, p) = (c as usize, new_probs[c as usize]);
            if ci < h && p > trace.max_lo {
                trace.max_lo = p;
            }
            if ci > h && p > trace.max_hi {
                trace.max_hi = p;
            }
        }
        Some(AliasTable { prob, alias })
    }

    /// Queues every recorded step of `bucket` at index ≥ `from`: its
    /// donation-receiving row (ascending) and its small-pop step.
    fn push_bucket_steps(
        pending: &mut BinaryHeap<Reverse<u32>>,
        trace: &BuildTrace,
        bucket: u32,
        from: u32,
    ) {
        let small_step = trace.small_step[bucket as usize];
        if small_step != u32::MAX && small_step >= from {
            pending.push(Reverse(small_step));
        }
        let row = trace.large_row(bucket);
        let at = row.partition_point(|&t| t < from);
        for &t in &row[at..] {
            pending.push(Reverse(t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(table: &AliasTable, draws: usize) -> Vec<f64> {
        let mut counts = vec![0u64; table.len()];
        for k in 0..draws {
            // A fine deterministic grid covers every bucket boundary.
            counts[table.sample(k as f64 / draws as f64)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn grid_frequencies_match_probabilities() {
        for probs in [
            vec![1.0],
            vec![0.5, 0.5],
            vec![0.6, 0.3, 0.1],
            vec![0.05, 0.05, 0.45, 0.45],
            vec![0.25; 4],
        ] {
            let table = AliasTable::new(&probs);
            let freq = frequencies(&table, 100_000);
            for (i, (&f, &p)) in freq.iter().zip(&probs).enumerate() {
                assert!((f - p).abs() < 1e-3, "bucket {i}: freq {f} vs p {p} in {probs:?}");
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let probs = [0.3, 0.1, 0.25, 0.05, 0.3];
        assert_eq!(AliasTable::new(&probs), AliasTable::new(&probs));
    }

    #[test]
    fn zero_probability_buckets_never_sampled() {
        let table = AliasTable::new(&[0.5, 0.0, 0.5, 0.0]);
        for k in 0..100_000 {
            let got = table.sample(k as f64 / 100_000.0);
            assert!(got != 1 && got != 3, "sampled zero-probability bucket {got}");
        }
    }

    #[test]
    fn extreme_draws_clamp_into_range() {
        let table = AliasTable::new(&[0.2, 0.8]);
        for u in [
            0.0,
            -1.0,
            1.0,
            2.5,
            1.0 - 1e-17,
            MAX_BELOW_ONE,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            assert!(table.sample(u) < 2);
        }
        // A non-finite draw pins to 0.0 and must still respect the
        // zero-probability invariant, even with a zero-weight bucket 0.
        let leading_zero = AliasTable::new(&[0.0, 1.0]);
        for u in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0] {
            assert_eq!(leading_zero.sample(u), 1);
        }
        // u = 1.0 − 1e-17 rounds to exactly 1.0; it must land in the
        // last bucket's range, not index out of bounds.
        assert_eq!((1.0f64 - 1e-17).to_bits(), 1.0f64.to_bits());
        let single = AliasTable::new(&[1.0]);
        assert_eq!(single.sample(1.0 - 1e-17), 0);
    }

    #[test]
    fn singleton_and_heavily_skewed() {
        assert_eq!(AliasTable::new(&[1.0]).sample(0.7), 0);
        let skewed = AliasTable::new(&[1e-9, 1.0 - 1e-9]);
        let freq = frequencies(&skewed, 1_000_000);
        assert!(freq[1] > 0.999_99, "heavy bucket starved: {freq:?}");
    }

    /// Bitwise equality: `PartialEq` on `f64` would let `-0.0 == 0.0`
    /// slip through, and fingerprints hash bits.
    fn assert_bit_identical(a: &AliasTable, b: &AliasTable) {
        let bits = |t: &AliasTable| t.prob.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a), bits(b), "prob arrays differ");
        assert_eq!(a.alias, b.alias, "alias arrays differ");
    }

    fn normalized(weights: &[f64]) -> Vec<f64> {
        let total: f64 = weights.iter().sum();
        weights.iter().map(|&w| w / total).collect()
    }

    /// Irregular positive weights with no bucket near the `scaled = 1`
    /// knife edge by accident of symmetry.
    fn irregular_weights(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 1.0 + ((i as u64).wrapping_mul(2_654_435_761) % 997) as f64 / 997.0)
            .collect()
    }

    #[test]
    fn builder_build_is_bit_identical_to_new() {
        let mut builder = AliasBuilder::new();
        for probs in [
            vec![1.0],
            vec![0.5, 0.5],
            vec![0.6, 0.3, 0.1],
            vec![0.5, 0.0, 0.5, 0.0],
            normalized(&irregular_weights(64)),
        ] {
            // Repeat on the same (scratch-reusing) builder: earlier
            // builds must not leak into later ones.
            assert_bit_identical(&builder.build(&probs), &AliasTable::new(&probs));
        }
    }

    #[test]
    fn repair_is_bit_identical_to_fresh_build() {
        // A chain of sparse perturbations, each repaired against the
        // previous table. Repair is sum-agnostic (it replays whatever
        // vector it is handed), so the test needs no renormalization —
        // which would make the delta dense.
        let mut probs = normalized(&irregular_weights(64));
        let mut builder = AliasBuilder::new();
        let mut base = builder.build(&probs);
        let heaviest = builder.heaviest().unwrap();
        for step in 0..8u32 {
            let mut index = (step * 7 + 1) % 64;
            if index == heaviest {
                index += 1;
            }
            let mut next = probs.clone();
            next[index as usize] *= 0.999;
            let repaired =
                builder.repair(&base, &probs, &next, &[index]).expect("sparse delta must repair");
            assert_bit_identical(&repaired, &AliasTable::new(&next));
            base = repaired;
            probs = next;
        }
    }

    #[test]
    fn repair_handles_multi_bucket_deltas_and_zero_buckets() {
        let mut builder = AliasBuilder::new();
        let base_probs = [0.6, 0.0, 0.4, 0.0];
        let base = builder.build(&base_probs);
        let probs = [0.62, 0.0, 0.38, 0.0];
        let repaired = builder
            .repair(&base, &base_probs, &probs, &[0, 2])
            .expect("categories and schedule unchanged");
        assert_bit_identical(&repaired, &AliasTable::new(&probs));
        for k in 0..10_000 {
            let got = repaired.sample(k as f64 / 10_000.0);
            assert!(got != 1 && got != 3, "sampled zero-probability bucket {got}");
        }
    }

    #[test]
    fn repair_refuses_diverging_deltas() {
        let base_probs = [0.2, 0.8];
        let base = AliasTable::new(&base_probs);
        let mut builder = AliasBuilder::new();
        // No trace recorded yet: nothing to repair against.
        assert!(builder.repair(&base, &base_probs, &[0.5, 0.5], &[0, 1]).is_none());
        builder.build(&base_probs);
        // An empty delta, a length change, and an out-of-range index
        // can never repair.
        assert!(builder.repair(&base, &base_probs, &[0.2, 0.8], &[]).is_none());
        assert!(builder.repair(&base, &base_probs, &[0.2, 0.3, 0.5], &[2]).is_none());
        assert!(builder.repair(&base, &base_probs, &[], &[0]).is_none());
        assert!(builder.repair(&base, &base_probs, &[0.3, 0.8], &[7]).is_none());
        // Small/large category flip at the changed bucket.
        assert!(builder.repair(&base, &base_probs, &[0.6, 0.8], &[0]).is_none());
        // Argmax would move to the changed bucket (first-wins tie
        // included: equal values before the argmax win the scan).
        assert!(builder.repair(&base, &base_probs, &[0.9, 0.8], &[0]).is_none());
        assert!(builder.repair(&base, &base_probs, &[0.8, 0.8], &[0]).is_none());
        // The trace survives rejected repairs: a valid delta still
        // repairs, bit-identical to the fresh build.
        assert_bit_identical(
            &builder.repair(&base, &base_probs, &[0.25, 0.8], &[0]).expect("valid delta repairs"),
            &AliasTable::new(&[0.25, 0.8]),
        );
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn empty_probs_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive probability")]
    fn all_zero_probs_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
