//! The dispatch hot path: one uniform draw, one O(1) alias lookup.
//!
//! The dispatcher owns a deterministic RNG stream and reads the current
//! routing table through the lock-free [`EpochSwap`], so dispatching
//! never contends with the re-solver beyond an `Arc` clone. Determinism matters here
//! for the same reason it does in the simulator: a trace replayed with
//! the same seed and the same sequence of published tables makes exactly
//! the same routing decisions.
//!
//! One `Dispatcher` serves one logical stream of decisions; concurrent
//! producers that would otherwise serialize on a `Mutex<Dispatcher>`
//! should use [`ShardedDispatcher`](crate::shard::ShardedDispatcher),
//! whose shard 0 replays this type's stream exactly.

use std::sync::Arc;

use gtlb_desim::rng::Xoshiro256PlusPlus;

use crate::error::RuntimeError;
use crate::swap::EpochSwap;
use crate::table::RoutingTable;
use crate::telemetry::{Telemetry, ROUTE_SAMPLE_EVERY};

/// RNG stream id for dispatch draws — disjoint from the simulator's
/// arrival (0x0100), routing (0x0200) and service (0x0300) stream
/// families.
pub const DISPATCH_STREAM: u64 = 0x0400;

/// One routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The chosen node.
    pub node: crate::registry::NodeId,
    /// Epoch of the table that made the choice — lets callers correlate
    /// decisions with the re-solves and failures that produced them.
    pub epoch: u64,
}

/// Routes jobs by sampling the currently published table.
#[derive(Debug)]
pub struct Dispatcher {
    table: Arc<EpochSwap<RoutingTable>>,
    rng: Xoshiro256PlusPlus,
    dispatched: u64,
    telemetry: Telemetry,
}

impl Dispatcher {
    /// Dispatcher reading from `table`, drawing from stream
    /// [`DISPATCH_STREAM`] of `seed`. Telemetry is disabled; use
    /// [`with_telemetry`](Self::with_telemetry) to record sampled
    /// routing events.
    #[must_use]
    pub fn new(table: Arc<EpochSwap<RoutingTable>>, seed: u64) -> Self {
        Self::with_telemetry(table, seed, Telemetry::disabled())
    }

    /// Like [`new`](Self::new), with a telemetry facade (this dispatcher
    /// records as shard 0). Telemetry consumes no RNG draws and never
    /// alters a decision.
    #[must_use]
    pub fn with_telemetry(
        table: Arc<EpochSwap<RoutingTable>>,
        seed: u64,
        telemetry: Telemetry,
    ) -> Self {
        Self {
            table,
            rng: Xoshiro256PlusPlus::stream(seed, DISPATCH_STREAM),
            dispatched: 0,
            telemetry,
        }
    }

    /// Routes one job.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] while the published table is
    /// empty (nothing registered yet, or everything down).
    pub fn dispatch(&mut self) -> Result<Decision, RuntimeError> {
        // A pinned borrow, not an `Arc` clone: no refcount traffic on
        // the per-job path. Dropped before returning, so the writer's
        // drain sees at most a method-body-long lease.
        let table = self.table.pin();
        if table.is_empty() {
            return Err(RuntimeError::NoServingNodes);
        }
        let u = self.rng.next_open01();
        self.dispatched += 1;
        let node = table.route(u);
        if self.dispatched & (ROUTE_SAMPLE_EVERY - 1) == 0 && self.telemetry.is_enabled() {
            self.telemetry.record_routed(0, node, table.epoch());
        }
        Ok(Decision { node, epoch: table.epoch() })
    }

    /// Jobs routed so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::NodeId;

    fn table(epoch: u64, probs: &[f64]) -> RoutingTable {
        let ids = (0..probs.len() as u64).map(NodeId::from_raw).collect();
        RoutingTable::new(epoch, ids, probs).unwrap()
    }

    #[test]
    fn dispatch_frequencies_match_probabilities() {
        let swap = Arc::new(EpochSwap::new(table(1, &[0.6, 0.3, 0.1])));
        let mut d = Dispatcher::new(Arc::clone(&swap), 7);
        let n = 200_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            let decision = d.dispatch().unwrap();
            assert_eq!(decision.epoch, 1);
            counts[decision.node.raw() as usize] += 1;
        }
        assert_eq!(d.dispatched(), n);
        for (c, p) in counts.iter().zip([0.6, 0.3, 0.1]) {
            let freq = *c as f64 / n as f64;
            assert!((freq - p).abs() < 0.01, "freq {freq} vs p {p}");
        }
    }

    #[test]
    fn dispatch_is_deterministic_in_the_seed() {
        let mk = |seed| {
            let swap = Arc::new(EpochSwap::new(table(0, &[0.5, 0.5])));
            let mut d = Dispatcher::new(swap, seed);
            (0..64).map(|_| d.dispatch().unwrap().node).collect::<Vec<_>>()
        };
        assert_eq!(mk(42), mk(42));
        assert_ne!(mk(42), mk(43));
    }

    #[test]
    fn dispatch_follows_a_publish() {
        let swap = Arc::new(EpochSwap::new(table(1, &[1.0, 0.0])));
        let mut d = Dispatcher::new(Arc::clone(&swap), 1);
        for _ in 0..50 {
            assert_eq!(d.dispatch().unwrap().node, NodeId::from_raw(0));
        }
        swap.publish(table(2, &[0.0, 1.0]));
        for _ in 0..50 {
            let decision = d.dispatch().unwrap();
            assert_eq!(decision.node, NodeId::from_raw(1));
            assert_eq!(decision.epoch, 2);
        }
    }
}
