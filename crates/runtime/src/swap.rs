//! Epoch-swapped shared state: readers take an `Arc` snapshot, writers
//! publish a whole new value.
//!
//! The dispatch hot path must never block behind a re-solve. We get that
//! with read-copy-update at the granularity of the whole routing table: a
//! published table is immutable, readers clone an `Arc` to it (a brief
//! read lock plus one atomic increment — the lock is only ever held for
//! the duration of the clone, so contention is negligible), and the
//! re-solver replaces the `Arc` under the write lock. In-flight readers
//! keep dispatching on the epoch they snapshotted; the old table is freed
//! when the last reader drops it.

use std::sync::{Arc, RwLock};

/// A slot holding an `Arc<T>` that is swapped wholesale on publish.
#[derive(Debug)]
pub struct EpochSwap<T> {
    slot: RwLock<Arc<T>>,
}

impl<T> EpochSwap<T> {
    /// Creates the slot with an initial value.
    pub fn new(value: T) -> Self {
        Self { slot: RwLock::new(Arc::new(value)) }
    }

    /// Snapshots the current value. The returned `Arc` stays valid (and
    /// immutable) across any number of subsequent publishes.
    pub fn load(&self) -> Arc<T> {
        // A poisoned lock only means a panic elsewhere while holding it;
        // the Arc inside is still structurally sound, so read through it.
        Arc::clone(&self.slot.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Publishes a new value, returning the previous one.
    pub fn publish(&self, value: T) -> Arc<T> {
        self.publish_arc(Arc::new(value))
    }

    /// Publishes an already-wrapped value, returning the previous one.
    pub fn publish_arc(&self, value: Arc<T>) -> Arc<T> {
        let mut slot = self.slot.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::replace(&mut slot, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sees_latest_publish() {
        let swap = EpochSwap::new(1u32);
        assert_eq!(*swap.load(), 1);
        let old = swap.publish(2);
        assert_eq!(*old, 1);
        assert_eq!(*swap.load(), 2);
    }

    #[test]
    fn snapshots_survive_publishes() {
        let swap = EpochSwap::new(vec![1, 2, 3]);
        let snapshot = swap.load();
        swap.publish(vec![9]);
        assert_eq!(*snapshot, vec![1, 2, 3], "old snapshot is immutable");
        assert_eq!(*swap.load(), vec![9]);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let swap = Arc::new(EpochSwap::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let swap = Arc::clone(&swap);
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let v = *swap.load();
                        assert!(v >= last, "published values are monotone");
                        last = v;
                    }
                });
            }
            let writer = Arc::clone(&swap);
            s.spawn(move || {
                for v in 1..=1000 {
                    writer.publish(v);
                }
            });
        });
        assert_eq!(*swap.load(), 1000);
    }
}
