//! Epoch-swapped shared state: readers take an `Arc` snapshot, writers
//! publish a whole new value — with a **lock-free read path**.
//!
//! The dispatch hot path must never block behind a re-solve, and (since
//! PR 4) it must not acquire a lock at all: under many reader threads
//! even an uncontended `RwLock` read costs a futex-word RMW that all
//! readers serialize on, and a single stalled writer can wedge every
//! dispatcher. [`EpochSwap`] instead vendors an ArcSwap-style slot: a
//! generation-counted double buffer over `UnsafeCell<Arc<T>>` with
//! per-slot reader lease counters. Readers are lock-free (they retry
//! only while a publish is racing them, and a publish is rare); writers
//! serialize among themselves on a `Mutex` that readers never touch.
//!
//! ## Protocol
//!
//! The slot keeps two buffers and a monotone generation counter `gen`;
//! `gen & 1` indexes the buffer holding the current value. Each buffer
//! carries a lease counter of in-flight readers.
//!
//! * **Read** (`load`): read `gen` → pick buffer `gen & 1` → increment
//!   that buffer's lease counter → **re-read `gen`**. If it is
//!   unchanged, the buffer is still current and the lease is visible to
//!   any future writer, so cloning the `Arc` inside is safe; release
//!   the lease and return the clone. If `gen` moved, release the lease
//!   and retry — the buffer may be mid-replacement.
//! * **Write** (`publish`/`publish_arc`): take the writer mutex (writers
//!   only), snapshot the live buffer's `Arc` (the "previous value" the
//!   caller gets back), pick the *stale* buffer `(gen + 1) & 1` —
//!   unreachable to every reader that validates against the current
//!   `gen` — wait for its lease count to drain to zero, replace the
//!   `Arc` inside (dropping the value from two publishes ago), then
//!   advance `gen`. In-flight snapshots hold their own clones, so a
//!   retired table is freed when the last one drops; the slot itself
//!   keeps the previous value alive for exactly one more publish (the
//!   recycling lag of a double buffer).
//! * **Pin** (`pin`): identical validation to `load`, but instead of
//!   cloning the `Arc` and releasing the lease, the lease is *held* for
//!   the lifetime of the returned [`Lease`] guard, which derefs to `&T`
//!   borrowed straight out of the pinned buffer — no `Arc` clone, no
//!   refcount traffic, for as many reads as the batch window needs.
//!   See the bounded-staleness contract below.
//!
//! ## Pinned leases and bounded staleness
//!
//! A held [`Lease`] keeps its buffer's lease counter nonzero, which has
//! exactly one consequence for writers: the *next* publish targets the
//! other buffer and completes without waiting, but the publish after
//! that must recycle the pinned buffer and therefore drains — i.e. a
//! held pin lets the slot run **at most one generation ahead** of the
//! pinned snapshot. That is the bounded-staleness contract, and it cuts
//! both ways:
//!
//! * a pinned reader is never more than one publish stale, and
//!   [`Lease::is_current`] / [`Lease::refresh`] let it re-validate at
//!   window boundaries (a batch of dispatches, not per job);
//! * writers drain in bounded time **iff** pin windows are bounded —
//!   callers must drop or `refresh` a pin at every batch boundary, and
//!   must never publish on the same slot from a thread holding a pin
//!   (the second publish would wait for a lease that thread will never
//!   release).
//!
//! ## Memory-ordering argument
//!
//! Three orderings carry the proof:
//!
//! 1. The reader's lease increment and its validating re-read of `gen`
//!    are both `SeqCst`, and the writer's `gen` advance and its lease
//!    poll are both `SeqCst`. In the single total order of those four
//!    operations, either the reader's increment precedes the writer's
//!    poll — the writer sees the lease and waits — or the writer's
//!    `gen` advance precedes the reader's re-read — validation fails
//!    and the reader never touches the cell. There is no interleaving
//!    in which a reader dereferences a buffer a writer is replacing.
//! 2. The writer stores `gen` with `SeqCst` (release semantics) *after*
//!    writing the cell; a reader's first `Acquire` load of `gen`
//!    therefore sees a fully-written `Arc` in the buffer it picks.
//! 3. The reader releases its lease with a `Release` decrement and the
//!    writer's `SeqCst` poll has acquire semantics, so the reader's
//!    clone of the `Arc` happens-before any subsequent replacement of
//!    that buffer. Note the poll **must** be `SeqCst`, not merely
//!    `Acquire`: point 1's total-order argument covers the poll itself,
//!    and with a weaker load there is no happens-before edge from a
//!    straggler's `fetch_add` to the poll — the writer could read a
//!    stale zero on a weakly-ordered target and replace the `Arc` under
//!    a live lease. (x86 compiles both the same way; only the `SeqCst`
//!    poll is correct on ARM and under Miri.)
//! 4. A pinned lease ([`pin`](EpochSwap::pin)) extends point 1 from "a
//!    handful of instructions" to the guard's whole lifetime without new
//!    orderings: the validated `fetch_add` is the *same* operation the
//!    drain polls, so every dereference of the borrowed `&T` sits
//!    between the increment (validated current by the `SeqCst` re-read)
//!    and the `Release` decrement in [`Lease`]'s `Drop` — and point 3
//!    sequences that decrement before any replacement of the buffer.
//!    The writer never mutates a cell whose lease count is nonzero, so
//!    the borrow can never witness (or tear across) a replacement; the
//!    reads themselves race nothing, because the pinned cell is only
//!    written after the pin is released. All four points are exercised
//!    under Miri in CI (`miri-swap` runs this module's tests and
//!    `swap_stress.rs`, both of which pin across racing publishes).
//!
//! The unsafe core is the pair of `UnsafeCell` accesses guarded by this
//! protocol (one clone under a validated lease, one replace under the
//! writer mutex after the lease drain); everything else is safe code.
//! `cargo test -p gtlb-runtime --test swap_stress` hammers the protocol
//! with racing readers and writers, and the scheme contains no
//! `&`-to-`&mut` aliasing. The stress tests cannot catch a weakened
//! ordering on x86 (hardware TSO hides it), so CI additionally runs
//! this module's tests and the stress suite under Miri, which checks
//! the protocol against the abstract memory model rather than the
//! host's.

// The one module in the workspace allowed to use `unsafe`: the two
// `UnsafeCell` accesses guarded by the protocol above.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One buffer of the double-buffered slot: the value plus the count of
/// readers currently holding a lease on it.
struct Buffer<T> {
    leases: AtomicU64,
    value: UnsafeCell<Arc<T>>,
}

/// Writer-side publish statistics: how many tables were published and
/// how far the lease drain had to escalate (spin → yield → sleep). A
/// publish appears in at most one drain tier — the deepest it reached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Total publishes through this slot.
    pub publishes: u64,
    /// Publishes that waited in the spin tier (but never yielded).
    pub drains_spin: u64,
    /// Publishes that escalated to `yield_now` (but never slept).
    pub drains_yield: u64,
    /// Publishes that escalated to a parked sleep.
    pub drains_sleep: u64,
}

/// A slot holding an `Arc<T>` that is swapped wholesale on publish.
///
/// [`load`](Self::load) is lock-free: no mutex, no `RwLock`, only a
/// lease increment, a generation validation, an `Arc` clone, and a
/// lease release. See the [module docs](self) for the protocol and the
/// memory-ordering argument.
pub struct EpochSwap<T> {
    /// Monotone generation counter; `gen & 1` indexes the live buffer.
    gen: AtomicU64,
    buffers: [Buffer<T>; 2],
    /// Serializes writers only; never touched by `load`.
    writer: Mutex<()>,
    /// Publish count + drain escalation tiers; written only on the
    /// mutex-serialized writer path, so `Relaxed` suffices.
    publishes: AtomicU64,
    drains_spin: AtomicU64,
    drains_yield: AtomicU64,
    drains_sleep: AtomicU64,
}

// Safety: the slot hands out `Arc<T>` clones across threads and drops
// replaced values on whichever thread published, so both bounds are
// required; the protocol above makes the interior `UnsafeCell` accesses
// data-race-free.
unsafe impl<T: Send + Sync> Send for EpochSwap<T> {}
unsafe impl<T: Send + Sync> Sync for EpochSwap<T> {}

impl<T> EpochSwap<T> {
    /// Creates the slot with an initial value.
    pub fn new(value: T) -> Self {
        let value = Arc::new(value);
        Self {
            gen: AtomicU64::new(0),
            buffers: [
                Buffer { leases: AtomicU64::new(0), value: UnsafeCell::new(Arc::clone(&value)) },
                // The stale buffer starts as a second handle on the same
                // value; the first publish replaces it.
                Buffer { leases: AtomicU64::new(0), value: UnsafeCell::new(value) },
            ],
            writer: Mutex::new(()),
            publishes: AtomicU64::new(0),
            drains_spin: AtomicU64::new(0),
            drains_yield: AtomicU64::new(0),
            drains_sleep: AtomicU64::new(0),
        }
    }

    /// Writer-side publish statistics (publish count and drain
    /// escalation tiers). Cheap; safe to poll from any thread.
    #[must_use]
    pub fn stats(&self) -> SwapStats {
        SwapStats {
            publishes: self.publishes.load(Ordering::Relaxed),
            drains_spin: self.drains_spin.load(Ordering::Relaxed),
            drains_yield: self.drains_yield.load(Ordering::Relaxed),
            drains_sleep: self.drains_sleep.load(Ordering::Relaxed),
        }
    }

    /// Snapshots the current value without acquiring any lock. The
    /// returned `Arc` stays valid (and immutable) across any number of
    /// subsequent publishes.
    ///
    /// Retries only while a publish races this exact read; with
    /// publishes many orders of magnitude rarer than loads, the loop is
    /// morally one iteration.
    pub fn load(&self) -> Arc<T> {
        loop {
            let gen = self.gen.load(Ordering::Acquire);
            let buffer = &self.buffers[(gen & 1) as usize];
            buffer.leases.fetch_add(1, Ordering::SeqCst);
            if self.gen.load(Ordering::SeqCst) == gen {
                // Safety: the lease was taken while `buffer` was the
                // live buffer and is visible to any writer that could
                // replace it (ordering point 1 in the module docs), so
                // the cell holds a valid `Arc` for the whole clone.
                let value = unsafe { (*buffer.value.get()).clone() };
                buffer.leases.fetch_sub(1, Ordering::Release);
                return value;
            }
            buffer.leases.fetch_sub(1, Ordering::Release);
        }
    }

    /// Pins the current value for a batch window: the returned guard
    /// holds the validated lease open and derefs to `&T` borrowed from
    /// the live buffer — no `Arc` clone, no refcount traffic, however
    /// many reads the window performs.
    ///
    /// A held pin lets at most **one** publish complete (the slot runs
    /// at most one generation ahead of the snapshot); the publish after
    /// that waits for the pin to drop. Callers therefore must keep pin
    /// windows bounded — drop or [`refresh`](Lease::refresh) at every
    /// batch boundary — and must never publish on this slot from a
    /// thread that holds a pin on it. See the module docs for the
    /// bounded-staleness contract and ordering point 4.
    pub fn pin(&self) -> Lease<'_, T> {
        loop {
            let gen = self.gen.load(Ordering::Acquire);
            let buffer = &self.buffers[(gen & 1) as usize];
            buffer.leases.fetch_add(1, Ordering::SeqCst);
            if self.gen.load(Ordering::SeqCst) == gen {
                // Safety: the lease is validated exactly as in `load`
                // and stays held until the guard drops, so the cell's
                // `Arc` — and the `T` it points to — cannot be replaced
                // while the guard lives (ordering points 1 and 4). The
                // raw pointer into the `Arc`'s heap allocation therefore
                // outlives every dereference the guard performs.
                let value = unsafe { Arc::as_ptr(&*buffer.value.get()) };
                return Lease { swap: self, gen, value };
            }
            buffer.leases.fetch_sub(1, Ordering::Release);
        }
    }

    /// Publishes a new value, returning the previous one.
    pub fn publish(&self, value: T) -> Arc<T> {
        self.publish_arc(Arc::new(value))
    }

    /// Publishes an already-wrapped value, returning the previous one.
    ///
    /// Writers serialize on an internal mutex and wait for straggling
    /// readers of the buffer being recycled; readers are never blocked.
    /// A reader holds a lease only for the handful of instructions
    /// between its increment and its (failed) revalidation, so the wait
    /// is normally nanoseconds — but a reader *preempted* in that window
    /// holds the drain open until it is rescheduled, so publish latency
    /// is bounded by scheduler delay, not by a constant. The wait
    /// escalates spin → yield → sleep so a stalled publisher burns no
    /// CPU while it waits the straggler out.
    pub fn publish_arc(&self, value: Arc<T>) -> Arc<T> {
        let guard = self.writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Only writers store `gen`, and we hold the writer mutex.
        let gen = self.gen.load(Ordering::Relaxed);
        // Safety: only the (mutex-serialized) writer ever mutates a
        // cell, and never the live one — this shared read races only
        // with readers' shared clones of the same `Arc`.
        let previous = unsafe { (*self.buffers[(gen & 1) as usize].value.get()).clone() };
        let stale = &self.buffers[((gen + 1) & 1) as usize];
        // The stale buffer is unreachable to readers validating against
        // the current `gen`; drain the stragglers that raced an older
        // generation (they will fail validation and release promptly).
        // The poll must be SeqCst — see ordering points 1 and 3 in the
        // module docs; an Acquire load here would let the writer miss a
        // straggler's lease on weakly-ordered hardware.
        let mut spins = 0u32;
        while stale.leases.load(Ordering::SeqCst) != 0 {
            spins = spins.saturating_add(1);
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 1024 {
                std::thread::yield_now();
            } else {
                // A straggler preempted between its increment and its
                // failed revalidation can hold the lease for a whole
                // scheduling quantum; park instead of burning a core.
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
        // Safety: the writer mutex excludes other writers, the lease
        // drain excludes readers (ordering points 1 and 3), so we have
        // exclusive access to the cell; the value from two publishes
        // ago is dropped here.
        unsafe {
            *stale.value.get() = value;
        }
        self.gen.store(gen.wrapping_add(1), Ordering::SeqCst);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        // Record the deepest escalation tier the drain reached; the
        // thresholds mirror the drain loop above.
        if spins >= 1024 {
            self.drains_sleep.fetch_add(1, Ordering::Relaxed);
        } else if spins >= 64 {
            self.drains_yield.fetch_add(1, Ordering::Relaxed);
        } else if spins > 0 {
            self.drains_spin.fetch_add(1, Ordering::Relaxed);
        }
        drop(guard);
        previous
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for EpochSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochSwap")
            .field("gen", &self.gen.load(Ordering::Acquire))
            .field("value", &self.load())
            .finish()
    }
}

/// A pinned, borrowed snapshot: holds the validated reader lease taken
/// by [`EpochSwap::pin`] open for its lifetime and derefs to `&T`
/// straight out of the pinned buffer. While it lives, the slot can run
/// at most one generation ahead (bounded staleness); dropping it (or
/// [`refresh`](Self::refresh)-ing at a batch boundary) releases the
/// lease so writers drain. Like the `&T` it stands for, a lease can be
/// sent or shared across threads when `T: Sync` (dropping it elsewhere
/// only releases the atomic lease counter).
pub struct Lease<'a, T> {
    swap: &'a EpochSwap<T>,
    /// Generation validated at acquisition; `gen & 1` is the pinned
    /// buffer, and comparing against the slot's live counter answers
    /// [`is_current`](Self::is_current).
    gen: u64,
    /// Borrow of the pinned buffer's `Arc` payload, valid for the
    /// guard's lifetime per ordering point 4 in the module docs.
    value: *const T,
}

// Safety: a `Lease` is a borrow of the pinned `T` plus a handle on the
// slot's atomics. Dereferencing from another thread is sharing `&T`
// (needs `T: Sync`); dropping from another thread only decrements an
// atomic counter. It never drops or moves the `T` itself, so `T: Send`
// is not required.
unsafe impl<T: Sync> Send for Lease<'_, T> {}
unsafe impl<T: Sync> Sync for Lease<'_, T> {}

impl<T> Lease<'_, T> {
    /// Whether the pinned snapshot is still the slot's newest value.
    /// Under the bounded-staleness contract a stale pin is exactly one
    /// publish behind.
    #[must_use]
    pub fn is_current(&self) -> bool {
        self.swap.gen.load(Ordering::Acquire) == self.gen
    }

    /// Generation counter validated at acquisition (monotone across
    /// publishes; not the application-level epoch).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Re-pins onto the newest value if a publish has landed since
    /// acquisition, releasing the old lease. Returns `true` when the
    /// snapshot moved. Call at batch-window boundaries: this is what
    /// keeps pin windows bounded and writers draining.
    pub fn refresh(&mut self) -> bool {
        if self.is_current() {
            return false;
        }
        // Acquire the new pin first, then drop the old lease via the
        // assignment — order is irrelevant for correctness (the two
        // leases sit on different buffers or are idempotent on one).
        *self = self.swap.pin();
        true
    }
}

impl<T> std::ops::Deref for Lease<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: the lease held since acquisition keeps the pinned
        // cell's `Arc` (and its payload) alive and unreplaced until
        // `Drop` releases it — ordering point 4 in the module docs.
        unsafe { &*self.value }
    }
}

impl<T> Drop for Lease<'_, T> {
    fn drop(&mut self) {
        self.swap.buffers[(self.gen & 1) as usize].leases.fetch_sub(1, Ordering::Release);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Lease<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease")
            .field("gen", &self.gen)
            .field("current", &self.is_current())
            .field("value", &**self)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Miri executes ~1000x slower than native; shrink the concurrent
    // workloads so the interpreted run still finishes, while native
    // runs keep the full hammering.
    const READS: usize = if cfg!(miri) { 200 } else { 10_000 };
    const PUBLISHES: u64 = if cfg!(miri) { 50 } else { 1000 };
    const PER_WRITER: u64 = if cfg!(miri) { 25 } else { 500 };

    #[test]
    fn load_sees_latest_publish() {
        let swap = EpochSwap::new(1u32);
        assert_eq!(*swap.load(), 1);
        let old = swap.publish(2);
        assert_eq!(*old, 1);
        assert_eq!(*swap.load(), 2);
    }

    #[test]
    fn snapshots_survive_publishes() {
        let swap = EpochSwap::new(vec![1, 2, 3]);
        let snapshot = swap.load();
        swap.publish(vec![9]);
        assert_eq!(*snapshot, vec![1, 2, 3], "old snapshot is immutable");
        assert_eq!(*swap.load(), vec![9]);
    }

    #[test]
    fn publish_returns_previous_in_order() {
        let swap = EpochSwap::new(0u32);
        for v in 1..=100u32 {
            assert_eq!(*swap.publish(v), v - 1, "double buffer must recycle in order");
        }
        assert_eq!(*swap.load(), 100);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let swap = Arc::new(EpochSwap::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let swap = Arc::clone(&swap);
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..READS {
                        let v = *swap.load();
                        assert!(v >= last, "published values are monotone");
                        last = v;
                    }
                });
            }
            let writer = Arc::clone(&swap);
            s.spawn(move || {
                for v in 1..=PUBLISHES {
                    writer.publish(v);
                }
            });
        });
        assert_eq!(*swap.load(), PUBLISHES);
    }

    #[test]
    fn pin_borrows_without_cloning_the_arc() {
        let swap = EpochSwap::new(vec![1, 2, 3]);
        let before = Arc::strong_count(&swap.load());
        let pin = swap.pin();
        assert_eq!(*pin, vec![1, 2, 3]);
        assert_eq!(Arc::strong_count(&swap.load()), before, "pin adds no refcount");
        assert!(pin.is_current());
    }

    #[test]
    fn pin_survives_exactly_one_publish() {
        let swap = EpochSwap::new(10u32);
        let mut pin = swap.pin();
        // One publish proceeds without draining the held pin: it
        // recycles the *other* buffer.
        swap.publish(11);
        assert_eq!(*pin, 10, "pinned snapshot is immutable across the publish");
        assert!(!pin.is_current());
        assert!(pin.refresh(), "refresh observes the publish");
        assert_eq!(*pin, 11);
        assert!(pin.is_current());
        assert!(!pin.refresh(), "refresh is a no-op while current");
    }

    #[test]
    fn dropping_a_pin_unblocks_the_second_publish() {
        // A held pin admits one publish; the second targets the pinned
        // buffer and must wait. Drop the pin from another thread while
        // the writer drains.
        let swap = EpochSwap::new(0u32);
        let pin = swap.pin();
        assert_eq!(pin.generation(), 0);
        swap.publish(1); // recycles the non-pinned buffer: no wait
        std::thread::scope(|s| {
            s.spawn(|| {
                // Give the writer a moment to enter its drain loop.
                std::thread::sleep(std::time::Duration::from_millis(2));
                drop(pin);
            });
            swap.publish(2); // drains the pinned buffer
        });
        assert_eq!(*swap.load(), 2);
        assert_eq!(swap.stats().publishes, 2);
    }

    #[test]
    fn concurrent_pinned_readers_and_writer() {
        // Readers pin across bounded windows with refresh at the
        // boundary; values stay monotone and never tear, and the writer
        // finishes because every pin window is bounded.
        let swap = Arc::new(EpochSwap::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let swap = Arc::clone(&swap);
                s.spawn(move || {
                    let mut last = 0;
                    let mut pin = swap.pin();
                    for i in 0..READS {
                        let v = *pin;
                        assert!(v >= last, "pinned snapshots are monotone across refresh");
                        last = v;
                        if i % 16 == 15 {
                            pin.refresh();
                        }
                    }
                });
            }
            let writer = Arc::clone(&swap);
            s.spawn(move || {
                for v in 1..=PUBLISHES {
                    writer.publish(v);
                }
            });
        });
        assert_eq!(*swap.load(), PUBLISHES);
    }

    #[test]
    fn stats_count_publishes() {
        let swap = EpochSwap::new(0u32);
        assert_eq!(swap.stats(), SwapStats::default());
        for v in 1..=5u32 {
            swap.publish(v);
        }
        let stats = swap.stats();
        assert_eq!(stats.publishes, 5);
        // Uncontended publishes never escalate past the zero-spin path.
        assert_eq!(stats.drains_spin + stats.drains_yield + stats.drains_sleep, 0);
    }

    #[test]
    fn concurrent_writers_serialize() {
        // Two writer threads each publish their own tagged sequence; the
        // set of returned "previous" values must be exactly the set of
        // published values minus the final one plus the initial one —
        // i.e. every value leaves the slot exactly once.
        let swap = Arc::new(EpochSwap::new(0u64));
        let mut returned: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2u64)
                .map(|w| {
                    let swap = Arc::clone(&swap);
                    s.spawn(move || {
                        (0..PER_WRITER)
                            .map(|k| *swap.publish((w + 1) << 32 | k))
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        returned.push(*swap.load());
        returned.sort_unstable();
        let mut expected: Vec<u64> = (0..2u64)
            .flat_map(|w| (0..PER_WRITER).map(move |k| (w + 1) << 32 | k))
            .chain(std::iter::once(0))
            .collect();
        expected.sort_unstable();
        assert_eq!(returned, expected);
    }
}
