//! Decentralized best-reply / selfish-migration dynamics: the online
//! alternative to the centralized COOP solve.
//!
//! The centralized re-solver computes the Nash Bargaining Solution in
//! closed form and publishes it. The game-theory literature deploys the
//! opposite architecture (Berenbrink et al., *Distributed Selfish Load
//! Balancing*): each **logical player** — one per node — holds a local
//! strategy (its own load share `λᵢ`), observes only its neighborhood's
//! estimated rates, and migrates load toward neighbors that currently
//! offer a lower expected response time. This module implements that
//! iteration as a deterministic synchronous process over the same
//! `(rates, Φ)` snapshot the centralized solver consumes.
//!
//! ## The update rule
//!
//! Model each node as an M/M/1 server: at load `λᵢ` its expected
//! response time is `Tᵢ = 1/(μᵢ − λᵢ)`, so the *residual capacity*
//! (slack) `sᵢ = μᵢ − λᵢ` is the reciprocal response time. In one
//! synchronous round every ordered pair `(i, j)` with `sⱼ > sᵢ`
//! migrates
//!
//! ```text
//! fᵢⱼ = αᵢ · (θ/n) · (sⱼ − sᵢ)        θ = damping ∈ (0, 1]
//! ```
//!
//! jobs/second from the slower player `i` to the faster player `j`,
//! where `αᵢ = min(1, λᵢ / Σⱼ desired outflow)` scales a sender's
//! total outflow so it can never migrate more load than it has. All
//! flows are computed from the round-start snapshot (Jacobi style), so
//! the result is independent of player order.
//!
//! Three invariants hold by construction, not by projection:
//!
//! * **conservation** — every migrated unit leaves one player and
//!   arrives at exactly one other, so `Σλᵢ = Φ` throughout;
//! * **feasibility** — `λᵢ ≥ 0` (sender scaling) and `λᵢ < μᵢ` (the
//!   slack update is a convex combination of positive slacks);
//! * **potential descent** — the slack vector evolves by a symmetric
//!   doubly-stochastic map (each pair's transfer moves both slacks
//!   toward each other by the same amount, at most half their gap since
//!   `θ/n ≤ ½`), so the Beckmann [`potential`] `Σ ln(μᵢ/(μᵢ−λᵢ))` is
//!   non-increasing every round — the property test pins this.
//!
//! The fixed point is the Wardrop equilibrium (equal response time on
//! every used node, no unused node faster), which for this model is
//! **the same allocation as COOP** (the paper's Theorem 3.6/§3.4.2:
//! both equalize residual capacity over the active set). Best-reply
//! therefore converges to the centralized table — CI's
//! `dynamics-convergence` job gates both the convergence rate and the
//! agreement tolerance.
//!
//! ## Stopping and randomness
//!
//! A round first measures the equilibrium violation
//! ([`equilibrium_residual`]): the worst regret `Tᵢ − min_j Tⱼ` any
//! loaded player could still realize by migrating. Iteration stops when
//! the residual is `≤ epsilon` or after `max_rounds`. The dynamics are
//! deterministic except for one genuine tie-break: the terminal
//! conservation repair (re-depositing the `O(ε_machine)` floating-point
//! drift) picks among bit-identical maximal-slack players with a single
//! draw from the dedicated stream family [`DYNAMICS_STREAM`] (`0x0A00`).
//! The stream is drawn *only* by this solver, so running `Coop` mode —
//! or any fault-free trace — stays bit-reproducible.

use gtlb_core::allocation::Allocation;
use gtlb_core::error::CoreError;
use gtlb_core::model::Cluster;
use gtlb_desim::rng::Xoshiro256PlusPlus;

/// RNG stream family of the dynamics solver's tie-breaks. Continues the
/// map documented in DESIGN.md (`dispatch 0x0400`, …, `retry 0x0900`);
/// seeded from the runtime base seed, drawn at most once per solve.
pub const DYNAMICS_STREAM: u64 = 0x0A00;

/// Which solver the runtime's resolve path runs: the centralized
/// closed-form scheme, or the decentralized best-reply iteration of
/// this module. Selected at build time
/// (`RuntimeBuilder::solver_mode`) and switchable live
/// (`Runtime::set_solver_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SolverMode {
    /// Centralized: solve the configured `SchemeKind` in closed form
    /// and publish the result (the default; bit-identical to every
    /// pre-existing trace).
    #[default]
    Coop,
    /// Decentralized: iterate damped synchronous best-reply rounds from
    /// the previous table until the equilibrium residual drops to
    /// `epsilon` (or `max_rounds` runs out), then publish the profile.
    BestReply {
        /// Convergence threshold on the equilibrium residual.
        epsilon: f64,
        /// Hard round budget per solve.
        max_rounds: u32,
        /// Step damping `θ ∈ (0, 1]`.
        damping: f64,
    },
}

impl SolverMode {
    /// The default-configured best-reply mode.
    #[must_use]
    pub fn best_reply() -> Self {
        let cfg = BestReplyConfig::default();
        Self::BestReply { epsilon: cfg.epsilon, max_rounds: cfg.max_rounds, damping: cfg.damping }
    }

    /// Display name: `"coop"` or `"best-reply"`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Coop => "coop",
            Self::BestReply { .. } => "best-reply",
        }
    }

    /// The iteration tunables, when this is the best-reply mode.
    #[must_use]
    pub fn best_reply_config(&self) -> Option<BestReplyConfig> {
        match *self {
            Self::Coop => None,
            Self::BestReply { epsilon, max_rounds, damping } => {
                Some(BestReplyConfig { epsilon, max_rounds, damping })
            }
        }
    }
}

/// Tunables of the best-reply iteration (the payload of
/// `SolverMode::BestReply`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestReplyConfig {
    /// Stop once the equilibrium residual (worst per-player regret, in
    /// seconds of response time) drops to this level.
    pub epsilon: f64,
    /// Hard round budget; the solve reports `converged = false` when it
    /// runs out.
    pub max_rounds: u32,
    /// Step damping `θ ∈ (0, 1]`: the fraction of each pairwise
    /// response-time gap migrated per round.
    pub damping: f64,
}

impl Default for BestReplyConfig {
    fn default() -> Self {
        Self { epsilon: 1e-9, max_rounds: 128, damping: 0.5 }
    }
}

impl BestReplyConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`CoreError::BadInput`] for `epsilon ≤ 0` (or non-finite),
    /// `max_rounds = 0`, or `damping` outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(CoreError::BadInput("best-reply epsilon must be positive".into()));
        }
        if self.max_rounds == 0 {
            return Err(CoreError::BadInput("best-reply needs at least one round".into()));
        }
        if !(self.damping > 0.0 && self.damping <= 1.0) {
            return Err(CoreError::BadInput("best-reply damping must be in (0, 1]".into()));
        }
        Ok(())
    }
}

/// How the most recent best-reply solve went; stored on the runtime and
/// exposed through the control plane (`/nodes`) and telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceStats {
    /// Epoch of the table the solve published.
    pub epoch: u64,
    /// Synchronous rounds executed.
    pub rounds: u32,
    /// Final equilibrium residual (seconds of response-time regret).
    pub residual: f64,
    /// Whether the residual reached epsilon within the round budget.
    pub converged: bool,
}

/// Result of one best-reply solve.
#[derive(Debug, Clone)]
pub struct BestReplyOutcome {
    /// The allocation at the final strategy profile.
    pub allocation: Allocation,
    /// Synchronous rounds executed.
    pub rounds: u32,
    /// Final equilibrium residual.
    pub residual: f64,
    /// Whether epsilon-stop triggered within `max_rounds`.
    pub converged: bool,
}

/// The Beckmann potential `Σᵢ ∫₀^{λᵢ} 1/(μᵢ − s) ds =
/// Σᵢ ln(μᵢ/(μᵢ − λᵢ))` of a strategy profile: the Lyapunov function of
/// the migration dynamics (infinite for an infeasible profile).
#[must_use]
pub fn potential(cluster: &Cluster, loads: &[f64]) -> f64 {
    cluster
        .rates()
        .iter()
        .zip(loads)
        .map(|(&mu, &l)| if l < mu { (mu / (mu - l)).ln() } else { f64::INFINITY })
        .sum()
}

/// The equilibrium violation of a profile: the largest response-time
/// regret `Tᵢ − min_j Tⱼ` over loaded players (`0` at a Wardrop point,
/// and for the empty/idle profile). `min_j` ranges over *all* players —
/// an idle-but-faster neighbor is exactly what a selfish player would
/// defect to.
#[must_use]
pub fn equilibrium_residual(cluster: &Cluster, loads: &[f64]) -> f64 {
    let mut t_min = f64::INFINITY;
    for (&mu, &l) in cluster.rates().iter().zip(loads) {
        let slack = mu - l;
        if slack > 0.0 {
            t_min = t_min.min(1.0 / slack);
        }
    }
    let mut worst: f64 = 0.0;
    for (&mu, &l) in cluster.rates().iter().zip(loads) {
        if l > 0.0 {
            let slack = mu - l;
            let t = if slack > 0.0 { 1.0 / slack } else { f64::INFINITY };
            worst = worst.max(t - t_min);
        }
    }
    worst
}

/// One synchronous best-reply round over the complete neighborhood:
/// every player computes its migrations from the same round-start
/// snapshot and `loads` is advanced in place. Pure and deterministic —
/// the property tests drive this directly.
///
/// # Panics
/// If `loads` and the cluster disagree on length (an internal-caller
/// contract; [`best_reply`] validates its inputs).
pub fn round(cluster: &Cluster, loads: &mut [f64], damping: f64) {
    let n = loads.len();
    assert_eq!(n, cluster.n(), "loads/cluster length mismatch");
    if n < 2 {
        return;
    }
    let rates = cluster.rates();
    let coeff = damping / n as f64;

    // Rank players by slack (ascending). Ties contribute zero flow in
    // either direction, so their relative order is irrelevant.
    let slack: Vec<f64> = rates.iter().zip(loads.iter()).map(|(&mu, &l)| mu - l).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| slack[a].total_cmp(&slack[b]));
    let sorted_s: Vec<f64> = order.iter().map(|&i| slack[i]).collect();

    // Desired outflow of the rank-k player: coeff · Σ_{m>k} (s_m − s_k),
    // via suffix sums of the sorted slacks.
    let mut suffix = vec![0.0; n + 1];
    for k in (0..n).rev() {
        suffix[k] = suffix[k + 1] + sorted_s[k];
    }
    // Sender scaling α, then prefix sums of α and α·s so each receiver
    // can accumulate its (scaled) inflow in O(1).
    let mut alpha = vec![1.0; n];
    let mut out_scaled = vec![0.0; n];
    for k in 0..n {
        let above = (n - 1 - k) as f64;
        let out = coeff * (suffix[k + 1] - sorted_s[k] * above);
        let lambda = loads[order[k]];
        if out > lambda {
            alpha[k] = if out > 0.0 { lambda / out } else { 1.0 };
        }
        out_scaled[k] = alpha[k] * out;
    }
    let mut alpha_prefix = 0.0;
    let mut alpha_s_prefix = 0.0;
    for k in 0..n {
        // Inflow to rank k: coeff · Σ_{m<k} α_m (s_k − s_m).
        let inflow = coeff * (sorted_s[k] * alpha_prefix - alpha_s_prefix);
        let i = order[k];
        loads[i] = (loads[i] - out_scaled[k] + inflow).max(0.0);
        alpha_prefix += alpha[k];
        alpha_s_prefix += alpha[k] * sorted_s[k];
    }
}

/// Runs the damped synchronous best-reply iteration for total rate
/// `phi` over `cluster`, starting from `warm` (relative weights from
/// the previous strategy profile; rescaled to `phi`, discarded if
/// infeasible against the current rates) or, absent a usable warm
/// start, from the capacity-proportional profile.
///
/// The returned loads conserve `Σλ = phi` exactly — the terminal
/// floating-point drift is re-deposited on a maximal-slack loaded
/// player, with bit-equal ties broken by one draw from `rng` (the
/// [`DYNAMICS_STREAM`] family).
///
/// # Errors
/// [`CoreError::BadInput`] from [`BestReplyConfig::validate`] or a
/// non-finite/negative `phi`; [`CoreError::Overloaded`] when `phi`
/// meets the cluster capacity.
pub fn best_reply(
    cluster: &Cluster,
    phi: f64,
    warm: Option<&[f64]>,
    cfg: &BestReplyConfig,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<BestReplyOutcome, CoreError> {
    cfg.validate()?;
    if !(phi >= 0.0 && phi.is_finite()) {
        return Err(CoreError::BadInput(format!(
            "arrival rate must be finite and >= 0, got {phi}"
        )));
    }
    cluster.check_arrival_rate(phi)?;
    let n = cluster.n();
    if phi == 0.0 {
        return Ok(BestReplyOutcome {
            allocation: Allocation::new(vec![0.0; n]),
            rounds: 0,
            residual: 0.0,
            converged: true,
        });
    }

    let mut loads = init_profile(cluster, phi, warm);
    let mut rounds = 0u32;
    let mut residual = equilibrium_residual(cluster, &loads);
    while residual > cfg.epsilon && rounds < cfg.max_rounds {
        round(cluster, &mut loads, cfg.damping);
        rounds += 1;
        residual = equilibrium_residual(cluster, &loads);
    }
    repair_conservation(cluster, &mut loads, phi, rng);
    Ok(BestReplyOutcome {
        allocation: Allocation::new(loads),
        rounds,
        residual,
        converged: residual <= cfg.epsilon,
    })
}

/// The starting profile: the rescaled warm start when it is feasible
/// against the current rates, the capacity-proportional profile
/// otherwise (slack `μᵢ(1 − ρ) > 0` everywhere, so every player starts
/// strictly stable).
fn init_profile(cluster: &Cluster, phi: f64, warm: Option<&[f64]>) -> Vec<f64> {
    let rates = cluster.rates();
    if let Some(w) = warm {
        if w.len() == cluster.n() && w.iter().all(|&x| x.is_finite() && x >= 0.0) {
            let total: f64 = w.iter().sum();
            if total > 0.0 {
                let scaled: Vec<f64> = w.iter().map(|&x| x * phi / total).collect();
                if scaled.iter().zip(rates).all(|(&l, &mu)| l < mu) {
                    return scaled;
                }
            }
        }
    }
    let total = cluster.total_rate();
    rates.iter().map(|&mu| phi * mu / total).collect()
}

/// Re-deposits the summation drift `phi − Σλ` (a few ulps) on one
/// maximal-slack loaded player so the conservation law holds exactly.
/// Bit-identical slack ties are broken by a single [`DYNAMICS_STREAM`]
/// draw — the solver's only randomized decision.
fn repair_conservation(
    cluster: &Cluster,
    loads: &mut [f64],
    phi: f64,
    rng: &mut Xoshiro256PlusPlus,
) {
    let drift = phi - loads.iter().sum::<f64>();
    if drift == 0.0 {
        return;
    }
    let rates = cluster.rates();
    let mut best_slack = f64::NEG_INFINITY;
    let mut candidates: Vec<usize> = Vec::new();
    for (i, (&mu, &l)) in rates.iter().zip(loads.iter()).enumerate() {
        if l <= 0.0 {
            continue;
        }
        let slack = mu - l;
        if slack > best_slack {
            best_slack = slack;
            candidates.clear();
            candidates.push(i);
        } else if slack == best_slack {
            candidates.push(i);
        }
    }
    let pick = match candidates.len() {
        0 => return, // nothing loaded: only possible at phi = 0
        1 => candidates[0],
        k => candidates[(rng.next_u64() % k as u64) as usize],
    };
    loads[pick] = (loads[pick] + drift).max(0.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtlb_core::schemes::{Coop, SingleClassScheme};

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::stream(7, DYNAMICS_STREAM)
    }

    fn solve(cluster: &Cluster, phi: f64) -> BestReplyOutcome {
        best_reply(cluster, phi, None, &BestReplyConfig::default(), &mut rng()).unwrap()
    }

    #[test]
    fn config_validation_rejects_bad_parameters() {
        let ok = BestReplyConfig::default();
        assert!(ok.validate().is_ok());
        assert!(BestReplyConfig { epsilon: 0.0, ..ok }.validate().is_err());
        assert!(BestReplyConfig { max_rounds: 0, ..ok }.validate().is_err());
        assert!(BestReplyConfig { damping: 0.0, ..ok }.validate().is_err());
        assert!(BestReplyConfig { damping: 1.5, ..ok }.validate().is_err());
    }

    #[test]
    fn converges_to_the_coop_allocation_homogeneous() {
        let cluster = Cluster::new(vec![1.0; 4]).unwrap();
        let out = solve(&cluster, 2.0);
        assert!(out.converged, "residual {} after {} rounds", out.residual, out.rounds);
        for &l in out.allocation.loads() {
            assert!((l - 0.5).abs() < 1e-8, "homogeneous split must be uniform: {l}");
        }
        out.allocation.verify(&cluster, 2.0, 1e-9).unwrap();
    }

    #[test]
    fn converges_to_the_coop_allocation_heterogeneous() {
        let cluster = Cluster::new(vec![10.0, 1.0, 1.0, 1.0]).unwrap();
        let phi = cluster.arrival_rate_for_utilization(0.6);
        let out = solve(&cluster, phi);
        assert!(out.converged);
        let coop = Coop.allocate(&cluster, phi).unwrap();
        for (a, b) in out.allocation.loads().iter().zip(coop.loads()) {
            assert!((a - b).abs() < 1e-6, "best-reply {a} vs COOP {b}");
        }
    }

    #[test]
    fn parks_slow_nodes_like_the_waterfill() {
        // COOP at Φ = 5 over (10, 1) serves everything on the fast node.
        let cluster = Cluster::new(vec![10.0, 1.0]).unwrap();
        let out = solve(&cluster, 5.0);
        assert!(out.converged);
        assert!((out.allocation.loads()[0] - 5.0).abs() < 1e-8);
        assert!(out.allocation.loads()[1].abs() < 1e-8);
    }

    #[test]
    fn conserves_and_stays_feasible_every_round() {
        let cluster = Cluster::new(vec![4.0, 2.0, 1.0, 0.5]).unwrap();
        let phi = cluster.arrival_rate_for_utilization(0.85);
        let mut loads: Vec<f64> =
            cluster.rates().iter().map(|&mu| phi * mu / cluster.total_rate()).collect();
        let mut last_potential = potential(&cluster, &loads);
        for _ in 0..64 {
            round(&cluster, &mut loads, 0.5);
            let total: f64 = loads.iter().sum();
            assert!((total - phi).abs() < 1e-9 * phi, "conservation drifted: {total} vs {phi}");
            for (&mu, &l) in cluster.rates().iter().zip(&loads) {
                assert!((0.0..mu).contains(&l), "infeasible load {l} at mu {mu}");
            }
            let p = potential(&cluster, &loads);
            assert!(p <= last_potential + 1e-12, "potential rose: {last_potential} -> {p}");
            last_potential = p;
        }
    }

    #[test]
    fn warm_start_resumes_faster_than_cold() {
        let cluster = Cluster::new(vec![4.0, 2.0, 1.0]).unwrap();
        let phi = cluster.arrival_rate_for_utilization(0.7);
        let cold = solve(&cluster, phi);
        let warm = best_reply(
            &cluster,
            phi * 1.01,
            Some(cold.allocation.loads()),
            &BestReplyConfig::default(),
            &mut rng(),
        )
        .unwrap();
        assert!(warm.converged);
        assert!(
            warm.rounds <= cold.rounds,
            "warm start took {} rounds vs {} cold",
            warm.rounds,
            cold.rounds
        );
    }

    #[test]
    fn infeasible_warm_start_falls_back_to_proportional() {
        let cluster = Cluster::new(vec![2.0, 2.0]).unwrap();
        // Warm profile loads a node beyond its (new) capacity.
        let out =
            best_reply(&cluster, 1.0, Some(&[5.0, 0.0]), &BestReplyConfig::default(), &mut rng())
                .unwrap();
        assert!(out.converged);
        out.allocation.verify(&cluster, 1.0, 1e-9).unwrap();
    }

    #[test]
    fn idle_and_overload_edge_cases() {
        let cluster = Cluster::new(vec![1.0, 1.0]).unwrap();
        let idle = solve(&cluster, 0.0);
        assert!(idle.converged);
        assert_eq!(idle.rounds, 0);
        assert_eq!(idle.allocation.loads(), &[0.0, 0.0]);
        let err = best_reply(&cluster, 2.0, None, &BestReplyConfig::default(), &mut rng());
        assert!(err.is_err(), "phi at capacity must fail loudly");
    }

    #[test]
    fn single_node_takes_everything_in_zero_rounds() {
        let cluster = Cluster::new(vec![3.0]).unwrap();
        let out = solve(&cluster, 1.5);
        assert!(out.converged);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.allocation.loads(), &[1.5]);
    }

    #[test]
    fn tie_break_draw_is_deterministic_per_stream() {
        // Two identical nodes: the drift repair may hit a bit-equal
        // slack tie. Same seed, same pick; the solve is reproducible.
        let cluster = Cluster::new(vec![1.0, 1.0]).unwrap();
        let a = solve(&cluster, 0.8);
        let b = solve(&cluster, 0.8);
        assert_eq!(a.allocation.loads(), b.allocation.loads());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.residual.to_bits(), b.residual.to_bits());
    }

    #[test]
    fn residual_measures_regret_against_idle_fast_nodes() {
        let cluster = Cluster::new(vec![4.0, 1.0]).unwrap();
        // Everything on the slow node: huge regret vs the idle fast one.
        let r = equilibrium_residual(&cluster, &[0.0, 0.9]);
        assert!(r > 0.0);
        // The Wardrop point has zero residual.
        let out = solve(&cluster, 1.0);
        assert!(equilibrium_residual(&cluster, out.allocation.loads()) <= 1e-9);
    }
}
