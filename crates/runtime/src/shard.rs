//! Sharded dispatch: N per-core dispatchers over one epoch-swapped table.
//!
//! A single [`Dispatcher`](crate::dispatcher::Dispatcher) behind a mutex
//! serializes every routing decision on one RNG — fine for one producer,
//! a bottleneck for many. A [`ShardedDispatcher`] removes the global
//! lock from the hot path by giving each shard its **own** deterministic
//! RNG stream and its own hit counters; shards share nothing but the
//! immutable routing-table snapshot, so concurrent dispatch on distinct
//! shards never contends. Counters are merged only when read.
//!
//! ## Seed derivation
//!
//! Shard `k` of base seed `s` draws from
//! `Xoshiro256PlusPlus::stream(s ^ k, DISPATCH_STREAM)` — the base seed
//! XOR the shard id, fed to the same stream family the unsharded
//! dispatcher uses. Two consequences worth relying on:
//!
//! * **shard 0 ≡ unsharded** — `s ^ 0 = s`, so shard 0 replays exactly
//!   the decision sequence of `Dispatcher::new(table, s)`;
//! * **determinism** — for a fixed `(seed, shard count)` the per-shard
//!   decision sequences, and therefore any fixed interleaving of them
//!   (e.g. round-robin by job index), are reproducible regardless of
//!   which OS threads executed which shards.
//!
//! Each shard sits behind its own mutex purely to make the type `Sync`;
//! in the intended deployment (one shard per core/worker) that mutex is
//! uncontended and costs one CAS per lock. Workers that dispatch in
//! batches can hold a [`ShardGuard`] across the whole batch and pay the
//! lock — and the lock-free epoch-swap table load, which the guard pins
//! at acquisition — once, leaving one RNG draw, one O(1) alias lookup,
//! and one array increment per job on the hot path.
//! [`ShardGuard::route_batch`] tightens that further: it routes N jobs
//! in one loop with per-node counts accumulated densely by table
//! position and merged into the shard counters once per batch, drawing
//! exactly the same uniforms in exactly the same order as N single
//! [`ShardGuard::dispatch`] calls — batching is a pure amortization,
//! invisible to the decision sequence.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use gtlb_desim::rng::Xoshiro256PlusPlus;

use crate::dispatcher::{Decision, DISPATCH_STREAM};
use crate::error::RuntimeError;
use crate::registry::NodeId;
use crate::swap::{EpochSwap, Lease};
use crate::table::RoutingTable;
use crate::telemetry::{Telemetry, ROUTE_SAMPLE_EVERY};

/// RNG stream id of per-shard admission draws — disjoint from dispatch
/// (0x0400) and the driver's streams (0x0500/0x0600), so toggling
/// admission control never perturbs the routing decision sequence.
pub const ADMISSION_STREAM: u64 = 0x0700;

/// Per-shard mutable state: the RNG streams and the local counters.
/// Hit counts are a dense vector indexed by raw node id (ids are
/// assigned sequentially and never reused), so counting a hit is an
/// array increment, not a hash lookup.
#[derive(Debug)]
struct ShardCore {
    rng: Xoshiro256PlusPlus,
    admission_rng: Xoshiro256PlusPlus,
    dispatched: u64,
    hits: Vec<u64>,
    /// Dense per-batch hit scratch indexed by table position, reused
    /// across [`ShardGuard::route_batch`] calls so a batch allocates
    /// nothing. Contents are only meaningful within one batch; the
    /// merged counts land in `hits`.
    batch_hits: Vec<u64>,
}

impl ShardCore {
    #[inline]
    fn count_hit(&mut self, node: NodeId) {
        let idx = node.raw() as usize;
        if idx >= self.hits.len() {
            self.hits.resize(idx + 1, 0);
        }
        self.hits[idx] += 1;
    }
}

/// N independent dispatchers over one shared routing table.
///
/// See the [module docs](self) for the seed-derivation rule and the
/// determinism contract.
#[derive(Debug)]
pub struct ShardedDispatcher {
    table: Arc<EpochSwap<RoutingTable>>,
    shards: Vec<Mutex<ShardCore>>,
    round_robin: AtomicUsize,
    telemetry: Telemetry,
}

impl ShardedDispatcher {
    /// `shards` dispatchers reading `table`; shard `k` draws from stream
    /// `DISPATCH_STREAM` of seed `base_seed ^ k`. Telemetry is disabled;
    /// use [`with_telemetry`](Self::with_telemetry) to record sampled
    /// routing events.
    ///
    /// # Panics
    /// If `shards` is zero.
    #[must_use]
    pub fn new(table: Arc<EpochSwap<RoutingTable>>, base_seed: u64, shards: usize) -> Self {
        Self::with_telemetry(table, base_seed, shards, Telemetry::disabled())
    }

    /// Like [`new`](Self::new), with a telemetry facade. Telemetry
    /// consumes no RNG draws and never alters a decision: the sequences
    /// are bit-identical whether `telemetry` is enabled or not.
    ///
    /// # Panics
    /// If `shards` is zero.
    #[must_use]
    pub fn with_telemetry(
        table: Arc<EpochSwap<RoutingTable>>,
        base_seed: u64,
        shards: usize,
        telemetry: Telemetry,
    ) -> Self {
        assert!(shards > 0, "a sharded dispatcher needs at least one shard");
        let shards = (0..shards as u64)
            .map(|k| {
                Mutex::new(ShardCore {
                    rng: Xoshiro256PlusPlus::stream(base_seed ^ k, DISPATCH_STREAM),
                    admission_rng: Xoshiro256PlusPlus::stream(base_seed ^ k, ADMISSION_STREAM),
                    dispatched: 0,
                    hits: Vec::new(),
                    batch_hits: Vec::new(),
                })
            })
            .collect();
        Self { table, shards, round_robin: AtomicUsize::new(0), telemetry }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Locks shard `shard` for a batch of dispatches. The lock is
    /// uncontended when each worker owns one shard; holding the guard
    /// across a batch amortizes it to nothing.
    ///
    /// The guard pins the routing-table snapshot current at acquisition
    /// as a borrowed [`Lease`] — no `Arc` clone, no refcount traffic:
    /// every dispatch through it routes on that one table (a consistent
    /// epoch per batch). Re-acquire the guard to observe a newer publish
    /// — per-job paths like [`dispatch_on`](Self::dispatch_on) do so
    /// implicitly. Per the pin contract (`swap.rs`), a held guard lets
    /// **one** publish complete unhindered and blocks only the second;
    /// guards are batch-scoped, so drop them promptly and never publish
    /// twice on this slot from the thread holding one.
    ///
    /// # Panics
    /// If `shard >= shard_count()`.
    #[must_use]
    pub fn shard(&self, shard: usize) -> ShardGuard<'_> {
        let core = self.shards[shard].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        ShardGuard { table: self.table.pin(), core, telemetry: &self.telemetry, shard }
    }

    /// Routes one job on shard `shard`.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] while the published table is
    /// empty.
    ///
    /// # Panics
    /// If `shard >= shard_count()`.
    pub fn dispatch_on(&self, shard: usize) -> Result<Decision, RuntimeError> {
        self.shard(shard).dispatch()
    }

    /// Routes one job on the next shard in round-robin order — the
    /// drop-in replacement for a single mutex dispatcher when callers do
    /// not pin shards to workers. A single-threaded caller sees a
    /// deterministic shard sequence `0, 1, …, N-1, 0, …`.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] while the published table is
    /// empty.
    pub fn dispatch(&self) -> Result<Decision, RuntimeError> {
        self.dispatch_on(self.next_shard())
    }

    /// Claims the next shard in round-robin order (the selection
    /// [`dispatch`](Self::dispatch) uses); callers that need admission
    /// and dispatch on the *same* shard claim once and reuse the index.
    #[must_use]
    pub fn next_shard(&self) -> usize {
        self.round_robin.fetch_add(1, Ordering::Relaxed) % self.shards.len()
    }

    /// Total jobs routed, merged over all shards.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).dispatched)
            .sum()
    }

    /// Per-node hit counts merged over all shards, sorted by node id
    /// (nodes that were never hit are omitted). This is the read-side
    /// merge: shards never synchronize on the dispatch path, so the
    /// merge is a point-in-time sum.
    #[must_use]
    pub fn hit_counts(&self) -> Vec<(NodeId, u64)> {
        let mut merged: Vec<u64> = Vec::new();
        for shard in &self.shards {
            let core = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if core.hits.len() > merged.len() {
                merged.resize(core.hits.len(), 0);
            }
            for (m, &c) in merged.iter_mut().zip(&core.hits) {
                *m += c;
            }
        }
        merged
            .into_iter()
            .enumerate()
            .filter(|&(_, count)| count > 0)
            .map(|(raw, count)| (NodeId::from_raw(raw as u64), count))
            .collect()
    }

    /// The shared table slot (benchmarks, custom publish loops).
    #[must_use]
    pub fn table_handle(&self) -> Arc<EpochSwap<RoutingTable>> {
        Arc::clone(&self.table)
    }
}

/// Exclusive access to one shard, for batched dispatch. Routes on the
/// table snapshot taken when the guard was acquired (see
/// [`ShardedDispatcher::shard`]) — a pinned borrow of the live epoch
/// cell, not an `Arc` clone.
#[derive(Debug)]
pub struct ShardGuard<'a> {
    table: Lease<'a, RoutingTable>,
    core: MutexGuard<'a, ShardCore>,
    telemetry: &'a Telemetry,
    shard: usize,
}

impl ShardGuard<'_> {
    /// Routes one job on this shard, on the guard's pinned table
    /// snapshot: one RNG draw, one O(1) alias lookup, one counter
    /// increment — no lock, no table load. With telemetry enabled, every
    /// [`ROUTE_SAMPLE_EVERY`]-th decision of this shard is additionally
    /// pushed to the event ring (the dispatch counter doubles as the
    /// sample clock, so sampling adds no per-dispatch state and no RNG
    /// draw).
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] while the pinned table is empty.
    pub fn dispatch(&mut self) -> Result<Decision, RuntimeError> {
        if self.table.is_empty() {
            return Err(RuntimeError::NoServingNodes);
        }
        let u = self.core.rng.next_open01();
        let node = self.table.route(u);
        self.core.dispatched += 1;
        self.core.count_hit(node);
        if self.core.dispatched & (ROUTE_SAMPLE_EVERY - 1) == 0 && self.telemetry.is_enabled() {
            self.telemetry.record_routed(self.shard, node, self.table.epoch());
        }
        Ok(Decision { node, epoch: self.table.epoch() })
    }

    /// Routes `count` jobs in one tight loop on the pinned snapshot,
    /// appending one [`Decision`] per job to `out`.
    ///
    /// Per job this is one RNG draw and one alias lookup; the per-node
    /// hit counts accumulate in a dense shard-local scratch vector
    /// indexed by table position (reused across batches — a batch
    /// allocates nothing beyond `out`'s own growth) and merge into the
    /// shard's counters once at the end, so the loop body touches no
    /// growable state. The draws come from the
    /// same stream in the same order as `count` successive
    /// [`dispatch`](Self::dispatch) calls — the decision sequence is
    /// identical, batching only amortizes the bookkeeping.
    ///
    /// # Errors
    /// [`RuntimeError::NoServingNodes`] while the pinned table is empty
    /// (and `count > 0`); no draws are consumed in that case.
    pub fn route_batch(
        &mut self,
        count: usize,
        out: &mut Vec<Decision>,
    ) -> Result<(), RuntimeError> {
        if count == 0 {
            return Ok(());
        }
        if self.table.is_empty() {
            return Err(RuntimeError::NoServingNodes);
        }
        let table = &*self.table;
        let epoch = table.epoch();
        let nodes = table.nodes();
        // Split borrows: the shard scratch mutates while the pinned
        // table is read — disjoint fields of the guard.
        let core = &mut *self.core;
        core.batch_hits.clear();
        core.batch_hits.resize(nodes.len(), 0);
        out.reserve(count);
        for _ in 0..count {
            let u = core.rng.next_open01();
            let idx = table.route_index(u);
            core.batch_hits[idx] += 1;
            out.push(Decision { node: nodes[idx], epoch });
        }
        core.dispatched += count as u64;
        // Batch equivalent of the per-dispatch sample: if this batch
        // crossed a sample boundary, record its last decision.
        if self.telemetry.is_enabled() {
            let after = core.dispatched;
            let before = after - count as u64;
            if before / ROUTE_SAMPLE_EVERY != after / ROUTE_SAMPLE_EVERY {
                if let Some(last) = out.last() {
                    self.telemetry.record_routed(self.shard, last.node, epoch);
                }
            }
        }
        for (idx, &c) in core.batch_hits.iter().enumerate() {
            if c > 0 {
                let raw = nodes[idx].raw() as usize;
                if raw >= core.hits.len() {
                    core.hits.resize(raw + 1, 0);
                }
                core.hits[raw] += c;
            }
        }
        Ok(())
    }

    /// A uniform draw from this shard's [`ADMISSION_STREAM`] — a stream
    /// disjoint from the routing stream, so probabilistic admission stays
    /// deterministic per shard without perturbing the decision sequence.
    pub fn next_admission_draw(&mut self) -> f64 {
        self.core.admission_rng.next_open01()
    }

    /// Jobs routed by this shard so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.core.dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::Dispatcher;

    fn table(epoch: u64, probs: &[f64]) -> RoutingTable {
        let ids = (0..probs.len() as u64).map(NodeId::from_raw).collect();
        RoutingTable::new(epoch, ids, probs).unwrap()
    }

    fn swap(probs: &[f64]) -> Arc<EpochSwap<RoutingTable>> {
        Arc::new(EpochSwap::new(table(1, probs)))
    }

    #[test]
    fn shard_zero_matches_the_unsharded_dispatcher() {
        let probs = [0.5, 0.3, 0.2];
        let sharded = ShardedDispatcher::new(swap(&probs), 42, 4);
        let mut single = Dispatcher::new(swap(&probs), 42);
        let mut guard = sharded.shard(0);
        for _ in 0..256 {
            assert_eq!(guard.dispatch().unwrap(), single.dispatch().unwrap());
        }
    }

    #[test]
    fn shards_draw_independent_streams() {
        let sharded = ShardedDispatcher::new(swap(&[0.5, 0.5]), 7, 2);
        let a: Vec<NodeId> = (0..128).map(|_| sharded.dispatch_on(0).unwrap().node).collect();
        let b: Vec<NodeId> = (0..128).map(|_| sharded.dispatch_on(1).unwrap().node).collect();
        assert_ne!(a, b, "distinct shards must not replay the same stream");
    }

    #[test]
    fn merged_sequence_is_reproducible_for_fixed_seed_and_shards() {
        let run = || {
            let sharded = ShardedDispatcher::new(swap(&[0.6, 0.4]), 99, 4);
            // Round-robin job placement: job j runs on shard j % 4.
            (0..1000).map(|j| sharded.dispatch_on(j % 4).unwrap().node).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn merged_sequence_is_independent_of_execution_interleaving() {
        // Dispatch shard-by-shard (as parallel workers would, in some
        // arbitrary thread order) and compare against the round-robin
        // merge of a job-by-job run: per-shard streams make the merged
        // sequence a pure function of (seed, shard count, placement).
        let n_shards = 4usize;
        let jobs = 1024usize;
        let per_shard = jobs / n_shards;

        let sharded = ShardedDispatcher::new(swap(&[0.3, 0.3, 0.4]), 5, n_shards);
        let mut by_shard: Vec<Vec<NodeId>> = Vec::new();
        // Worst-case interleaving: entire shards run back to back, in
        // reverse order.
        for k in (0..n_shards).rev() {
            let mut guard = sharded.shard(k);
            by_shard.push((0..per_shard).map(|_| guard.dispatch().unwrap().node).collect());
        }
        by_shard.reverse(); // index by shard id again
        let merged: Vec<NodeId> = (0..jobs).map(|j| by_shard[j % n_shards][j / n_shards]).collect();

        let reference = ShardedDispatcher::new(swap(&[0.3, 0.3, 0.4]), 5, n_shards);
        let sequential: Vec<NodeId> =
            (0..jobs).map(|j| reference.dispatch_on(j % n_shards).unwrap().node).collect();
        assert_eq!(merged, sequential);
    }

    #[test]
    fn counters_merge_on_read() {
        let sharded = ShardedDispatcher::new(swap(&[0.8, 0.2]), 3, 3);
        for j in 0..3000usize {
            sharded.dispatch_on(j % 3).unwrap();
        }
        assert_eq!(sharded.dispatched(), 3000);
        let counts = sharded.hit_counts();
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3000);
        // Frequencies follow the table across the merge.
        let n0 = counts.iter().find(|&&(id, _)| id == NodeId::from_raw(0)).unwrap().1;
        let f0 = n0 as f64 / 3000.0;
        assert!((f0 - 0.8).abs() < 0.05, "merged frequency {f0} vs p 0.8");
    }

    #[test]
    fn round_robin_dispatch_covers_all_shards() {
        let sharded = ShardedDispatcher::new(swap(&[1.0]), 0, 4);
        for _ in 0..40 {
            sharded.dispatch().unwrap();
        }
        assert_eq!(sharded.dispatched(), 40);
        let per_shard: Vec<u64> = (0..4).map(|k| sharded.shard(k).dispatched()).collect();
        assert_eq!(per_shard, vec![10, 10, 10, 10]);
    }

    #[test]
    fn empty_table_fails_dispatch() {
        let slot = Arc::new(EpochSwap::new(RoutingTable::empty(0)));
        let sharded = ShardedDispatcher::new(slot, 1, 2);
        assert_eq!(sharded.dispatch(), Err(RuntimeError::NoServingNodes));
    }

    #[test]
    fn shards_follow_a_publish() {
        let slot = swap(&[1.0, 0.0]);
        let sharded = ShardedDispatcher::new(Arc::clone(&slot), 11, 2);
        for j in 0..20usize {
            assert_eq!(sharded.dispatch_on(j % 2).unwrap().node, NodeId::from_raw(0));
        }
        slot.publish(table(2, &[0.0, 1.0]));
        for j in 0..20usize {
            let d = sharded.dispatch_on(j % 2).unwrap();
            assert_eq!(d.node, NodeId::from_raw(1));
            assert_eq!(d.epoch, 2);
        }
    }

    #[test]
    fn guard_pins_the_snapshot_at_acquisition() {
        let slot = swap(&[1.0, 0.0]);
        let sharded = ShardedDispatcher::new(Arc::clone(&slot), 3, 1);
        let mut guard = sharded.shard(0);
        slot.publish(table(2, &[0.0, 1.0]));
        // The held guard keeps routing on the epoch-1 snapshot...
        for _ in 0..10 {
            let d = guard.dispatch().unwrap();
            assert_eq!((d.node, d.epoch), (NodeId::from_raw(0), 1));
        }
        drop(guard);
        // ...and a re-acquired guard observes the publish.
        let d = sharded.shard(0).dispatch().unwrap();
        assert_eq!((d.node, d.epoch), (NodeId::from_raw(1), 2));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedDispatcher::new(swap(&[1.0]), 0, 0);
    }

    #[test]
    fn route_batch_replays_the_per_job_sequence() {
        // Batch routing must consume the same draws in the same order as
        // N single dispatches: identical decisions, identical counters.
        let probs = [0.5, 0.3, 0.2];
        let batched = ShardedDispatcher::new(swap(&probs), 21, 2);
        let single = ShardedDispatcher::new(swap(&probs), 21, 2);
        let mut decisions = Vec::new();
        {
            let mut guard = batched.shard(1);
            guard.route_batch(300, &mut decisions).unwrap();
            // A second batch on the same guard continues the stream.
            guard.route_batch(212, &mut decisions).unwrap();
        }
        let mut reference = single.shard(1);
        for d in &decisions {
            assert_eq!(*d, reference.dispatch().unwrap());
        }
        drop(reference); // release shard 1 before the merging reads below
        assert_eq!(decisions.len(), 512);
        assert_eq!(batched.dispatched(), 512);
        assert_eq!(batched.hit_counts(), single.hit_counts());
    }

    #[test]
    fn route_batch_scratch_survives_table_resizes() {
        // The per-batch hit scratch is shard-local and reused across
        // batches; growing and shrinking the table between batches must
        // not leak stale counts into later merges — decisions and
        // merged counters stay identical to per-job dispatch through
        // the same publish sequence.
        let phases: [(&[f64], usize); 3] =
            [(&[0.5, 0.3, 0.2], 100), (&[0.1, 0.2, 0.3, 0.25, 0.15], 128), (&[0.9, 0.1], 77)];
        let run = |batch: bool| {
            let slot = swap(phases[0].0);
            let sharded = ShardedDispatcher::new(Arc::clone(&slot), 13, 1);
            let mut decisions = Vec::new();
            for (i, &(probs, count)) in phases.iter().enumerate() {
                if i > 0 {
                    slot.publish(table(i as u64 + 1, probs));
                }
                if batch {
                    sharded.shard(0).route_batch(count, &mut decisions).unwrap();
                } else {
                    let mut guard = sharded.shard(0);
                    for _ in 0..count {
                        decisions.push(guard.dispatch().unwrap());
                    }
                }
            }
            (decisions, sharded.hit_counts())
        };
        let (batched, batched_counts) = run(true);
        let (single, single_counts) = run(false);
        assert_eq!(batched, single);
        assert_eq!(batched_counts, single_counts);
    }

    #[test]
    fn route_batch_empty_table_and_zero_count() {
        let slot = Arc::new(EpochSwap::new(RoutingTable::empty(0)));
        let sharded = ShardedDispatcher::new(slot, 1, 1);
        let mut out = Vec::new();
        assert_eq!(sharded.shard(0).route_batch(4, &mut out), Err(RuntimeError::NoServingNodes));
        assert!(out.is_empty());
        // count = 0 succeeds even on an empty table and draws nothing.
        assert_eq!(sharded.shard(0).route_batch(0, &mut out), Ok(()));
        assert!(out.is_empty());
    }

    #[test]
    fn route_batch_pins_one_epoch() {
        let slot = swap(&[1.0, 0.0]);
        let sharded = ShardedDispatcher::new(Arc::clone(&slot), 9, 1);
        let mut guard = sharded.shard(0);
        slot.publish(table(2, &[0.0, 1.0]));
        let mut out = Vec::new();
        guard.route_batch(32, &mut out).unwrap();
        assert!(out.iter().all(|d| d.epoch == 1 && d.node == NodeId::from_raw(0)));
    }
}
