//! Property tests for the best-reply update rule (vendored proptest
//! shim):
//!
//! 1. the Beckmann potential is monotone non-increasing across every
//!    synchronous round, for any damping in (0, 1];
//! 2. each round conserves total load and preserves per-node
//!    feasibility (0 ≤ λᵢ < μᵢ) to float precision;
//! 3. the converged fixed point is invariant under permutation of the
//!    players — relabeling nodes permutes the allocation and nothing
//!    else;
//! 4. the epsilon-stop always triggers within the round budget for
//!    feasible inputs (512 rounds is enough for ε = 1e-7 at any
//!    utilization in [0.05, 0.97] with rates spanning 100:1).

use gtlb_core::model::Cluster;
use gtlb_desim::rng::Xoshiro256PlusPlus;
use gtlb_runtime::dynamics::{self, best_reply, potential, BestReplyConfig, DYNAMICS_STREAM};
use proptest::prelude::*;

/// Service rates spanning two orders of magnitude, 1–11 players.
fn arb_rates() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1f64..10.0, 1..12)
}

fn arb_utilization() -> impl Strategy<Value = f64> {
    0.05f64..0.97
}

/// A strictly feasible starting profile: proportional split, then a
/// deterministic per-node perturbation bounded by half the local slack.
fn perturbed_profile(cluster: &Cluster, phi: f64, wobble_seed: u64) -> Vec<f64> {
    let total = cluster.total_rate();
    let mut rng = Xoshiro256PlusPlus::stream(wobble_seed, 0x17);
    let mut loads: Vec<f64> = cluster.rates().iter().map(|mu| phi * mu / total).collect();
    // Move mass between random pairs; keeps the sum exact and every
    // player strictly inside its capacity.
    for _ in 0..loads.len() {
        let n = loads.len() as u64;
        let (i, j) = ((rng.next_u64() % n) as usize, (rng.next_u64() % n) as usize);
        if i == j {
            continue;
        }
        let headroom = (cluster.rates()[j] - loads[j]) * 0.25;
        let delta = loads[i].min(headroom) * 0.5;
        loads[i] -= delta;
        loads[j] += delta;
    }
    loads
}

/// Fisher–Yates permutation of `0..n` driven by a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = Xoshiro256PlusPlus::stream(seed, 0x23);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn potential_is_monotone_non_increasing(
        rates in arb_rates(),
        rho in arb_utilization(),
        damping in 0.05f64..1.0,
        wobble in 0u64..1_000,
    ) {
        let cluster = Cluster::new(rates).unwrap();
        let phi = cluster.arrival_rate_for_utilization(rho);
        let mut loads = perturbed_profile(&cluster, phi, wobble);
        let mut prev = potential(&cluster, &loads);
        prop_assert!(prev.is_finite(), "perturbed start must be feasible");
        for round_ix in 0..64 {
            dynamics::round(&cluster, &mut loads, damping);
            let next = potential(&cluster, &loads);
            // Allow float-level noise on top of exact descent.
            prop_assert!(
                next <= prev + 1e-9 * prev.abs().max(1.0),
                "potential rose at round {round_ix}: {prev} -> {next}"
            );
            prev = next;
        }
    }

    #[test]
    fn rounds_conserve_mass_and_feasibility(
        rates in arb_rates(),
        rho in arb_utilization(),
        damping in 0.05f64..1.0,
        wobble in 0u64..1_000,
    ) {
        let cluster = Cluster::new(rates).unwrap();
        let phi = cluster.arrival_rate_for_utilization(rho);
        let mut loads = perturbed_profile(&cluster, phi, wobble);
        let before: f64 = loads.iter().sum();
        for _ in 0..32 {
            dynamics::round(&cluster, &mut loads, damping);
            let after: f64 = loads.iter().sum();
            prop_assert!(
                (after - before).abs() <= 1e-9 * before.max(1.0),
                "total load drifted: {before} -> {after}"
            );
            for (lambda, mu) in loads.iter().zip(cluster.rates()) {
                prop_assert!(*lambda >= 0.0, "negative load {lambda}");
                prop_assert!(lambda < mu, "player overloaded: {lambda} >= {mu}");
            }
        }
    }

    #[test]
    fn fixed_point_is_permutation_invariant(
        rates in arb_rates(),
        rho in arb_utilization(),
        perm_seed in 0u64..1_000,
    ) {
        let cluster = Cluster::new(rates.clone()).unwrap();
        let phi = cluster.arrival_rate_for_utilization(rho);
        let cfg = BestReplyConfig { epsilon: 1e-10, max_rounds: 4_096, damping: 1.0 };

        let mut rng = Xoshiro256PlusPlus::stream(7, DYNAMICS_STREAM);
        let base = best_reply(&cluster, phi, None, &cfg, &mut rng).unwrap();
        prop_assert!(base.converged);

        let perm = permutation(rates.len(), perm_seed);
        let shuffled: Vec<f64> = perm.iter().map(|&i| rates[i]).collect();
        let shuffled_cluster = Cluster::new(shuffled).unwrap();
        let mut rng2 = Xoshiro256PlusPlus::stream(7, DYNAMICS_STREAM);
        let moved = best_reply(&shuffled_cluster, phi, None, &cfg, &mut rng2).unwrap();
        prop_assert!(moved.converged);

        // moved[k] is the load of original player perm[k].
        for (k, &orig) in perm.iter().enumerate() {
            let (a, b) = (base.allocation.loads()[orig], moved.allocation.loads()[k]);
            prop_assert!(
                (a - b).abs() < 1e-6,
                "player {orig} changed load under relabeling: {a} vs {b}"
            );
        }
    }

    #[test]
    fn epsilon_stop_triggers_within_budget(
        rates in arb_rates(),
        rho in arb_utilization(),
    ) {
        let cluster = Cluster::new(rates).unwrap();
        let phi = cluster.arrival_rate_for_utilization(rho);
        let cfg = BestReplyConfig { epsilon: 1e-7, max_rounds: 512, damping: 1.0 };
        let mut rng = Xoshiro256PlusPlus::stream(11, DYNAMICS_STREAM);
        let out = best_reply(&cluster, phi, None, &cfg, &mut rng).unwrap();
        prop_assert!(
            out.converged,
            "no epsilon-stop in {} rounds (residual {})", out.rounds, out.residual
        );
        prop_assert!(out.rounds <= cfg.max_rounds);
        prop_assert!(out.residual <= cfg.epsilon);
        let total: f64 = out.allocation.loads().iter().sum();
        prop_assert!((total - phi).abs() <= 1e-9 * phi.max(1.0), "fixed point lost mass");
    }
}
