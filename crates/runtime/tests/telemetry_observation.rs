//! Telemetry is observation-only: the same chaos trace run with
//! telemetry enabled and disabled produces bit-identical outputs
//! (stats, decision totals, health timelines) — and the enabled run's
//! snapshot actually contains the data.

use std::sync::Arc;

use gtlb_runtime::telemetry::names;
use gtlb_runtime::{
    AdmissionConfig, FaultPlan, NodeId, RetryConfig, RetryPolicy, Runtime, RuntimeEvent,
    SchemeKind, TraceConfig, TraceDriver, TraceStats,
};

/// Clears the harness/observability knobs once per process: these
/// tests choose telemetry on/off explicitly per run, and an ambient
/// `GTLB_TELEMETRY`/`GTLB_CONTROL_PLANE`/`GTLB_BENCH_*` from the
/// caller's shell (or a CI invariance job) must not leak in.
fn pin_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        for var in ["GTLB_TELEMETRY", "GTLB_CONTROL_PLANE", "GTLB_BENCH_QUICK", "GTLB_BENCH_JSON"] {
            std::env::remove_var(var);
        }
    });
}

/// One chaos trace: crash-recover + flaky faults, retries, heartbeats,
/// admission pressure, across 2 shards.
fn chaos_run(telemetry: bool) -> (Arc<Runtime>, TraceStats, f64) {
    pin_env();
    let rt = Arc::new(
        Runtime::builder()
            .seed(0x0B5E)
            .scheme(SchemeKind::Coop)
            .nominal_arrival_rate(2.8)
            .shards(2)
            .admission(AdmissionConfig { target_utilization: 0.95, defer_band: 0.05 })
            .telemetry(telemetry)
            .build(),
    );
    let ids: Vec<NodeId> = [4.0, 2.0, 1.0].iter().map(|&r| rt.register_node(r).unwrap()).collect();
    rt.resolve_now().unwrap();
    let plan =
        FaultPlan::new(0xFA57).crash_recover(ids[0], 30.0, 40.0).flaky(ids[2], 60.0, 40.0, 0.35);
    let mut driver = TraceDriver::new(2.8, TraceConfig { seed: 99, batch_size: 400 })
        .with_faults(plan)
        .with_retry(RetryPolicy::new(RetryConfig::default()).unwrap())
        .with_heartbeats(1.0);
    driver.run_jobs(&rt, 3_000).unwrap();
    let stats = driver.stats();
    let clock = driver.clock();
    (rt, stats, clock)
}

#[test]
fn enabled_and_disabled_traces_are_bit_identical() {
    let (rt_off, stats_off, clock_off) = chaos_run(false);
    let (rt_on, stats_on, clock_on) = chaos_run(true);

    assert_eq!(clock_off.to_bits(), clock_on.to_bits(), "virtual clocks diverged");
    assert_eq!(stats_off.submitted, stats_on.submitted);
    assert_eq!(stats_off.jobs, stats_on.jobs);
    assert_eq!(stats_off.accepted, stats_on.accepted);
    assert_eq!(stats_off.rejected, stats_on.rejected);
    assert_eq!(stats_off.deferred, stats_on.deferred);
    assert_eq!(stats_off.failed, stats_on.failed);
    assert_eq!(stats_off.retried, stats_on.retried);
    assert_eq!(
        stats_off.mean_response.to_bits(),
        stats_on.mean_response.to_bits(),
        "mean response diverged"
    );
    assert_eq!(stats_off.per_node, stats_on.per_node);
    assert_eq!(stats_off.attempts, stats_on.attempts);
    assert_eq!(rt_off.dispatched(), rt_on.dispatched());
    assert_eq!(rt_off.hit_counts(), rt_on.hit_counts());

    let offs: Vec<_> = rt_off.health_transitions();
    let ons: Vec<_> = rt_on.health_transitions();
    assert_eq!(offs.len(), ons.len(), "health timelines diverged in length");
    for (a, b) in offs.iter().zip(&ons) {
        assert_eq!(a.node, b.node);
        assert_eq!(a.from, b.from);
        assert_eq!(a.to, b.to);
        assert_eq!(a.at.to_bits(), b.at.to_bits());
    }
}

#[test]
fn disabled_runtime_scrapes_nothing() {
    let (rt, _, _) = chaos_run(false);
    assert!(!rt.telemetry().is_enabled());
    assert!(rt.telemetry_snapshot().is_none());
    let handle = rt.telemetry_handle();
    assert!(!handle.is_enabled());
    assert!(handle.snapshot().is_none());
    assert!(handle.prometheus().is_none());
    assert!(handle.json().is_none());
    assert!(handle.recent_events(8).is_empty());
}

#[test]
fn enabled_snapshot_is_populated_and_consistent() {
    let (rt, stats, clock) = chaos_run(true);
    let snap = rt.telemetry_snapshot().expect("telemetry enabled");

    // Synced totals mirror the exact books.
    assert_eq!(snap.counter(names::DISPATCHES), Some(rt.dispatched()));
    // Admission sees every dispatch attempt (retries ask again), so its
    // submitted total dominates the driver's first-offer count.
    assert!(snap.counter(names::ADMISSION_SUBMITTED).unwrap() >= stats.submitted);
    assert_eq!(snap.counter(names::RETRIES), Some(stats.retried));
    assert_eq!(snap.gauge(names::VIRTUAL_CLOCK), Some(clock));
    let publishes = snap.counter(names::TABLE_PUBLISHES).unwrap();
    assert_eq!(publishes, rt.swap_stats().publishes);
    assert!(publishes >= 1, "resolve_now published at least once");

    // The chaos plan guarantees drops, retries, and transitions.
    assert!(snap.counter(names::FAULT_DROPS).unwrap() > 0);
    assert!(snap.counter(names::HEALTH_TRANSITIONS).unwrap() > 0);

    // Histograms hold the trace's latencies.
    let response = snap.histogram(names::RESPONSE_SECONDS).unwrap();
    assert_eq!(response.count(), stats.jobs);
    assert!(response.p99() >= response.p50());
    let backoff = snap.histogram(names::RETRY_BACKOFF_SECONDS).unwrap();
    assert_eq!(backoff.count(), stats.retried);

    // The event ring saw sampled routing plus the chaos events, tagged
    // with virtual times within the trace.
    let events = rt.telemetry().recent_events(64);
    assert!(!events.is_empty());
    assert!(events.iter().any(|e| matches!(e.event, RuntimeEvent::HealthChanged { .. })));
    for ev in &events {
        assert!(ev.time.is_finite() && ev.time <= clock, "event tagged after the clock");
    }

    // Both exposition formats render every catalog metric they should.
    let handle = rt.telemetry_handle();
    let prom = handle.prometheus().unwrap();
    assert!(prom.contains(names::DISPATCHES));
    assert!(prom.contains("gtlb_response_seconds_count"));
    let json = handle.json().unwrap();
    assert!(json.contains(names::DISPATCHES));
    assert!(json.contains(names::RESPONSE_SECONDS));
}
