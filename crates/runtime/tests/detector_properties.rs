//! Property tests over the accrual detector (vendored proptest shim),
//! centered on the self-tuning mode:
//!
//! 1. the effective thresholds are monotone in the observed
//!    interarrival variance (more jitter → a higher bar, never lower
//!    than the configured baseline) and never invert;
//! 2. hysteresis survives any observation cadence: recovery stays
//!    harder than demotion — `down > suspect` at every instant, a node
//!    never leaves Down without `probation_successes` consecutive
//!    successes, and no failure ever promotes;
//! 3. fixed-config mode is bit-identical to the pre-self-tuning
//!    detector: an inline reference model re-implementing the original
//!    arithmetic must agree on every φ bit and every view over
//!    arbitrary observation sequences.

use std::collections::HashMap;

use gtlb_runtime::{AccrualDetector, DetectorConfig, Health, NodeId};
use proptest::prelude::*;

fn node(raw: u64) -> NodeId {
    NodeId::from_raw(raw)
}

/// Feeds a same-mean, `±spread` alternating cadence: gaps `g − d`,
/// `g + d`, … — variance grows with `d` while the mean stays `g`.
fn feed_alternating(det: &mut AccrualDetector, n: NodeId, gap: f64, spread: f64, beats: usize) {
    let mut t = 0.0;
    for k in 0..beats {
        t += if k % 2 == 0 { gap - spread } else { gap + spread };
        det.observe_success(n, t);
    }
}

/// The original fixed-threshold detector, re-implemented verbatim (EWMA
/// intervals, fixed `suspect_phi`/`down_phi`, boost/decay, hysteresis
/// band, probation streak) as the bit-identity oracle for property 3.
struct ReferenceDetector {
    cfg: DetectorConfig,
    tracks: HashMap<u64, RefTrack>,
}

struct RefTrack {
    mean: f64,
    samples: u64,
    last_seen: Option<f64>,
    boost: f64,
    streak: u32,
    view: Health,
}

impl ReferenceDetector {
    fn new(cfg: DetectorConfig) -> Self {
        Self { cfg, tracks: HashMap::new() }
    }

    fn track(&mut self, n: NodeId) -> &mut RefTrack {
        self.tracks.entry(n.raw()).or_insert(RefTrack {
            mean: 0.0,
            samples: 0,
            last_seen: None,
            boost: 0.0,
            streak: 0,
            view: Health::Up,
        })
    }

    fn phi(&self, n: NodeId, now: f64) -> f64 {
        let Some(t) = self.tracks.get(&n.raw()) else { return 0.0 };
        let silence = match t.last_seen {
            Some(last) if t.samples >= self.cfg.min_samples && t.mean > 0.0 => {
                ((now - last).max(0.0)) / (t.mean * std::f64::consts::LN_10)
            }
            _ => 0.0,
        };
        t.boost + silence
    }

    fn observe_success(&mut self, n: NodeId, t: f64) -> Health {
        let cfg = self.cfg;
        let track = self.track(n);
        if let Some(last) = track.last_seen {
            let gap = (t - last).max(0.0);
            if gap > 0.0 {
                // Ewma::observe, verbatim.
                if track.samples == 0 {
                    track.mean = gap;
                } else {
                    track.mean += cfg.interval_alpha * (gap - track.mean);
                }
                track.samples += 1;
            }
        }
        track.last_seen = Some(t);
        track.boost *= cfg.success_decay;
        track.streak += 1;
        match track.view {
            Health::Down if track.streak >= cfg.probation_successes => track.view = Health::Up,
            Health::Suspect if track.boost < cfg.recovery_factor * cfg.suspect_phi => {
                track.view = Health::Up;
            }
            _ => {}
        }
        track.view
    }

    fn observe_failure(&mut self, n: NodeId, t: f64) -> Health {
        let cfg = self.cfg;
        let track = self.track(n);
        track.boost += cfg.failure_boost;
        track.streak = 0;
        let phi = self.phi(n, t);
        let track = self.tracks.get_mut(&n.raw()).expect("track just created");
        match track.view {
            Health::Up | Health::Suspect if phi >= cfg.down_phi => track.view = Health::Down,
            Health::Up if phi >= cfg.suspect_phi => track.view = Health::Suspect,
            _ => {}
        }
        track.view
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: more observed variance never lowers the bar. At a
    /// fixed mean cadence, a wider spread yields effective thresholds
    /// at least as high, both bounded below by the configured
    /// baselines, with `down > suspect` preserved.
    #[test]
    fn effective_thresholds_are_monotone_in_observed_variance(
        gap in 0.5f64..3.0,
        lo_frac in 0.0f64..0.45,
        hi_extra in 0.05f64..0.45,
        window in 4usize..16,
        beats in 8usize..40,
    ) {
        let n = node(0);
        let lo = gap * lo_frac;
        let hi = gap * (lo_frac + hi_extra).min(0.9);
        let mut calm = AccrualDetector::new(DetectorConfig::self_tuning(window));
        let mut noisy = AccrualDetector::new(DetectorConfig::self_tuning(window));
        feed_alternating(&mut calm, n, gap, lo, beats);
        feed_alternating(&mut noisy, n, gap, hi, beats);
        let (cs, cd) = calm.effective_thresholds(n);
        let (ns, nd) = noisy.effective_thresholds(n);
        let cfg = DetectorConfig::default();
        prop_assert!(ns >= cs - 1e-12, "suspect threshold fell with variance: {cs} -> {ns}");
        prop_assert!(nd >= cd - 1e-12, "down threshold fell with variance: {cd} -> {nd}");
        prop_assert!(cs >= cfg.suspect_phi - 1e-12 && ns >= cfg.suspect_phi - 1e-12,
            "never below the configured baseline");
        prop_assert!(cd > cs && nd > ns, "ordering preserved under tuning");
    }

    /// Property 2: hysteresis and probation survive any cadence. Over
    /// an arbitrary mix of successes and failures at arbitrary gaps,
    /// the effective thresholds never invert, a Down node re-enters Up
    /// only after `probation_successes` consecutive successes, and no
    /// failure ever promotes a node.
    #[test]
    fn hysteresis_is_preserved_under_any_cadence(
        window in 0usize..12, // 0 and 1 both exercise fixed mode
        steps in prop::collection::vec((0.0f64..4.0, 0u32..2), 1..80),
    ) {
        let cfg = if window >= 2 {
            DetectorConfig::self_tuning(window)
        } else {
            DetectorConfig::default()
        };
        let probation = cfg.probation_successes;
        let mut det = AccrualDetector::new(cfg);
        let n = node(0);
        let mut t = 0.0;
        let mut streak: u32 = 0;
        for &(gap, success_bit) in &steps {
            let success = success_bit == 1;
            t += gap;
            let before = det.view(n);
            let transition = if success {
                streak += 1;
                det.observe_success(n, t)
            } else {
                streak = 0;
                det.observe_failure(n, t)
            };
            let after = det.view(n);
            let (s, d) = det.effective_thresholds(n);
            prop_assert!(d > s, "effective thresholds inverted: suspect {s}, down {d}");
            prop_assert!(s > 0.0 && s.is_finite() && d.is_finite());
            if before == Health::Down && after == Health::Up {
                prop_assert!(success && streak >= probation,
                    "left Down with a streak of only {streak}");
            }
            if !success {
                // A failure must never promote: Suspect can't jump back
                // to Up, Down can't leave Down.
                prop_assert!(!(before == Health::Suspect && after == Health::Up));
                prop_assert!(!(before == Health::Down && after != Health::Down));
            }
            if let Some(tr) = transition {
                prop_assert_eq!(tr.to, after);
                prop_assert_eq!(tr.from, before);
            }
        }
    }

    /// Property 3: `self_tuning_window == 0` is the pre-self-tuning
    /// detector, bit for bit — every φ (probed at the observation time
    /// and into the silent future) and every view matches the inline
    /// reference model on arbitrary observation sequences.
    #[test]
    fn fixed_config_mode_is_bit_identical_to_the_reference(
        steps in prop::collection::vec((0.0f64..4.0, 0u32..2), 1..80),
        probe_offset in 0.1f64..50.0,
    ) {
        let cfg = DetectorConfig::default();
        let mut det = AccrualDetector::new(cfg);
        let mut oracle = ReferenceDetector::new(cfg);
        let n = node(3);
        let mut t = 0.0;
        for &(gap, success_bit) in &steps {
            let success = success_bit == 1;
            t += gap;
            let view = if success {
                det.observe_success(n, t);
                oracle.observe_success(n, t)
            } else {
                det.observe_failure(n, t);
                oracle.observe_failure(n, t)
            };
            prop_assert_eq!(det.view(n), view, "views diverged at t={}", t);
            prop_assert_eq!(
                det.phi(n, t).to_bits(), oracle.phi(n, t).to_bits(),
                "φ diverged at the observation instant t={}", t
            );
            prop_assert_eq!(
                det.phi(n, t + probe_offset).to_bits(),
                oracle.phi(n, t + probe_offset).to_bits(),
                "silence-term φ diverged at t={}", t + probe_offset
            );
            let (s, d) = det.effective_thresholds(n);
            prop_assert_eq!(s.to_bits(), cfg.suspect_phi.to_bits());
            prop_assert_eq!(d.to_bits(), cfg.down_phi.to_bits());
        }
    }
}
