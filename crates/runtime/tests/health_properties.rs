//! Property tests over arbitrary health-transition sequences (vendored
//! proptest shim): whatever order marks arrive in —
//!
//! 1. `serving()` never yields a Down (or Draining) node, and the
//!    registry's view always matches the last mark applied;
//! 2. Draining nodes receive no new dispatches (the routing table and
//!    the dispatch stream both exclude them), while previously queued
//!    work is untouched;
//! 3. transition counts are conserved: every mark returns the previous
//!    health, so chaining them reconstructs the full history — the
//!    number of observed state *changes* equals the number of marks
//!    that actually changed state.

use gtlb_runtime::{Health, NodeId, Runtime, RuntimeError, SchemeKind};
use proptest::prelude::*;

/// One health mark a caller can issue.
#[derive(Debug, Clone, Copy)]
enum Mark {
    Up,
    Suspect,
    Down,
    Drain,
}

fn arb_mark() -> impl Strategy<Value = Mark> {
    prop_oneof![Just(Mark::Up), Just(Mark::Suspect), Just(Mark::Down), Just(Mark::Drain)]
}

fn apply(rt: &Runtime, id: NodeId, mark: Mark) -> Result<Health, RuntimeError> {
    match mark {
        Mark::Up => rt.mark_up(id),
        Mark::Suspect => rt.mark_suspect(id),
        Mark::Down => rt.mark_down(id),
        Mark::Drain => rt.drain_node(id),
    }
}

fn target_of(mark: Mark) -> Health {
    match mark {
        Mark::Up => Health::Up,
        Mark::Suspect => Health::Suspect,
        Mark::Down => Health::Down,
        Mark::Drain => Health::Draining,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serving_never_yields_a_down_or_draining_node(
        rates in prop::collection::vec(0.5f64..4.0, 2..6),
        marks in prop::collection::vec((0usize..6, arb_mark()), 1..40),
        seed in 0u64..1_000,
    ) {
        let capacity: f64 = rates.iter().sum();
        let rt = Runtime::builder()
            .seed(seed)
            .scheme(SchemeKind::Prop)
            .nominal_arrival_rate(0.5 * capacity)
            .build();
        let ids: Vec<NodeId> = rates.iter().map(|&r| rt.register_node(r).unwrap()).collect();
        rt.resolve_now().unwrap();

        for &(pick, mark) in &marks {
            let id = ids[pick % ids.len()];
            apply(&rt, id, mark).unwrap();

            // The mark landed: the node's health is exactly the target.
            prop_assert_eq!(rt.node_health(id), Some(target_of(mark)));

            // The published table never routes to Down/Draining nodes.
            let table = rt.current_table();
            for &nid in &ids {
                let health = rt.node_health(nid).unwrap();
                if matches!(health, Health::Down | Health::Draining) {
                    prop_assert_eq!(
                        table.prob_of(nid), None,
                        "{} is {} but still routable", nid, health.name()
                    );
                }
            }

            // A re-solve allocates only over serving nodes.
            match rt.resolve_now() {
                Ok(outcome) => {
                    for nid in &outcome.nodes {
                        let health = rt.node_health(*nid).unwrap();
                        prop_assert!(
                            health.serves(),
                            "{} allocated while {}", nid, health.name()
                        );
                    }
                }
                Err(RuntimeError::NoServingNodes) => {
                    prop_assert!(
                        ids.iter().all(|&nid| !rt.node_health(nid).unwrap().serves())
                    );
                }
                // Survivors can't carry the nominal design load: the
                // solver refuses (the renormalized table stays up, and
                // its exclusions were already checked above).
                Err(RuntimeError::Core(_)) => {}
                Err(e) => return Err(TestCaseError::Fail(format!("unexpected error {e}"))),
            }
        }
    }

    #[test]
    fn draining_nodes_receive_no_new_dispatches(
        rates in prop::collection::vec(1.0f64..4.0, 2..5),
        drain_pick in 0usize..5,
        seed in 0u64..1_000,
    ) {
        let capacity: f64 = rates.iter().sum();
        let rt = Runtime::builder()
            .seed(seed)
            .scheme(SchemeKind::Prop)
            .nominal_arrival_rate(0.6 * capacity)
            .build();
        let ids: Vec<NodeId> = rates.iter().map(|&r| rt.register_node(r).unwrap()).collect();
        rt.resolve_now().unwrap();

        // Dispatch a first wave so the drained node has "queued work"
        // (hit counts it must keep).
        for _ in 0..200 {
            rt.dispatch().unwrap();
        }
        let victim = ids[drain_pick % ids.len()];
        let queued_before =
            rt.hit_counts().iter().find(|&&(id, _)| id == victim).map_or(0, |&(_, c)| c);

        prop_assert_eq!(rt.drain_node(victim).unwrap(), Health::Up);
        // New dispatches avoid the drained node, immediately and after a
        // full re-solve.
        for _ in 0..200 {
            prop_assert_ne!(rt.dispatch().unwrap().node, victim);
        }
        // The re-solve may refuse if the survivors can't carry the
        // design load; either way the published table excludes the
        // drained node.
        let _ = rt.resolve_now();
        for _ in 0..200 {
            prop_assert_ne!(rt.dispatch().unwrap().node, victim);
        }
        // The queued work was not clawed back.
        let queued_after =
            rt.hit_counts().iter().find(|&&(id, _)| id == victim).map_or(0, |&(_, c)| c);
        prop_assert_eq!(queued_after, queued_before, "drain must not touch queued work");
    }

    #[test]
    fn transition_counts_are_conserved(
        rates in prop::collection::vec(0.5f64..4.0, 1..4),
        marks in prop::collection::vec((0usize..4, arb_mark()), 1..60),
        seed in 0u64..1_000,
    ) {
        let capacity: f64 = rates.iter().sum();
        let rt = Runtime::builder()
            .seed(seed)
            .scheme(SchemeKind::Prop)
            .nominal_arrival_rate(0.4 * capacity)
            .build();
        let ids: Vec<NodeId> = rates.iter().map(|&r| rt.register_node(r).unwrap()).collect();
        rt.resolve_now().unwrap();

        // Shadow state machine: every mark's returned previous health
        // must equal our local view — i.e. the chain of returns replays
        // the exact history, with no transition lost or invented.
        let mut shadow: Vec<Health> = vec![Health::Up; ids.len()];
        let mut changes_expected = 0u64;
        let mut changes_observed = 0u64;
        for &(pick, mark) in &marks {
            let k = pick % ids.len();
            let target = target_of(mark);
            if shadow[k] != target {
                changes_expected += 1;
            }
            let prev = apply(&rt, ids[k], mark).unwrap();
            prop_assert_eq!(prev, shadow[k], "returned previous health diverged from history");
            if prev != target {
                changes_observed += 1;
            }
            shadow[k] = target;
        }
        prop_assert_eq!(changes_observed, changes_expected);
        // Final states agree too.
        for (k, &id) in ids.iter().enumerate() {
            prop_assert_eq!(rt.node_health(id), Some(shadow[k]));
        }
    }
}
