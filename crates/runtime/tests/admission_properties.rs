//! Property tests for admission control (vendored proptest shim): the
//! three contracts the policy advertises must hold for *every*
//! configuration, not just the defaults —
//!
//! 1. below the target utilization nothing is ever shed;
//! 2. shed/rejection probabilities are monotone nondecreasing in the
//!    offered load (checked both analytically and as a coupling over
//!    common random numbers);
//! 3. the `TraceStats` counters conserve jobs:
//!    `accepted + rejected + deferred == submitted`.

use gtlb_runtime::{
    AdmissionConfig, AdmissionPolicy, AdmissionVerdict, Runtime, SchemeKind, TraceConfig,
    TraceDriver,
};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = AdmissionPolicy> {
    (0.05f64..0.95, 0.0f64..0.5).prop_map(|(target_utilization, defer_band)| {
        AdmissionPolicy::new(AdmissionConfig { target_utilization, defer_band })
            .expect("generated config is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn below_target_nothing_is_shed(
        policy in arb_policy(),
        rho_frac in 0.0f64..1.0,
        u in 0.0f64..1.0,
    ) {
        // Any offered load at or below the target is admitted for any
        // draw: the rejection (and defer) rate below threshold is zero.
        let rho = rho_frac * policy.config().target_utilization;
        prop_assert_eq!(policy.shed_probability(rho), 0.0);
        prop_assert_eq!(policy.rejection_probability(rho), 0.0);
        prop_assert_eq!(policy.verdict(rho, u), AdmissionVerdict::Accept);
    }

    #[test]
    fn shed_and_rejection_probabilities_are_monotone(
        policy in arb_policy(),
        rho_a in 0.0f64..3.0,
        rho_b in 0.0f64..3.0,
    ) {
        let (lo, hi) = if rho_a <= rho_b { (rho_a, rho_b) } else { (rho_b, rho_a) };
        prop_assert!(policy.shed_probability(lo) <= policy.shed_probability(hi));
        prop_assert!(policy.rejection_probability(lo) <= policy.rejection_probability(hi));
        // Rejection never exceeds shedding, and both stay in [0, 1).
        for rho in [lo, hi] {
            let shed = policy.shed_probability(rho);
            let rej = policy.rejection_probability(rho);
            prop_assert!((0.0..1.0).contains(&shed));
            prop_assert!(rej <= shed);
        }
    }

    #[test]
    fn verdicts_couple_monotonically_over_common_draws(
        policy in arb_policy(),
        rho_a in 0.0f64..3.0,
        rho_b in 0.0f64..3.0,
        u in 0.0f64..1.0,
    ) {
        // With a common random number, raising the offered load can only
        // make a job's fate worse (Accept → Defer/Reject → Reject), never
        // better — the verdict is monotone in ρ pointwise in u.
        let (lo, hi) = if rho_a <= rho_b { (rho_a, rho_b) } else { (rho_b, rho_a) };
        let severity = |v: AdmissionVerdict| match v {
            AdmissionVerdict::Accept => 0,
            AdmissionVerdict::Defer => 1,
            AdmissionVerdict::Reject => 2,
        };
        let v_lo = policy.verdict(lo, u);
        let v_hi = policy.verdict(hi, u);
        // Defer vs Reject flips only across the band edge; both are shed.
        // Accept, though, may never reappear at higher load.
        prop_assert!(
            severity(v_hi) > 0 || severity(v_lo) == 0,
            "load {lo} -> {hi} improved verdict {v_lo:?} -> {v_hi:?} at u {u}"
        );
    }
}

proptest! {
    // The closed-loop cases run a real runtime + driver; fewer, larger
    // cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn trace_stats_counts_are_conserved(
        target_utilization in 0.3f64..0.9,
        defer_band in 0.0f64..0.2,
        offered_rho in 0.2f64..1.5,
        rates in prop::collection::vec(0.5f64..4.0, 1..5),
        seed in 0u64..1_000,
    ) {
        let capacity: f64 = rates.iter().sum();
        let phi = offered_rho * capacity;
        let rt = Runtime::builder()
            .seed(seed)
            .scheme(SchemeKind::Prop)
            .nominal_arrival_rate((0.95 * capacity).min(phi))
            .admission(AdmissionConfig { target_utilization, defer_band })
            .shards(2)
            .build();
        for &r in &rates {
            rt.register_node(r).unwrap();
        }
        rt.resolve_now().unwrap();

        let mut driver = TraceDriver::new(phi, TraceConfig { seed, batch_size: 500 });
        driver.run_jobs(&rt, 2_000).unwrap();
        let stats = driver.stats();

        prop_assert_eq!(stats.submitted, 2_000);
        prop_assert_eq!(
            stats.accepted + stats.rejected + stats.deferred,
            stats.submitted,
            "conservation: counts must partition the submitted jobs"
        );
        prop_assert_eq!(stats.jobs, stats.accepted, "every admitted job completes");
        // Below threshold the rejection rate is exactly zero (offered
        // utilization published to the policy is min(phi, 0.95·cap)/cap).
        let rho_published = (0.95f64 * capacity).min(phi) / capacity;
        if rho_published <= target_utilization {
            prop_assert_eq!(stats.rejected + stats.deferred, 0);
        }
        // The runtime's shared counters saw the same window.
        let rt_stats = rt.admission_stats().unwrap();
        prop_assert_eq!(rt_stats.submitted, stats.submitted);
        prop_assert_eq!(rt_stats.accepted, stats.accepted);
        prop_assert_eq!(rt_stats.rejected, stats.rejected);
        prop_assert_eq!(rt_stats.deferred, stats.deferred);
    }

    #[test]
    fn empirical_rejection_rate_is_monotone_in_offered_load(
        target_utilization in 0.3f64..0.7,
        seed in 0u64..1_000,
    ) {
        // Same seed (common random numbers), increasing offered load:
        // the *measured* rejection rate over the trace must not decrease.
        let mut last_rate = 0.0f64;
        for rho in [0.5f64, 0.9, 1.3, 1.8] {
            let rt = Runtime::builder()
                .seed(seed)
                .scheme(SchemeKind::Prop)
                .nominal_arrival_rate(rho.min(0.95))
                .admission(AdmissionConfig { target_utilization, defer_band: 0.0 })
                .build();
            rt.register_node(1.0).unwrap();
            rt.resolve_now().unwrap();
            // Publish the true offered utilization (the nominal rate is
            // capacity-capped so the solver stays feasible).
            let mut driver = TraceDriver::new(rho, TraceConfig { seed, batch_size: 500 });
            driver.run_jobs(&rt, 1_500).unwrap();
            let rate = driver.stats().rejection_rate();
            prop_assert!(
                rate >= last_rate - 1e-12,
                "offered rho {rho}: rejection rate {rate} fell below {last_rate}"
            );
            last_rate = rate;
        }
    }
}
