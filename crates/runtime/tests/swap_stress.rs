//! Stress tests of the lock-free [`EpochSwap`] under racing readers and
//! writers.
//!
//! The unsafe core of the swap (see the module docs of
//! `gtlb_runtime::swap`) is exercised here with genuinely concurrent
//! load/publish traffic. Each published value carries a redundant
//! payload derived from its version, so a torn read — a reader observing
//! a buffer mid-replacement — fails an assertion instead of going
//! unnoticed. The single-writer test additionally checks that readers
//! observe versions monotonically (a reader can never see an older
//! table after a newer one), and that `publish` hands back the previous
//! value in order.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gtlb_runtime::EpochSwap;

/// Publish counts for the stress runs. Miri interprets ~1000x slower
/// than native and checks the abstract memory model rather than the
/// host's, so a far shorter run still exercises every interleaving
/// class; native runs keep the full hammering.
const SINGLE_WRITER_PUBLISHES: u64 = if cfg!(miri) { 300 } else { 20_000 };
const PER_WRITER_PUBLISHES: u64 = if cfg!(miri) { 100 } else { 8_000 };
/// Pinned-reader publishes: far fewer than the `load()` runs, because a
/// held pin legitimately blocks every *second* publish until the reader
/// refreshes — on a single-core box each drain can cost a scheduling
/// quantum, so the count is sized for wall-clock, not coverage (every
/// publish exercises the drain-against-pin path).
const PINNED_PUBLISHES: u64 = if cfg!(miri) { 100 } else { 500 };

/// A value whose payload is a pure function of its version: any
/// mixed-generation read trips `check`.
#[derive(Debug)]
struct Tagged {
    version: u64,
    payload: Vec<u64>,
}

impl Tagged {
    fn new(version: u64) -> Self {
        let payload = (0..8).map(|k| version.wrapping_mul(0x9e37).wrapping_add(k)).collect();
        Self { version, payload }
    }

    fn check(&self) {
        for (k, &p) in self.payload.iter().enumerate() {
            assert_eq!(
                p,
                self.version.wrapping_mul(0x9e37).wrapping_add(k as u64),
                "torn read: payload does not match version {}",
                self.version
            );
        }
    }
}

#[test]
fn one_writer_many_readers_monotone_and_untorn() {
    let swap = Arc::new(EpochSwap::new(Tagged::new(0)));
    let stop = Arc::new(AtomicBool::new(false));
    let publishes = SINGLE_WRITER_PUBLISHES;
    std::thread::scope(|s| {
        for _ in 0..8 {
            let swap = Arc::clone(&swap);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last = 0u64;
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t = swap.load();
                    t.check();
                    assert!(t.version >= last, "reader went back in time: {} < {last}", t.version);
                    last = t.version;
                    reads += 1;
                }
                reads
            });
        }
        for v in 1..=publishes {
            let prev = swap.publish(Tagged::new(v));
            assert_eq!(prev.version, v - 1, "publish must return the previous value");
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(swap.load().version, publishes);
}

#[test]
fn many_writers_many_readers_untorn() {
    let swap = Arc::new(EpochSwap::new(Tagged::new(0)));
    let stop = Arc::new(AtomicBool::new(false));
    let writers = 3u64;
    let per_writer = PER_WRITER_PUBLISHES;
    let mut returned: Vec<u64> = std::thread::scope(|s| {
        for _ in 0..4 {
            let swap = Arc::clone(&swap);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    swap.load().check();
                }
            });
        }
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let swap = Arc::clone(&swap);
                s.spawn(move || {
                    (0..per_writer)
                        .map(|k| {
                            let version = (w + 1) << 32 | k;
                            let prev = swap.publish(Tagged::new(version));
                            prev.check();
                            prev.version
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let returned = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);
        returned
    });
    // Writers serialize: every published value (plus the initial one)
    // leaves the slot exactly once, the final value excepted.
    returned.push(swap.load().version);
    returned.sort_unstable();
    let mut expected: Vec<u64> = (0..writers)
        .flat_map(|w| (0..per_writer).map(move |k| (w + 1) << 32 | k))
        .chain(std::iter::once(0))
        .collect();
    expected.sort_unstable();
    assert_eq!(returned, expected);
}

#[test]
fn pinned_readers_bounded_windows_untorn_and_monotone() {
    // Readers use the borrowed pin API in bounded batch windows: each
    // window pins one snapshot, reads it repeatedly (same untorn value
    // throughout — a pin can never observe a republished buffer), then
    // refreshes at the window boundary. The writer publishing to
    // completion *is* the liveness assertion: a held pin lets one
    // publish through and blocks only the second, so bounded windows
    // guarantee the writer always drains.
    let swap = Arc::new(EpochSwap::new(Tagged::new(0)));
    let stop = Arc::new(AtomicBool::new(false));
    let publishes = PINNED_PUBLISHES;
    std::thread::scope(|s| {
        for _ in 0..4 {
            let swap = Arc::clone(&swap);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last = 0u64;
                let mut pin = swap.pin();
                while !stop.load(Ordering::Relaxed) {
                    let version = pin.version;
                    for _ in 0..16 {
                        pin.check();
                        assert_eq!(pin.version, version, "pinned value changed mid-window");
                    }
                    assert!(version >= last, "pin went back in time: {version} < {last}");
                    last = version;
                    // Window boundary: re-validate against the live
                    // generation (no-op when still current), and yield
                    // so a drain-blocked writer gets scheduled promptly
                    // on low-core machines.
                    pin.refresh();
                    std::thread::yield_now();
                }
            });
        }
        for v in 1..=publishes {
            let prev = swap.publish(Tagged::new(v));
            prev.check();
            assert_eq!(prev.version, v - 1, "publish must return the previous value");
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(swap.load().version, publishes);
}

#[test]
fn held_snapshots_are_immutable_across_publishes() {
    let swap = EpochSwap::new(Tagged::new(7));
    let snapshot = swap.load();
    let mid = {
        for v in 100..600 {
            swap.publish(Tagged::new(v));
        }
        swap.load()
    };
    for v in 600..1100 {
        swap.publish(Tagged::new(v));
    }
    snapshot.check();
    assert_eq!(snapshot.version, 7, "snapshot outlived 1000 publishes unchanged");
    mid.check();
    assert_eq!(mid.version, 599);
    assert_eq!(swap.load().version, 1099);
}
