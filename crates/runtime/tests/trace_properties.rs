//! Property tests over deterministic per-job tracing (vendored
//! proptest shim): under **arbitrary fault plans** —
//!
//! 1. every recorded trace is well-formed: spans are virtual-time
//!    ordered, there is exactly one terminal span, and the attempt
//!    count never exceeds the retry budget;
//! 2. the trace set is a pure function of the scenario — bit-identical
//!    (ids, sequences, span kinds, and every timestamp bit) across
//!    `RAYON_NUM_THREADS ∈ {1, 2, 4}`;
//! 3. head sampling selects a subset, never rewrites: the default-mask
//!    trace set equals the sample-all trace set filtered by the mask
//!    test on the id (capacity held large enough that nothing evicts).

use gtlb_runtime::{
    FaultPlan, NodeId, PartitionDirection, RetryConfig, RetryPolicy, Runtime, SchemeKind, Trace,
    TraceConfig, TraceDriver, TracingConfig,
};
use proptest::prelude::*;

/// One schedulable fault, as raw draws; `build` maps it onto the
/// `FaultPlan` builder with every panic-guard respected.
#[derive(Debug, Clone, Copy)]
struct FaultDraw {
    kind: u32,
    node_idx: usize,
    at: f64,
    lasts: f64,
    p: f64,
}

fn fault_draws() -> impl Strategy<Value = Vec<FaultDraw>> {
    prop::collection::vec(
        (0u32..5, 0usize..3, 0.0f64..200.0, 1.0f64..80.0, 0.0f64..0.9)
            .prop_map(|(kind, node_idx, at, lasts, p)| FaultDraw { kind, node_idx, at, lasts, p }),
        0..6,
    )
}

fn build_plan(seed: u64, ids: &[NodeId], draws: &[FaultDraw]) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for d in draws {
        let node = ids[d.node_idx % ids.len()];
        plan = match d.kind {
            0 => plan.crash_recover(node, d.at, d.lasts),
            1 => plan.flaky(node, d.at, d.lasts, d.p),
            2 => plan.slow(node, d.at, d.lasts, 0.2 + 0.7 * d.p),
            3 => plan.gray(node, d.at, d.lasts, 1.0 + d.p, 0.8 * d.p),
            _ => {
                let dir = if d.p < 0.45 {
                    PartitionDirection::DropDispatch
                } else {
                    PartitionDirection::DropHeartbeats
                };
                plan.partition(node, d.at, d.lasts, dir)
            }
        };
    }
    plan
}

/// Runs the traced chaos scenario and returns the recorder's trace
/// set. Capacity is far above the job count so nothing ever evicts
/// and the set is the *complete* sampled population.
fn run_traced(
    seed: u64,
    draws: &[FaultDraw],
    max_attempts: u32,
    mask: u64,
    jobs: u64,
) -> Vec<Trace> {
    let rt = Runtime::builder()
        .seed(seed)
        .scheme(SchemeKind::Coop)
        .nominal_arrival_rate(1.2)
        .tracing_config(TracingConfig {
            sample_mask: mask,
            recorder_capacity: 8192,
            ..TracingConfig::default()
        })
        .build();
    let ids: Vec<NodeId> = [2.0, 1.0, 0.5].iter().map(|&r| rt.register_node(r).unwrap()).collect();
    rt.resolve_now().unwrap();
    let retry = RetryPolicy::new(RetryConfig { max_attempts, ..RetryConfig::default() }).unwrap();
    let mut driver = TraceDriver::new(1.2, TraceConfig { seed: seed ^ 0xBEEF, batch_size: 200 })
        .with_faults(build_plan(seed, &ids, draws))
        .with_retry(retry)
        .with_heartbeats(1.0);
    driver.run_jobs(&rt, jobs).unwrap();
    rt.tracer().traces()
}

/// Canonical bit-exact encoding of a trace set: every id, sequence,
/// span kind (with its fields), and timestamp bit, in recorder order.
fn words(traces: &[Trace]) -> Vec<u64> {
    use gtlb_runtime::SpanKind;
    let mut out = Vec::new();
    for t in traces {
        out.push(t.id.raw());
        out.push(t.sequence);
        out.push(t.spans.len() as u64);
        for s in &t.spans {
            let (a, b, c, d) = match s.kind {
                SpanKind::Admitted => (0, 0, 0, 0),
                SpanKind::Deferred => (1, 0, 0, 0),
                SpanKind::Rejected => (2, 0, 0, 0),
                SpanKind::Queued { depth } => (3, depth, 0, 0),
                SpanKind::Routed { node, epoch, shard } => (4, node, epoch, u64::from(shard)),
                SpanKind::Attempt { n, outcome, backoff } => {
                    (5, u64::from(n), outcome.code(), backoff.to_bits())
                }
                SpanKind::Completed => (6, 0, 0, 0),
                SpanKind::Failed => (7, 0, 0, 0),
            };
            out.extend([a, b, c, d, s.start.to_bits(), s.end.to_bits()]);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: arbitrary fault plans never produce a malformed
    /// trace. Sample-all so the assertion covers every job.
    #[test]
    fn traces_are_well_formed_under_arbitrary_fault_plans(
        seed in 1u64..u64::MAX,
        draws in fault_draws(),
        max_attempts in 1u32..5,
    ) {
        let traces = run_traced(seed, &draws, max_attempts, 0, 800);
        prop_assert!(!traces.is_empty(), "sample-all must record traces");
        for t in &traces {
            prop_assert!(t.terminal().is_some(), "no terminal span: {t:?}");
            prop_assert_eq!(
                t.spans.iter().filter(|s| s.kind.is_terminal()).count(), 1,
                "exactly one terminal span: {:?}", t
            );
            for w in t.spans.windows(2) {
                prop_assert!(w[1].start >= w[0].start, "spans out of causal order: {t:?}");
                prop_assert!(w[0].end >= w[0].start, "span ends before it starts: {t:?}");
            }
            prop_assert!(
                t.attempts() <= max_attempts,
                "attempt count {} exceeds the retry budget {}: {:?}", t.attempts(), max_attempts, t
            );
        }
    }

    /// Property 2: the trace set is bit-identical across worker-pool
    /// sizes. `RAYON_NUM_THREADS` feeds the desim scoped pool that the
    /// background resolver uses; traces must not care.
    #[test]
    fn trace_set_is_bit_identical_across_thread_counts(
        seed in 1u64..u64::MAX,
        draws in fault_draws(),
    ) {
        let run_with_threads = |threads: &str| {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let traces = run_traced(seed, &draws, 3, 0x7, 800);
            std::env::remove_var("RAYON_NUM_THREADS");
            words(&traces)
        };
        let one = run_with_threads("1");
        let two = run_with_threads("2");
        let four = run_with_threads("4");
        prop_assert_eq!(&one, &two, "trace set diverged between 1 and 2 threads");
        prop_assert_eq!(&one, &four, "trace set diverged between 1 and 4 threads");
    }

    /// Property 3: head sampling filters, it never rewrites. The
    /// masked run's trace set is exactly the sample-all set restricted
    /// to ids passing the mask test.
    #[test]
    fn sampling_selects_a_subset_without_rewriting(
        seed in 1u64..u64::MAX,
        draws in fault_draws(),
        mask_bits in 1u32..6,
    ) {
        let mask = (1u64 << mask_bits) - 1;
        let all = run_traced(seed, &draws, 3, 0, 800);
        let masked = run_traced(seed, &draws, 3, mask, 800);
        let expected: Vec<Trace> =
            all.into_iter().filter(|t| t.id.sampled(mask)).collect();
        prop_assert_eq!(
            words(&masked), words(&expected),
            "masked trace set is not the filtered sample-all set"
        );
    }
}
