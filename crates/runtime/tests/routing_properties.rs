//! Property tests for the routing hot path (vendored proptest shim):
//!
//! 1. alias-method routing agrees **in distribution** with the reference
//!    inverse-CDF path — a chi-square statistic of each path's sample
//!    counts against the expected counts stays far below any plausible
//!    rejection threshold, for random weight vectors;
//! 2. neither path ever returns a zero-probability node, for weight
//!    vectors with zeros injected at random positions;
//! 3. batch routing replays the per-job decision sequence draw for draw,
//!    for random weights, seeds, and batch splits.

use gtlb_desim::rng::Xoshiro256PlusPlus;
use gtlb_runtime::{EpochSwap, NodeId, RoutingTable, ShardedDispatcher};
use proptest::prelude::*;
use std::sync::Arc;

/// Weights bounded away from zero (so chi-square expected counts are
/// healthy), 1–11 nodes.
fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..1.0, 1..12)
}

/// Weights where each node is zeroed with probability ~1/4 — at least
/// one survivor is enforced by construction.
fn arb_weights_with_zeros() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0.05f64..1.0, 0u32..4), 1..12).prop_map(|pairs| {
        let mut weights: Vec<f64> =
            pairs.iter().map(|&(w, keep)| if keep == 0 { 0.0 } else { w }).collect();
        if weights.iter().all(|&w| w == 0.0) {
            weights[0] = pairs[0].0;
        }
        weights
    })
}

fn table_from(weights: &[f64]) -> RoutingTable {
    let ids = (0..weights.len() as u64).map(NodeId::from_raw).collect();
    RoutingTable::new(1, ids, weights).unwrap()
}

/// Pearson chi-square statistic of observed counts against `n·pᵢ`,
/// over positive-probability buckets only.
fn chi_square(counts: &[u64], probs: &[f64], draws: u64) -> f64 {
    counts
        .iter()
        .zip(probs)
        .filter(|&(_, &p)| p > 0.0)
        .map(|(&c, &p)| {
            let expected = draws as f64 * p;
            let diff = c as f64 - expected;
            diff * diff / expected
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alias_and_cdf_agree_in_distribution(
        weights in arb_weights(),
        seed in 0u64..u64::MAX,
    ) {
        let table = table_from(&weights);
        let probs = table.probs().to_vec();
        let n = probs.len();
        let draws = 20_000u64;
        let mut rng = Xoshiro256PlusPlus::stream(seed, 0x0400);
        let mut alias_counts = vec![0u64; n];
        let mut cdf_counts = vec![0u64; n];
        for _ in 0..draws {
            let u = rng.next_open01();
            alias_counts[table.route_index(u)] += 1;
            cdf_counts[table.route_cdf(u).raw() as usize] += 1;
        }
        // df ≤ 10; the 1−10⁻⁹ quantile of χ²(10) is ≈ 62. A bound of
        // 120 on both paths (with expected counts ≥ 80 per bucket) makes
        // a false failure astronomically unlikely while still catching a
        // path that samples the wrong distribution outright.
        let chi_alias = chi_square(&alias_counts, &probs, draws);
        let chi_cdf = chi_square(&cdf_counts, &probs, draws);
        prop_assert!(chi_alias < 120.0, "alias chi-square {chi_alias} for {weights:?}");
        prop_assert!(chi_cdf < 120.0, "cdf chi-square {chi_cdf} for {weights:?}");
        // And the two paths agree with each other at least as tightly.
        for i in 0..n {
            let (a, c) = (alias_counts[i] as f64, cdf_counts[i] as f64);
            prop_assert!(
                (a - c).abs() / (draws as f64) < 0.05,
                "bucket {i}: alias {a} vs cdf {c}"
            );
        }
    }

    #[test]
    fn zero_probability_nodes_are_never_routed(
        weights in arb_weights_with_zeros(),
        seed in 0u64..u64::MAX,
    ) {
        let table = table_from(&weights);
        let zero_ids: Vec<NodeId> = table
            .nodes()
            .iter()
            .zip(table.probs())
            .filter(|&(_, &p)| p == 0.0)
            .map(|(&id, _)| id)
            .collect();
        let mut rng = Xoshiro256PlusPlus::stream(seed, 0x0400);
        for _ in 0..2_000 {
            let u = rng.next_open01();
            prop_assert!(!zero_ids.contains(&table.route(u)));
            prop_assert!(!zero_ids.contains(&table.route_cdf(u)));
        }
        // Boundary draws included.
        for u in [0.0, 0.5, 1.0 - 1e-17, 1.0] {
            prop_assert!(!zero_ids.contains(&table.route(u)));
            prop_assert!(!zero_ids.contains(&table.route_cdf(u)));
        }
    }

    #[test]
    fn batch_routing_replays_the_per_job_sequence(
        weights in arb_weights(),
        seed in 0u64..u64::MAX,
        first in 0usize..96,
        second in 0usize..96,
    ) {
        let swap = || Arc::new(EpochSwap::new(table_from(&weights)));
        let batched = ShardedDispatcher::new(swap(), seed, 2);
        let reference = ShardedDispatcher::new(swap(), seed, 2);
        let mut decisions = Vec::new();
        {
            let mut guard = batched.shard(1);
            guard.route_batch(first, &mut decisions).unwrap();
            guard.route_batch(second, &mut decisions).unwrap();
        }
        {
            let mut guard = reference.shard(1);
            for d in &decisions {
                prop_assert_eq!(*d, guard.dispatch().unwrap());
            }
        }
        prop_assert_eq!(decisions.len(), first + second);
        prop_assert_eq!(batched.hit_counts(), reference.hit_counts());
        prop_assert_eq!(batched.dispatched(), (first + second) as u64);
    }
}
