//! Property tests for the routing hot path (vendored proptest shim):
//!
//! 1. alias-method routing agrees **in distribution** with the reference
//!    inverse-CDF path — a chi-square statistic of each path's sample
//!    counts against the expected counts stays far below any plausible
//!    rejection threshold, for random weight vectors;
//! 2. neither path ever returns a zero-probability node, for weight
//!    vectors with zeros injected at random positions;
//! 3. batch routing replays the per-job decision sequence draw for draw,
//!    for random weights, seeds, and batch splits;
//! 4. incremental alias repair ([`TableBuilder::update_weights`]) is
//!    draw-for-draw identical to a full rebuild across random sequences
//!    of k-node weight deltas, including zero-probability transitions
//!    (parking and reviving nodes) and the `MAX_BELOW_ONE` boundary
//!    draw — on the repair path the published vector must be a fixed
//!    point of the full pipeline (requested weights verbatim, at most
//!    two absorber buckets moved); on the fallback it must be exactly
//!    the renormalized patched vector.

use gtlb_desim::rng::Xoshiro256PlusPlus;
use gtlb_runtime::{
    EpochSwap, NodeId, RoutingTable, ShardedDispatcher, TableBuilder, MAX_BELOW_ONE,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Weights bounded away from zero (so chi-square expected counts are
/// healthy), 1–11 nodes.
fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..1.0, 1..12)
}

/// Weights where each node is zeroed with probability ~1/4 — at least
/// one survivor is enforced by construction.
fn arb_weights_with_zeros() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0.05f64..1.0, 0u32..4), 1..12).prop_map(|pairs| {
        let mut weights: Vec<f64> =
            pairs.iter().map(|&(w, keep)| if keep == 0 { 0.0 } else { w }).collect();
        if weights.iter().all(|&w| w == 0.0) {
            weights[0] = pairs[0].0;
        }
        weights
    })
}

fn table_from(weights: &[f64]) -> RoutingTable {
    let ids = (0..weights.len() as u64).map(NodeId::from_raw).collect();
    RoutingTable::new(1, ids, weights).unwrap()
}

/// Pearson chi-square statistic of observed counts against `n·pᵢ`,
/// over positive-probability buckets only.
fn chi_square(counts: &[u64], probs: &[f64], draws: u64) -> f64 {
    counts
        .iter()
        .zip(probs)
        .filter(|&(_, &p)| p > 0.0)
        .map(|(&c, &p)| {
            let expected = draws as f64 * p;
            let diff = c as f64 - expected;
            diff * diff / expected
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alias_and_cdf_agree_in_distribution(
        weights in arb_weights(),
        seed in 0u64..u64::MAX,
    ) {
        let table = table_from(&weights);
        let probs = table.probs().to_vec();
        let n = probs.len();
        let draws = 20_000u64;
        let mut rng = Xoshiro256PlusPlus::stream(seed, 0x0400);
        let mut alias_counts = vec![0u64; n];
        let mut cdf_counts = vec![0u64; n];
        for _ in 0..draws {
            let u = rng.next_open01();
            alias_counts[table.route_index(u)] += 1;
            cdf_counts[table.route_cdf(u).raw() as usize] += 1;
        }
        // df ≤ 10; the 1−10⁻⁹ quantile of χ²(10) is ≈ 62. A bound of
        // 120 on both paths (with expected counts ≥ 80 per bucket) makes
        // a false failure astronomically unlikely while still catching a
        // path that samples the wrong distribution outright.
        let chi_alias = chi_square(&alias_counts, &probs, draws);
        let chi_cdf = chi_square(&cdf_counts, &probs, draws);
        prop_assert!(chi_alias < 120.0, "alias chi-square {chi_alias} for {weights:?}");
        prop_assert!(chi_cdf < 120.0, "cdf chi-square {chi_cdf} for {weights:?}");
        // And the two paths agree with each other at least as tightly.
        for i in 0..n {
            let (a, c) = (alias_counts[i] as f64, cdf_counts[i] as f64);
            prop_assert!(
                (a - c).abs() / (draws as f64) < 0.05,
                "bucket {i}: alias {a} vs cdf {c}"
            );
        }
    }

    #[test]
    fn zero_probability_nodes_are_never_routed(
        weights in arb_weights_with_zeros(),
        seed in 0u64..u64::MAX,
    ) {
        let table = table_from(&weights);
        let zero_ids: Vec<NodeId> = table
            .nodes()
            .iter()
            .zip(table.probs())
            .filter(|&(_, &p)| p == 0.0)
            .map(|(&id, _)| id)
            .collect();
        let mut rng = Xoshiro256PlusPlus::stream(seed, 0x0400);
        for _ in 0..2_000 {
            let u = rng.next_open01();
            prop_assert!(!zero_ids.contains(&table.route(u)));
            prop_assert!(!zero_ids.contains(&table.route_cdf(u)));
        }
        // Boundary draws included.
        for u in [0.0, 0.5, 1.0 - 1e-17, 1.0] {
            prop_assert!(!zero_ids.contains(&table.route(u)));
            prop_assert!(!zero_ids.contains(&table.route_cdf(u)));
        }
    }

    #[test]
    fn batch_routing_replays_the_per_job_sequence(
        weights in arb_weights(),
        seed in 0u64..u64::MAX,
        first in 0usize..96,
        second in 0usize..96,
    ) {
        let swap = || Arc::new(EpochSwap::new(table_from(&weights)));
        let batched = ShardedDispatcher::new(swap(), seed, 2);
        let reference = ShardedDispatcher::new(swap(), seed, 2);
        let mut decisions = Vec::new();
        {
            let mut guard = batched.shard(1);
            guard.route_batch(first, &mut decisions).unwrap();
            guard.route_batch(second, &mut decisions).unwrap();
        }
        {
            let mut guard = reference.shard(1);
            for d in &decisions {
                prop_assert_eq!(*d, guard.dispatch().unwrap());
            }
        }
        prop_assert_eq!(decisions.len(), first + second);
        prop_assert_eq!(batched.hit_counts(), reference.hit_counts());
        prop_assert_eq!(batched.dispatched(), (first + second) as u64);
    }

    #[test]
    fn incremental_repair_matches_full_rebuild(
        base in arb_weights_with_zeros(),
        steps in prop::collection::vec(
            prop::collection::vec(
                (0usize..12, prop_oneof![Just(0.0), 0.01f64..2.0]),
                1..4,
            ),
            1..6,
        ),
        seed in 0u64..u64::MAX,
    ) {
        let ids: Vec<NodeId> = (0..base.len() as u64).map(NodeId::from_raw).collect();
        let mut builder = TableBuilder::new();
        let mut current = builder.build(1, ids.clone(), &base).unwrap();
        for (step_no, step) in steps.iter().enumerate() {
            let updates: Vec<(usize, f64)> =
                step.iter().map(|&(i, w)| (i % current.len(), w)).collect();
            // The reference: patch the live normalized probabilities the
            // same way `update_weights` does, then build from scratch.
            let mut patched = current.probs().to_vec();
            for &(i, w) in &updates {
                patched[i] = w;
            }
            let epoch = step_no as u64 + 2;
            if patched.iter().all(|&w| w == 0.0) {
                // Unroutable delta: both paths must refuse it.
                prop_assert!(builder.update_weights(&current, epoch, &updates).is_err());
                prop_assert!(RoutingTable::new(epoch, ids.clone(), &patched).is_err());
                continue;
            }
            let repairs_before = builder.repairs();
            let incremental = builder.update_weights(&current, epoch, &updates).unwrap();
            let fresh = if builder.repairs() > repairs_before {
                // Repair path: the requested probabilities land
                // verbatim, at most two absorber buckets move beyond
                // them, the serial sum is exactly one, and the vector
                // is a fixed point of the full pipeline.
                for &(i, _) in &updates {
                    prop_assert_eq!(
                        incremental.probs()[i].to_bits(),
                        patched[i].to_bits(),
                        "update at {} not published verbatim (step {})", i, step_no
                    );
                }
                let mut distinct: Vec<usize> = updates.iter().map(|&(i, _)| i).collect();
                distinct.sort_unstable();
                distinct.dedup();
                let moved = incremental
                    .probs()
                    .iter()
                    .zip(current.probs())
                    .filter(|(a, b)| a.to_bits() != b.to_bits())
                    .count();
                prop_assert!(
                    moved <= distinct.len() + 2,
                    "repair moved {} probs for {} updates (step {})", moved, distinct.len(), step_no
                );
                prop_assert_eq!(incremental.probs().iter().sum::<f64>(), 1.0);
                RoutingTable::new(epoch, ids.clone(), incremental.probs()).unwrap()
            } else {
                // Fallback: exactly the renormalized patched vector.
                RoutingTable::new(epoch, ids.clone(), &patched).unwrap()
            };
            // Bit-identical published state (repair or fallback alike)...
            prop_assert_eq!(incremental.epoch(), fresh.epoch());
            prop_assert_eq!(incremental.nodes(), fresh.nodes());
            for (a, b) in incremental.probs().iter().zip(fresh.probs()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "probs diverge at step {}", step_no);
            }
            // ...and draw-for-draw identical routing, on random draws
            // and on the alias knife-edges (0, the largest f64 below
            // 1.0, and the out-of-contract 1.0 the table still accepts).
            let mut rng = Xoshiro256PlusPlus::stream(seed ^ step_no as u64, 0x0400);
            for _ in 0..512 {
                let u = rng.next_open01();
                prop_assert_eq!(incremental.route_index(u), fresh.route_index(u));
            }
            for u in [0.0, 0.25, 0.5, MAX_BELOW_ONE, 1.0] {
                prop_assert_eq!(incremental.route_index(u), fresh.route_index(u));
            }
            current = incremental;
        }
        // The builder took one of the two paths on every accepted step.
        prop_assert!(builder.repairs() + builder.rebuilds() >= 1);
    }
}
