//! Value-generation strategies (no shrinking).

use crate::test_runner::Rng;

/// A recipe for generating values of one type from the deterministic
/// test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// collection (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (the engine of `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union.
    ///
    /// # Panics
    /// If `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof!: need at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        let i = rng.usize_below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut Rng) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => { $(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.u64_below(span) as $t)
            }
        }
    )+ };
}

int_range_strategy!(u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)+) => { $(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+ };
}

tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::from_name("strategy::tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = (1.5f64..2.5).sample(&mut r);
            assert!((1.5..2.5).contains(&x));
            let n = (3usize..7).sample(&mut r);
            assert!((3..7).contains(&n));
            let u = (10u32..11).sample(&mut r);
            assert_eq!(u, 10);
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut r = rng();
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r) % 2, 0);
        }
        assert_eq!(Just(41).sample(&mut r), 41);
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut r = rng();
        let (a, b, c) = ((0.0f64..1.0), (5u64..6), Just("x")).sample(&mut r);
        assert!((0.0..1.0).contains(&a));
        assert_eq!(b, 5);
        assert_eq!(c, "x");
    }
}
