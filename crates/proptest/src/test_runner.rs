//! Deterministic case generation and runner configuration.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Config {
    /// Configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!` failed with this message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs.
    Reject,
}

/// The generator behind every strategy: xoshiro256++ seeded from the
/// test's fully qualified name via SplitMix64, so each test draws a
/// reproducible, test-specific sequence on every run and platform.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seeds from an arbitrary string (FNV-1a into SplitMix64).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        Self {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Next 64 random bits (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform on `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform integer in `[0, bound)` (Lemire-style rejection-free
    /// multiply-shift is overkill here; modulo bias at these bounds is
    /// irrelevant for test-case generation).
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform index in `[0, bound)`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_name_sensitive() {
        let mut a = Rng::from_name("x");
        let mut b = Rng::from_name("x");
        let mut c = Rng::from_name("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = Rng::from_name("unit");
        for _ in 0..10_000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn config_defaults() {
        assert_eq!(Config::default().cases, 256);
        assert_eq!(Config::with_cases(7).cases, 7);
    }
}
