//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::Rng;

/// A length specification: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec-size range");
        Self { lo: r.start, hi: r.end }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The result of [`vec()`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + if span > 1 { rng.u64_below(span) as usize } else { 0 };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = Rng::from_name("collection");
        let fixed = vec(0.0f64..1.0, 5);
        assert_eq!(fixed.sample(&mut rng).len(), 5);
        let ranged = vec(0u32..10, 2..9usize);
        for _ in 0..200 {
            let v = ranged.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
