//! Hermetic stand-in for the `proptest` crate.
//!
//! This workspace builds without network access, so the real proptest
//! cannot be fetched. This crate re-implements the (small) slice of its
//! API that the gtlb test suites use, keeping every test file
//! source-compatible:
//!
//! * [`strategy`] — the [`Strategy`](strategy::Strategy) trait with
//!   `prop_map`/`boxed`, numeric-range and tuple strategies,
//!   [`Just`](strategy::Just), and [`Union`](strategy::Union)
//!   (the engine behind `prop_oneof!`);
//! * [`collection`] — `vec(strategy, size)` with exact or ranged sizes;
//! * [`test_runner`] — deterministic case generation (seeded from the
//!   test's fully qualified name, so failures reproduce run-to-run) and
//!   the `ProptestConfig`/`TestCaseError` types;
//! * the `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//!   and `prop_oneof!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs but is not minimized), no persisted regression files, and all
//! `prop_oneof!` arms are equally weighted. Neither limitation affects
//! the invariants the suites assert.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Upstream-compatible module alias: `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

/// Everything the test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// item becomes a standard test that samples its strategies for the
/// configured number of cases and runs the body against each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => { $(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::Rng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __passed: u32 = 0;
            let mut __rejected: u64 = 0;
            let __max_rejects: u64 = u64::from(__config.cases) * 64 + 1024;
            let mut __case: u64 = 0;
            while __passed < __config.cases {
                __case += 1;
                let __vals = ($($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+);
                let __desc = format!("{:?}", __vals);
                let __res: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let ($($pat,)+) = __vals;
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __res {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __max_rejects,
                            "{}: too many prop_assume rejections ({__rejected} rejects, \
                             {__passed} passes)",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case #{__case}: {msg}\n  inputs: {__desc}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )* };
}

/// Asserts a condition inside a `proptest!` body, failing the case (and
/// reporting its inputs) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n  right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (counted separately from passes) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
