//! Chapter 5 experiments — the truthful mechanism (§5.5).

use gtlb_core::allocation::jain_index;
use gtlb_core::model::Cluster;
use gtlb_mechanism::payment::{rates_from_bids, PaymentBreakdown, TruthfulMechanism};
use gtlb_sim::report::{fmt_num, Table};
use gtlb_sim::runner::{replicate_parallel, single_class_spec, ArrivalLaw};
use gtlb_sim::scenario::{table31, table51_bids, UTILIZATION_GRID};

use crate::common::Options;

/// The bid scenarios of §5.5: C1 truthful / 33 % higher / 7 % lower.
fn bid_scenarios() -> [(&'static str, f64); 3] {
    [("true", 1.0), ("high", 1.33), ("low", 0.93)]
}

fn bids_with_c1_factor(factor: f64) -> Vec<f64> {
    let mut bids = table51_bids();
    bids[0] *= factor;
    bids
}

/// Table 5.1 (= Table 3.1, restated as bids).
pub fn table5_1(opts: &Options) {
    let bids = table51_bids();
    let mut t = Table::new(
        "Table 5.1 — system configuration (true values t_i = 1/mu_i)",
        &["computer", "rate (jobs/s)", "true value t (s/job)"],
    );
    let cluster = table31();
    let order = cluster.order_by_rate_desc();
    for (slot, &i) in order.iter().enumerate() {
        t.push_row(vec![format!("C{}", slot + 1), fmt_num(cluster.rates()[i]), fmt_num(bids[i])]);
    }
    opts.emit("table5_1", &t);
}

/// Figure 5.2: performance degradation vs utilization when C1 lies.
///
/// Evaluated two ways, as the analytic response time is infinite once an
/// underbidding C1 is overloaded: the closed form (exact where finite)
/// and the simulator (finite-horizon, like the paper's runs).
pub fn fig5_2(opts: &Options) {
    let cluster = table31();
    let true_bids = table51_bids();
    let budget = opts.budget();
    let mut t = Table::new(
        "Fig 5.2 — performance degradation PD (%) vs utilization",
        &["rho(%)", "analytic high", "analytic low", "simulated high", "simulated low"],
    );
    let grid: &[f64] = if opts.quick { &[0.3, 0.6, 0.9] } else { &UTILIZATION_GRID };
    for &rho in grid {
        let phi = cluster.arrival_rate_for_utilization(rho);
        let mech = TruthfulMechanism::new(phi);
        let t_true = mech.true_response_time(&true_bids, &true_bids).unwrap();
        let mut cells = vec![format!("{:.0}", rho * 100.0)];
        let mut sim_cells = Vec::new();
        for factor in [1.33, 0.93] {
            let lying = bids_with_c1_factor(factor);
            let t_lie = mech.true_response_time(&lying, &true_bids).unwrap();
            cells.push(fmt_num(100.0 * (t_lie - t_true) / t_true));
            // Simulated: run the lie-derived allocation on the TRUE rates.
            let alloc = mech.allocate(&lying).unwrap();
            let spec = single_class_spec(&cluster, alloc.loads(), phi, ArrivalLaw::Poisson);
            let res = replicate_parallel(&spec, &budget);
            let alloc_true = mech.allocate(&true_bids).unwrap();
            let spec_true =
                single_class_spec(&cluster, alloc_true.loads(), phi, ArrivalLaw::Poisson);
            let res_true = replicate_parallel(&spec_true, &budget);
            sim_cells.push(fmt_num(
                100.0 * (res.overall.mean - res_true.overall.mean) / res_true.overall.mean,
            ));
        }
        cells.extend(sim_cells);
        t.push_row(cells);
    }
    opts.emit("fig5_2", &t);
}

/// Figure 5.3: fairness index vs utilization for the three bid
/// scenarios (evaluated on the true rates).
pub fn fig5_3(opts: &Options) {
    let cluster = table31();
    let mut t = Table::new(
        "Fig 5.3 — fairness index vs utilization",
        &["rho(%)", "OPTIM(true)", "OPTIM(high)", "OPTIM(low)"],
    );
    for &rho in &UTILIZATION_GRID {
        let phi = cluster.arrival_rate_for_utilization(rho);
        let mech = TruthfulMechanism::new(phi);
        let mut vals = Vec::new();
        for (_, factor) in bid_scenarios() {
            let bids = bids_with_c1_factor(factor);
            let alloc = mech.allocate(&bids).unwrap();
            // Fairness of the realized times on the TRUE rates; an
            // overloaded computer contributes an effectively-unbounded
            // time, cratering the index like the paper's ρ=90% point.
            let times: Vec<f64> = alloc
                .loads()
                .iter()
                .zip(cluster.rates())
                .filter(|(&l, _)| l > 0.0)
                .map(|(&l, &mu)| if l < mu { 1.0 / (mu - l) } else { 1e6 })
                .collect();
            vals.push(jain_index(&times));
        }
        t.push_numeric_row(&format!("{:.0}", rho * 100.0), &vals);
    }
    opts.emit("fig5_3", &t);
}

fn payments_for(factor: f64, rho: f64) -> (Vec<PaymentBreakdown>, Vec<f64>, TruthfulMechanism) {
    let cluster = table31();
    let phi = cluster.arrival_rate_for_utilization(rho);
    // Reserve price: 10x the slowest computer's true value. Needed above
    // ~80% utilization, where the fast computers are pivotal (the rest of
    // the market cannot carry the load alone) and the untruncated
    // Archer-Tardos integral diverges; see EXPERIMENTS.md.
    let mech = TruthfulMechanism::with_max_bid(phi, 10.0 / 0.013);
    let bids = bids_with_c1_factor(factor);
    let payments = mech.payments(&bids).expect("payments computable");
    (payments, bids, mech)
}

/// Figure 5.4: profit of each computer at ρ = 50 % for the three bid
/// scenarios (profit is always measured against the TRUE values).
pub fn fig5_4(opts: &Options) {
    let truth = table51_bids();
    let mut t = Table::new(
        "Fig 5.4 — profit for each computer (rho = 50%)",
        &["computer", "true bid", "C1 high (x1.33)", "C1 low (x0.93)"],
    );
    let (p_true, _, _) = payments_for(1.0, 0.5);
    let (p_high, _, _) = payments_for(1.33, 0.5);
    let (p_low, _, _) = payments_for(0.93, 0.5);
    let cluster = table31();
    let order = cluster.order_by_rate_desc();
    for (slot, &i) in order.iter().enumerate() {
        t.push_row(vec![
            format!("C{}", slot + 1),
            fmt_num(p_true[i].profit(truth[i])),
            fmt_num(p_high[i].profit(truth[i])),
            fmt_num(p_low[i].profit(truth[i])),
        ]);
    }
    opts.emit("fig5_4", &t);
    println!(
        "C1 profit: true {} / high {} / low {} — maximum at the truthful bid",
        fmt_num(p_true[0].profit(truth[0])),
        fmt_num(p_high[0].profit(truth[0])),
        fmt_num(p_low[0].profit(truth[0]))
    );
}

fn payment_structure(id: &str, title: &str, factor: f64, opts: &Options) {
    let truth = table51_bids();
    let (payments, _, _) = payments_for(factor, 0.5);
    let cluster = table31();
    let order = cluster.order_by_rate_desc();
    let mut t = Table::new(title, &["computer", "payment", "cost", "profit", "cost/payment(%)"]);
    for (slot, &i) in order.iter().enumerate() {
        let p = &payments[i];
        let cost = p.cost(truth[i]);
        let pay = p.payment();
        let frac = if pay > 0.0 { 100.0 * cost / pay } else { f64::NAN };
        t.push_row(vec![
            format!("C{}", slot + 1),
            fmt_num(pay),
            fmt_num(cost),
            fmt_num(p.profit(truth[i])),
            fmt_num(frac),
        ]);
    }
    opts.emit(id, &t);
}

/// Figure 5.5: payment structure per computer, C1 bids 33 % higher.
pub fn fig5_5(opts: &Options) {
    payment_structure(
        "fig5_5",
        "Fig 5.5 — payment structure per computer (C1 bids higher, rho = 50%)",
        1.33,
        opts,
    );
}

/// Figure 5.6: payment structure per computer, C1 bids 7 % lower.
pub fn fig5_6(opts: &Options) {
    payment_structure(
        "fig5_6",
        "Fig 5.6 — payment structure per computer (C1 bids lower, rho = 50%)",
        0.93,
        opts,
    );
}

/// Figure 5.7: total payment vs utilization (truthful bids) split into
/// cost and profit fractions.
pub fn fig5_7(opts: &Options) {
    let truth = table51_bids();
    let mut t = Table::new(
        "Fig 5.7 — total payment vs utilization (true bids)",
        &["rho(%)", "total payment", "total cost", "cost share (%)", "profit share (%)"],
    );
    for &rho in &UTILIZATION_GRID {
        let (payments, _, _) = payments_for(1.0, rho);
        let total_pay: f64 = payments.iter().map(PaymentBreakdown::payment).sum();
        let total_cost: f64 = payments.iter().zip(&truth).map(|(p, &b)| p.cost(b)).sum();
        t.push_numeric_row(
            &format!("{:.0}", rho * 100.0),
            &[
                total_pay,
                total_cost,
                100.0 * total_cost / total_pay,
                100.0 * (total_pay - total_cost) / total_pay,
            ],
        );
    }
    opts.emit("fig5_7", &t);
    // Sanity print for the reader: the rates the bids imply.
    let rates = rates_from_bids(&truth).unwrap();
    let _ = Cluster::new(rates).unwrap();
}
