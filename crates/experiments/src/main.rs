//! `experiments` — regenerates every table and figure of the paper's
//! evaluation (and the dissertation's extension chapters).
//!
//! ```text
//! cargo run --release -p gtlb-experiments -- <id>... [--quick] [--csv DIR]
//! cargo run --release -p gtlb-experiments -- all
//! cargo run --release -p gtlb-experiments -- list
//! ```
//!
//! Ids: `table3_1 fig3_1 … fig3_6 table4_1 fig4_2 … fig4_8 table5_1
//! fig5_2 … fig5_7 table6_1 table6_2 fig6_1 … fig6_6 ablate_drop_rule
//! ablate_nash_init ablate_wardrop_tol`, or the groups `ch3 ch4 ch5 ch6
//! ablations all`.

#![forbid(unsafe_code)]

mod ablations;
mod ch3;
mod ch4;
mod ch5;
mod ch6;
mod common;
mod dynamic_ext;
mod extensions;

use common::Options;

type Runner = fn(&Options);

const REGISTRY: &[(&str, &str, Runner)] = &[
    ("table3_1", "Table 3.1: system configuration", ch3::table3_1),
    (
        "fig3_1",
        "Fig 3.1: response time & fairness vs utilization (COOP/PROP/WARDROP/OPTIM)",
        ch3::fig3_1,
    ),
    ("fig3_2", "Fig 3.2: per-computer response time at medium load (rho=50%)", ch3::fig3_2),
    ("fig3_3", "Fig 3.3: per-computer response time at high load (rho=90%)", ch3::fig3_3),
    ("fig3_4", "Fig 3.4: effect of heterogeneity (speed skew 1..20)", ch3::fig3_4),
    ("fig3_5", "Fig 3.5: effect of system size (2..20 computers)", ch3::fig3_5),
    ("fig3_6", "Fig 3.6: hyper-exponential arrivals (CV=1.6), simulated", ch3::fig3_6),
    ("table4_1", "Table 4.1: system configuration", ch4::table4_1),
    ("fig4_2", "Fig 4.2: norm vs iterations (NASH_0 vs NASH_P)", ch4::fig4_2),
    ("fig4_3", "Fig 4.3: iterations to converge vs number of users", ch4::fig4_3),
    ("fig4_4", "Fig 4.4: response time & fairness vs utilization (NASH/GOS/IOS/PS)", ch4::fig4_4),
    ("fig4_5", "Fig 4.5: per-user response time at rho=60%", ch4::fig4_5),
    ("fig4_6", "Fig 4.6: effect of heterogeneity (multi-user)", ch4::fig4_6),
    ("fig4_7", "Fig 4.7: effect of system size (multi-user)", ch4::fig4_7),
    ("fig4_8", "Fig 4.8: hyper-exponential arrivals (multi-user), simulated", ch4::fig4_8),
    ("table5_1", "Table 5.1: system configuration", ch5::table5_1),
    ("fig5_2", "Fig 5.2: performance degradation vs utilization (C1 lies)", ch5::fig5_2),
    ("fig5_3", "Fig 5.3: fairness vs utilization (true/high/low bids)", ch5::fig5_3),
    ("fig5_4", "Fig 5.4: profit per computer at medium load", ch5::fig5_4),
    ("fig5_5", "Fig 5.5: payment structure per computer (C1 bids higher)", ch5::fig5_5),
    ("fig5_6", "Fig 5.6: payment structure per computer (C1 bids lower)", ch5::fig5_6),
    ("fig5_7", "Fig 5.7: total payment vs utilization", ch5::fig5_7),
    ("table6_1", "Table 6.1: true values", ch6::table6_1),
    ("table6_2", "Table 6.2: experiment matrix", ch6::table6_2),
    ("fig6_1", "Fig 6.1: total latency per experiment", ch6::fig6_1),
    ("fig6_2", "Fig 6.2: payment & utility of C1 per experiment", ch6::fig6_2),
    ("fig6_3", "Fig 6.3: payment & utility per computer (True1)", ch6::fig6_3),
    ("fig6_4", "Fig 6.4: payment & utility per computer (High1)", ch6::fig6_4),
    ("fig6_5", "Fig 6.5: payment & utility per computer (Low1)", ch6::fig6_5),
    ("fig6_6", "Fig 6.6: payment structure (frugality)", ch6::fig6_6),
    (
        "dyn_compare",
        "Extension: dynamic policies vs static COOP on Table 3.1",
        dynamic_ext::compare,
    ),
    (
        "dyn_crossover",
        "Extension: sender- vs receiver-initiated crossover with load",
        dynamic_ext::crossover,
    ),
    ("dyn_overhead", "Extension: location-policy detail vs probe overhead", dynamic_ext::overhead),
    ("ext_drift", "Extension: NASH warm-started over a drifting load trace", extensions::drift),
    ("ext_fault", "Extension: fault-aware vs fault-blind truthful allocation", extensions::fault),
    ("ext_estimation", "Extension: NASH on statistically estimated rates", extensions::estimation),
    (
        "ext_network",
        "Extension: load exchange over a shared M/M/1 channel (Tantawi-Towsley)",
        extensions::network,
    ),
    ("ext_poa", "Extension: price of anarchy of the noncooperative game", extensions::poa),
    (
        "ablate_drop_rule",
        "Ablation: COOP/OPTIM with vs without the drop-slowest loop",
        ablations::drop_rule,
    ),
    ("ablate_nash_init", "Ablation: NASH_0 vs NASH_P vs warm start", ablations::nash_init),
    (
        "ablate_wardrop_tol",
        "Ablation: WARDROP tolerance vs error vs iterations",
        ablations::wardrop_tol,
    ),
];

const GROUPS: &[(&str, &str)] =
    &[("ch3", "fig3_"), ("ch4", "fig4_"), ("ch5", "fig5_"), ("ch6", "fig6_")];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--csv" => {
                let dir = it.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory");
                    std::process::exit(2);
                });
                opts.csv_dir = Some(std::path::PathBuf::from(dir));
            }
            "--seed" => {
                let s = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an integer");
                    std::process::exit(2);
                });
                opts.seed = s;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "list") {
        println!("available experiments:");
        for (id, desc, _) in REGISTRY {
            println!("  {id:<18} {desc}");
        }
        println!("  groups: ch3 ch4 ch5 ch6 tables dynamic extensions ablations all");
        println!("  flags: --quick (smaller simulation budgets), --csv DIR, --seed N");
        return;
    }

    let mut selected: Vec<&(&str, &str, Runner)> = Vec::new();
    for id in &ids {
        match id.as_str() {
            "all" => selected.extend(REGISTRY.iter()),
            "tables" => {
                selected.extend(REGISTRY.iter().filter(|(n, _, _)| n.starts_with("table")));
            }
            "ablations" => {
                selected.extend(REGISTRY.iter().filter(|(n, _, _)| n.starts_with("ablate")));
            }
            "dynamic" => {
                selected.extend(REGISTRY.iter().filter(|(n, _, _)| n.starts_with("dyn_")));
            }
            "extensions" => {
                selected.extend(
                    REGISTRY
                        .iter()
                        .filter(|(n, _, _)| n.starts_with("ext_") || n.starts_with("dyn_")),
                );
            }
            g if GROUPS.iter().any(|(name, _)| *name == g) => {
                let prefix = GROUPS.iter().find(|(name, _)| *name == g).unwrap().1;
                let table_prefix = format!("table{}", &g[2..]);
                selected.extend(
                    REGISTRY
                        .iter()
                        .filter(|(n, _, _)| n.starts_with(prefix) || n.starts_with(&table_prefix)),
                );
            }
            exact => match REGISTRY.iter().find(|(n, _, _)| *n == exact) {
                Some(entry) => selected.push(entry),
                None => {
                    eprintln!("unknown experiment `{exact}` (try `list`)");
                    std::process::exit(2);
                }
            },
        }
    }
    selected.dedup_by_key(|e| e.0);

    for (id, desc, run) in selected {
        println!("\n########## {id} — {desc}\n");
        let started = std::time::Instant::now();
        run(&opts);
        println!("[{} finished in {:.2?}]", id, started.elapsed());
    }
}
