//! Extension experiments: the dynamic policies of the survey chapter
//! (§2.2.2) against the paper's static game-theoretic schemes.

use gtlb_core::schemes::{Coop, SingleClassScheme};
use gtlb_dynamic::{run_dynamic, DynamicConfig, DynamicSpec, Policy};
use gtlb_queueing::dist::{Deterministic, Law};
use gtlb_sim::report::{fmt_num, Table};
use gtlb_sim::scenario::table31;

use crate::common::Options;

fn cfg(opts: &Options, salt: u64) -> DynamicConfig {
    let b = opts.budget();
    DynamicConfig {
        seed: b.seed ^ salt,
        warmup_jobs: b.warmup_jobs,
        measured_jobs: b.measured_jobs.min(if opts.quick { 40_000 } else { 250_000 }),
    }
}

fn policies() -> Vec<Policy> {
    vec![
        Policy::NoBalancing,
        Policy::SenderRandom { threshold: 2 },
        Policy::SenderThreshold { threshold: 2, probe_limit: 3 },
        Policy::SenderShortest { threshold: 2, probe_limit: 3 },
        Policy::Receiver { threshold: 1, probe_limit: 3 },
        Policy::Symmetric { threshold: 2, probe_limit: 3 },
        Policy::CentralJsq,
    ]
}

/// `dyn_compare`: static COOP routing vs the dynamic policies on the
/// Table 3.1 cluster at ρ = 60 %. Local arrivals are proportional to the
/// computers' rates (every node at ρ before balancing); each policy is
/// evaluated with free transfers (the paper's idealized dispatcher) and
/// with transfers costing one mean service time of the fastest computer.
pub fn compare(opts: &Options) {
    let cluster = table31();
    let rho = 0.6;
    let phi = cluster.arrival_rate_for_utilization(rho);
    let mut t = Table::new(
        "Dynamic vs static on Table 3.1 (rho = 60%)",
        &["policy", "T (free transfer)", "T (d = 7.7 s)", "transfers/job", "probes/job"],
    );
    for policy in std::iter::once(Policy::StaticRouting).chain(policies()) {
        let mut cells = vec![match policy {
            Policy::StaticRouting => "STATIC(COOP)".to_string(),
            p => p.name().to_string(),
        }];
        let mut tf = 0.0;
        let mut pr = 0.0;
        for d in [0.0, 1.0 / 0.13] {
            let routing = match policy {
                Policy::StaticRouting => {
                    let alloc = Coop.allocate(&cluster, phi).unwrap();
                    Some(alloc.loads().iter().map(|&l| l / phi).collect())
                }
                _ => None,
            };
            let spec = DynamicSpec {
                services: cluster.rates().iter().map(|&m| Law::exponential(m)).collect(),
                arrivals: cluster.rates().iter().map(|&m| Law::exponential(rho * m)).collect(),
                transfer_delay: Law::Det(Deterministic::new(d)),
                policy,
                routing,
            };
            let res = run_dynamic(&spec, &cfg(opts, d.to_bits()));
            cells.push(fmt_num(res.mean_response_time()));
            tf = res.transfer_fraction();
            pr = res.probes_per_job();
        }
        cells.push(fmt_num(tf));
        cells.push(fmt_num(pr));
        t.push_row(cells);
    }
    opts.emit("dyn_compare", &t);
    println!("Notes: (1) dynamic policies need live state, static COOP needs none, and the");
    println!("gap closes as transfers get expensive; (2) plain JSQ mis-balances this 10x-");
    println!("heterogeneous cluster — it prefers an idle slow computer to a busy fast one —");
    println!("which is exactly why the heterogeneous literature weights the queue lengths.");
}

/// `dyn_crossover`: sender- vs receiver-initiated across the load range —
/// the survey's classic result ("sender-initiated … at low to moderate
/// loads; receiver-initiated … at high system loads").
pub fn crossover(opts: &Options) {
    let mut t = Table::new(
        "Sender vs receiver initiation (8 homogeneous computers, d = 0.01)",
        &["rho(%)", "NOLB", "SND-THRESH", "RECEIVER", "SYMMETRIC", "winner"],
    );
    let grid: &[f64] =
        if opts.quick { &[0.5, 0.8, 0.93] } else { &[0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 0.93, 0.96] };
    for &rho in grid {
        let mut means = Vec::new();
        for policy in [
            Policy::NoBalancing,
            Policy::SenderThreshold { threshold: 2, probe_limit: 3 },
            Policy::Receiver { threshold: 1, probe_limit: 3 },
            Policy::Symmetric { threshold: 2, probe_limit: 3 },
        ] {
            let spec = DynamicSpec::homogeneous(8, 1.0, rho, 0.01, policy);
            let res = run_dynamic(&spec, &cfg(opts, (rho * 1000.0) as u64));
            means.push(res.mean_response_time());
        }
        let winner = if means[1] <= means[2] { "sender" } else { "receiver" };
        t.push_row(vec![
            format!("{:.0}", rho * 100.0),
            fmt_num(means[0]),
            fmt_num(means[1]),
            fmt_num(means[2]),
            fmt_num(means[3]),
            winner.to_string(),
        ]);
    }
    opts.emit("dyn_crossover", &t);
}

/// `dyn_overhead`: probe overhead vs benefit for the three sender
/// location policies — "using more detailed state information does not
/// necessarily improve performance significantly" (Eager et al. via
/// §2.2.2).
pub fn overhead(opts: &Options) {
    let mut t = Table::new(
        "Location-policy detail vs benefit (8 computers, rho = 80%)",
        &["policy", "mean T", "transfers/job", "probes/job"],
    );
    for policy in [
        Policy::SenderRandom { threshold: 2 },
        Policy::SenderThreshold { threshold: 2, probe_limit: 3 },
        Policy::SenderShortest { threshold: 2, probe_limit: 3 },
    ] {
        let spec = DynamicSpec::homogeneous(8, 1.0, 0.8, 0.01, policy);
        let res = run_dynamic(&spec, &cfg(opts, 0xCAFE));
        t.push_row(vec![
            policy.name().to_string(),
            fmt_num(res.mean_response_time()),
            fmt_num(res.transfer_fraction()),
            fmt_num(res.probes_per_job()),
        ]);
    }
    opts.emit("dyn_overhead", &t);
}
