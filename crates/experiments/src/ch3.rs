//! Chapter 3 experiments — the IPPS 2002 paper's evaluation (§3.4).

use gtlb_core::model::Cluster;
use gtlb_core::schemes::{Coop, Optim, Prop, SingleClassScheme, Wardrop};
use gtlb_sim::analytic::{per_computer_times, sweep_single_class};
use gtlb_sim::report::{fmt_num, Table};
use gtlb_sim::runner::{
    replicate_parallel, simulated_computer_fairness, single_class_spec, ArrivalLaw,
};
use gtlb_sim::scenario::{sized_cluster, skewed_cluster, table31, HYPEREXP_CV, UTILIZATION_GRID};

use crate::common::Options;

fn schemes() -> [Box<dyn SingleClassScheme>; 4] {
    [Box::new(Coop), Box::new(Prop), Box::new(Wardrop::default()), Box::new(Optim)]
}

/// Table 3.1.
pub fn table3_1(opts: &Options) {
    let cluster = table31();
    let mut t = Table::new(
        "Table 3.1 — system configuration",
        &["relative rate", "count", "rate (jobs/s)"],
    );
    for (rel, count, rate) in [(10, 2, 0.13), (5, 3, 0.065), (2, 5, 0.026), (1, 6, 0.013)] {
        t.push_row(vec![rel.to_string(), count.to_string(), fmt_num(rate)]);
    }
    opts.emit("table3_1", &t);
    println!(
        "aggregate rate {} jobs/s over {} computers, speed skewness {}",
        fmt_num(cluster.total_rate()),
        cluster.n(),
        fmt_num(cluster.speed_skewness())
    );
}

fn sweep_tables(id: &str, title: &str, cluster: &Cluster, utilizations: &[f64], opts: &Options) {
    let boxed = schemes();
    let refs: Vec<&dyn SingleClassScheme> = boxed.iter().map(AsRef::as_ref).collect();
    let pts = sweep_single_class(cluster, &refs, utilizations).expect("schemes feasible");
    let mut t_resp = Table::new(
        format!("{title} — expected response time (s)"),
        &["rho(%)", "COOP", "PROP", "WARDROP", "OPTIM"],
    );
    let mut t_fair = Table::new(
        format!("{title} — fairness index I"),
        &["rho(%)", "COOP", "PROP", "WARDROP", "OPTIM"],
    );
    for &rho in utilizations {
        let grab = |name: &str| {
            pts.iter()
                .find(|p| p.scheme == name && (p.utilization - rho).abs() < 1e-12)
                .expect("sweep point exists")
        };
        let names = ["COOP", "PROP", "WARDROP", "OPTIM"];
        t_resp.push_numeric_row(
            &format!("{:.0}", rho * 100.0),
            &names.map(|n| grab(n).response_time),
        );
        t_fair.push_numeric_row(&format!("{:.0}", rho * 100.0), &names.map(|n| grab(n).fairness));
    }
    opts.emit(&format!("{id}_response"), &t_resp);
    opts.emit(&format!("{id}_fairness"), &t_fair);
}

/// Figure 3.1: response time + fairness vs utilization (Poisson,
/// analytic — exact for M/M/1).
pub fn fig3_1(opts: &Options) {
    sweep_tables("fig3_1", "Fig 3.1", &table31(), &UTILIZATION_GRID, opts);
}

fn per_computer_figure(id: &str, rho: f64, opts: &Options) {
    let cluster = table31();
    let mut t = Table::new(
        format!("{id} — expected response time at each computer (rho = {:.0}%)", rho * 100.0),
        &["computer", "rate", "COOP", "PROP", "OPTIM"],
    );
    let coop = per_computer_times(&cluster, &Coop, rho).unwrap();
    let prop = per_computer_times(&cluster, &Prop, rho).unwrap();
    let optim = per_computer_times(&cluster, &Optim, rho).unwrap();
    // Present fastest-first like the paper's bar charts (C1 fastest).
    let order = cluster.order_by_rate_desc();
    for (slot, &i) in order.iter().enumerate() {
        t.push_row(vec![
            format!("C{}", slot + 1),
            fmt_num(cluster.rates()[i]),
            coop[i].map_or_else(|| "idle".into(), fmt_num),
            prop[i].map_or_else(|| "idle".into(), fmt_num),
            optim[i].map_or_else(|| "idle".into(), fmt_num),
        ]);
    }
    opts.emit(id, &t);
    println!("(WARDROP equals COOP at every computer and is omitted, as in the paper)");
}

/// Figure 3.2: per-computer response times at ρ = 50 %.
pub fn fig3_2(opts: &Options) {
    per_computer_figure("fig3_2", 0.5, opts);
}

/// Figure 3.3: per-computer response times at high load. The text says
/// ρ = 90 %, but the quoted spreads (PROP 350 s, OPTIM 130 s) identify
/// the plotted load as ρ = 80 % (see EXPERIMENTS.md) — we print both.
pub fn fig3_3(opts: &Options) {
    per_computer_figure("fig3_3_rho80", 0.8, opts);
    per_computer_figure("fig3_3_rho90", 0.9, opts);
}

/// Figure 3.4: heterogeneity sweep — 2 fast + 14 slow computers,
/// skew 1…20, ρ = 60 %.
pub fn fig3_4(opts: &Options) {
    let boxed = schemes();
    let refs: Vec<&dyn SingleClassScheme> = boxed.iter().map(AsRef::as_ref).collect();
    let mut t_resp = Table::new(
        "Fig 3.4 — response time vs speed skewness (rho = 60%)",
        &["skew", "COOP", "PROP", "WARDROP", "OPTIM"],
    );
    let mut t_fair = Table::new(
        "Fig 3.4 — fairness vs speed skewness (rho = 60%)",
        &["skew", "COOP", "PROP", "WARDROP", "OPTIM"],
    );
    for skew in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0] {
        let cluster = skewed_cluster(skew, 0.013);
        let pts = sweep_single_class(&cluster, &refs, &[0.6]).unwrap();
        let names = ["COOP", "PROP", "WARDROP", "OPTIM"];
        t_resp.push_numeric_row(
            &fmt_num(skew),
            &names.map(|n| pts.iter().find(|p| p.scheme == n).unwrap().response_time),
        );
        t_fair.push_numeric_row(
            &fmt_num(skew),
            &names.map(|n| pts.iter().find(|p| p.scheme == n).unwrap().fairness),
        );
    }
    opts.emit("fig3_4_response", &t_resp);
    opts.emit("fig3_4_fairness", &t_fair);
}

/// Figure 3.5: system-size sweep — 2 fast (×10) + up to 18 slow
/// computers, ρ = 60 %.
pub fn fig3_5(opts: &Options) {
    let boxed = schemes();
    let refs: Vec<&dyn SingleClassScheme> = boxed.iter().map(AsRef::as_ref).collect();
    let mut t_resp = Table::new(
        "Fig 3.5 — response time vs system size (rho = 60%)",
        &["n", "COOP", "PROP", "WARDROP", "OPTIM"],
    );
    let mut t_fair = Table::new(
        "Fig 3.5 — fairness vs system size (rho = 60%)",
        &["n", "COOP", "PROP", "WARDROP", "OPTIM"],
    );
    for n in (2..=20).step_by(2) {
        let cluster = sized_cluster(n, 0.013);
        let pts = sweep_single_class(&cluster, &refs, &[0.6]).unwrap();
        let names = ["COOP", "PROP", "WARDROP", "OPTIM"];
        t_resp.push_numeric_row(
            &n.to_string(),
            &names.map(|x| pts.iter().find(|p| p.scheme == x).unwrap().response_time),
        );
        t_fair.push_numeric_row(
            &n.to_string(),
            &names.map(|x| pts.iter().find(|p| p.scheme == x).unwrap().fairness),
        );
    }
    opts.emit("fig3_5_response", &t_resp);
    opts.emit("fig3_5_fairness", &t_fair);
}

/// Figure 3.6: hyper-exponential interarrivals (CV = 1.6) — requires the
/// discrete-event simulator; reports the 95 % half-width alongside each
/// mean.
pub fn fig3_6(opts: &Options) {
    let cluster = table31();
    let budget = opts.budget();
    let boxed = schemes();
    let mut t_resp = Table::new(
        "Fig 3.6 — simulated response time, H2 arrivals CV=1.6 (mean ± 95% hw)",
        &["rho(%)", "COOP", "PROP", "WARDROP", "OPTIM"],
    );
    let mut t_fair = Table::new(
        "Fig 3.6 — simulated fairness, H2 arrivals CV=1.6",
        &["rho(%)", "COOP", "PROP", "WARDROP", "OPTIM"],
    );
    let grid: &[f64] = if opts.quick { &[0.3, 0.6, 0.9] } else { &UTILIZATION_GRID };
    for &rho in grid {
        let phi = cluster.arrival_rate_for_utilization(rho);
        let mut resp_cells = vec![format!("{:.0}", rho * 100.0)];
        let mut fair_vals = Vec::new();
        for s in &boxed {
            let alloc = s.allocate(&cluster, phi).unwrap();
            let spec = single_class_spec(
                &cluster,
                alloc.loads(),
                phi,
                ArrivalLaw::HyperExp { cv: HYPEREXP_CV },
            );
            let res = replicate_parallel(&spec, &budget);
            resp_cells.push(format!(
                "{}±{}",
                fmt_num(res.overall.mean),
                fmt_num(res.overall.half_width)
            ));
            fair_vals.push(simulated_computer_fairness(&res));
        }
        t_resp.push_row(resp_cells);
        t_fair.push_numeric_row(&format!("{:.0}", rho * 100.0), &fair_vals);
    }
    opts.emit("fig3_6_response", &t_resp);
    opts.emit("fig3_6_fairness", &t_fair);
}
