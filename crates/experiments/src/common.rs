//! Shared experiment plumbing.

use std::path::PathBuf;

use gtlb_sim::report::Table;
use gtlb_sim::runner::SimBudget;

/// Command-line options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Options {
    /// Shrink simulation budgets for smoke runs.
    pub quick: bool,
    /// Where to mirror every table as CSV (None = stdout only).
    pub csv_dir: Option<PathBuf>,
    /// Base PRNG seed for the simulated experiments.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self { quick: false, csv_dir: None, seed: 0x67_1B }
    }
}

impl Options {
    /// The simulation budget implied by the flags: the paper's protocol
    /// (5 replications, ~1–2 million jobs total) or a smoke-test budget.
    #[must_use]
    pub fn budget(&self) -> SimBudget {
        if self.quick {
            SimBudget { seed: self.seed, ..SimBudget::quick() }
        } else {
            SimBudget {
                seed: self.seed,
                replications: 5,
                warmup_jobs: 30_000,
                measured_jobs: 300_000,
            }
        }
    }

    /// Prints the table and mirrors it to CSV when requested.
    pub fn emit(&self, id: &str, table: &Table) {
        print!("{table}");
        if let Some(dir) = &self.csv_dir {
            let path = dir.join(format!("{id}.csv"));
            match table.write_csv(&path) {
                Ok(()) => println!("[csv written to {}]", path.display()),
                Err(e) => eprintln!("[csv write failed: {e}]"),
            }
        }
        println!();
    }
}
