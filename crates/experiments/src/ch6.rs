//! Chapter 6 experiments — the mechanism with verification (§6.4).

use gtlb_mechanism::verification::{
    table61_mechanism, table62_behaviors, Table62, VerifiedOutcome,
};
use gtlb_sim::report::{fmt_num, Table};

use crate::common::Options;

fn outcomes() -> Vec<(Table62, VerifiedOutcome)> {
    let mech = table61_mechanism();
    Table62::ALL
        .iter()
        .map(|&exp| (exp, mech.run(&table62_behaviors(&mech, exp)).expect("experiment runs")))
        .collect()
}

/// Table 6.1.
pub fn table6_1(opts: &Options) {
    let mech = table61_mechanism();
    let mut t = Table::new("Table 6.1 — true values", &["computers", "true value t"]);
    for (label, val) in [("C1 - C2", 1.0), ("C3 - C5", 2.0), ("C6 - C10", 5.0), ("C11 - C16", 10.0)]
    {
        t.push_row(vec![label.to_string(), fmt_num(val)]);
    }
    opts.emit("table6_1", &t);
    println!(
        "arrival rate Λ = {} jobs/s; optimal (True1) latency L* = {}",
        fmt_num(mech.arrival_rate),
        fmt_num(mech.honest_latency())
    );
}

/// Table 6.2.
pub fn table6_2(opts: &Options) {
    let mut t = Table::new(
        "Table 6.2 — types of experiments (C1's behavior; others truthful)",
        &["experiment", "t1", "b1", "t̂1", "characterization"],
    );
    for exp in Table62::ALL {
        let b = exp.behavior(1.0);
        let kind = match exp {
            Table62::True1 => "b = t, executes at full speed",
            Table62::True2 => "b = t, executes slower",
            Table62::High1 => "b > t, executes at the lie",
            Table62::High2 => "b > t, executes at full speed",
            Table62::High3 => "b > t, executes between",
            Table62::High4 => "b > t, executes even slower",
            Table62::Low1 => "b < t, executes at full speed",
            Table62::Low2 => "b < t, executes slower",
        };
        t.push_row(vec![
            exp.name().to_string(),
            "1".into(),
            fmt_num(b.bid),
            fmt_num(b.execution),
            kind.to_string(),
        ]);
    }
    opts.emit("table6_2", &t);
}

/// Figure 6.1: total latency for each experiment.
pub fn fig6_1(opts: &Options) {
    let mech = table61_mechanism();
    let base = mech.honest_latency();
    let mut t = Table::new(
        "Fig 6.1 — total latency for each experiment",
        &["experiment", "total latency", "vs True1 (%)"],
    );
    for (exp, out) in outcomes() {
        t.push_row(vec![
            exp.name().to_string(),
            fmt_num(out.total_latency),
            fmt_num(100.0 * (out.total_latency / base - 1.0)),
        ]);
    }
    opts.emit("fig6_1", &t);
}

/// Figure 6.2: payment and utility of computer C1 per experiment.
pub fn fig6_2(opts: &Options) {
    let mut t = Table::new(
        "Fig 6.2 — payment and utility for computer C1",
        &["experiment", "payment", "utility"],
    );
    for (exp, out) in outcomes() {
        t.push_row(vec![exp.name().to_string(), fmt_num(out.payment(0)), fmt_num(out.utility(0))]);
    }
    opts.emit("fig6_2", &t);
    println!("C1's utility peaks at True1; Low2's payment and utility are negative.");
}

fn per_computer(id: &str, exp: Table62, opts: &Options) {
    let mech = table61_mechanism();
    let out = mech.run(&table62_behaviors(&mech, exp)).unwrap();
    let mut t = Table::new(
        format!("{id} — payment and utility for each computer ({})", exp.name()),
        &["computer", "allocation x", "compensation", "bonus", "payment", "utility"],
    );
    for i in 0..mech.n() {
        t.push_row(vec![
            format!("C{}", i + 1),
            fmt_num(out.allocation[i]),
            fmt_num(out.compensations[i]),
            fmt_num(out.bonuses[i]),
            fmt_num(out.payment(i)),
            fmt_num(out.utility(i)),
        ]);
    }
    opts.emit(id, &t);
}

/// Figure 6.3: per-computer payments/utilities in True1.
pub fn fig6_3(opts: &Options) {
    per_computer("fig6_3", Table62::True1, opts);
}

/// Figure 6.4: per-computer payments/utilities in High1.
pub fn fig6_4(opts: &Options) {
    per_computer("fig6_4", Table62::High1, opts);
}

/// Figure 6.5: per-computer payments/utilities in Low1.
pub fn fig6_5(opts: &Options) {
    per_computer("fig6_5", Table62::Low1, opts);
}

/// Figure 6.6: payment structure — total payment vs total valuation
/// per experiment (frugality).
pub fn fig6_6(opts: &Options) {
    let mut t = Table::new(
        "Fig 6.6 — payment structure (frugality)",
        &["experiment", "total payment", "total valuation", "payment/valuation"],
    );
    for (exp, out) in outcomes() {
        let pay = out.total_payment();
        let val = out.total_valuation();
        t.push_row(vec![exp.name().to_string(), fmt_num(pay), fmt_num(val), fmt_num(pay / val)]);
    }
    opts.emit("fig6_6", &t);
    println!("(the paper reports payments at most ~2.5x the total valuation)");
}
