//! Chapter 4 experiments — the noncooperative Nash game (§4.4).

use gtlb_core::noncoop::{
    nash, GlobalOptimalScheme, IndividualOptimalScheme, MultiUserScheme, NashInit, NashOptions,
    NashScheme, ProportionalScheme,
};
use gtlb_sim::analytic::{per_user_times, sweep_multi_user};
use gtlb_sim::report::{fmt_num, Table};
use gtlb_sim::runner::{multi_user_spec, replicate_parallel, simulated_user_fairness, ArrivalLaw};
use gtlb_sim::scenario::{
    sized_cluster, skewed_cluster, table41, table41_system, user_shares, HYPEREXP_CV,
    UTILIZATION_GRID,
};

use crate::common::Options;

/// Table 4.1.
pub fn table4_1(opts: &Options) {
    let cluster = table41();
    let mut t = Table::new(
        "Table 4.1 — system configuration",
        &["relative rate", "count", "rate (jobs/s)"],
    );
    for (rel, count, rate) in [(10, 2, 100.0), (5, 3, 50.0), (2, 5, 20.0), (1, 6, 10.0)] {
        t.push_row(vec![rel.to_string(), count.to_string(), fmt_num(rate)]);
    }
    opts.emit("table4_1", &t);
    println!(
        "aggregate rate {} jobs/s; 10 users with shares {:?}",
        fmt_num(cluster.total_rate()),
        user_shares(10).iter().map(|q| (q * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
}

/// Figure 4.2: norm vs iteration for NASH_0 and NASH_P (16 computers,
/// 10 users, ρ = 60 %).
pub fn fig4_2(opts: &Options) {
    let system = table41_system(0.6, 10);
    let nash_opts = NashOptions { tolerance: 1e-6, max_rounds: 20_000 };
    let zero = nash::solve(&system, &NashInit::Zero, &nash_opts).expect("NASH_0 converges");
    let prop = nash::solve(&system, &NashInit::Proportional, &nash_opts).expect("NASH_P converges");
    let mut t = Table::new(
        "Fig 4.2 — norm vs number of iterations (per-round L1 profile change)",
        &["iteration", "NASH_0", "NASH_P"],
    );
    let m = system.m() as u32;
    let rounds = zero.norm_trace.len().max(prop.norm_trace.len());
    for r in 0..rounds {
        t.push_row(vec![
            ((r as u32 + 1) * m).to_string(),
            zero.norm_trace.get(r).map_or_else(|| "-".into(), |&v| format!("{v:.3e}")),
            prop.norm_trace.get(r).map_or_else(|| "-".into(), |&v| format!("{v:.3e}")),
        ]);
    }
    opts.emit("fig4_2", &t);
    println!(
        "NASH_0 took {} user updates; NASH_P took {} — {:.1}x fewer",
        zero.user_updates,
        prop.user_updates,
        f64::from(zero.user_updates) / f64::from(prop.user_updates)
    );
}

/// Figure 4.3: iterations to reach norm ≤ 1e-4 vs number of users
/// (4…32) for both initializations.
pub fn fig4_3(opts: &Options) {
    let nash_opts = NashOptions { tolerance: 1e-4, max_rounds: 50_000 };
    let mut t =
        Table::new("Fig 4.3 — user updates until norm <= 1e-4", &["users", "NASH_0", "NASH_P"]);
    for m in (4..=32).step_by(4) {
        let system = table41_system(0.6, m);
        let zero = nash::solve(&system, &NashInit::Zero, &nash_opts).expect("converges");
        let prop = nash::solve(&system, &NashInit::Proportional, &nash_opts).expect("converges");
        t.push_row(vec![
            m.to_string(),
            zero.user_updates.to_string(),
            prop.user_updates.to_string(),
        ]);
    }
    opts.emit("fig4_3", &t);
}

fn multi_schemes() -> (NashScheme, GlobalOptimalScheme, IndividualOptimalScheme, ProportionalScheme)
{
    (NashScheme::default(), GlobalOptimalScheme, IndividualOptimalScheme::new(), ProportionalScheme)
}

fn multi_sweep_tables(
    id: &str,
    title: &str,
    clusters: &[(String, gtlb_core::model::Cluster)],
    rho: f64,
    opts: &Options,
) {
    let (nash_s, gos, ios, ps) = multi_schemes();
    let refs: [&dyn MultiUserScheme; 4] = [&nash_s, &gos, &ios, &ps];
    let mut t_resp =
        Table::new(format!("{title} — response time (s)"), &["x", "NASH", "GOS", "IOS", "PS"]);
    let mut t_fair =
        Table::new(format!("{title} — fairness index I"), &["x", "NASH", "GOS", "IOS", "PS"]);
    for (label, cluster) in clusters {
        let pts = sweep_multi_user(cluster, &user_shares(10), &refs, &[rho]).unwrap();
        let names = ["NASH", "GOS", "IOS", "PS"];
        t_resp.push_numeric_row(
            label,
            &names.map(|n| pts.iter().find(|p| p.scheme == n).unwrap().response_time),
        );
        t_fair.push_numeric_row(
            label,
            &names.map(|n| pts.iter().find(|p| p.scheme == n).unwrap().fairness),
        );
    }
    opts.emit(&format!("{id}_response"), &t_resp);
    opts.emit(&format!("{id}_fairness"), &t_fair);
}

/// Figure 4.4: response time + fairness vs utilization.
pub fn fig4_4(opts: &Options) {
    let (nash_s, gos, ios, ps) = multi_schemes();
    let refs: [&dyn MultiUserScheme; 4] = [&nash_s, &gos, &ios, &ps];
    let cluster = table41();
    let pts = sweep_multi_user(&cluster, &user_shares(10), &refs, &UTILIZATION_GRID).unwrap();
    let mut t_resp = Table::new(
        "Fig 4.4 — response time vs utilization",
        &["rho(%)", "NASH", "GOS", "IOS", "PS"],
    );
    let mut t_fair =
        Table::new("Fig 4.4 — fairness vs utilization", &["rho(%)", "NASH", "GOS", "IOS", "PS"]);
    for &rho in &UTILIZATION_GRID {
        let names = ["NASH", "GOS", "IOS", "PS"];
        let grab = |n: &str| {
            pts.iter().find(|p| p.scheme == n && (p.utilization - rho).abs() < 1e-12).unwrap()
        };
        t_resp.push_numeric_row(
            &format!("{:.0}", rho * 100.0),
            &names.map(|n| grab(n).response_time),
        );
        t_fair.push_numeric_row(&format!("{:.0}", rho * 100.0), &names.map(|n| grab(n).fairness));
    }
    opts.emit("fig4_4_response", &t_resp);
    opts.emit("fig4_4_fairness", &t_fair);
}

/// Figure 4.5: per-user expected response times at ρ = 60 %.
pub fn fig4_5(opts: &Options) {
    let system = table41_system(0.6, 10);
    let (nash_s, gos, ios, ps) = multi_schemes();
    let nash_t = per_user_times(&system, &nash_s).unwrap();
    let gos_t = per_user_times(&system, &gos).unwrap();
    let ios_t = per_user_times(&system, &ios).unwrap();
    let ps_t = per_user_times(&system, &ps).unwrap();
    let mut t = Table::new(
        "Fig 4.5 — expected response time for each user (rho = 60%)",
        &["user", "share", "NASH", "GOS", "IOS", "PS"],
    );
    for j in 0..system.m() {
        t.push_row(vec![
            format!("U{}", j + 1),
            fmt_num(user_shares(10)[j]),
            fmt_num(nash_t[j]),
            fmt_num(gos_t[j]),
            fmt_num(ios_t[j]),
            fmt_num(ps_t[j]),
        ]);
    }
    opts.emit("fig4_5", &t);
}

/// Figure 4.6: heterogeneity sweep (2 fast + 14 slow, skew 1…20,
/// ρ = 60 %).
pub fn fig4_6(opts: &Options) {
    let clusters: Vec<(String, _)> = [1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0]
        .iter()
        .map(|&s| (fmt_num(s), skewed_cluster(s, 10.0)))
        .collect();
    multi_sweep_tables("fig4_6", "Fig 4.6 (skew sweep, rho=60%)", &clusters, 0.6, opts);
}

/// Figure 4.7: system-size sweep (2 fast ×10 + up to 18 slow, ρ = 60 %).
pub fn fig4_7(opts: &Options) {
    let clusters: Vec<(String, _)> =
        (2..=20).step_by(2).map(|n| (n.to_string(), sized_cluster(n, 10.0))).collect();
    multi_sweep_tables("fig4_7", "Fig 4.7 (size sweep, rho=60%)", &clusters, 0.6, opts);
}

/// Figure 4.8: hyper-exponential arrivals (CV = 1.6), simulated.
pub fn fig4_8(opts: &Options) {
    let budget = opts.budget();
    let (nash_s, gos, ios, ps) = multi_schemes();
    let refs: [(&str, &dyn MultiUserScheme); 4] =
        [("NASH", &nash_s), ("GOS", &gos), ("IOS", &ios), ("PS", &ps)];
    let mut t_resp = Table::new(
        "Fig 4.8 — simulated response time, H2 arrivals CV=1.6 (mean ± 95% hw)",
        &["rho(%)", "NASH", "GOS", "IOS", "PS"],
    );
    let mut t_fair = Table::new(
        "Fig 4.8 — simulated user fairness, H2 arrivals CV=1.6",
        &["rho(%)", "NASH", "GOS", "IOS", "PS"],
    );
    let grid: &[f64] = if opts.quick { &[0.3, 0.6, 0.9] } else { &UTILIZATION_GRID };
    for &rho in grid {
        let system = table41_system(rho, 10);
        let mut resp_cells = vec![format!("{:.0}", rho * 100.0)];
        let mut fair_vals = Vec::new();
        for (_, s) in refs {
            let profile = s.profile(&system).unwrap();
            let spec = multi_user_spec(&system, &profile, ArrivalLaw::HyperExp { cv: HYPEREXP_CV });
            let res = replicate_parallel(&spec, &budget);
            resp_cells.push(format!(
                "{}±{}",
                fmt_num(res.overall.mean),
                fmt_num(res.overall.half_width)
            ));
            fair_vals.push(simulated_user_fairness(&res));
        }
        t_resp.push_row(resp_cells);
        t_fair.push_numeric_row(&format!("{:.0}", rho * 100.0), &fair_vals);
    }
    opts.emit("fig4_8_response", &t_resp);
    opts.emit("fig4_8_fairness", &t_fair);
}
