//! Future-work experiments: drifting load (repeated-game operation) and
//! fault-aware mechanisms.

use gtlb_core::noncoop::{nash, NashInit, NashOptions};
use gtlb_mechanism::fault::FaultAwareMechanism;
use gtlb_sim::report::{fmt_num, Table};
use gtlb_sim::scenario::{table31, table41_system};

use crate::common::Options;

/// `ext_drift`: operating the NASH scheme over a slowly drifting load.
///
/// The paper's protocol "is restarted periodically or when the system
/// parameters are changed"; this experiment quantifies the restart cost
/// over a diurnal-style utilization trace (40 % → 85 % → 40 %), comparing
/// a cold proportional restart at every step against a warm start from
/// the previous step's equilibrium.
pub fn drift(opts: &Options) {
    // Diurnal-style trace in 3%-utilization steps; equilibrium tracked to
    // the paper's practical tolerance (1e-4).
    let up: Vec<f64> = (0..=15).map(|k| 0.40 + 0.03 * f64::from(k)).collect();
    let down: Vec<f64> = up.iter().rev().skip(1).copied().collect();
    let trace: Vec<f64> = up.into_iter().chain(down).collect();
    let nash_opts = NashOptions { tolerance: 1e-4, max_rounds: 100_000 };
    let mut t = Table::new(
        "NASH over a drifting load trace (Table 4.1 cluster, 10 users)",
        &["step", "rho(%)", "cold updates", "warm updates", "warm/cold", "T at equilibrium"],
    );
    let mut warm_profile = None;
    let mut cold_total = 0u64;
    let mut warm_total = 0u64;
    for (k, &rho) in trace.iter().enumerate() {
        let system = table41_system(rho, 10);
        let cold = nash::solve(&system, &NashInit::Proportional, &nash_opts).expect("converges");
        let warm = match warm_profile.take() {
            Some(p) => nash::solve(&system, &NashInit::Warm(p), &nash_opts).expect("converges"),
            None => nash::solve(&system, &NashInit::Proportional, &nash_opts).expect("converges"),
        };
        cold_total += u64::from(cold.user_updates);
        warm_total += u64::from(warm.user_updates);
        t.push_row(vec![
            k.to_string(),
            format!("{:.0}", rho * 100.0),
            cold.user_updates.to_string(),
            warm.user_updates.to_string(),
            fmt_num(f64::from(warm.user_updates) / f64::from(cold.user_updates)),
            fmt_num(warm.profile.overall_response_time(&system)),
        ]);
        warm_profile = Some(warm.profile);
    }
    opts.emit("ext_drift", &t);
    println!(
        "trace totals: cold {} updates, warm {} ({}x cheaper) — warm-starting the best-reply",
        cold_total,
        warm_total,
        fmt_num(cold_total as f64 / warm_total as f64)
    );
    println!("dynamics is how the distributed algorithm should track slow load drift.");
}

/// `ext_fault`: the cost of ignoring failures. One computer of each speed
/// tier fails a fraction `p` of its jobs; we compare the fault-blind
/// allocation (raw rates) against the fault-aware one (effective rates),
/// both executed on the real, failing system.
pub fn fault(opts: &Options) {
    let cluster = table31();
    let bids: Vec<f64> = cluster.rates().iter().map(|&r| 1.0 / r).collect();
    let mut t = Table::new(
        "Fault-aware vs fault-blind allocation (Table 3.1, flaky fast computer)",
        &["rho(%)", "p(C1)", "T blind", "T aware", "degradation (%)"],
    );
    for &rho in &[0.3, 0.5, 0.7, 0.8] {
        for &p in &[0.1, 0.3, 0.5] {
            let phi = cluster.arrival_rate_for_utilization(rho);
            let mut probs = vec![0.0; cluster.n()];
            probs[0] = p; // the fastest computer is flaky
                          // Capacity check: effective capacity must still exceed phi.
            let eff_cap: f64 =
                cluster.rates().iter().zip(&probs).map(|(&m, &q)| m * (1.0 - q)).sum();
            if eff_cap <= phi {
                continue;
            }
            let mech = FaultAwareMechanism::new(phi, probs).expect("valid probabilities");
            let (blind, aware) = mech.blind_vs_aware(&bids).expect("allocations computable");
            t.push_row(vec![
                format!("{:.0}", rho * 100.0),
                fmt_num(p),
                fmt_num(blind),
                fmt_num(aware),
                fmt_num(100.0 * (blind - aware) / aware),
            ]);
        }
    }
    opts.emit("ext_fault", &t);
    println!("blind allocation oversubscribes the flaky computer (its retries eat capacity);");
    println!("with the effective-rate transform the one-parameter mechanism stays truthful.");
}

/// `ext_estimation`: solving the game on *estimated* rates.
///
/// §4.2, Remark 2: "The available processing rate can be determined by
/// statistical estimation of the run queue length of each processor."
/// We observe the Table 4.1 cluster under proportional routing for a
/// measurement window, estimate the service rates by renewal-reward
/// (`μ̂ = throughput / utilization`), solve the NASH equilibrium on the
/// estimated cluster, and evaluate the resulting strategy profile on the
/// *true* system.
pub fn estimation(opts: &Options) {
    use gtlb_core::model::Cluster;
    use gtlb_core::noncoop::{MultiUserScheme, NashScheme, StrategyProfile, UserSystem};
    use gtlb_core::schemes::{Prop, SingleClassScheme};
    use gtlb_desim::farm::{run, RunConfig};
    use gtlb_sim::estimate::RateEstimate;
    use gtlb_sim::runner::{single_class_spec, ArrivalLaw};
    use gtlb_sim::scenario::{table41, user_shares};

    let cluster = table41();
    let rho = 0.6;
    let phi = cluster.arrival_rate_for_utilization(rho);
    let truth =
        UserSystem::with_shares(cluster.clone(), phi, &user_shares(10)).expect("feasible system");
    let exact = NashScheme::default().profile(&truth).expect("exact equilibrium");
    let t_exact = exact.overall_response_time(&truth);

    let mut t = Table::new(
        "NASH on estimated rates (Table 4.1, rho = 60%)",
        &["observed jobs", "max rate error (%)", "T on true system", "excess vs exact (%)"],
    );
    let windows: &[u64] =
        if opts.quick { &[2_000, 20_000] } else { &[1_000, 5_000, 20_000, 100_000, 400_000] };
    for (k, &jobs) in windows.iter().enumerate() {
        // Observation phase: proportional routing keeps every computer
        // observable.
        let loads = Prop.allocate(&cluster, phi).expect("PROP feasible");
        let spec = single_class_spec(&cluster, loads.loads(), phi, ArrivalLaw::Poisson);
        let res = run(
            &spec,
            &RunConfig { seed: opts.seed ^ (k as u64), warmup_jobs: 1_000, measured_jobs: jobs },
        );
        let est = RateEstimate::from_run(&res);
        let err = est.max_relative_error(cluster.rates());
        // Decision phase: equilibrium on the estimated cluster. Feasibility
        // guard: estimated capacity can fall below phi on tiny windows.
        let est_cluster: Cluster = match est.to_cluster(cluster.rates()) {
            Ok(c) if c.total_rate() > phi * 1.01 => c,
            _ => {
                t.push_row(vec![
                    jobs.to_string(),
                    fmt_num(err * 100.0),
                    "estimated capacity < Φ".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        let est_system = UserSystem::with_shares(est_cluster, phi, &user_shares(10))
            .expect("estimated system feasible");
        let profile: StrategyProfile = match NashScheme::default().profile(&est_system) {
            Ok(p) => p,
            Err(e) => {
                t.push_row(vec![
                    jobs.to_string(),
                    fmt_num(err * 100.0),
                    format!("solver failed: {e}"),
                    "-".into(),
                ]);
                continue;
            }
        };
        // Evaluation phase: the profile executed on the TRUE rates; an
        // estimation-induced overload shows up as +inf.
        let t_true = profile.overall_response_time(&truth);
        t.push_row(vec![
            jobs.to_string(),
            fmt_num(err * 100.0),
            fmt_num(t_true),
            fmt_num(100.0 * (t_true - t_exact) / t_exact),
        ]);
    }
    opts.emit("ext_estimation", &t);
    println!(
        "exact-knowledge equilibrium: T = {} s; estimation error decays as 1/sqrt(window)",
        fmt_num(t_exact)
    );
    println!("(a perturbed profile can dip *below* the exact equilibrium's overall time —");
    println!(" the Nash point is user-optimal, not socially optimal, so this is expected)");
}

/// `ext_network`: load exchange over a shared M/M/1 channel — the
/// Tantawi–Towsley model of the survey (§2.2.1, I.A). Sweeping the
/// channel capacity interpolates between the paper's free-dispatcher
/// world (OPTIM) and no balancing at all.
pub fn network(opts: &Options) {
    use gtlb_core::network::NetworkedSystem;
    use gtlb_core::schemes::{Optim, SingleClassScheme};

    let cluster = table31();
    // Skewed local arrivals: the slow half of the cluster receives 70% of
    // the jobs (the interesting exchange regime).
    let phi = cluster.arrival_rate_for_utilization(0.6);
    let order = cluster.order_by_rate_desc();
    let mut arrivals = vec![0.0; cluster.n()];
    let slow_share = 0.7 * phi / 11.0; // 11 slow computers (rates 0.026/0.013)
    let fast_share = 0.3 * phi / 5.0; // 5 fast computers (0.13/0.065)
    for (slot, &i) in order.iter().enumerate() {
        arrivals[i] = if slot < 5 { fast_share } else { slow_share };
    }
    let optim = Optim.allocate(&cluster, phi).unwrap();
    let t_optim = optim.total_delay(&cluster);
    let no_exchange_sys = NetworkedSystem::new(cluster.clone(), arrivals.clone(), 1.0).unwrap();
    let t_none = no_exchange_sys.delay(&arrivals, 0.0);

    let mut t = Table::new(
        "Load exchange over a shared channel (Table 3.1, rho = 60%)",
        &[
            "channel capacity (jobs/s)",
            "traffic",
            "channel delay (s)",
            "total delay D",
            "vs free-channel OPTIM (%)",
        ],
    );
    for cap in [1e6, 1.0, 0.3, 0.15, 0.1, 0.05, 0.02] {
        let sys = NetworkedSystem::new(cluster.clone(), arrivals.clone(), cap).unwrap();
        match sys.optimize() {
            Ok(plan) => t.push_row(vec![
                fmt_num(cap),
                fmt_num(plan.traffic),
                fmt_num(plan.channel_delay),
                fmt_num(plan.total_delay),
                fmt_num(100.0 * (plan.total_delay - t_optim) / t_optim),
            ]),
            Err(e) => {
                t.push_row(vec![fmt_num(cap), "-".into(), "-".into(), format!("{e}"), "-".into()])
            }
        }
    }
    opts.emit("ext_network", &t);
    println!(
        "bounds: free-channel OPTIM D = {}, no exchange D = {} — the channel capacity",
        fmt_num(t_optim),
        fmt_num(t_none)
    );
    println!("sweep traces the whole trade-off between them.");
}

/// `ext_poa`: the coordination ratio (price of anarchy) of the Chapter 4
/// game — `T(NASH)/T(GOS)` across load and user count. The survey cites
/// Koutsoupias–Papadimitriou's coordination ratio and Roughgarden–Tardos'
/// 4/3 bound for linear-cost routing; M/M/1 costs are not linear, but
/// the measured ratio stays far below even that bound on this system.
pub fn poa(opts: &Options) {
    use gtlb_core::noncoop::{GlobalOptimalScheme, MultiUserScheme, NashScheme};

    let mut t =
        Table::new("Price of anarchy: T(NASH) / T(GOS)", &["rho(%)", "m=2", "m=5", "m=10", "m=20"]);
    for &rho in &[0.2, 0.4, 0.6, 0.8, 0.9] {
        let mut vals = Vec::new();
        for m in [2usize, 5, 10, 20] {
            let system = table41_system(rho, m);
            let nash_t = NashScheme::default()
                .profile(&system)
                .expect("NASH converges")
                .overall_response_time(&system);
            let gos_t = GlobalOptimalScheme
                .profile(&system)
                .expect("GOS computable")
                .overall_response_time(&system);
            vals.push(nash_t / gos_t);
        }
        t.push_numeric_row(&format!("{:.0}", rho * 100.0), &vals);
    }
    opts.emit("ext_poa", &t);
    println!("the user-optimal equilibrium never costs more than a few percent of the");
    println!("social optimum on this system — the efficiency argument for NASH's");
    println!("decentralization (cf. the 4/3 worst case for linear-cost routing).");
}
