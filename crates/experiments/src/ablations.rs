//! Ablations on the design choices DESIGN.md calls out.

use gtlb_core::model::Cluster;
use gtlb_core::noncoop::{nash, NashInit, NashOptions};
use gtlb_core::schemes::{Coop, Optim, SingleClassScheme, Wardrop};
use gtlb_core::Allocation;
use gtlb_numerics::sum::l1_distance;
use gtlb_sim::report::{fmt_num, Table};
use gtlb_sim::scenario::{table31, table41_system, UTILIZATION_GRID};

use crate::common::Options;

/// The naive closed forms *without* the drop-slowest loop: apply
/// Theorem 3.6 / the square-root rule to all `n` computers and clamp
/// negative loads to zero (destroying the conservation law). Quantifies
/// why the algorithms need their while-loops.
fn naive_coop(cluster: &Cluster, phi: f64) -> Allocation {
    let n = cluster.n() as f64;
    let alpha = (cluster.total_rate() - phi) / n;
    Allocation::new(cluster.rates().iter().map(|&mu| (mu - alpha).max(0.0)).collect())
}

fn naive_optim(cluster: &Cluster, phi: f64) -> Allocation {
    let sum_sqrt: f64 = cluster.rates().iter().map(|&m| m.sqrt()).sum();
    let c = (cluster.total_rate() - phi) / sum_sqrt;
    Allocation::new(cluster.rates().iter().map(|&mu| (mu - c * mu.sqrt()).max(0.0)).collect())
}

/// Ablation: the drop-slowest loop of COOP/OPTIM vs naive clamping.
pub fn drop_rule(opts: &Options) {
    let cluster = table31();
    let mut t = Table::new(
        "Ablation — drop-slowest loop vs naive clamping (Table 3.1 cluster)",
        &[
            "rho(%)",
            "COOP dropped",
            "naive-COOP excess load (%)",
            "OPTIM dropped",
            "naive-OPTIM excess load (%)",
        ],
    );
    for &rho in &UTILIZATION_GRID {
        let phi = cluster.arrival_rate_for_utilization(rho);
        let coop = Coop.allocate(&cluster, phi).unwrap();
        let optim = Optim.allocate(&cluster, phi).unwrap();
        let nc = naive_coop(&cluster, phi);
        let no = naive_optim(&cluster, phi);
        // Clamping throws away the negative mass, so the naive totals
        // exceed Φ by the clamped amount — jobs materialize from nowhere.
        let coop_excess = 100.0 * (nc.total() - phi) / phi;
        let optim_excess = 100.0 * (no.total() - phi) / phi;
        let dropped = |a: &Allocation| a.loads().iter().filter(|&&l| l == 0.0).count();
        t.push_row(vec![
            format!("{:.0}", rho * 100.0),
            dropped(&coop).to_string(),
            fmt_num(coop_excess),
            dropped(&optim).to_string(),
            fmt_num(optim_excess),
        ]);
    }
    opts.emit("ablate_drop_rule", &t);
    println!("nonzero excess = the naive formula violates conservation; the loop is load-bearing");
}

/// Ablation: NASH initialization (zero vs proportional vs warm start
/// from the previous utilization's equilibrium).
pub fn nash_init(opts: &Options) {
    let mut t = Table::new(
        "Ablation — NASH initialization (user updates to norm <= 1e-6, 10 users)",
        &["rho(%)", "NASH_0", "NASH_P", "warm start from previous rho"],
    );
    let nash_opts = NashOptions { tolerance: 1e-6, max_rounds: 50_000 };
    let mut warm_profile = None;
    for &rho in &UTILIZATION_GRID {
        let system = table41_system(rho, 10);
        let zero = nash::solve(&system, &NashInit::Zero, &nash_opts).unwrap();
        let prop = nash::solve(&system, &NashInit::Proportional, &nash_opts).unwrap();
        let warm = match warm_profile.take() {
            Some(p) => nash::solve(&system, &NashInit::Warm(p), &nash_opts).unwrap(),
            None => nash::solve(&system, &NashInit::Proportional, &nash_opts).unwrap(),
        };
        warm_profile = Some(warm.profile.clone());
        t.push_row(vec![
            format!("{:.0}", rho * 100.0),
            zero.user_updates.to_string(),
            prop.user_updates.to_string(),
            warm.user_updates.to_string(),
        ]);
    }
    opts.emit("ablate_nash_init", &t);
}

/// Ablation: WARDROP solver tolerance vs allocation error vs iteration
/// count — the ε of the paper's complexity claim.
pub fn wardrop_tol(opts: &Options) {
    let cluster = table31();
    let phi = cluster.arrival_rate_for_utilization(0.6);
    let exact = Coop.allocate(&cluster, phi).unwrap(); // NBS == Wardrop here
    let mut t = Table::new(
        "Ablation — WARDROP tolerance (Table 3.1 cluster, rho = 60%)",
        &["epsilon", "iterations", "level residual |Σλ(t)−Φ|", "L1 error after repair"],
    );
    for eps in [1e-2, 1e-3, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12] {
        let rep = Wardrop::with_tolerance(eps).solve(&cluster, phi).unwrap();
        // Raw conservation residual at the accepted level, before the
        // solver's exactness repair redistributes it.
        let raw: f64 =
            cluster.rates().iter().map(|&mu| (mu - 1.0 / rep.level).max(0.0)).sum::<f64>() - phi;
        let err = l1_distance(rep.allocation.loads(), exact.loads());
        t.push_row(vec![
            format!("{eps:.0e}"),
            rep.iterations.to_string(),
            format!("{:.3e}", raw.abs()),
            format!("{err:.3e}"),
        ]);
    }
    opts.emit("ablate_wardrop_tol", &t);
    println!("iterations grow as log(1/eps); the exactness repair then zeroes the residual");
}
