//! Closed-form M/M/1 performance measures.
//!
//! The paper's entire analytic apparatus rests on one formula: the
//! expected response time (sojourn time) of an M/M/1 queue with arrival
//! rate `λ` and service rate `μ` is `T = 1/(μ − λ)` (eq. 3.5 / 4.1 / 5.1).
//! This module packages that formula together with the rest of the M/M/1
//! stationary measures, with explicit stability handling, so both the
//! analytic evaluator and the simulator validation tests share one source
//! of truth.

/// A stable single-server Markovian queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    arrival_rate: f64,
    service_rate: f64,
}

/// Error returned when constructing an unstable or degenerate queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// `λ ≥ μ`: the queue has no stationary distribution.
    Unstable,
    /// A rate was nonpositive or non-finite.
    BadRate,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unstable => write!(f, "M/M/1 is unstable: arrival rate >= service rate"),
            Self::BadRate => write!(f, "M/M/1 rates must be positive and finite"),
        }
    }
}

impl std::error::Error for QueueError {}

impl Mm1 {
    /// Creates a stable M/M/1 queue.
    ///
    /// # Errors
    /// [`QueueError::BadRate`] for nonpositive/non-finite rates,
    /// [`QueueError::Unstable`] when `λ ≥ μ`.
    pub fn new(arrival_rate: f64, service_rate: f64) -> Result<Self, QueueError> {
        if !(arrival_rate.is_finite() && service_rate.is_finite())
            || arrival_rate < 0.0
            || service_rate <= 0.0
        {
            return Err(QueueError::BadRate);
        }
        if arrival_rate >= service_rate {
            return Err(QueueError::Unstable);
        }
        Ok(Self { arrival_rate, service_rate })
    }

    /// Arrival rate `λ`.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Service rate `μ`.
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// Utilization `ρ = λ/μ ∈ [0, 1)`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// Expected response (sojourn) time `T = 1/(μ − λ)` — the quantity the
    /// paper's objective functions are built from.
    ///
    /// ```
    /// use gtlb_queueing::Mm1;
    /// let q = Mm1::new(1.0, 3.0).unwrap();
    /// assert_eq!(q.mean_response_time(), 0.5);
    /// ```
    #[must_use]
    pub fn mean_response_time(&self) -> f64 {
        1.0 / (self.service_rate - self.arrival_rate)
    }

    /// Expected waiting time in queue, `W = ρ/(μ − λ)`.
    #[must_use]
    pub fn mean_waiting_time(&self) -> f64 {
        self.utilization() / (self.service_rate - self.arrival_rate)
    }

    /// Expected number of jobs in the system, `L = ρ/(1 − ρ)`
    /// (Little's law: `L = λ T`).
    #[must_use]
    pub fn mean_number_in_system(&self) -> f64 {
        let rho = self.utilization();
        rho / (1.0 - rho)
    }

    /// Expected number of jobs waiting in queue, `Lq = ρ²/(1 − ρ)`.
    #[must_use]
    pub fn mean_number_in_queue(&self) -> f64 {
        let rho = self.utilization();
        rho * rho / (1.0 - rho)
    }

    /// Stationary probability of exactly `n` jobs in the system,
    /// `P(N = n) = (1 − ρ) ρⁿ`.
    #[must_use]
    pub fn prob_n_in_system(&self, n: u32) -> f64 {
        let rho = self.utilization();
        (1.0 - rho) * rho.powi(n as i32)
    }

    /// The response-time distribution is exponential with rate `μ − λ`;
    /// returns its `q`-quantile.
    #[must_use]
    pub fn response_time_quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile must lie in [0,1)");
        -(-q).ln_1p() / (self.service_rate - self.arrival_rate)
    }
}

/// Expected response time `1/(μ − λ)` treating instability as `+∞`, for
/// evaluating allocations that a *lying* agent made infeasible (the
/// Chapter 5 performance-degradation experiments need this to detect
/// overload rather than panic).
#[must_use]
pub fn response_time_or_inf(arrival_rate: f64, service_rate: f64) -> f64 {
    if arrival_rate < service_rate {
        1.0 / (service_rate - arrival_rate)
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_guards() {
        assert_eq!(Mm1::new(2.0, 1.0).unwrap_err(), QueueError::Unstable);
        assert_eq!(Mm1::new(1.0, 1.0).unwrap_err(), QueueError::Unstable);
        assert_eq!(Mm1::new(-1.0, 1.0).unwrap_err(), QueueError::BadRate);
        assert_eq!(Mm1::new(0.5, 0.0).unwrap_err(), QueueError::BadRate);
        assert_eq!(Mm1::new(f64::NAN, 1.0).unwrap_err(), QueueError::BadRate);
        assert!(Mm1::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn textbook_example() {
        // λ = 3, μ = 4: ρ = 0.75, T = 1, W = 0.75, L = 3, Lq = 2.25.
        let q = Mm1::new(3.0, 4.0).unwrap();
        assert!((q.utilization() - 0.75).abs() < 1e-12);
        assert!((q.mean_response_time() - 1.0).abs() < 1e-12);
        assert!((q.mean_waiting_time() - 0.75).abs() < 1e-12);
        assert!((q.mean_number_in_system() - 3.0).abs() < 1e-12);
        assert!((q.mean_number_in_queue() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn littles_law_holds() {
        let q = Mm1::new(0.31, 0.9).unwrap();
        assert!(
            (q.mean_number_in_system() - q.arrival_rate() * q.mean_response_time()).abs() < 1e-12
        );
    }

    #[test]
    fn state_probabilities_sum_to_one() {
        let q = Mm1::new(0.6, 1.0).unwrap();
        let total: f64 = (0..200).map(|n| q.prob_n_in_system(n)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn response_quantile_median_below_mean() {
        let q = Mm1::new(1.0, 2.0).unwrap();
        // Exponential: median = ln 2 * mean < mean.
        assert!(q.response_time_quantile(0.5) < q.mean_response_time());
    }

    #[test]
    fn overload_reports_infinity() {
        assert_eq!(response_time_or_inf(2.0, 1.0), f64::INFINITY);
        assert_eq!(response_time_or_inf(1.0, 1.0), f64::INFINITY);
        assert_eq!(response_time_or_inf(1.0, 2.0), 1.0);
    }
}
