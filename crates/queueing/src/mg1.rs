//! M/G/1 Pollaczek–Khinchine formulas.
//!
//! The dissertation's background chapter models communication channels as
//! M/G/1 queues; in this reproduction the formulas serve as an independent
//! oracle for validating the discrete-event simulator under
//! non-exponential *service* laws (the figures themselves vary the
//! *arrival* law, for which no simple closed form exists — that is exactly
//! why the paper simulates).

use crate::dist::Draw;

/// M/G/1 queue: Poisson arrivals at rate `λ`, i.i.d. service times from an
/// arbitrary law with known first two moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mg1 {
    arrival_rate: f64,
    service_mean: f64,
    service_second_moment: f64,
}

impl Mg1 {
    /// Builds the queue from the service law's moments.
    ///
    /// # Panics
    /// If the queue is unstable (`λ·E[S] ≥ 1`) or parameters are
    /// nonpositive.
    #[must_use]
    pub fn new<D: Draw>(arrival_rate: f64, service: &D) -> Self {
        Self::from_moments(arrival_rate, service.mean(), service.second_moment())
    }

    /// Builds the queue directly from moments.
    ///
    /// # Panics
    /// See [`Mg1::new`].
    #[must_use]
    pub fn from_moments(arrival_rate: f64, service_mean: f64, service_second_moment: f64) -> Self {
        assert!(arrival_rate > 0.0, "Mg1: arrival rate must be positive");
        assert!(service_mean > 0.0, "Mg1: service mean must be positive");
        assert!(
            service_second_moment >= service_mean * service_mean,
            "Mg1: E[S^2] must be at least E[S]^2"
        );
        let rho = arrival_rate * service_mean;
        assert!(rho < 1.0, "Mg1: unstable (rho = {rho})");
        Self { arrival_rate, service_mean, service_second_moment }
    }

    /// Utilization `ρ = λ·E[S]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.arrival_rate * self.service_mean
    }

    /// Expected waiting time in queue (Pollaczek–Khinchine):
    /// `W = λ E[S²] / (2 (1 − ρ))`.
    #[must_use]
    pub fn mean_waiting_time(&self) -> f64 {
        self.arrival_rate * self.service_second_moment / (2.0 * (1.0 - self.utilization()))
    }

    /// Expected response time `T = W + E[S]`.
    #[must_use]
    pub fn mean_response_time(&self) -> f64 {
        self.mean_waiting_time() + self.service_mean
    }

    /// Expected number in system via Little's law.
    #[must_use]
    pub fn mean_number_in_system(&self) -> f64 {
        self.arrival_rate * self.mean_response_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Deterministic, Exponential, HyperExp2};
    use crate::mm1::Mm1;

    #[test]
    fn reduces_to_mm1_for_exponential_service() {
        let lambda = 0.7;
        let mu = 1.3;
        let mg1 = Mg1::new(lambda, &Exponential::new(mu));
        let mm1 = Mm1::new(lambda, mu).unwrap();
        assert!((mg1.mean_response_time() - mm1.mean_response_time()).abs() < 1e-12);
        assert!((mg1.mean_waiting_time() - mm1.mean_waiting_time()).abs() < 1e-12);
    }

    #[test]
    fn md1_halves_the_waiting_time() {
        // M/D/1 waits exactly half as long as M/M/1 at equal rates.
        let lambda = 0.5;
        let mean_service = 1.0;
        let md1 = Mg1::new(lambda, &Deterministic::new(mean_service));
        let mm1 = Mm1::new(lambda, 1.0 / mean_service).unwrap();
        assert!((md1.mean_waiting_time() - 0.5 * mm1.mean_waiting_time()).abs() < 1e-12);
    }

    #[test]
    fn hyperexp_service_waits_longer_than_mm1() {
        let lambda = 0.5;
        let h2 = HyperExp2::fit_balanced(1.0, 1.6);
        let mh1 = Mg1::new(lambda, &h2);
        let mm1 = Mm1::new(lambda, 1.0).unwrap();
        assert!(mh1.mean_waiting_time() > mm1.mean_waiting_time());
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_rejected() {
        let _ = Mg1::new(1.1, &Deterministic::new(1.0));
    }

    #[test]
    fn littles_law() {
        let q = Mg1::new(0.4, &Exponential::new(1.0));
        assert!((q.mean_number_in_system() - 0.4 * q.mean_response_time()).abs() < 1e-12);
    }
}
