//! Heavy-tailed service-time laws.
//!
//! The paper's world is exponential, but any load balancer shipped today
//! meets heavy-tailed work (flow sizes, request service times). These two
//! laws — lognormal and bounded Pareto — have closed-form moments, so the
//! M/G/1 Pollaczek–Khinchine oracle still applies and the simulator can
//! be validated far outside the exponential assumption (see the
//! `simulation_validation` integration tests).

use crate::dist::{Draw, UniformSource};

/// Lognormal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lognormal {
    mu: f64,
    sigma: f64,
}

impl Lognormal {
    /// Lognormal from the underlying normal's location `mu` and scale
    /// `sigma > 0`.
    ///
    /// # Panics
    /// If `sigma` is not strictly positive and finite.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma > 0.0, "Lognormal: sigma must be positive");
        assert!(mu.is_finite(), "Lognormal: mu must be finite");
        Self { mu, sigma }
    }

    /// Fits a lognormal with the given `mean` and coefficient of
    /// variation `cv > 0`:
    /// `sigma² = ln(1 + cv²)`, `mu = ln(mean) − sigma²/2`.
    ///
    /// # Panics
    /// If `mean ≤ 0` or `cv ≤ 0`.
    #[must_use]
    pub fn fit(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0, "Lognormal::fit: mean must be positive");
        assert!(cv > 0.0, "Lognormal::fit: cv must be positive");
        let sigma2 = (1.0 + cv * cv).ln();
        Self::new(mean.ln() - 0.5 * sigma2, sigma2.sqrt())
    }
}

impl Draw for Lognormal {
    fn sample<U: UniformSource + ?Sized>(&self, u: &mut U) -> f64 {
        // Box–Muller: one standard normal from two uniforms.
        let u1 = u.next_f64();
        let u2 = u.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        ((s2).exp_m1()) * (2.0 * self.mu + s2).exp()
    }
}

/// Bounded Pareto on `[lo, hi]` with shape `alpha > 0` — the classical
/// heavy-tail model with all moments finite (thanks to the upper bound),
/// hence PK-checkable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Bounded Pareto with support `[lo, hi]` and tail index `alpha`.
    ///
    /// # Panics
    /// If `0 < lo < hi` fails or `alpha ≤ 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "BoundedPareto: need 0 < lo < hi");
        assert!(alpha > 0.0, "BoundedPareto: alpha must be positive");
        Self { lo, hi, alpha }
    }

    /// Raw moment `E[X^k]` (closed form).
    #[must_use]
    pub fn raw_moment(&self, k: f64) -> f64 {
        let a = self.alpha;
        let l = self.lo;
        let h = self.hi;
        let norm = 1.0 - (l / h).powf(a);
        if (a - k).abs() < 1e-12 {
            // E[X^k] with a == k degenerates to a log.
            a * l.powf(a) * (h / l).ln() / norm
        } else {
            a * l.powf(a) / (a - k) * (l.powf(k - a) - h.powf(k - a)) / norm
        }
    }
}

impl Draw for BoundedPareto {
    fn sample<U: UniformSource + ?Sized>(&self, u: &mut U) -> f64 {
        // Inverse CDF of the truncated Pareto.
        let v = u.next_f64();
        let a = self.alpha;
        let l = self.lo.powf(-a);
        let h = self.hi.powf(-a);
        (l - v * (l - h)).powf(-1.0 / a)
    }
    fn mean(&self) -> f64 {
        self.raw_moment(1.0)
    }
    fn variance(&self) -> f64 {
        let m = self.mean();
        self.raw_moment(2.0) - m * m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Mix(u64);
    impl UniformSource for Mix {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)).max(1e-16)
        }
    }

    fn empirical<D: Draw>(d: &D, n: usize) -> (f64, f64) {
        let mut rng = Mix(0xFEED);
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = d.sample(&mut rng);
            s += x;
            s2 += x * x;
        }
        let m = s / n as f64;
        (m, s2 / n as f64 - m * m)
    }

    #[test]
    fn lognormal_fit_hits_targets() {
        let d = Lognormal::fit(2.0, 3.0);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!((d.cv() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lognormal_empirical_moments() {
        let d = Lognormal::fit(1.0, 1.0);
        let (m, v) = empirical(&d, 400_000);
        assert!((m - 1.0).abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.15, "var {v}");
    }

    #[test]
    fn bounded_pareto_moments_match_closed_form() {
        let d = BoundedPareto::new(1.0, 100.0, 1.5);
        let (m, v) = empirical(&d, 600_000);
        assert!((m - d.mean()).abs() / d.mean() < 0.03, "mean {m} vs {}", d.mean());
        assert!((v - d.variance()).abs() / d.variance() < 0.25, "var {v} vs {}", d.variance());
        // alpha = 1.5 in [1,2): heavy (cv > 1 on a wide support).
        assert!(d.cv() > 1.0, "cv {}", d.cv());
    }

    #[test]
    fn bounded_pareto_support() {
        let d = BoundedPareto::new(2.0, 10.0, 1.1);
        let mut rng = Mix(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..=10.0).contains(&x), "sample {x} out of support");
        }
    }

    #[test]
    fn pareto_alpha_equals_moment_branch() {
        // k == alpha hits the logarithmic branch; check continuity
        // against a nearby alpha.
        let d1 = BoundedPareto::new(1.0, 50.0, 2.0);
        let d2 = BoundedPareto::new(1.0, 50.0, 2.0 + 1e-9);
        assert!((d1.raw_moment(2.0) - d2.raw_moment(2.0)).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn lognormal_guards() {
        let _ = Lognormal::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn pareto_guards() {
        let _ = BoundedPareto::new(5.0, 2.0, 1.0);
    }
}
