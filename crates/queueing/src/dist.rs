//! Renewal-process distributions.
//!
//! All sampling is done by inverse transform (or mixture-of-inverses for
//! the hyper-exponential) from an abstract [`UniformSource`], which keeps
//! this crate PRNG-agnostic: the simulation engine plugs in its own
//! deterministic, stream-split generator.

/// Source of i.i.d. uniforms on the open interval `(0, 1)`.
///
/// Implementations must never return exactly `0.0` or `1.0` — the
/// exponential quantile `−ln(1−u)/λ` would produce `0` or `∞`.
pub trait UniformSource {
    /// Next uniform variate in `(0, 1)`.
    fn next_f64(&mut self) -> f64;
}

impl<T: UniformSource + ?Sized> UniformSource for &mut T {
    fn next_f64(&mut self) -> f64 {
        (**self).next_f64()
    }
}

/// A nonnegative continuous distribution usable as an interarrival- or
/// service-time law in a renewal process.
pub trait Draw {
    /// Draws one variate.
    fn sample<U: UniformSource + ?Sized>(&self, u: &mut U) -> f64;
    /// First moment.
    fn mean(&self) -> f64;
    /// Central second moment.
    fn variance(&self) -> f64;
    /// Coefficient of variation `σ/μ` (0 for deterministic, 1 for
    /// exponential, >1 for hyper-exponential).
    fn cv(&self) -> f64 {
        self.variance().sqrt() / self.mean()
    }
    /// Raw second moment `E[X²] = Var + mean²`, needed by the
    /// Pollaczek–Khinchine formula.
    fn second_moment(&self) -> f64 {
        self.variance() + self.mean() * self.mean()
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential law with the given rate (events per unit
    /// time).
    ///
    /// # Panics
    /// If `rate` is not strictly positive and finite.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "Exponential: rate must be positive");
        Self { rate }
    }

    /// The rate parameter.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Inverse CDF: `F⁻¹(u) = −ln(1−u)/λ`.
    #[must_use]
    pub fn quantile(&self, u: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&u));
        -(-u).ln_1p() / self.rate
    }
}

impl Draw for Exponential {
    fn sample<U: UniformSource + ?Sized>(&self, u: &mut U) -> f64 {
        self.quantile(u.next_f64())
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
}

/// Two-stage hyper-exponential distribution `H₂`: with probability `p`
/// draw `Exp(r1)`, otherwise `Exp(r2)`. Coefficient of variation ≥ 1.
///
/// This is the arrival law of the paper's Figure 3.6 / 4.8 experiments
/// ("two-stage hyper-exponential distribution … coefficient of variation
/// 1.6").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperExp2 {
    p: f64,
    r1: f64,
    r2: f64,
}

impl HyperExp2 {
    /// Creates an `H₂` law from raw parameters.
    ///
    /// # Panics
    /// If `p ∉ [0, 1]` or either rate is nonpositive.
    #[must_use]
    pub fn new(p: f64, r1: f64, r2: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "HyperExp2: p must lie in [0,1]");
        assert!(r1 > 0.0 && r2 > 0.0, "HyperExp2: rates must be positive");
        Self { p, r1, r2 }
    }

    /// Fits an `H₂` law with the given `mean` and coefficient of variation
    /// `cv ≥ 1` using the standard *balanced means* convention
    /// (`p/r1 = (1−p)/r2`, i.e. both branches contribute equally to the
    /// mean).
    ///
    /// For `cv = 1` this degenerates to the exponential (`p = 1/2`,
    /// `r1 = r2 = 1/mean`).
    ///
    /// # Panics
    /// If `mean ≤ 0` or `cv < 1`.
    #[must_use]
    pub fn fit_balanced(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0, "HyperExp2::fit_balanced: mean must be positive");
        assert!(cv >= 1.0, "HyperExp2::fit_balanced: H2 requires cv >= 1");
        let c2 = cv * cv;
        let p = 0.5 * (1.0 + ((c2 - 1.0) / (c2 + 1.0)).sqrt());
        let r1 = 2.0 * p / mean;
        let r2 = 2.0 * (1.0 - p) / mean;
        Self::new(p, r1, r2)
    }

    /// Branch-selection probability `p`.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }
    /// Rate of the first branch.
    #[must_use]
    pub fn rate1(&self) -> f64 {
        self.r1
    }
    /// Rate of the second branch.
    #[must_use]
    pub fn rate2(&self) -> f64 {
        self.r2
    }
}

impl Draw for HyperExp2 {
    fn sample<U: UniformSource + ?Sized>(&self, u: &mut U) -> f64 {
        let branch = u.next_f64();
        let rate = if branch < self.p { self.r1 } else { self.r2 };
        let v = u.next_f64();
        -(-v).ln_1p() / rate
    }
    fn mean(&self) -> f64 {
        self.p / self.r1 + (1.0 - self.p) / self.r2
    }
    fn variance(&self) -> f64 {
        let e2 = 2.0 * self.p / (self.r1 * self.r1) + 2.0 * (1.0 - self.p) / (self.r2 * self.r2);
        let m = self.mean();
        e2 - m * m
    }
}

/// Erlang-`k` distribution (sum of `k` i.i.d. exponentials), CV `1/√k < 1`.
/// Used in tests to exercise the simulator below the exponential's
/// variability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    k: u32,
    rate: f64,
}

impl Erlang {
    /// Erlang law with shape `k ≥ 1` and per-stage rate `rate`
    /// (mean `k/rate`).
    ///
    /// # Panics
    /// If `k == 0` or `rate ≤ 0`.
    #[must_use]
    pub fn new(k: u32, rate: f64) -> Self {
        assert!(k >= 1, "Erlang: shape must be at least 1");
        assert!(rate > 0.0, "Erlang: rate must be positive");
        Self { k, rate }
    }

    /// Fits an Erlang with the given mean and shape.
    #[must_use]
    pub fn with_mean(k: u32, mean: f64) -> Self {
        assert!(mean > 0.0, "Erlang: mean must be positive");
        Self::new(k, f64::from(k) / mean)
    }
}

impl Draw for Erlang {
    fn sample<U: UniformSource + ?Sized>(&self, u: &mut U) -> f64 {
        // Product-of-uniforms form: −ln(Πuᵢ)/rate, numerically as a sum of
        // logs to avoid underflow for large k.
        let mut acc = 0.0;
        for _ in 0..self.k {
            acc += -(-u.next_f64()).ln_1p();
        }
        acc / self.rate
    }
    fn mean(&self) -> f64 {
        f64::from(self.k) / self.rate
    }
    fn variance(&self) -> f64 {
        f64::from(self.k) / (self.rate * self.rate)
    }
}

/// Point mass at `value` (CV = 0). Handy for D/M/1-style stress tests of
/// the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Point mass at `value ≥ 0`.
    ///
    /// # Panics
    /// If `value` is negative.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0, "Deterministic: value must be nonnegative");
        Self { value }
    }
}

impl Draw for Deterministic {
    fn sample<U: UniformSource + ?Sized>(&self, _u: &mut U) -> f64 {
        self.value
    }
    fn mean(&self) -> f64 {
        self.value
    }
    fn variance(&self) -> f64 {
        0.0
    }
}

/// Uniform distribution on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Uniform law on `[lo, hi]`, `0 ≤ lo < hi`.
    ///
    /// # Panics
    /// If the interval is empty or extends below zero.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo >= 0.0 && hi > lo, "Uniform: need 0 <= lo < hi");
        Self { lo, hi }
    }
}

impl Draw for Uniform {
    fn sample<U: UniformSource + ?Sized>(&self, u: &mut U) -> f64 {
        self.lo + (self.hi - self.lo) * u.next_f64()
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
}

/// Type-erased distribution enum so simulation configs can be stored,
/// serialized, and switched at run time without generics at the
/// component boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Law {
    /// Exponential (Poisson process interarrivals).
    Exp(Exponential),
    /// Two-stage hyper-exponential.
    Hyper(HyperExp2),
    /// Erlang-k.
    Erlang(Erlang),
    /// Deterministic.
    Det(Deterministic),
    /// Uniform.
    Uniform(Uniform),
    /// Lognormal (heavy-ish tail).
    Lognormal(crate::heavy::Lognormal),
    /// Bounded Pareto (heavy tail, finite moments).
    Pareto(crate::heavy::BoundedPareto),
}

impl Law {
    /// Exponential law with the given rate.
    #[must_use]
    pub fn exponential(rate: f64) -> Self {
        Law::Exp(Exponential::new(rate))
    }

    /// Balanced-means `H₂` law with the given mean and CV.
    #[must_use]
    pub fn hyperexp(mean: f64, cv: f64) -> Self {
        Law::Hyper(HyperExp2::fit_balanced(mean, cv))
    }
}

impl Draw for Law {
    fn sample<U: UniformSource + ?Sized>(&self, u: &mut U) -> f64 {
        match self {
            Law::Exp(d) => d.sample(u),
            Law::Hyper(d) => d.sample(u),
            Law::Erlang(d) => d.sample(u),
            Law::Det(d) => d.sample(u),
            Law::Uniform(d) => d.sample(u),
            Law::Lognormal(d) => d.sample(u),
            Law::Pareto(d) => d.sample(u),
        }
    }
    fn mean(&self) -> f64 {
        match self {
            Law::Exp(d) => d.mean(),
            Law::Hyper(d) => d.mean(),
            Law::Erlang(d) => d.mean(),
            Law::Det(d) => d.mean(),
            Law::Uniform(d) => d.mean(),
            Law::Lognormal(d) => d.mean(),
            Law::Pareto(d) => d.mean(),
        }
    }
    fn variance(&self) -> f64 {
        match self {
            Law::Exp(d) => d.variance(),
            Law::Hyper(d) => d.variance(),
            Law::Erlang(d) => d.variance(),
            Law::Det(d) => d.variance(),
            Law::Uniform(d) => d.variance(),
            Law::Lognormal(d) => d.variance(),
            Law::Pareto(d) => d.variance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic uniform source for tests: cycles through a fixed
    /// sequence.
    struct Seq {
        vals: Vec<f64>,
        i: usize,
    }
    impl Seq {
        fn new(vals: Vec<f64>) -> Self {
            Self { vals, i: 0 }
        }
    }
    impl UniformSource for Seq {
        fn next_f64(&mut self) -> f64 {
            let v = self.vals[self.i % self.vals.len()];
            self.i += 1;
            v
        }
    }

    /// A tiny splitmix64 stream for moment tests (not the engine's RNG —
    /// just enough to drive statistical checks here without a dependency
    /// cycle).
    struct Mix(u64);
    impl UniformSource for Mix {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            // 53-bit mantissa, then nudge away from 0.
            let u = (z >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
            u.max(1e-16)
        }
    }

    fn empirical_moments<D: Draw>(d: &D, n: usize) -> (f64, f64) {
        let mut rng = Mix(0xDEAD_BEEF);
        let mut m = 0.0;
        let mut m2 = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            m += x;
            m2 += x * x;
        }
        let mean = m / n as f64;
        (mean, m2 / n as f64 - mean * mean)
    }

    #[test]
    fn exponential_quantile_median() {
        let e = Exponential::new(2.0);
        assert!((e.quantile(0.5) - (2.0f64.ln() / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn exponential_moments() {
        let e = Exponential::new(0.5);
        assert_eq!(e.mean(), 2.0);
        assert_eq!(e.variance(), 4.0);
        assert!((e.cv() - 1.0).abs() < 1e-12);
        let (m, v) = empirical_moments(&e, 200_000);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.3, "var {v}");
    }

    #[test]
    fn hyperexp_fit_hits_mean_and_cv() {
        // The paper's arrival CV.
        let h = HyperExp2::fit_balanced(3.0, 1.6);
        assert!((h.mean() - 3.0).abs() < 1e-12, "mean {}", h.mean());
        assert!((h.cv() - 1.6).abs() < 1e-12, "cv {}", h.cv());
        // Balanced means: p/r1 == (1-p)/r2.
        assert!((h.p() / h.rate1() - (1.0 - h.p()) / h.rate2()).abs() < 1e-12);
    }

    #[test]
    fn hyperexp_cv_one_is_exponential() {
        let h = HyperExp2::fit_balanced(2.0, 1.0);
        assert!((h.rate1() - h.rate2()).abs() < 1e-12);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hyperexp_empirical_moments() {
        let h = HyperExp2::fit_balanced(1.0, 1.6);
        let (m, v) = empirical_moments(&h, 400_000);
        assert!((m - 1.0).abs() < 0.02, "mean {m}");
        assert!((v.sqrt() / m - 1.6).abs() < 0.1, "cv {}", v.sqrt() / m);
    }

    #[test]
    #[should_panic(expected = "cv >= 1")]
    fn hyperexp_rejects_small_cv() {
        let _ = HyperExp2::fit_balanced(1.0, 0.5);
    }

    #[test]
    fn erlang_moments() {
        let e = Erlang::with_mean(4, 2.0);
        assert!((e.mean() - 2.0).abs() < 1e-12);
        assert!((e.cv() - 0.5).abs() < 1e-12);
        let (m, v) = empirical_moments(&e, 200_000);
        assert!((m - 2.0).abs() < 0.02);
        assert!((v - 1.0).abs() < 0.05);
    }

    #[test]
    fn deterministic_and_uniform() {
        let d = Deterministic::new(1.5);
        let mut s = Seq::new(vec![0.3]);
        assert_eq!(d.sample(&mut s), 1.5);
        assert_eq!(d.cv(), 0.0);
        let u = Uniform::new(1.0, 3.0);
        assert_eq!(u.mean(), 2.0);
        assert!((u.variance() - 4.0 / 12.0).abs() < 1e-12);
        let mut s = Seq::new(vec![0.5]);
        assert_eq!(u.sample(&mut s), 2.0);
    }

    #[test]
    fn law_enum_dispatch_matches_inner() {
        let inner = Exponential::new(3.0);
        let law = Law::Exp(inner);
        assert_eq!(law.mean(), inner.mean());
        assert_eq!(law.variance(), inner.variance());
        let h = Law::hyperexp(2.0, 1.6);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn second_moment_identity() {
        let e = Exponential::new(1.0);
        assert!((e.second_moment() - 2.0).abs() < 1e-12); // E[X^2] = 2/λ²
    }
}
