//! Queueing-theory substrate for the `gtlb` workspace.
//!
//! The paper models every computer of the distributed system as an M/M/1
//! queue (Poisson arrivals, exponential service, single FCFS server) and
//! additionally evaluates the schemes under two-stage hyper-exponential
//! interarrival times with coefficient of variation 1.6 (Figures 3.6 and
//! 4.8). This crate provides:
//!
//! * [`dist`] — the renewal-process distributions (exponential,
//!   two-stage hyper-exponential with balanced-means CV fitting, Erlang,
//!   deterministic, uniform) sampled by inverse transform from an abstract
//!   uniform source, so the simulation engine owns the PRNG;
//! * [`mm1`] — closed-form M/M/1 performance measures used both by the
//!   analytic evaluation pipeline and to validate the simulator;
//! * [`mg1`] — the Pollaczek–Khinchine formulas for M/G/1, used to
//!   cross-check the simulator under non-exponential service;
//! * [`heavy`] — heavy-tailed laws (lognormal, bounded Pareto) with
//!   closed-form moments, for stress tests beyond the paper's
//!   exponential assumptions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod heavy;
pub mod mg1;
pub mod mm1;

pub use dist::{Draw, UniformSource};
pub use mm1::Mm1;
