//! Model-based test of the future-event list: random interleavings of
//! schedule/pop must match a straightforward reference implementation
//! (a stable-sorted vector), including FIFO tie-breaking.

use gtlb_desim::calendar::Calendar;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Schedule(f64),
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            // Coarse times force plenty of exact ties.
            (0u32..20).prop_map(|t| Op::Schedule(f64::from(t) * 0.5)),
            Just(Op::Pop),
        ],
        1..200,
    )
}

/// Reference: a vector of (time, seq) kept in insertion order; pop takes
/// the earliest time, breaking ties by lowest sequence number.
#[derive(Default)]
struct Reference {
    items: Vec<(f64, u64)>,
    next_seq: u64,
}

impl Reference {
    fn schedule(&mut self, t: f64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.items.push((t, seq));
        seq
    }
    fn pop(&mut self) -> Option<(f64, u64)> {
        let best = self
            .items
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)))?
            .0;
        Some(self.items.remove(best))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn calendar_matches_reference(ops in arb_ops()) {
        let mut cal: Calendar<u64> = Calendar::new();
        let mut reference = Reference::default();
        for op in ops {
            match op {
                Op::Schedule(t) => {
                    let seq = reference.schedule(t);
                    cal.schedule(t, seq);
                }
                Op::Pop => {
                    let expected = reference.pop();
                    let got = cal.pop();
                    match (expected, got) {
                        (None, None) => {}
                        (Some((t, seq)), Some((gt, gseq))) => {
                            prop_assert_eq!(t, gt);
                            prop_assert_eq!(seq, gseq);
                        }
                        (e, g) => prop_assert!(false, "mismatch: expected {e:?}, got {g:?}"),
                    }
                }
            }
            prop_assert_eq!(cal.len(), reference.items.len());
            prop_assert_eq!(cal.is_empty(), reference.items.is_empty());
        }
        // Drain both and compare the full remaining order.
        loop {
            let expected = reference.pop();
            let got = cal.pop();
            match (expected, got) {
                (None, None) => break,
                (Some((t, seq)), Some((gt, gseq))) => {
                    prop_assert_eq!(t, gt);
                    prop_assert_eq!(seq, gseq);
                }
                (e, g) => prop_assert!(false, "drain mismatch: expected {e:?}, got {g:?}"),
            }
        }
    }
}
