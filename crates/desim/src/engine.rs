//! The event loop.
//!
//! [`Engine`] is a thin deterministic wrapper around the
//! [`crate::calendar::Calendar`]: it owns the simulation clock,
//! enforces causality (no scheduling in the past), and exposes a pull-style
//! API — the model pops the next event, advances its own state, and
//! schedules consequences. Keeping the engine model-agnostic lets the same
//! loop drive the paper's dispatcher/farm model, the unit-test toy models,
//! and any future topology.

use crate::calendar::Calendar;

/// Deterministic single-threaded event loop generic over the model's
/// event type.
#[derive(Debug, Clone)]
pub struct Engine<E> {
    calendar: Calendar<E>,
    now: f64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// New engine with the clock at `0.0`.
    #[must_use]
    pub fn new() -> Self {
        Self { calendar: Calendar::new(), now: 0.0, processed: 0 }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `event` after a nonnegative `delay` from the current
    /// time.
    ///
    /// # Panics
    /// If `delay` is negative or not finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0 && delay.is_finite(), "Engine: delay must be finite and >= 0");
        self.calendar.schedule(self.now + delay, event);
    }

    /// Schedules `event` at absolute time `time ≥ now`.
    ///
    /// # Panics
    /// If `time` precedes the current clock.
    pub fn schedule_at(&mut self, time: f64, event: E) {
        assert!(time >= self.now, "Engine: cannot schedule into the past");
        self.calendar.schedule(time, event);
    }

    /// Pops the next event, advancing the clock to its activation time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let (t, e) = self.calendar.pop()?;
        debug_assert!(t >= self.now, "event calendar returned a past event");
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Activation time of the next pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.calendar.peek_time()
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.calendar.len()
    }

    /// Drains all events strictly before `horizon`, invoking `handler`
    /// for each; events the handler schedules are processed too if they
    /// fall before the horizon. Returns the number of events handled.
    pub fn run_until<F: FnMut(&mut Self, f64, E)>(&mut self, horizon: f64, mut handler: F) -> u64 {
        let start = self.processed;
        while let Some(t) = self.calendar.peek_time() {
            if t >= horizon {
                break;
            }
            let (time, event) = self.pop().expect("peeked event vanished");
            handler(self, time, event);
        }
        if self.now < horizon {
            self.now = horizon;
        }
        self.processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_in(1.0, 1);
        eng.schedule_in(0.5, 0);
        assert_eq!(eng.now(), 0.0);
        assert_eq!(eng.pop(), Some((0.5, 0)));
        assert_eq!(eng.now(), 0.5);
        assert_eq!(eng.pop(), Some((1.0, 1)));
        assert_eq!(eng.now(), 1.0);
        assert_eq!(eng.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn cannot_schedule_into_the_past() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule_in(1.0, ());
        let _ = eng.pop();
        eng.schedule_at(0.5, ());
    }

    #[test]
    fn run_until_respects_horizon_and_cascades() {
        // A self-perpetuating event chain: each event schedules the next
        // one 1.0 later; horizon 5.0 should process events at 0,1,2,3,4.
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(0.0, 0);
        let mut seen = Vec::new();
        let n = eng.run_until(5.0, |eng, t, k| {
            seen.push((t, k));
            eng.schedule_in(1.0, k + 1);
        });
        assert_eq!(n, 5);
        assert_eq!(seen.len(), 5);
        assert_eq!(seen.last(), Some(&(4.0, 4)));
        assert_eq!(eng.now(), 5.0);
        assert_eq!(eng.pending(), 1); // the event at t=5 remains
    }

    #[test]
    fn run_until_on_empty_calendar_advances_clock() {
        let mut eng: Engine<()> = Engine::new();
        let n = eng.run_until(10.0, |_, _, _| {});
        assert_eq!(n, 0);
        assert_eq!(eng.now(), 10.0);
    }
}
