//! Deterministic pseudo-random number generation.
//!
//! Simulation experiments must be exactly reproducible from a seed, and
//! each stochastic process (every user's arrival stream, every computer's
//! service stream, every replication) needs a statistically independent
//! stream. We use xoshiro256++ (Blackman & Vigna), a fast, well-tested
//! generator with 256 bits of state, seeded through SplitMix64; sub-streams
//! are derived by hashing `(seed, stream id)` through SplitMix64, which is
//! the recommended seeding procedure for the xoshiro family.

use gtlb_queueing::UniformSource;

/// SplitMix64 step: used for seeding and stream derivation.
#[inline]
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seeds the generator from a single 64-bit seed via SplitMix64.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        // All-zero state is invalid for xoshiro; splitmix64 of any seed
        // cannot produce four zeros, but guard for belt and braces.
        if s == [0, 0, 0, 0] {
            return Self { s: [0x1, 0x9E37_79B9, 0x7F4A_7C15, 0xDEAD_BEEF] };
        }
        Self { s }
    }

    /// Derives an independent stream: stream `k` of a base seed is seeded
    /// by mixing the stream index into the SplitMix64 chain. Different
    /// `(seed, stream)` pairs yield (with overwhelming probability)
    /// non-overlapping, uncorrelated sequences.
    #[must_use]
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut sm = seed;
        let a = splitmix64(&mut sm);
        let mut sm2 = a ^ stream.wrapping_mul(0xD1B5_4A32_D192_ED03);
        let s = [
            splitmix64(&mut sm2),
            splitmix64(&mut sm2),
            splitmix64(&mut sm2),
            splitmix64(&mut sm2),
        ];
        Self { s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform on the open interval `(0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_open01(&mut self) -> f64 {
        loop {
            let u = (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
            if u > 0.0 {
                return u;
            }
        }
    }

    /// The xoshiro256++ `jump()` function: advances the state by 2¹²⁸
    /// steps, giving a guaranteed-disjoint subsequence. Provided for
    /// callers that prefer jump-based streams to hash-derived streams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                let _ = self.next_u64();
            }
        }
        self.s = s;
    }
}

impl UniformSource for Xoshiro256PlusPlus {
    fn next_f64(&mut self) -> f64 {
        self.next_open01()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // Reference sequence for xoshiro256++ with state {1, 2, 3, 4}
        // (from the public C implementation).
        let mut rng = Xoshiro256PlusPlus { s: [1, 2, 3, 4] };
        let expected: [u64; 5] =
            [41943041, 58720359, 3588806011781223, 3591011842654386, 9228616714210784205];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_distinct_and_reproducible() {
        let mut s0 = Xoshiro256PlusPlus::stream(7, 0);
        let mut s1 = Xoshiro256PlusPlus::stream(7, 1);
        let mut s0b = Xoshiro256PlusPlus::stream(7, 0);
        let mut any_diff = false;
        for _ in 0..64 {
            let a = s0.next_u64();
            assert_eq!(a, s0b.next_u64());
            if a != s1.next_u64() {
                any_diff = true;
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn open01_in_range_and_uniformish() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(123);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.next_open01();
            assert!(u > 0.0 && u < 1.0);
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn jump_changes_state_deterministically() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut b = a.clone();
        a.jump();
        b.jump();
        assert_eq!(a, b);
        let mut c = Xoshiro256PlusPlus::seed_from_u64(9);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_known_value() {
        let mut s = 0u64;
        // First output of splitmix64 for seed 0 (public reference).
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }
}
