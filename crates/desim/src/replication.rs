//! Replication driver.
//!
//! The paper: "Each run was replicated five times with different random
//! number streams and the results averaged over replications. The standard
//! error is less than 5 % at the 95 % confidence level." This module
//! reproduces that protocol: run the same model `R` times with
//! seed-derived independent streams and summarize every metric with a
//! Student-t confidence interval.
//!
//! The driver itself is sequential (determinism); callers that want
//! parallel replications (the `gtlb-sim` sweep runner does) can invoke
//! [`crate::farm::run`] directly from a rayon iterator — replication `r`
//! of base seed `s` always uses seed `replication_seed(s, r)`, so the
//! results are identical either way.

use crate::farm::{run, FarmResult, FarmSpec, RunConfig};
use crate::stats::ConfidenceInterval;

/// Seed used by replication `r` of a base seed. Exposed so parallel
/// callers produce bit-identical runs.
#[must_use]
pub fn replication_seed(base: u64, replication: u32) -> u64 {
    // SplitMix-style mix keeps seeds far apart even for adjacent r.
    let mut s = base ^ (u64::from(replication).wrapping_mul(0xA24B_AED4_963E_E407));
    s ^= s >> 33;
    s = s.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    s ^= s >> 33;
    s
}

/// Aggregated, confidence-intervalled metrics over `R` replications.
#[derive(Debug, Clone)]
pub struct ReplicatedResult {
    /// Overall mean response time.
    pub overall: ConfidenceInterval,
    /// Per-user mean response times.
    pub per_user: Vec<ConfidenceInterval>,
    /// Per-computer mean response times (`NaN` mean when a computer
    /// received no jobs in any replication).
    pub per_computer: Vec<ConfidenceInterval>,
    /// Per-computer utilizations.
    pub utilization: Vec<ConfidenceInterval>,
    /// The raw per-replication results (for custom post-processing).
    pub raw: Vec<FarmResult>,
}

/// Runs `replications` independent copies of the model and aggregates.
///
/// # Panics
/// If `replications == 0`.
#[must_use]
pub fn replicate(spec: &FarmSpec, cfg: &RunConfig, replications: u32) -> ReplicatedResult {
    assert!(replications > 0, "replicate: need at least one replication");
    let raw: Vec<FarmResult> = (0..replications)
        .map(|r| {
            let mut c = *cfg;
            c.seed = replication_seed(cfg.seed, r);
            run(spec, &c)
        })
        .collect();

    let overall = ConfidenceInterval::from_estimates(
        &raw.iter().map(|r| r.overall.mean()).collect::<Vec<_>>(),
    );
    let m = raw[0].per_user.len();
    let n = raw[0].per_computer.len();
    let per_user = (0..m)
        .map(|j| {
            ConfidenceInterval::from_estimates(
                &raw.iter().map(|r| r.per_user[j].mean()).collect::<Vec<_>>(),
            )
        })
        .collect();
    let per_computer = (0..n)
        .map(|i| {
            ConfidenceInterval::from_estimates(
                &raw.iter().map(|r| r.per_computer[i].mean()).collect::<Vec<_>>(),
            )
        })
        .collect();
    let utilization = (0..n)
        .map(|i| {
            ConfidenceInterval::from_estimates(
                &raw.iter().map(|r| r.utilization[i]).collect::<Vec<_>>(),
            )
        })
        .collect();

    ReplicatedResult { overall, per_user, per_computer, utilization, raw }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtlb_queueing::Mm1;

    #[test]
    fn replication_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..32).map(|r| replication_seed(42, r)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len());
    }

    #[test]
    fn five_replications_cover_theory() {
        let lambda = 0.5;
        let mu = 1.0;
        let spec = FarmSpec::single_class_mm1(&[mu], &[lambda], lambda);
        let cfg = RunConfig { seed: 2024, warmup_jobs: 10_000, measured_jobs: 100_000 };
        let rep = replicate(&spec, &cfg, 5);
        let theory = Mm1::new(lambda, mu).unwrap().mean_response_time();
        assert_eq!(rep.raw.len(), 5);
        assert!(
            (rep.overall.mean - theory).abs() < rep.overall.half_width + 0.05 * theory,
            "CI {:?} does not cover theory {theory}",
            rep.overall
        );
        // The paper's quality bar: < 5 % relative error at 95 %.
        assert!(rep.overall.relative_half_width() < 0.05);
    }

    #[test]
    fn aggregation_matches_manual_computation() {
        let spec = FarmSpec::single_class_mm1(&[1.0], &[0.3], 0.3);
        let cfg = RunConfig { seed: 9, warmup_jobs: 500, measured_jobs: 5_000 };
        let rep = replicate(&spec, &cfg, 3);
        let manual: f64 = rep.raw.iter().map(|r| r.overall.mean()).sum::<f64>() / 3.0;
        assert!((rep.overall.mean - manual).abs() < 1e-12);
    }
}
