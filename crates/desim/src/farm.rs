//! The paper's simulation model: multi-user sources, a probabilistic
//! central dispatcher, and a farm of FCFS single-server queues.
//!
//! > "The simulation model consists of a collection of computers connected
//! > by a communication network. Jobs arriving at the system are
//! > distributed by a central dispatcher to the computers according to the
//! > specified load balancing scheme. Jobs which have been dispatched to a
//! > particular computer are run-to-completion (i.e. no preemption) in
//! > FCFS order." — §3.4.1
//!
//! Each *user* (a single anonymous population in Chapter 3, `m` selfish
//! users in Chapter 4) is a renewal source with an arbitrary interarrival
//! law; static schemes are realized as probabilistic routing: a job from
//! user `j` goes to computer `i` with probability `s_ij` (for the
//! single-class chapters `m = 1` and `s_i = λ_i/Φ`). Poisson splitting
//! makes this exactly the paper's model: thinning a rate-`Φ` Poisson
//! stream with probabilities `λ_i/Φ` yields independent Poisson streams of
//! rate `λ_i` at each M/M/1 computer.

use std::collections::VecDeque;

use gtlb_core::error::CoreError;
use gtlb_queueing::dist::{Draw, Law};
use gtlb_queueing::UniformSource;

use crate::engine::Engine;
use crate::rng::Xoshiro256PlusPlus;
use crate::stats::{TimeWeighted, Welford};

/// Largest deviation of a routing row's sum from 1 that is treated as
/// floating-point drift and renormalized. Iteratively computed loads
/// (e.g. Wardrop's level solver) conserve mass only to ~1e-7, so the
/// tolerance must sit above that; anything larger is a modeling error
/// and is rejected.
pub const ROUTING_SUM_TOL: f64 = 1e-6;

/// One job-generating user/class.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Interarrival-time law (exponential for Poisson arrivals; the
    /// paper's Figure 3.6/4.8 uses a two-stage hyper-exponential with
    /// CV = 1.6).
    pub interarrival: Law,
    /// Routing probabilities `s_ij` over the computers; must be
    /// nonnegative, finite, and sum to 1 within [`ROUTING_SUM_TOL`]
    /// (sub-tolerance drift is renormalized; anything else is rejected
    /// by [`try_run`]).
    pub routing: Vec<f64>,
}

/// Full model specification.
#[derive(Debug, Clone)]
pub struct FarmSpec {
    /// Service-time law of each computer (exponential with rate `μ_i` for
    /// the paper's M/M/1 computers).
    pub services: Vec<Law>,
    /// The job sources (one per user).
    pub sources: Vec<SourceSpec>,
}

impl FarmSpec {
    /// Convenience constructor for the paper's standard model: M/M/1
    /// computers with rates `mu`, a single Poisson source of total rate
    /// `phi`, split according to `loads` (`λ_i`, summing to `phi`).
    ///
    /// # Panics
    /// If lengths mismatch or `loads` contains negatives.
    #[must_use]
    pub fn single_class_mm1(mu: &[f64], loads: &[f64], phi: f64) -> Self {
        assert_eq!(mu.len(), loads.len(), "single_class_mm1: length mismatch");
        assert!(phi > 0.0, "single_class_mm1: total rate must be positive");
        let routing: Vec<f64> = loads.iter().map(|&l| l / phi).collect();
        Self {
            services: mu.iter().map(|&m| Law::exponential(m)).collect(),
            sources: vec![SourceSpec { interarrival: Law::exponential(phi), routing }],
        }
    }
}

/// Run-length and warm-up control.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Base PRNG seed; all streams are derived from it.
    pub seed: u64,
    /// Completions to *discard* before measuring (warm-up deletion).
    pub warmup_jobs: u64,
    /// Completions to *measure* after the warm-up.
    pub measured_jobs: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self { seed: 0x5EED, warmup_jobs: 10_000, measured_jobs: 200_000 }
    }
}

/// Everything measured by one simulation run.
#[derive(Debug, Clone)]
pub struct FarmResult {
    /// Response-time statistics over all measured jobs.
    pub overall: Welford,
    /// Response-time statistics per user (source index).
    pub per_user: Vec<Welford>,
    /// Response-time statistics per computer.
    pub per_computer: Vec<Welford>,
    /// Time-averaged number of jobs present at each computer during the
    /// measurement window.
    pub mean_in_system: Vec<f64>,
    /// Fraction of the measurement window each computer was busy.
    pub utilization: Vec<f64>,
    /// Simulated time at the end of the run.
    pub end_time: f64,
    /// Length of the measurement window (simulated time after warm-up).
    pub measured_window: f64,
    /// Total events executed.
    pub events: u64,
}

impl FarmResult {
    /// Overall mean response time.
    #[must_use]
    pub fn mean_response_time(&self) -> f64 {
        self.overall.mean()
    }
}

#[derive(Debug, Clone, Copy)]
struct Job {
    user: u32,
    arrival: f64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Next arrival from source `user`.
    Arrival { user: u32 },
    /// Service completion at computer `computer`.
    Departure { computer: u32 },
}

struct Server {
    queue: VecDeque<Job>,
    service: Law,
    rng: Xoshiro256PlusPlus,
    in_system: TimeWeighted,
    busy_since: Option<f64>,
    busy_time: f64,
}

/// Validates the spec and precomputes the normalized cumulative routing
/// rows used for inverse-CDF routing.
///
/// Rejects — instead of silently repairing — every malformed routing row:
/// wrong length, negative or non-finite entries, and sums deviating from
/// 1 by more than [`ROUTING_SUM_TOL`] (which includes all-zero rows).
/// Only sub-tolerance floating-point drift is renormalized.
fn validated_cum_routing(spec: &FarmSpec) -> Result<Vec<Vec<f64>>, CoreError> {
    let n = spec.services.len();
    let m = spec.sources.len();
    if n == 0 {
        return Err(CoreError::BadInput("farm: need at least one computer".into()));
    }
    if m == 0 {
        return Err(CoreError::BadInput("farm: need at least one source".into()));
    }
    let mut cum_routing: Vec<Vec<f64>> = Vec::with_capacity(m);
    for (j, src) in spec.sources.iter().enumerate() {
        if src.routing.len() != n {
            return Err(CoreError::BadInput(format!(
                "farm: routing row {j} has wrong length: {} entries for {n} computers",
                src.routing.len()
            )));
        }
        if let Some((i, &p)) =
            src.routing.iter().enumerate().find(|&(_, &p)| !(p.is_finite() && p >= 0.0))
        {
            return Err(CoreError::BadInput(format!(
                "farm: routing row {j} has an invalid probability at computer {i}: {p}"
            )));
        }
        let total: f64 = src.routing.iter().sum();
        let deviation = (total - 1.0).abs();
        if deviation > ROUTING_SUM_TOL {
            return Err(CoreError::BadInput(format!(
                "farm: routing row {j} sums to {total}, expected 1 \
                 (deviation {deviation:.3e} exceeds tolerance {ROUTING_SUM_TOL:.0e})"
            )));
        }
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in &src.routing {
            acc += p / total;
            cum.push(acc);
        }
        // Guarantee the last entry covers u -> 1.
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        cum_routing.push(cum);
    }
    Ok(cum_routing)
}

/// Runs the model to completion and returns the measurements.
///
/// # Errors
/// [`CoreError::BadInput`] when the spec is structurally invalid: no
/// computers or sources, or a routing row with the wrong length, a
/// negative/non-finite entry, or a sum off 1 by more than
/// [`ROUTING_SUM_TOL`].
pub fn try_run(spec: &FarmSpec, cfg: &RunConfig) -> Result<FarmResult, CoreError> {
    let cum_routing = validated_cum_routing(spec)?;
    Ok(run_validated(spec, cfg, &cum_routing))
}

/// Runs the model to completion and returns the measurements.
///
/// # Panics
/// If the spec is structurally invalid — the panicking wrapper around
/// [`try_run`] for callers whose specs are correct by construction.
#[must_use]
pub fn run(spec: &FarmSpec, cfg: &RunConfig) -> FarmResult {
    match try_run(spec, cfg) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

fn run_validated(spec: &FarmSpec, cfg: &RunConfig, cum_routing: &[Vec<f64>]) -> FarmResult {
    let n = spec.services.len();
    let m = spec.sources.len();

    // Independent streams: arrivals (one per user), routing (one per
    // user), services (one per computer).
    let mut arrival_rngs: Vec<Xoshiro256PlusPlus> =
        (0..m).map(|j| Xoshiro256PlusPlus::stream(cfg.seed, 0x0100 + j as u64)).collect();
    let mut routing_rngs: Vec<Xoshiro256PlusPlus> =
        (0..m).map(|j| Xoshiro256PlusPlus::stream(cfg.seed, 0x0200 + j as u64)).collect();

    let mut servers: Vec<Server> = spec
        .services
        .iter()
        .enumerate()
        .map(|(i, &law)| Server {
            queue: VecDeque::new(),
            service: law,
            rng: Xoshiro256PlusPlus::stream(cfg.seed, 0x0300 + i as u64),
            in_system: TimeWeighted::new(),
            busy_since: None,
            busy_time: 0.0,
        })
        .collect();

    let mut eng: Engine<Ev> = Engine::new();
    for (j, src) in spec.sources.iter().enumerate() {
        let dt = src.interarrival.sample(&mut arrival_rngs[j]);
        eng.schedule_in(dt, Ev::Arrival { user: j as u32 });
    }
    for s in &mut servers {
        s.in_system.update(0.0, 0.0);
    }

    let mut overall = Welford::new();
    let mut per_user = vec![Welford::new(); m];
    let mut per_computer = vec![Welford::new(); n];
    let mut completed: u64 = 0;
    let target = cfg.warmup_jobs + cfg.measured_jobs;
    let mut measure_start_time = 0.0;
    let mut measuring = cfg.warmup_jobs == 0;

    while completed < target {
        let Some((now, ev)) = eng.pop() else {
            break; // exhausted calendar (cannot happen: sources self-renew)
        };
        match ev {
            Ev::Arrival { user } => {
                let j = user as usize;
                // Route the job.
                let u = routing_rngs[j].next_f64();
                let cum = &cum_routing[j];
                let computer = match cum.iter().position(|&c| u <= c) {
                    Some(i) => i,
                    None => n - 1,
                };
                let srv = &mut servers[computer];
                srv.queue.push_back(Job { user, arrival: now });
                srv.in_system.update(now, srv.queue.len() as f64);
                if srv.queue.len() == 1 {
                    srv.busy_since = Some(now);
                    let st = srv.service.sample(&mut srv.rng);
                    eng.schedule_in(st, Ev::Departure { computer: computer as u32 });
                }
                // Next arrival from this source.
                let dt = spec.sources[j].interarrival.sample(&mut arrival_rngs[j]);
                eng.schedule_in(dt, Ev::Arrival { user });
            }
            Ev::Departure { computer } => {
                let i = computer as usize;
                let srv = &mut servers[i];
                let job = srv.queue.pop_front().expect("departure from an empty server");
                srv.in_system.update(now, srv.queue.len() as f64);
                completed += 1;
                if measuring {
                    let resp = now - job.arrival;
                    overall.add(resp);
                    per_user[job.user as usize].add(resp);
                    per_computer[i].add(resp);
                }
                if srv.queue.is_empty() {
                    if let Some(since) = srv.busy_since.take() {
                        srv.busy_time += now - since;
                    }
                } else {
                    let st = srv.service.sample(&mut srv.rng);
                    eng.schedule_in(st, Ev::Departure { computer });
                }
                if !measuring && completed >= cfg.warmup_jobs {
                    measuring = true;
                    measure_start_time = now;
                    for s in &mut servers {
                        s.in_system.restart_at(now);
                        s.busy_time = 0.0;
                        if !s.queue.is_empty() {
                            s.busy_since = Some(now);
                        }
                    }
                }
            }
        }
    }

    let end = eng.now();
    let window = (end - measure_start_time).max(f64::MIN_POSITIVE);
    let mean_in_system = servers.iter().map(|s| s.in_system.average_until(end)).collect();
    let utilization = servers
        .iter()
        .map(|s| {
            let open = s.busy_since.map_or(0.0, |since| end - since);
            ((s.busy_time + open) / window).clamp(0.0, 1.0)
        })
        .collect();

    FarmResult {
        overall,
        per_user,
        per_computer,
        mean_in_system,
        utilization,
        end_time: end,
        measured_window: window,
        events: eng.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtlb_queueing::Mm1;

    fn mm1_spec(lambda: f64, mu: f64) -> FarmSpec {
        FarmSpec::single_class_mm1(&[mu], &[lambda], lambda)
    }

    #[test]
    fn single_mm1_matches_theory() {
        let lambda = 0.6;
        let mu = 1.0;
        let spec = mm1_spec(lambda, mu);
        let cfg = RunConfig { seed: 7, warmup_jobs: 20_000, measured_jobs: 400_000 };
        let res = run(&spec, &cfg);
        let theory = Mm1::new(lambda, mu).unwrap();
        let t = res.mean_response_time();
        assert!(
            (t - theory.mean_response_time()).abs() / theory.mean_response_time() < 0.03,
            "simulated {t}, theory {}",
            theory.mean_response_time()
        );
        // Utilization ~ 0.6, number in system ~ 1.5.
        assert!((res.utilization[0] - 0.6).abs() < 0.02, "util {}", res.utilization[0]);
        assert!(
            (res.mean_in_system[0] - theory.mean_number_in_system()).abs() < 0.1,
            "L {}",
            res.mean_in_system[0]
        );
    }

    #[test]
    fn poisson_splitting_gives_independent_mm1s() {
        // Two computers, loads by the OPTIM square-root rule; each queue
        // must behave like an independent M/M/1 at its own λ_i.
        let mu = [2.0, 1.0];
        let loads = [1.0, 0.35];
        let phi = 1.35;
        let spec = FarmSpec::single_class_mm1(&mu, &loads, phi);
        let cfg = RunConfig { seed: 11, warmup_jobs: 20_000, measured_jobs: 400_000 };
        let res = run(&spec, &cfg);
        for i in 0..2 {
            let theory = Mm1::new(loads[i], mu[i]).unwrap().mean_response_time();
            let got = res.per_computer[i].mean();
            assert!(
                (got - theory).abs() / theory < 0.05,
                "computer {i}: simulated {got}, theory {theory}"
            );
        }
        // Mixture identity: overall = Σ (λ_i/Φ) T_i.
        let mix = loads.iter().zip(&mu).map(|(&l, &m)| (l / phi) / (m - l)).sum::<f64>();
        assert!((res.mean_response_time() - mix).abs() / mix < 0.05);
    }

    #[test]
    fn per_user_stats_are_tracked() {
        // Two users with different routing must see different means.
        let spec = FarmSpec {
            services: vec![Law::exponential(2.0), Law::exponential(10.0)],
            sources: vec![
                SourceSpec { interarrival: Law::exponential(0.5), routing: vec![1.0, 0.0] },
                SourceSpec { interarrival: Law::exponential(0.5), routing: vec![0.0, 1.0] },
            ],
        };
        let cfg = RunConfig { seed: 3, warmup_jobs: 5_000, measured_jobs: 100_000 };
        let res = run(&spec, &cfg);
        // User 0 on the slow computer (T = 1/(2-0.5) = 0.667), user 1 on
        // the fast one (T = 1/(10-0.5) = 0.105).
        assert!((res.per_user[0].mean() - 1.0 / 1.5).abs() < 0.05);
        assert!((res.per_user[1].mean() - 1.0 / 9.5).abs() < 0.01);
        assert!(res.per_user[0].mean() > res.per_user[1].mean() * 4.0);
    }

    #[test]
    fn hyperexponential_arrivals_increase_waiting() {
        // H2/M/1 with CV 1.6 waits longer than M/M/1 at the same rates.
        let lambda = 0.7;
        let mu = 1.0;
        let mut spec = mm1_spec(lambda, mu);
        let cfg = RunConfig { seed: 5, warmup_jobs: 20_000, measured_jobs: 300_000 };
        let poisson = run(&spec, &cfg).mean_response_time();
        spec.sources[0].interarrival = Law::hyperexp(1.0 / lambda, 1.6);
        let bursty = run(&spec, &cfg).mean_response_time();
        assert!(
            bursty > poisson * 1.1,
            "H2 arrivals should inflate response: {bursty} vs {poisson}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let spec = mm1_spec(0.5, 1.0);
        let cfg = RunConfig { seed: 99, warmup_jobs: 100, measured_jobs: 5_000 };
        let a = run(&spec, &cfg);
        let b = run(&spec, &cfg);
        assert_eq!(a.mean_response_time(), b.mean_response_time());
        assert_eq!(a.events, b.events);
        let c = run(&spec, &RunConfig { seed: 100, ..cfg });
        assert_ne!(a.mean_response_time(), c.mean_response_time());
    }

    #[test]
    fn zero_probability_computers_get_no_jobs() {
        let mu = [1.0, 1.0, 1.0];
        let loads = [0.5, 0.5, 0.0];
        let spec = FarmSpec::single_class_mm1(&mu, &loads, 1.0);
        let cfg = RunConfig { seed: 21, warmup_jobs: 100, measured_jobs: 20_000 };
        let res = run(&spec, &cfg);
        assert_eq!(res.per_computer[2].count(), 0);
        assert_eq!(res.utilization[2], 0.0);
    }

    #[test]
    fn warmup_is_excluded_from_counts() {
        let spec = mm1_spec(0.5, 1.0);
        let cfg = RunConfig { seed: 1, warmup_jobs: 1_000, measured_jobs: 2_000 };
        let res = run(&spec, &cfg);
        // Exactly `measured_jobs` completions are recorded.
        assert_eq!(res.overall.count(), 2_000);
    }

    #[test]
    #[should_panic(expected = "routing row 0 has wrong length")]
    fn bad_routing_length_panics() {
        let spec = FarmSpec {
            services: vec![Law::exponential(1.0)],
            sources: vec![SourceSpec {
                interarrival: Law::exponential(0.5),
                routing: vec![0.5, 0.5],
            }],
        };
        let _ = run(&spec, &RunConfig::default());
    }

    fn spec_with_routing(routing: Vec<f64>) -> FarmSpec {
        FarmSpec {
            services: vec![Law::exponential(1.0); routing.len()],
            sources: vec![SourceSpec { interarrival: Law::exponential(0.4), routing }],
        }
    }

    #[test]
    fn try_run_rejects_malformed_routing() {
        use gtlb_core::error::CoreError;
        let cfg = RunConfig { seed: 1, warmup_jobs: 0, measured_jobs: 10 };
        for routing in [
            vec![0.7, -0.3, 0.6], // negative entry
            vec![0.5, f64::NAN],  // non-finite entry
            vec![0.0, 0.0],       // all zero (sum 0 ≠ 1)
            vec![0.3, 0.3],       // sums to 0.6: off by far more than drift
            vec![0.7, 0.7],       // sums to 1.4
        ] {
            let spec = spec_with_routing(routing.clone());
            assert!(
                matches!(try_run(&spec, &cfg), Err(CoreError::BadInput(_))),
                "routing {routing:?} should be rejected"
            );
        }
    }

    #[test]
    fn row_sum_error_names_the_row_and_the_sum() {
        use gtlb_core::error::CoreError;
        let cfg = RunConfig { seed: 1, warmup_jobs: 0, measured_jobs: 10 };
        // Row 1 of 2 is the bad one; the message must let the caller find
        // it without re-deriving the arithmetic: row index, the actual
        // sum, and how far past the tolerance it lies.
        let spec = FarmSpec {
            services: vec![Law::exponential(1.0); 2],
            sources: vec![
                SourceSpec { interarrival: Law::exponential(0.4), routing: vec![0.5, 0.5] },
                SourceSpec { interarrival: Law::exponential(0.4), routing: vec![0.3, 0.3] },
            ],
        };
        let err = try_run(&spec, &cfg).unwrap_err();
        let CoreError::BadInput(msg) = err else { panic!("expected BadInput, got {err:?}") };
        assert!(msg.contains("routing row 1"), "row index missing: {msg}");
        assert!(msg.contains("sums to 0.6"), "offending sum missing: {msg}");
        assert!(msg.contains("deviation 4.000e-1"), "deviation missing: {msg}");
        assert!(msg.contains("tolerance 1e-6"), "tolerance missing: {msg}");
    }

    #[test]
    fn try_run_renormalizes_only_float_drift() {
        let cfg = RunConfig { seed: 1, warmup_jobs: 0, measured_jobs: 500 };
        // 1e-7 below 1: the conservation error an iterative solver leaves.
        let drift = spec_with_routing(vec![0.5 - 5e-8, 0.5 - 5e-8]);
        let exact = spec_with_routing(vec![0.5, 0.5]);
        let a = try_run(&drift, &cfg).unwrap();
        let b = try_run(&exact, &cfg).unwrap();
        // After renormalization the drifted spec is *identical*.
        assert_eq!(a.mean_response_time().to_bits(), b.mean_response_time().to_bits());
        // Just past the tolerance: rejected.
        let over = spec_with_routing(vec![0.5 + 1e-6, 0.5 + 1e-6]);
        assert!(try_run(&over, &cfg).is_err());
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn run_panics_on_non_stochastic_row() {
        let _ = run(&spec_with_routing(vec![0.25, 0.25]), &RunConfig::default());
    }

    #[test]
    fn try_run_rejects_empty_models() {
        use gtlb_core::error::CoreError;
        let cfg = RunConfig::default();
        let no_computers = FarmSpec { services: vec![], sources: vec![] };
        assert!(matches!(try_run(&no_computers, &cfg), Err(CoreError::BadInput(_))));
        let no_sources = FarmSpec { services: vec![Law::exponential(1.0)], sources: vec![] };
        assert!(matches!(try_run(&no_sources, &cfg), Err(CoreError::BadInput(_))));
    }
}
