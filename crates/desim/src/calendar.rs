//! The future-event list (FEL).
//!
//! A time-ordered priority queue of scheduled events. Ties in simulated
//! time are broken by insertion order (FIFO), which makes event execution
//! order — and therefore every simulation result — a pure function of the
//! seed. `f64` times are accepted as long as they are finite and
//! non-decreasing relative to the current clock; the engine enforces the
//! clock monotonicity.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event tagged with its activation time and a tie-breaking sequence
/// number.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest
        // first; among equal times, lowest sequence number first.
        match other.time.partial_cmp(&self.time) {
            Some(Ordering::Equal) | None => other.seq.cmp(&self.seq),
            Some(ord) => ord,
        }
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Future-event list with deterministic FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct Calendar<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    /// If `time` is NaN or infinite.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "Calendar: event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Activation time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (keeps the sequence counter so later
    /// ties still order after earlier ones).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(3.0, "c");
        cal.schedule(1.0, "a");
        cal.schedule(2.0, "b");
        assert_eq!(cal.pop(), Some((1.0, "a")));
        assert_eq!(cal.pop(), Some((2.0, "b")));
        assert_eq!(cal.pop(), Some((3.0, "c")));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        for i in 0..10 {
            cal.schedule(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(cal.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        cal.schedule(1.0, 1);
        cal.schedule(4.0, 4);
        assert_eq!(cal.pop(), Some((1.0, 1)));
        cal.schedule(2.0, 2);
        cal.schedule(3.0, 3);
        assert_eq!(cal.pop(), Some((2.0, 2)));
        assert_eq!(cal.pop(), Some((3.0, 3)));
        assert_eq!(cal.pop(), Some((4.0, 4)));
    }

    #[test]
    fn peek_and_len() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        assert_eq!(cal.peek_time(), None);
        cal.schedule(2.5, ());
        cal.schedule(1.5, ());
        assert_eq!(cal.len(), 2);
        assert_eq!(cal.peek_time(), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut cal = Calendar::new();
        cal.schedule(f64::NAN, ());
    }

    #[test]
    fn clear_empties() {
        let mut cal = Calendar::new();
        cal.schedule(1.0, ());
        cal.clear();
        assert!(cal.is_empty());
    }
}
