//! `gtlb-desim` — a discrete-event simulation engine replacing Sim++.
//!
//! The paper's experiments (§3.4.1, §4.4.1) were produced with Sim++, an
//! event-scheduling C++ simulation library: jobs arrive at a central
//! dispatcher, are routed to one of `n` computers according to the load
//! allocation under test, and are served run-to-completion in FCFS order;
//! each run generates 1–2 million jobs and is replicated five times with
//! different random streams, reporting means whose standard error is below
//! 5 % at 95 % confidence.
//!
//! This crate rebuilds that machinery:
//!
//! * [`rng`] — deterministic xoshiro256++ PRNG with SplitMix64 seeding and
//!   independent sub-streams (one per source/replication);
//! * [`calendar`] — the future-event list: a time-ordered priority queue
//!   with FIFO tie-breaking for reproducibility;
//! * [`engine`] — a minimal generic event loop (`schedule` / `pop`);
//! * [`stats`] — Welford mean/variance, time-weighted averages, and
//!   Student-t confidence intervals for replication summaries;
//! * [`farm`] — the paper's actual model: multi-user renewal sources, a
//!   probabilistic dispatcher, and a farm of FCFS single-server queues,
//!   with per-user and per-computer response-time accumulators and warm-up
//!   deletion;
//! * [`replication`] — the "replicate with independent streams and
//!   aggregate" driver;
//! * [`par`] — deterministic fork–join fan-out (order-preserving parallel
//!   map) used by the replication layers above.
//!
//! The engine is deliberately single-threaded: determinism per seed is a
//! hard requirement. Parallelism across *replications* and parameter
//! sweeps lives one layer up (`gtlb-sim`), where runs are independent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod engine;
pub mod farm;
pub mod par;
pub mod replication;
pub mod rng;
pub mod stats;

pub use engine::Engine;
pub use rng::Xoshiro256PlusPlus;
