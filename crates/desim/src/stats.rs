//! Simulation output statistics.
//!
//! The paper reports means ("expected response time") whose standard error
//! is below 5 % at the 95 % confidence level, averaged over five
//! replications. This module supplies the accumulators: numerically stable
//! streaming mean/variance (Welford), time-weighted averages for
//! state variables such as queue length, and Student-t confidence
//! intervals for across-replication summaries.

/// Streaming mean and variance (Welford's algorithm). Numerically stable
/// for millions of observations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean, `s/√n`.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Merges another accumulator (parallel-combine form of Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Exponentially weighted moving average: `v ← (1−α)·v + α·x`. The
/// cheap constant-memory smoother for streams whose recent history
/// matters more than their past (inter-heartbeat gaps in a failure
/// detector, drifting rates). The first observation initializes the
/// average directly, so a cold accumulator is unbiased.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    n: u64,
}

impl Ewma {
    /// Empty accumulator with smoothing factor `alpha`.
    ///
    /// # Panics
    /// If `alpha` is not in `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "Ewma: smoothing factor must lie in (0, 1], got {alpha}"
        );
        Self { alpha, value: 0.0, n: 0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, x: f64) {
        if self.n == 0 {
            self.value = x;
        } else {
            self.value += self.alpha * (x - self.value);
        }
        self.n += 1;
    }

    /// The smoothed value, once at least one observation landed.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        (self.n > 0).then_some(self.value)
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Time-weighted average of a piecewise-constant state variable (queue
/// length, number in system). `update(t, v)` declares that the variable
/// takes value `v` from time `t` onward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    last_time: f64,
    last_value: f64,
    weighted_sum: f64,
    start_time: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self { last_time: 0.0, last_value: 0.0, weighted_sum: 0.0, start_time: 0.0, started: false }
    }

    /// Declares the variable's value `v` starting at time `t`.
    ///
    /// # Panics
    /// If `t` moves backwards.
    pub fn update(&mut self, t: f64, v: f64) {
        if !self.started {
            self.started = true;
            self.start_time = t;
        } else {
            assert!(t >= self.last_time, "TimeWeighted: time must be nondecreasing");
            self.weighted_sum += self.last_value * (t - self.last_time);
        }
        self.last_time = t;
        self.last_value = v;
    }

    /// Time average over `[start, horizon]`, closing the last segment at
    /// `horizon`.
    #[must_use]
    pub fn average_until(&self, horizon: f64) -> f64 {
        if !self.started || horizon <= self.start_time {
            return f64::NAN;
        }
        let tail = self.last_value * (horizon - self.last_time).max(0.0);
        (self.weighted_sum + tail) / (horizon - self.start_time)
    }

    /// Resets the accumulator but keeps the current value as the new
    /// starting state (used for warm-up deletion).
    pub fn restart_at(&mut self, t: f64) {
        self.weighted_sum = 0.0;
        self.start_time = t;
        self.last_time = t;
        self.started = true;
    }
}

/// Batch-means estimator: a single-run alternative to independent
/// replications. Observations are grouped into fixed-size batches; batch
/// means of a weakly dependent stationary sequence are approximately
/// i.i.d., so a Student-t interval over them is valid — the standard
/// steady-state output-analysis technique complementing the paper's
/// replication protocol.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current: Welford,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Estimator with the given batch size (observations per batch).
    ///
    /// # Panics
    /// If `batch_size == 0`.
    #[must_use]
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "BatchMeans: batch size must be positive");
        Self { batch_size, current: Welford::new(), batch_means: Vec::new() }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.current.add(x);
        if self.current.count() == self.batch_size {
            self.batch_means.push(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Completed batches so far.
    #[must_use]
    pub fn batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Grand mean over completed batches (`NaN` if none).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.batch_means.is_empty() {
            return f64::NAN;
        }
        self.batch_means.iter().sum::<f64>() / self.batch_means.len() as f64
    }

    /// 95 % confidence interval over the batch means. The trailing
    /// partial batch is discarded (standard practice).
    ///
    /// # Panics
    /// If no batch has completed.
    #[must_use]
    pub fn confidence_interval(&self) -> ConfidenceInterval {
        ConfidenceInterval::from_estimates(&self.batch_means)
    }
}

/// Two-sided Student-t critical value at 95 % confidence for `df` degrees
/// of freedom (exact table for small `df`, normal approximation beyond).
#[must_use]
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=60 => 2.02,
        61..=120 => 2.00,
        _ => 1.96,
    }
}

/// Mean with a 95 % confidence half-width, summarizing one estimate per
/// replication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Across-replication mean.
    pub mean: f64,
    /// 95 % half-width (`t · s/√R`).
    pub half_width: f64,
    /// Number of replications summarized.
    pub replications: u64,
}

impl ConfidenceInterval {
    /// Builds the interval from per-replication estimates.
    ///
    /// # Panics
    /// If `estimates` is empty.
    #[must_use]
    pub fn from_estimates(estimates: &[f64]) -> Self {
        assert!(!estimates.is_empty(), "ConfidenceInterval: no estimates");
        let mut w = Welford::new();
        for &e in estimates {
            w.add(e);
        }
        let hw = if w.count() >= 2 {
            t_critical_95(w.count() - 1) * w.std_error()
        } else {
            f64::INFINITY
        };
        Self { mean: w.mean(), half_width: hw, replications: w.count() }
    }

    /// Relative half-width `half_width / |mean|` (the paper's "< 5 %
    /// standard error" check).
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        self.half_width / self.mean.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1: Σ(x-5)² = 32, /7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        let mut w = Welford::new();
        w.add(3.0);
        assert_eq!(w.mean(), 3.0);
        assert!(w.variance().is_nan());
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn ewma_first_observation_initializes() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.observe(0.0);
        assert_eq!(e.value(), Some(5.0));
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn ewma_converges_to_a_constant_stream() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.observe(3.0);
        }
        assert!((e.value().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn time_weighted_rectangles() {
        let mut tw = TimeWeighted::new();
        tw.update(0.0, 1.0); // value 1 on [0,2)
        tw.update(2.0, 3.0); // value 3 on [2,4)
        assert!((tw.average_until(4.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_warmup_restart() {
        let mut tw = TimeWeighted::new();
        tw.update(0.0, 100.0); // garbage warm-up
        tw.update(5.0, 2.0);
        tw.restart_at(10.0); // delete everything before t=10; value stays 2
        assert!((tw.average_until(20.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn t_table_spot_checks() {
        assert!((t_critical_95(4) - 2.776).abs() < 1e-9); // 5 replications
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert_eq!(t_critical_95(1000), 1.96);
        assert_eq!(t_critical_95(0), f64::INFINITY);
    }

    #[test]
    fn batch_means_groups_correctly() {
        let mut bm = BatchMeans::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0] {
            bm.add(x);
        }
        // Batches: (1,2,3) -> 2, (4,5,6) -> 5; the 7 is a partial batch.
        assert_eq!(bm.batches(), 2);
        assert!((bm.mean() - 3.5).abs() < 1e-12);
        let ci = bm.confidence_interval();
        assert_eq!(ci.replications, 2);
        assert!((ci.mean - 3.5).abs() < 1e-12);
    }

    #[test]
    fn batch_means_empty_is_nan() {
        let bm = BatchMeans::new(10);
        assert!(bm.mean().is_nan());
        assert_eq!(bm.batches(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn batch_means_rejects_zero() {
        let _ = BatchMeans::new(0);
    }

    #[test]
    fn confidence_interval_five_replications() {
        let est = [10.0, 11.0, 9.0, 10.5, 9.5];
        let ci = ConfidenceInterval::from_estimates(&est);
        assert_eq!(ci.replications, 5);
        assert!((ci.mean - 10.0).abs() < 1e-12);
        // s = sqrt(0.625), hw = 2.776*s/sqrt(5).
        let s = (0.625f64).sqrt();
        assert!((ci.half_width - 2.776 * s / 5f64.sqrt()).abs() < 1e-9);
        assert!(ci.relative_half_width() < 0.15);
    }
}
