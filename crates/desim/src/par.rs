//! Deterministic fork–join parallelism for replication fan-out.
//!
//! A tiny scoped-thread work-stealing-free pool: the input items are
//! claimed by index from an atomic counter and every output lands in its
//! input's slot, so the result vector is **bit-identical to a sequential
//! map** regardless of thread count or scheduling. This is the property
//! the replication contract relies on (`replication_seed(s, r)` fixes the
//! randomness per item; this module fixes the aggregation order).
//!
//! The worker count honours the `RAYON_NUM_THREADS` environment variable
//! (the de-facto convention for capping simulation parallelism, kept for
//! compatibility with earlier revisions that used rayon), falling back to
//! the machine's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of worker threads used by [`par_map`]: `RAYON_NUM_THREADS` when
/// set to a positive integer, otherwise the available parallelism.
#[must_use]
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on [`thread_count`] threads. Output order matches
/// input order exactly (see the module docs for the determinism argument).
pub fn par_map<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    par_map_with_threads(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (1 runs inline on the calling
/// thread). Exposed so tests can compare thread counts directly.
///
/// # Panics
/// If `threads == 0` or a worker panics (the panic is propagated).
pub fn par_map_with_threads<T, O, F>(threads: usize, items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    assert!(threads > 0, "par_map: need at least one thread");
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    // Hand items out by index; each worker sends (index, output) back and
    // the collector reassembles them in input order.
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|t| std::sync::Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let slots = &slots;
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().expect("par_map: poisoned slot").take();
                let item = item.expect("par_map: slot claimed twice");
                let out = f(item);
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut results: Vec<Option<O>> = (0..n).map(|_| None).collect();
        let mut received = 0usize;
        while let Ok((i, out)) = rx.recv() {
            results[i] = Some(out);
            received += 1;
        }
        assert!(received == n, "par_map: a worker panicked before finishing");
        results.into_iter().map(|o| o.expect("par_map: missing slot")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        let par = par_map_with_threads(7, items, |x| x * x);
        assert_eq!(par, seq);
    }

    #[test]
    fn single_thread_is_inline() {
        let out = par_map_with_threads(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn thread_counts_agree() {
        let items: Vec<u32> = (0..37).collect();
        let a = par_map_with_threads(1, items.clone(), |x| f64::from(x).sqrt());
        let b = par_map_with_threads(4, items.clone(), |x| f64::from(x).sqrt());
        let c = par_map_with_threads(16, items, |x| f64::from(x).sqrt());
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u8> = par_map_with_threads(4, Vec::<u8>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map_with_threads(4, vec![9], |x| x * 2), vec![18]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = par_map_with_threads(0, vec![1], |x| x);
    }
}
