//! The paper's published system configurations.

use gtlb_core::model::Cluster;
use gtlb_core::noncoop::UserSystem;

/// Table 3.1 (and 5.1): 16 heterogeneous computers, relative rates
/// {10, 5, 2, 1} × counts {2, 3, 5, 6}, slowest at 0.013 jobs/s ("a value
/// that can be found in real distributed systems").
///
/// # Panics
/// Never (constants are valid).
#[must_use]
pub fn table31() -> Cluster {
    Cluster::from_groups(&[(2, 0.13), (3, 0.065), (5, 0.026), (6, 0.013)])
        .expect("table 3.1 constants are valid")
}

/// Table 4.1: the same 16-computer shape at job-scale rates
/// {100, 50, 20, 10} jobs/s.
///
/// # Panics
/// Never (constants are valid).
#[must_use]
pub fn table41() -> Cluster {
    Cluster::from_groups(&[(2, 100.0), (3, 50.0), (5, 20.0), (6, 10.0)])
        .expect("table 4.1 constants are valid")
}

/// Table 5.1 equals Table 3.1; the mechanism bids are the inverse rates.
#[must_use]
pub fn table51_bids() -> Vec<f64> {
    table31().rates().iter().map(|&r| 1.0 / r).collect()
}

/// The heterogeneity-sweep family (Figures 3.4 / 4.6): 2 fast + 14 slow
/// computers; the fast computers run at `skew ×` the slow rate.
///
/// # Panics
/// If `skew < 1` or `slow_rate ≤ 0`.
#[must_use]
pub fn skewed_cluster(skew: f64, slow_rate: f64) -> Cluster {
    assert!(skew >= 1.0, "speed skewness must be at least 1");
    Cluster::from_groups(&[(2, skew * slow_rate), (14, slow_rate)])
        .expect("skewed cluster parameters are valid")
}

/// The system-size family (Figures 3.5 / 4.7): 2 fast computers
/// (relative rate 10) plus `n − 2` slow ones (relative rate 1), `n ≥ 2`.
///
/// # Panics
/// If `n < 2` or `slow_rate ≤ 0`.
#[must_use]
pub fn sized_cluster(n: usize, slow_rate: f64) -> Cluster {
    assert!(n >= 2, "the family starts at the 2 fast computers");
    let mut groups = vec![(2, 10.0 * slow_rate)];
    if n > 2 {
        groups.push((n - 2, slow_rate));
    }
    Cluster::from_groups(&groups).expect("sized cluster parameters are valid")
}

/// The 10 users' shares of the total arrival rate for the Chapter 4
/// experiments. The dissertation text does not list the split; this
/// few-heavy-many-light vector follows the follow-up JPDC 2005 paper's
/// setup (see DESIGN.md, substitution 3).
pub const USER_SHARES_10: [f64; 10] = [0.3, 0.2, 0.1, 0.07, 0.07, 0.06, 0.06, 0.05, 0.05, 0.04];

/// Shares for an arbitrary user count: the first `min(m, 10)` entries of
/// [`USER_SHARES_10`]'s shape, extended uniformly and renormalized. Used
/// by the convergence-vs-user-count sweep (Figure 4.3).
#[must_use]
pub fn user_shares(m: usize) -> Vec<f64> {
    assert!(m >= 1, "need at least one user");
    let mut q: Vec<f64> = (0..m).map(|j| if j < 10 { USER_SHARES_10[j] } else { 0.04 }).collect();
    let total: f64 = q.iter().sum();
    for v in &mut q {
        *v /= total;
    }
    q
}

/// The Chapter 4 reference system: Table 4.1's cluster at utilization
/// `rho`, shared by `m` users with [`user_shares`] splits.
///
/// # Panics
/// If `rho ∉ (0, 1)`.
#[must_use]
pub fn table41_system(rho: f64, m: usize) -> UserSystem {
    let cluster = table41();
    let phi = cluster.arrival_rate_for_utilization(rho);
    UserSystem::with_shares(cluster, phi, &user_shares(m))
        .expect("table 4.1 system parameters are valid")
}

/// The utilization grid of Figures 3.1 / 3.6 / 4.4 / 4.8 / 5.2:
/// 10 % … 90 %.
pub const UTILIZATION_GRID: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// The coefficient of variation of the hyper-exponential arrival
/// experiments (Figures 3.6 / 4.8).
pub const HYPEREXP_CV: f64 = 1.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_match_published_aggregates() {
        assert_eq!(table31().n(), 16);
        assert!((table31().total_rate() - 0.663).abs() < 1e-12);
        assert_eq!(table41().n(), 16);
        assert!((table41().total_rate() - 510.0).abs() < 1e-9);
        assert_eq!(table51_bids().len(), 16);
        assert!((table51_bids()[0] - 1.0 / 0.13).abs() < 1e-12);
    }

    #[test]
    fn skew_family_endpoints() {
        let homo = skewed_cluster(1.0, 1.0);
        assert!((homo.speed_skewness() - 1.0).abs() < 1e-12);
        assert_eq!(homo.n(), 16);
        let hetero = skewed_cluster(20.0, 1.0);
        assert!((hetero.speed_skewness() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn size_family() {
        assert_eq!(sized_cluster(2, 1.0).n(), 2);
        assert_eq!(sized_cluster(20, 1.0).n(), 20);
        assert!((sized_cluster(20, 1.0).total_rate() - 38.0).abs() < 1e-12);
    }

    #[test]
    fn user_shares_normalize() {
        for m in [1, 4, 10, 16, 32] {
            let q = user_shares(m);
            assert_eq!(q.len(), m);
            let s: f64 = q.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "m={m}: sum {s}");
        }
        for (a, b) in user_shares(10).iter().zip(&USER_SHARES_10) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn table41_system_is_feasible() {
        let sys = table41_system(0.6, 10);
        assert_eq!(sys.m(), 10);
        assert!((sys.total_arrival_rate() - 306.0).abs() < 1e-9);
    }
}
