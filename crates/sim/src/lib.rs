//! `gtlb-sim` — the experiment driver.
//!
//! Ties the algorithm crates to the simulation substrate and packages the
//! paper's experimental methodology:
//!
//! * [`scenario`] — the published system configurations (Tables 3.1, 4.1,
//!   5.1, 6.1) and the parametrized families behind the heterogeneity and
//!   system-size sweeps;
//! * [`analytic`] — closed-form (M/M/1) evaluation of any scheme across a
//!   utilization sweep: instant, exact, used for the Poisson-arrival
//!   figures;
//! * [`runner`] — discrete-event evaluation with independent
//!   replications fanned out across cores with the deterministic
//!   [`gtlb_desim::par`] pool (results are bit-identical to sequential
//!   runs: seeds are derived per replication); required for the
//!   hyper-exponential-arrival figures where no closed form exists;
//! * [`report`] — fixed-width tables and CSV output matching the rows
//!   and series the paper reports;
//! * [`estimate`] — service-rate estimation from simulation
//!   observations, closing the paper's "rates can be estimated from run
//!   queue lengths" remark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod estimate;
pub mod report;
pub mod runner;
pub mod scenario;
