//! Discrete-event evaluation with parallel replications.
//!
//! Builds `gtlb-desim` farm models from allocations/strategy profiles and
//! replicates them in parallel with [`gtlb_desim::par`]. Replication `r`
//! of base seed `s` always runs with `replication_seed(s, r)`, so the
//! parallel results are bit-identical to sequential ones regardless of
//! thread count or scheduling — the determinism contract of the
//! simulation engine survives the fan-out (`RAYON_NUM_THREADS=1` and the
//! default pool produce the same bits; a test asserts this).

use gtlb_core::model::Cluster;
use gtlb_core::noncoop::{StrategyProfile, UserSystem};
use gtlb_desim::farm::{run, FarmResult, FarmSpec, RunConfig, SourceSpec};
use gtlb_desim::par::par_map;
use gtlb_desim::replication::{replication_seed, ReplicatedResult};
use gtlb_desim::stats::ConfidenceInterval;
use gtlb_queueing::dist::Law;

/// Arrival-process family for the sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalLaw {
    /// Poisson arrivals (exponential interarrivals) — the default model.
    Poisson,
    /// Two-stage hyper-exponential interarrivals with this coefficient of
    /// variation (Figures 3.6 / 4.8 use 1.6).
    HyperExp {
        /// Coefficient of variation (≥ 1).
        cv: f64,
    },
}

impl ArrivalLaw {
    fn law(&self, rate: f64) -> Law {
        match *self {
            ArrivalLaw::Poisson => Law::exponential(rate),
            ArrivalLaw::HyperExp { cv } => Law::hyperexp(1.0 / rate, cv),
        }
    }
}

/// Simulation budget.
#[derive(Debug, Clone, Copy)]
pub struct SimBudget {
    /// Base seed.
    pub seed: u64,
    /// Independent replications (the paper uses 5).
    pub replications: u32,
    /// Warm-up completions discarded per replication.
    pub warmup_jobs: u64,
    /// Measured completions per replication.
    pub measured_jobs: u64,
}

impl Default for SimBudget {
    fn default() -> Self {
        Self { seed: 0x6A0B, replications: 5, warmup_jobs: 20_000, measured_jobs: 200_000 }
    }
}

impl SimBudget {
    /// A light-weight budget for CI-sized test runs.
    #[must_use]
    pub fn quick() -> Self {
        Self { seed: 0x6A0B, replications: 3, warmup_jobs: 2_000, measured_jobs: 30_000 }
    }
}

/// Builds the farm model for a single-class allocation on a cluster:
/// one source of total rate `phi` (split per the loads), exponential
/// servers at the cluster's rates.
///
/// # Panics
/// If `phi ≤ 0` or the lengths mismatch.
#[must_use]
pub fn single_class_spec(
    cluster: &Cluster,
    loads: &[f64],
    phi: f64,
    arrivals: ArrivalLaw,
) -> FarmSpec {
    assert_eq!(loads.len(), cluster.n(), "loads/cluster mismatch");
    assert!(phi > 0.0, "phi must be positive");
    FarmSpec {
        services: cluster.rates().iter().map(|&m| Law::exponential(m)).collect(),
        sources: vec![SourceSpec {
            interarrival: arrivals.law(phi),
            routing: loads.iter().map(|&l| l / phi).collect(),
        }],
    }
}

/// Builds the farm model for a multi-user strategy profile: one source
/// per user with its own rate and routing row.
#[must_use]
pub fn multi_user_spec(
    system: &UserSystem,
    profile: &StrategyProfile,
    arrivals: ArrivalLaw,
) -> FarmSpec {
    FarmSpec {
        services: system.cluster().rates().iter().map(|&m| Law::exponential(m)).collect(),
        sources: system
            .user_rates()
            .iter()
            .enumerate()
            .map(|(j, &phi_j)| SourceSpec {
                interarrival: arrivals.law(phi_j),
                routing: profile.row(j).to_vec(),
            })
            .collect(),
    }
}

/// Runs `budget.replications` independent replications of `spec` in
/// parallel and aggregates exactly like
/// [`gtlb_desim::replication::replicate`] (same seeds, same statistics).
#[must_use]
pub fn replicate_parallel(spec: &FarmSpec, budget: &SimBudget) -> ReplicatedResult {
    assert!(budget.replications > 0, "need at least one replication");
    let raw: Vec<FarmResult> = par_map((0..budget.replications).collect(), |r| {
        let cfg = RunConfig {
            seed: replication_seed(budget.seed, r),
            warmup_jobs: budget.warmup_jobs,
            measured_jobs: budget.measured_jobs,
        };
        run(spec, &cfg)
    });
    aggregate(raw)
}

fn aggregate(raw: Vec<FarmResult>) -> ReplicatedResult {
    let overall = ConfidenceInterval::from_estimates(
        &raw.iter().map(|r| r.overall.mean()).collect::<Vec<_>>(),
    );
    let m = raw[0].per_user.len();
    let n = raw[0].per_computer.len();
    let per_user = (0..m)
        .map(|j| {
            ConfidenceInterval::from_estimates(
                &raw.iter().map(|r| r.per_user[j].mean()).collect::<Vec<_>>(),
            )
        })
        .collect();
    let per_computer = (0..n)
        .map(|i| {
            ConfidenceInterval::from_estimates(
                &raw.iter().map(|r| r.per_computer[i].mean()).collect::<Vec<_>>(),
            )
        })
        .collect();
    let utilization = (0..n)
        .map(|i| {
            ConfidenceInterval::from_estimates(
                &raw.iter().map(|r| r.utilization[i]).collect::<Vec<_>>(),
            )
        })
        .collect();
    ReplicatedResult { overall, per_user, per_computer, utilization, raw }
}

/// Fairness index across computers as measured by the simulation
/// (Jain's index of the per-computer mean response times, used computers
/// only).
#[must_use]
pub fn simulated_computer_fairness(result: &ReplicatedResult) -> f64 {
    let times: Vec<f64> = result
        .per_computer
        .iter()
        .filter(|ci| ci.mean.is_finite() && !ci.mean.is_nan())
        .map(|ci| ci.mean)
        .collect();
    gtlb_core::allocation::jain_index(&times)
}

/// Fairness index across users as measured by the simulation.
#[must_use]
pub fn simulated_user_fairness(result: &ReplicatedResult) -> f64 {
    let times: Vec<f64> = result.per_user.iter().map(|ci| ci.mean).collect();
    gtlb_core::allocation::jain_index(&times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{table31, table41_system};
    use gtlb_core::noncoop::{MultiUserScheme, NashScheme};
    use gtlb_core::schemes::{Coop, SingleClassScheme};
    use gtlb_desim::replication::replicate;

    #[test]
    fn parallel_replication_is_bit_identical_to_sequential() {
        let cluster = table31();
        let phi = cluster.arrival_rate_for_utilization(0.5);
        let loads = Coop.allocate(&cluster, phi).unwrap();
        let spec = single_class_spec(&cluster, loads.loads(), phi, ArrivalLaw::Poisson);
        let budget =
            SimBudget { replications: 3, warmup_jobs: 500, measured_jobs: 10_000, seed: 7 };
        let par = replicate_parallel(&spec, &budget);
        let seq =
            replicate(&spec, &RunConfig { seed: 7, warmup_jobs: 500, measured_jobs: 10_000 }, 3);
        assert_eq!(par.overall.mean, seq.overall.mean);
        assert_eq!(par.overall.half_width, seq.overall.half_width);
    }

    #[test]
    fn coop_simulation_matches_analytics() {
        let cluster = table31();
        let phi = cluster.arrival_rate_for_utilization(0.5);
        let alloc = Coop.allocate(&cluster, phi).unwrap();
        let spec = single_class_spec(&cluster, alloc.loads(), phi, ArrivalLaw::Poisson);
        let res = replicate_parallel(&spec, &SimBudget::quick());
        let analytic = alloc.mean_response_time(&cluster);
        assert!(
            (res.overall.mean - analytic).abs() / analytic < 0.05,
            "simulated {} vs analytic {analytic}",
            res.overall.mean
        );
        // Simulated fairness close to 1 for COOP.
        assert!(simulated_computer_fairness(&res) > 0.98);
    }

    #[test]
    fn hyperexp_arrivals_inflate_response_times() {
        let cluster = table31();
        let phi = cluster.arrival_rate_for_utilization(0.6);
        let alloc = Coop.allocate(&cluster, phi).unwrap();
        let poisson = replicate_parallel(
            &single_class_spec(&cluster, alloc.loads(), phi, ArrivalLaw::Poisson),
            &SimBudget::quick(),
        );
        let bursty = replicate_parallel(
            &single_class_spec(&cluster, alloc.loads(), phi, ArrivalLaw::HyperExp { cv: 1.6 }),
            &SimBudget::quick(),
        );
        assert!(bursty.overall.mean > poisson.overall.mean);
    }

    #[test]
    fn multi_user_simulation_tracks_per_user_analytics() {
        let system = table41_system(0.6, 4);
        let profile = NashScheme::default().profile(&system).unwrap();
        let spec = multi_user_spec(&system, &profile, ArrivalLaw::Poisson);
        let res = replicate_parallel(&spec, &SimBudget::quick());
        let analytic = profile.user_times(&system);
        for (j, (ci, &a)) in res.per_user.iter().zip(&analytic).enumerate() {
            let sim = ci.mean;
            assert!((sim - a).abs() / a < 0.1, "user {j}: sim {sim} vs analytic {a}");
        }
        assert!(simulated_user_fairness(&res) > 0.9);
    }
}
