//! Closed-form evaluation of the schemes under Poisson arrivals.
//!
//! With exponential interarrival and service times every computer is an
//! exact M/M/1 queue, so each figure's quantities (overall expected
//! response time, fairness index, per-computer/per-user times) follow
//! directly from the allocation — no simulation noise. The DES runner
//! ([`crate::runner`]) cross-validates these numbers and covers the
//! hyper-exponential cases.

use gtlb_core::model::Cluster;
use gtlb_core::noncoop::{MultiUserScheme, UserSystem};
use gtlb_core::schemes::SingleClassScheme;
use gtlb_core::CoreError;

/// One point of a utilization sweep (one line segment of Figure 3.1).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Scheme display name.
    pub scheme: String,
    /// System utilization `ρ`.
    pub utilization: f64,
    /// Overall expected response time (seconds).
    pub response_time: f64,
    /// Fairness index.
    pub fairness: f64,
}

/// Evaluates single-class schemes across a utilization grid
/// (Figures 3.1's two panels).
///
/// # Errors
/// Propagates scheme failures.
pub fn sweep_single_class(
    cluster: &Cluster,
    schemes: &[&dyn SingleClassScheme],
    utilizations: &[f64],
) -> Result<Vec<SweepPoint>, CoreError> {
    let mut out = Vec::with_capacity(schemes.len() * utilizations.len());
    for &s in schemes {
        for &rho in utilizations {
            let phi = cluster.arrival_rate_for_utilization(rho);
            let alloc = s.allocate(cluster, phi)?;
            out.push(SweepPoint {
                scheme: s.name().to_string(),
                utilization: rho,
                response_time: alloc.mean_response_time(cluster),
                fairness: alloc.fairness_index(cluster),
            });
        }
    }
    Ok(out)
}

/// Evaluates multi-user schemes across a utilization grid on a cluster
/// with the given user shares (Figure 4.4).
///
/// # Errors
/// Propagates scheme failures.
pub fn sweep_multi_user(
    cluster: &Cluster,
    shares: &[f64],
    schemes: &[&dyn MultiUserScheme],
    utilizations: &[f64],
) -> Result<Vec<SweepPoint>, CoreError> {
    let mut out = Vec::with_capacity(schemes.len() * utilizations.len());
    for &s in schemes {
        for &rho in utilizations {
            let phi = cluster.arrival_rate_for_utilization(rho);
            let system = UserSystem::with_shares(cluster.clone(), phi, shares)?;
            let profile = s.profile(&system)?;
            out.push(SweepPoint {
                scheme: s.name().to_string(),
                utilization: rho,
                response_time: profile.overall_response_time(&system),
                fairness: profile.fairness_index(&system),
            });
        }
    }
    Ok(out)
}

/// Per-computer expected response times under one scheme at one load
/// (Figures 3.2 / 3.3). Unused computers report `None`.
///
/// # Errors
/// Propagates scheme failures.
pub fn per_computer_times(
    cluster: &Cluster,
    scheme: &dyn SingleClassScheme,
    rho: f64,
) -> Result<Vec<Option<f64>>, CoreError> {
    let phi = cluster.arrival_rate_for_utilization(rho);
    Ok(scheme.allocate(cluster, phi)?.response_times(cluster))
}

/// Per-user expected response times under one multi-user scheme
/// (Figure 4.5).
///
/// # Errors
/// Propagates scheme failures.
pub fn per_user_times(
    system: &UserSystem,
    scheme: &dyn MultiUserScheme,
) -> Result<Vec<f64>, CoreError> {
    Ok(scheme.profile(system)?.user_times(system))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{table31, table41, user_shares, UTILIZATION_GRID};
    use gtlb_core::noncoop::{
        GlobalOptimalScheme, IndividualOptimalScheme, NashScheme, ProportionalScheme,
    };
    use gtlb_core::schemes::{Coop, Optim, Prop, Wardrop};

    #[test]
    fn figure_3_1_shape() {
        let cluster = table31();
        let schemes: [&dyn SingleClassScheme; 4] = [&Coop, &Prop, &Wardrop::default(), &Optim];
        let pts = sweep_single_class(&cluster, &schemes, &UTILIZATION_GRID).unwrap();
        assert_eq!(pts.len(), 36);
        let get = |name: &str, rho: f64| {
            pts.iter().find(|p| p.scheme == name && (p.utilization - rho).abs() < 1e-12).unwrap()
        };
        // Paper: at ρ=50%, COOP ≈ 19% below PROP and ≈ 20% above OPTIM.
        let coop = get("COOP", 0.5).response_time;
        let prop = get("PROP", 0.5).response_time;
        let optim = get("OPTIM", 0.5).response_time;
        assert!(coop < prop, "COOP {coop} vs PROP {prop}");
        assert!(coop > optim, "COOP {coop} vs OPTIM {optim}");
        let below_prop = (prop - coop) / prop * 100.0;
        let above_optim = (coop - optim) / optim * 100.0;
        assert!((below_prop - 19.0).abs() < 5.0, "below PROP: {below_prop}%");
        assert!((above_optim - 20.0).abs() < 6.0, "above OPTIM: {above_optim}%");
        // COOP and WARDROP coincide over the whole range.
        for rho in UTILIZATION_GRID {
            let c = get("COOP", rho);
            let w = get("WARDROP", rho);
            assert!((c.response_time - w.response_time).abs() < 1e-6 * c.response_time);
            assert!((c.fairness - 1.0).abs() < 1e-9);
            assert!((w.fairness - 1.0).abs() < 1e-6);
        }
        // OPTIM's fairness decays from 1 toward ~0.88 at ρ=90%.
        assert!(get("OPTIM", 0.1).fairness > 0.99);
        let f_high = get("OPTIM", 0.9).fairness;
        assert!((0.8..0.95).contains(&f_high), "OPTIM fairness at 90%: {f_high}");
    }

    #[test]
    fn figure_4_4_shape() {
        let cluster = table41();
        let nash = NashScheme::default();
        let ios = IndividualOptimalScheme::new();
        let schemes: [&dyn MultiUserScheme; 4] =
            [&nash, &GlobalOptimalScheme, &ios, &ProportionalScheme];
        let pts = sweep_multi_user(&cluster, &user_shares(10), &schemes, &[0.3, 0.5, 0.9]).unwrap();
        let get = |name: &str, rho: f64| {
            pts.iter().find(|p| p.scheme == name && (p.utilization - rho).abs() < 1e-12).unwrap()
        };
        // Medium load: GOS <= NASH < PS; NASH close to GOS.
        let gos = get("GOS", 0.5).response_time;
        let nash_t = get("NASH", 0.5).response_time;
        let ps = get("PS", 0.5).response_time;
        assert!(gos <= nash_t + 1e-9 && nash_t < ps);
        assert!((nash_t - gos) / gos < 0.2, "NASH should approach GOS");
        // PS and IOS perfectly fair; NASH close to 1.
        assert!((get("PS", 0.9).fairness - 1.0).abs() < 1e-9);
        assert!((get("IOS", 0.9).fairness - 1.0).abs() < 1e-6);
        assert!(get("NASH", 0.9).fairness > 0.9);
    }

    #[test]
    fn per_computer_times_figure_3_2() {
        let cluster = table31();
        let coop = per_computer_times(&cluster, &Coop, 0.5).unwrap();
        // COOP leaves the six slowest computers idle at ρ = 50 %.
        assert_eq!(coop.iter().filter(|t| t.is_none()).count(), 6);
        // All used computers share ≈39.4 s.
        for t in coop.iter().flatten() {
            assert!((t - 39.447).abs() < 0.05, "t = {t}");
        }
        // PROP's spread between fastest and slowest is large (paper: 15 s
        // vs 155 s at medium load).
        let prop = per_computer_times(&cluster, &Prop, 0.5).unwrap();
        let t_fast = prop[0].unwrap();
        let t_slow = prop[15].unwrap();
        assert!((t_fast - 15.4).abs() < 1.0, "fast {t_fast}");
        assert!((t_slow - 153.8).abs() < 5.0, "slow {t_slow}");
    }

    #[test]
    fn per_user_times_figure_4_5() {
        let system = crate::scenario::table41_system(0.6, 10);
        let nash_times = per_user_times(&system, &NashScheme::default()).unwrap();
        let gos_times = per_user_times(&system, &GlobalOptimalScheme).unwrap();
        let ps_times = per_user_times(&system, &ProportionalScheme).unwrap();
        // PS: all users equal. GOS: large spread. NASH: mild spread.
        let spread = |ts: &[f64]| {
            let max = ts.iter().copied().fold(0.0f64, f64::max);
            let min = ts.iter().copied().fold(f64::INFINITY, f64::min);
            max / min
        };
        assert!((spread(&ps_times) - 1.0).abs() < 1e-9);
        assert!(spread(&gos_times) > spread(&nash_times));
    }
}
