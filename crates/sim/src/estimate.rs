//! Rate estimation from simulation observations.
//!
//! The paper's NASH algorithm assumes each user knows the available
//! processing rates, remarking that they "can be determined by
//! statistical estimation of the run queue length of each processor"
//! (§4.2, Remark 2). This module closes that loop: it estimates each
//! computer's service rate from observable quantities of a measurement
//! window — per-computer throughput and busy fraction —
//!
//! ```text
//! μ̂_i = completions_i / busy_time_i = throughput_i / utilization_i
//! ```
//!
//! (the standard renewal-reward estimator: each completion "pays" one
//! service time, and busy time is the sum of service times), and
//! quantifies what estimation noise does to the schemes built on top
//! (the `ext_estimation` experiment).

use gtlb_core::model::Cluster;
use gtlb_core::CoreError;
use gtlb_desim::farm::FarmResult;

/// Per-computer service-rate estimates from one measurement window.
#[derive(Debug, Clone)]
pub struct RateEstimate {
    /// Estimated service rates; `None` for computers that served no jobs
    /// (nothing to observe).
    pub rates: Vec<Option<f64>>,
    /// Observed per-computer throughputs (jobs per unit time).
    pub throughput: Vec<f64>,
    /// Number of completions each estimate is based on.
    pub samples: Vec<u64>,
}

impl RateEstimate {
    /// Extracts the estimates from a farm run.
    #[must_use]
    pub fn from_run(result: &FarmResult) -> Self {
        let window = result.measured_window;
        let n = result.per_computer.len();
        let mut rates = Vec::with_capacity(n);
        let mut throughput = Vec::with_capacity(n);
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let count = result.per_computer[i].count();
            let thr = count as f64 / window;
            let util = result.utilization[i];
            rates.push((count > 0 && util > 0.0).then(|| thr / util));
            throughput.push(thr);
            samples.push(count);
        }
        Self { rates, throughput, samples }
    }

    /// Builds a [`Cluster`] from the estimates, filling unobserved
    /// computers with the caller's prior (e.g. the nominal rate, or a
    /// conservative floor).
    ///
    /// # Errors
    /// [`CoreError::BadInput`] if a prior is nonpositive or lengths
    /// mismatch.
    pub fn to_cluster(&self, priors: &[f64]) -> Result<Cluster, CoreError> {
        if priors.len() != self.rates.len() {
            return Err(CoreError::BadInput(format!(
                "{} priors for {} computers",
                priors.len(),
                self.rates.len()
            )));
        }
        Cluster::new(
            self.rates.iter().zip(priors).map(|(est, &prior)| est.unwrap_or(prior)).collect(),
        )
    }

    /// Worst-case relative error against the true rates, over the
    /// computers that were actually observed.
    #[must_use]
    pub fn max_relative_error(&self, truth: &[f64]) -> f64 {
        self.rates
            .iter()
            .zip(truth)
            .filter_map(|(est, &t)| est.map(|e| (e - t).abs() / t))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{single_class_spec, ArrivalLaw};
    use crate::scenario::table41;
    use gtlb_core::schemes::{Prop, SingleClassScheme};
    use gtlb_desim::farm::{run, RunConfig};

    fn observe(measured_jobs: u64, seed: u64) -> (RateEstimate, Cluster) {
        // PROP routing keeps every computer busy, so every rate is
        // observable.
        let cluster = table41();
        let phi = cluster.arrival_rate_for_utilization(0.6);
        let loads = Prop.allocate(&cluster, phi).unwrap();
        let spec = single_class_spec(&cluster, loads.loads(), phi, ArrivalLaw::Poisson);
        let res = run(&spec, &RunConfig { seed, warmup_jobs: 5_000, measured_jobs });
        (RateEstimate::from_run(&res), cluster)
    }

    #[test]
    fn estimates_converge_to_true_rates() {
        let (est, cluster) = observe(400_000, 11);
        let err = est.max_relative_error(cluster.rates());
        assert!(err < 0.05, "max relative error {err}");
        assert!(est.rates.iter().all(Option::is_some));
    }

    #[test]
    fn longer_windows_reduce_error() {
        let (short, cluster) = observe(20_000, 7);
        let (long, _) = observe(500_000, 7);
        let e_short = short.max_relative_error(cluster.rates());
        let e_long = long.max_relative_error(cluster.rates());
        assert!(e_long < e_short, "short {e_short} vs long {e_long}");
    }

    #[test]
    fn unobserved_computers_fall_back_to_priors() {
        // Route everything to computer 0; the others are unobservable.
        let cluster = Cluster::new(vec![10.0, 5.0]).unwrap();
        let spec = single_class_spec(&cluster, &[4.0, 0.0], 4.0, ArrivalLaw::Poisson);
        let res = run(&spec, &RunConfig { seed: 3, warmup_jobs: 1_000, measured_jobs: 50_000 });
        let est = RateEstimate::from_run(&res);
        assert!(est.rates[0].is_some());
        assert!(est.rates[1].is_none());
        assert_eq!(est.samples[1], 0);
        let c = est.to_cluster(&[10.0, 5.0]).unwrap();
        assert_eq!(c.rates()[1], 5.0);
        assert!((c.rates()[0] - 10.0).abs() < 0.5);
    }

    #[test]
    fn prior_length_checked() {
        let (est, _) = observe(5_000, 1);
        assert!(est.to_cluster(&[1.0]).is_err());
    }
}
