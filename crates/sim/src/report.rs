//! Paper-style table rendering and CSV output.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table matching the rows/series the paper's
/// figures plot.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller so the caller
    /// controls precision).
    ///
    /// # Panics
    /// If the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "Table: wrong cell count");
        self.rows.push(cells);
    }

    /// Convenience for numeric rows: formats every value with 4
    /// significant-digit fixed notation (`NaN`/`inf` pass through).
    pub fn push_numeric_row(&mut self, label: &str, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|&v| fmt_num(v)));
        self.push_row(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Serializes the table as CSV (RFC-4180-ish: quotes only when
    /// needed).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|c| csv_cell(c)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ =
                writeln!(out, "{}", row.iter().map(|c| csv_cell(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the CSV form to `path` (creating parent directories).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a number the way the tables expect: fixed 4-significant-ish
/// digits, with infinities and NaN spelled out.
#[must_use]
pub fn fmt_num(v: f64) -> String {
    if v.is_nan() {
        return "-".into();
    }
    if v.is_infinite() {
        return if v > 0.0 { "inf".into() } else { "-inf".into() };
    }
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.2}")
    } else if a >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["scheme", "rho", "T"]);
        t.push_row(vec!["COOP".into(), "0.5".into(), "39.45".into()]);
        t.push_row(vec!["PROP".into(), "0.5".into(), "48.60".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("COOP"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn numeric_formatting() {
        assert_eq!(fmt_num(f64::NAN), "-");
        assert_eq!(fmt_num(f64::INFINITY), "inf");
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(39.4472), "39.45");
        assert_eq!(fmt_num(1234.56), "1235");
        assert_eq!(fmt_num(0.7313), "0.7313");
        assert_eq!(fmt_num(0.0001234), "1.234e-4");
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["he,llo".into(), "qu\"ote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"he,llo\""));
        assert!(csv.contains("\"qu\"\"ote\""));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("gtlb_report_test");
        let path = dir.join("t.csv");
        let mut t = Table::new("x", &["a"]);
        t.push_numeric_row("row", &[]);
        t.write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.starts_with("a\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "wrong cell count")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
