//! Replication fan-out must be bit-identical regardless of thread count:
//! `RAYON_NUM_THREADS=1` and the machine default must produce the same
//! `ReplicatedResult`, bit for bit. The contract has two halves —
//! per-replication seeding fixes each item's randomness, `par_map` fixes
//! the aggregation order — and this test pins both at once.

use gtlb_core::model::Cluster;
use gtlb_core::schemes::{Coop, SingleClassScheme};
use gtlb_desim::par::{par_map_with_threads, thread_count};
use gtlb_desim::replication::ReplicatedResult;
use gtlb_sim::runner::{replicate_parallel, single_class_spec, ArrivalLaw, SimBudget};

fn scenario() -> (gtlb_desim::farm::FarmSpec, SimBudget) {
    let cluster = Cluster::from_groups(&[(1, 4.0), (3, 1.0)]).unwrap();
    let phi = cluster.arrival_rate_for_utilization(0.7);
    let loads = Coop.allocate(&cluster, phi).unwrap();
    let spec = single_class_spec(&cluster, loads.loads(), phi, ArrivalLaw::Poisson);
    let budget =
        SimBudget { seed: 0xD15C, replications: 4, warmup_jobs: 1_000, measured_jobs: 10_000 };
    (spec, budget)
}

/// Every f64 a downstream consumer can observe, as raw bits.
fn fingerprint(res: &ReplicatedResult) -> Vec<u64> {
    let mut bits = vec![res.overall.mean.to_bits(), res.overall.half_width.to_bits()];
    for ci in res.per_user.iter().chain(&res.per_computer).chain(&res.utilization) {
        bits.push(ci.mean.to_bits());
        bits.push(ci.half_width.to_bits());
    }
    for rep in &res.raw {
        bits.push(rep.overall.mean().to_bits());
        for w in &rep.per_computer {
            bits.push(w.mean().to_bits());
            bits.push(w.count());
        }
        for &u in &rep.utilization {
            bits.push(u.to_bits());
        }
    }
    bits
}

#[test]
fn runner_is_bit_identical_across_thread_counts() {
    let (spec, budget) = scenario();

    // Sequential baseline: force one worker for the first run, then let
    // the second run use whatever the environment picks. set_var is
    // process-global, so both runs happen inside this one test, in order.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let sequential = replicate_parallel(&spec, &budget);
    assert_eq!(thread_count(), 1);
    std::env::remove_var("RAYON_NUM_THREADS");
    let default_threads = replicate_parallel(&spec, &budget);

    assert_eq!(
        fingerprint(&sequential),
        fingerprint(&default_threads),
        "replicate_parallel must not depend on RAYON_NUM_THREADS"
    );
}

#[test]
fn par_map_matches_sequential_map_for_any_worker_count() {
    // The aggregation-order half of the contract, checked directly on
    // par_map with explicit worker counts (no environment involved).
    let items: Vec<u64> = (0..97).collect();
    let f = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
    let sequential: Vec<u64> = items.iter().copied().map(f).collect();
    for threads in [1, 2, 3, 8, 64] {
        let parallel = par_map_with_threads(threads, items.clone(), f);
        assert_eq!(parallel, sequential, "{threads} workers reordered the output");
    }
}
