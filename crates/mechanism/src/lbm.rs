//! The LBM protocol (§5.4): the truthful mechanism run as an actual
//! two-phase message protocol between a dispatcher and agent processes.
//!
//! Phase I (*bidding*): the dispatcher sends `ReqBid` to every computer;
//! each computer answers with its bid `b_i` according to its (possibly
//! dishonest) strategy. Phase II (*completion*): the dispatcher computes
//! the OPTIM allocation and the payments, sends each computer its
//! payment, and each computer evaluates its profit.
//!
//! The protocol runs each agent on its own thread communicating over
//! channels — a faithful miniature of the distributed deployment the
//! paper envisions (the dispatcher "is run on one of the computers and is
//! able to communicate with all the other computers").

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use gtlb_core::CoreError;

use crate::payment::{PaymentBreakdown, TruthfulMechanism};

/// How an agent turns its true value into a bid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BidStrategy {
    /// Report the true value (what the mechanism incentivizes).
    Truthful,
    /// Report `factor × t_i` (`factor > 1` = claims to be *slower*;
    /// Figure 5.2's "bids 33 % higher" is `Scale(1.33)`, "7 % lower" is
    /// `Scale(0.93)`).
    Scale(f64),
}

impl BidStrategy {
    /// The bid an agent with true value `t` submits.
    #[must_use]
    pub fn bid(&self, true_value: f64) -> f64 {
        match self {
            BidStrategy::Truthful => true_value,
            BidStrategy::Scale(f) => f * true_value,
        }
    }
}

/// One participating computer.
#[derive(Debug, Clone, Copy)]
pub struct AgentSpec {
    /// Private true value `t_i = 1/μ_i`.
    pub true_value: f64,
    /// Bidding behavior.
    pub strategy: BidStrategy,
}

/// Outcome of one protocol round.
#[derive(Debug, Clone)]
pub struct ProtocolOutcome {
    /// The bids actually submitted in Phase I.
    pub bids: Vec<f64>,
    /// Per-agent payment breakdowns computed in Phase II.
    pub payments: Vec<PaymentBreakdown>,
    /// Per-agent realized profits (`P_i − t_i λ_i`), as evaluated by the
    /// agents themselves upon receiving their payments.
    pub profits: Vec<f64>,
}

impl ProtocolOutcome {
    /// Total payment disbursed by the mechanism.
    #[must_use]
    pub fn total_payment(&self) -> f64 {
        self.payments.iter().map(PaymentBreakdown::payment).sum()
    }

    /// Total true cost incurred by the agents.
    #[must_use]
    pub fn total_cost(&self, agents: &[AgentSpec]) -> f64 {
        self.payments.iter().zip(agents).map(|(p, a)| p.cost(a.true_value)).sum()
    }
}

/// Messages dispatcher → agent.
enum ToAgent {
    ReqBid,
    Payment(PaymentBreakdown),
}

/// Messages agent → dispatcher.
enum ToDispatcher {
    Bid { agent: usize, bid: f64 },
    ProfitReport { agent: usize, profit: f64 },
}

/// Runs one round of the LBM protocol with each agent on its own thread.
///
/// # Errors
/// Propagates allocation/payment errors from the mechanism (overloaded
/// reported capacity, thin market, …).
pub fn run_protocol(
    mechanism: &TruthfulMechanism,
    agents: &[AgentSpec],
) -> Result<ProtocolOutcome, CoreError> {
    let n = agents.len();
    if n == 0 {
        return Err(CoreError::BadInput("LBM: no agents".into()));
    }
    let (to_disp_tx, to_disp_rx): (SyncSender<ToDispatcher>, Receiver<ToDispatcher>) =
        sync_channel(n);
    let mut agent_txs: Vec<SyncSender<ToAgent>> = Vec::with_capacity(n);
    let mut agent_rxs: Vec<Receiver<ToAgent>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = sync_channel(2);
        agent_txs.push(tx);
        agent_rxs.push(rx);
    }

    std::thread::scope(|scope| -> Result<ProtocolOutcome, CoreError> {
        // Own the senders inside the scope so that an early return (e.g.
        // the mechanism rejecting the bids) drops them, disconnecting the
        // agents' receive loops instead of deadlocking the scope join.
        let agent_txs = agent_txs;
        // Spawn the agents.
        for (idx, (spec, rx)) in agents.iter().zip(agent_rxs.drain(..)).enumerate() {
            let tx = to_disp_tx.clone();
            let spec = *spec;
            scope.spawn(move || {
                // Phase I: answer the bid request.
                if let Ok(ToAgent::ReqBid) = rx.recv() {
                    let bid = spec.strategy.bid(spec.true_value);
                    let _ = tx.send(ToDispatcher::Bid { agent: idx, bid });
                }
                // Phase II: receive the payment, evaluate the profit.
                if let Ok(ToAgent::Payment(p)) = rx.recv() {
                    let profit = p.profit(spec.true_value);
                    let _ = tx.send(ToDispatcher::ProfitReport { agent: idx, profit });
                }
            });
        }
        drop(to_disp_tx);

        // Dispatcher, Phase I: request and collect bids.
        for tx in &agent_txs {
            tx.send(ToAgent::ReqBid).expect("agent hung up before bidding");
        }
        let mut bids = vec![0.0; n];
        for _ in 0..n {
            match to_disp_rx.recv().expect("agent died during bidding") {
                ToDispatcher::Bid { agent, bid } => bids[agent] = bid,
                ToDispatcher::ProfitReport { .. } => unreachable!("profit before payment"),
            }
        }

        // Dispatcher, Phase II: allocate, pay.
        let payments = mechanism.payments(&bids)?;
        for (tx, p) in agent_txs.iter().zip(&payments) {
            tx.send(ToAgent::Payment(*p)).expect("agent hung up before payment");
        }
        let mut profits = vec![0.0; n];
        for _ in 0..n {
            match to_disp_rx.recv().expect("agent died during completion") {
                ToDispatcher::ProfitReport { agent, profit } => profits[agent] = profit,
                ToDispatcher::Bid { .. } => unreachable!("second bid"),
            }
        }
        Ok(ProtocolOutcome { bids, payments, profits })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table51_agents(strategy_for_c1: BidStrategy) -> Vec<AgentSpec> {
        let rates = [
            0.13, 0.13, 0.065, 0.065, 0.065, 0.026, 0.026, 0.026, 0.026, 0.026, 0.013, 0.013,
            0.013, 0.013, 0.013, 0.013,
        ];
        rates
            .iter()
            .enumerate()
            .map(|(i, &r)| AgentSpec {
                true_value: 1.0 / r,
                strategy: if i == 0 { strategy_for_c1 } else { BidStrategy::Truthful },
            })
            .collect()
    }

    #[test]
    fn truthful_round_end_to_end() {
        let mech = TruthfulMechanism::new(0.5 * 0.663);
        let agents = table51_agents(BidStrategy::Truthful);
        let out = run_protocol(&mech, &agents).unwrap();
        assert_eq!(out.bids.len(), 16);
        // All bids are the true values.
        for (b, a) in out.bids.iter().zip(&agents) {
            assert_eq!(*b, a.true_value);
        }
        // Voluntary participation: nobody loses.
        for (i, &p) in out.profits.iter().enumerate() {
            assert!(p >= -1e-9, "agent {i} lost {p}");
        }
        assert!(out.total_payment() >= out.total_cost(&agents));
    }

    #[test]
    fn c1_overbidding_lowers_its_own_profit() {
        // Figure 5.4's message: C1's profit peaks at truth.
        let mech = TruthfulMechanism::new(0.5 * 0.663);
        let honest = run_protocol(&mech, &table51_agents(BidStrategy::Truthful)).unwrap();
        let high = run_protocol(&mech, &table51_agents(BidStrategy::Scale(1.33))).unwrap();
        let low = run_protocol(&mech, &table51_agents(BidStrategy::Scale(0.93))).unwrap();
        assert!(high.profits[0] <= honest.profits[0] + 1e-6);
        assert!(low.profits[0] <= honest.profits[0] + 1e-6);
    }

    #[test]
    fn strategies_produce_expected_bids() {
        assert_eq!(BidStrategy::Truthful.bid(2.0), 2.0);
        assert_eq!(BidStrategy::Scale(1.33).bid(2.0), 2.66);
        assert_eq!(BidStrategy::Scale(0.93).bid(2.0), 1.86);
    }

    #[test]
    fn empty_agent_list_rejected() {
        let mech = TruthfulMechanism::new(1.0);
        assert!(run_protocol(&mech, &[]).is_err());
    }
}
