//! Chapter 5: the truthful mechanism for one-parameter agents.
//!
//! Setting (§5.3): computer `i`'s private *true value* is
//! `t_i = 1/μ_i` — the processing time per unit load; its cost is
//! `cost_i = t_i · λ_i` (its utilization). Each computer reports a bid
//! `b_i`; the mechanism computes the overall-optimal allocation
//! `λ(b)` from the bids and pays each agent
//!
//! ```text
//! P_i(b_i, b_{−i}) = b_i · λ_i(b) + ∫_{b_i}^{∞} λ_i(u, b_{−i}) du
//! ```
//!
//! (eq. 5.16). The first term compensates the *reported* cost; the
//! integral of the (decreasing, eventually-zero) work curve is the
//! agent's expected profit. The agent's profit `P_i − t_i λ_i` is
//! maximized by bidding `b_i = t_i` (Theorem 5.2, following Archer &
//! Tardos), and truthful agents never lose (voluntary participation).

use gtlb_core::model::Cluster;
use gtlb_core::schemes::{Optim, SingleClassScheme};
use gtlb_core::{Allocation, CoreError};
use gtlb_numerics::integrate::adaptive_simpson;

/// The Chapter 5 mechanism: optimal allocation + Archer–Tardos payments.
#[derive(Debug, Clone)]
pub struct TruthfulMechanism {
    /// Total arrival rate `Φ` the dispatcher must place.
    pub arrival_rate: f64,
    /// Absolute tolerance of the payment quadrature.
    pub quad_tol: f64,
    /// Reserve price: bids above this are inadmissible, and the payment
    /// integral is truncated here. Required when the market is *thin* —
    /// at high utilization the remaining computers cannot carry `Φ`
    /// alone, so a pivotal computer is never priced out and the untruncated
    /// integral diverges. `None` keeps the paper's idealized setting
    /// (finite work-curve area assumed, Theorem 5.2) and reports an error
    /// on thin markets.
    pub max_bid: Option<f64>,
}

/// Per-agent payment decomposition (Figures 5.4–5.7 plot these pieces).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaymentBreakdown {
    /// Load `λ_i(b)` allocated to the agent.
    pub load: f64,
    /// Reported-cost compensation `b_i λ_i(b)`.
    pub cost_term: f64,
    /// Profit term `∫_{b_i}^{cutoff} λ_i(u, b_{−i}) du`.
    pub profit_term: f64,
}

impl PaymentBreakdown {
    /// Total payment handed to the agent.
    #[must_use]
    pub fn payment(&self) -> f64 {
        self.cost_term + self.profit_term
    }

    /// The agent's actual profit given its *true* value `t_i`:
    /// `P_i − t_i λ_i`.
    #[must_use]
    pub fn profit(&self, true_value: f64) -> f64 {
        self.payment() - true_value * self.load
    }

    /// The agent's actual incurred cost `t_i λ_i` (its utilization).
    #[must_use]
    pub fn cost(&self, true_value: f64) -> f64 {
        true_value * self.load
    }
}

/// Converts bids `b_i = 1/μ_i` to processing rates.
///
/// # Errors
/// [`CoreError::BadInput`] on nonpositive bids.
pub fn rates_from_bids(bids: &[f64]) -> Result<Vec<f64>, CoreError> {
    if let Some((i, &b)) = bids.iter().enumerate().find(|&(_, &b)| !(b.is_finite() && b > 0.0)) {
        return Err(CoreError::BadInput(format!("bid {i} must be positive and finite, got {b}")));
    }
    Ok(bids.iter().map(|&b| 1.0 / b).collect())
}

impl TruthfulMechanism {
    /// Mechanism for a system receiving `arrival_rate` jobs per second.
    ///
    /// # Panics
    /// If `arrival_rate` is not strictly positive.
    #[must_use]
    pub fn new(arrival_rate: f64) -> Self {
        assert!(arrival_rate > 0.0, "arrival rate must be positive");
        Self { arrival_rate, quad_tol: 1e-10, max_bid: None }
    }

    /// Mechanism with a reserve price `max_bid` (see the field docs).
    /// Truthfulness is preserved for agents with `t_i ≤ max_bid`: the
    /// work curve is unchanged on the admissible range and payments just
    /// lose a bid-independent tail.
    ///
    /// # Panics
    /// If either parameter is not strictly positive.
    #[must_use]
    pub fn with_max_bid(arrival_rate: f64, max_bid: f64) -> Self {
        assert!(max_bid > 0.0, "max bid must be positive");
        Self { max_bid: Some(max_bid), ..Self::new(arrival_rate) }
    }

    /// The allocation the mechanism computes from the reported bids: the
    /// OPTIM square-root rule on rates `μ_i = 1/b_i` (the paper's OPTIM
    /// algorithm restated over bids).
    ///
    /// # Errors
    /// [`CoreError::Overloaded`] when the *reported* capacity cannot carry
    /// `Φ`; [`CoreError::BadInput`] on malformed bids.
    pub fn allocate(&self, bids: &[f64]) -> Result<Allocation, CoreError> {
        let cluster = Cluster::new(rates_from_bids(bids)?)?;
        Optim.allocate(&cluster, self.arrival_rate)
    }

    /// Agent `i`'s load as a function of its own bid `u`, everyone else
    /// fixed — the *work curve* whose area is the profit term. Returns 0
    /// when the bid prices the agent out of the active set.
    ///
    /// # Errors
    /// As [`TruthfulMechanism::allocate`].
    pub fn work_curve(&self, i: usize, u: f64, bids: &[f64]) -> Result<f64, CoreError> {
        let mut b = bids.to_vec();
        b[i] = u;
        Ok(self.allocate(&b)?.loads()[i])
    }

    /// Smallest bid at which agent `i`'s allocation reaches zero
    /// (Theorem 5.1 guarantees the work curve is decreasing, so the
    /// cutoff is well defined). Needed to truncate the payment integral.
    ///
    /// # Errors
    /// [`CoreError::Overloaded`] when the other agents alone cannot carry
    /// `Φ` — then agent `i` is never priced out and the integral
    /// diverges (the mechanism is undefined for such thin markets).
    pub fn cutoff_bid(&self, i: usize, bids: &[f64]) -> Result<f64, CoreError> {
        let others: f64 =
            bids.iter().enumerate().filter(|&(k, _)| k != i).map(|(_, &b)| 1.0 / b).sum();
        if others <= self.arrival_rate {
            // Thin market: agent i is pivotal and is never priced out.
            return match self.max_bid {
                Some(cap) => Ok(cap.max(bids[i])),
                None => {
                    Err(CoreError::Overloaded { arrival_rate: self.arrival_rate, capacity: others })
                }
            };
        }
        // Predicate bisection on "load == 0": expand hi until the agent is
        // priced out, then shrink the bracket.
        let mut lo = bids[i];
        if self.work_curve(i, lo, bids)? == 0.0 {
            return Ok(lo);
        }
        let mut hi = lo * 2.0;
        let mut guard = 0;
        while self.work_curve(i, hi, bids)? > 0.0 {
            if let Some(cap) = self.max_bid {
                if hi >= cap {
                    return Ok(cap.max(bids[i]));
                }
            }
            lo = hi;
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                return Err(CoreError::NoConvergence { solver: "cutoff-bid", iterations: 200 });
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.work_curve(i, mid, bids)? > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-12 * hi {
                break;
            }
        }
        Ok(hi)
    }

    /// The Archer–Tardos payment for agent `i` (eq. 5.16).
    ///
    /// # Errors
    /// As [`TruthfulMechanism::cutoff_bid`].
    pub fn payment(&self, i: usize, bids: &[f64]) -> Result<PaymentBreakdown, CoreError> {
        let load = self.work_curve(i, bids[i], bids)?;
        let cost_term = bids[i] * load;
        let profit_term = if load == 0.0 {
            0.0
        } else {
            let cutoff = self.cutoff_bid(i, bids)?;
            let q = adaptive_simpson(
                |u| self.work_curve(i, u, bids).unwrap_or(0.0),
                bids[i],
                cutoff,
                self.quad_tol,
                48,
            );
            q.value.max(0.0)
        };
        Ok(PaymentBreakdown { load, cost_term, profit_term })
    }

    /// Payments for every agent.
    ///
    /// # Errors
    /// As [`TruthfulMechanism::payment`].
    pub fn payments(&self, bids: &[f64]) -> Result<Vec<PaymentBreakdown>, CoreError> {
        (0..bids.len()).map(|i| self.payment(i, bids)).collect()
    }

    /// Expected response time of the bid-derived allocation when executed
    /// on the agents' *true* rates — `+∞` when a lie overloads a
    /// computer. The basis of the performance-degradation metric
    /// (Figure 5.2).
    ///
    /// # Errors
    /// As [`TruthfulMechanism::allocate`]; also on malformed true values.
    pub fn true_response_time(&self, bids: &[f64], true_values: &[f64]) -> Result<f64, CoreError> {
        let alloc = self.allocate(bids)?;
        let true_cluster = Cluster::new(rates_from_bids(true_values)?)?;
        Ok(alloc.mean_response_time(&true_cluster))
    }
}

/// Performance degradation `PD = 100·(T_lie − T_true)/T_true` (§5.5).
/// `+∞` when the lie destabilizes a queue (analytically; the simulation
/// harness reports the finite finite-horizon value instead).
#[must_use]
pub fn performance_degradation(t_lie: f64, t_true: f64) -> f64 {
    100.0 * (t_lie - t_true) / t_true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 5.1's system (= Table 3.1): bids are the inverse rates.
    fn table51_bids() -> Vec<f64> {
        let rates = [
            0.13, 0.13, 0.065, 0.065, 0.065, 0.026, 0.026, 0.026, 0.026, 0.026, 0.013, 0.013,
            0.013, 0.013, 0.013, 0.013,
        ];
        rates.iter().map(|&r| 1.0 / r).collect()
    }

    fn mech(rho: f64) -> TruthfulMechanism {
        TruthfulMechanism::new(rho * 0.663)
    }

    #[test]
    fn allocation_matches_optim_on_true_rates() {
        let m = mech(0.5);
        let bids = table51_bids();
        let a = m.allocate(&bids).unwrap();
        let cluster = Cluster::new(rates_from_bids(&bids).unwrap()).unwrap();
        a.verify(&cluster, m.arrival_rate, 1e-9).unwrap();
    }

    #[test]
    fn work_curve_is_decreasing_in_own_bid() {
        // Theorem 5.1.
        let m = mech(0.6);
        let bids = table51_bids();
        let mut prev = f64::INFINITY;
        for k in 0..40 {
            let u = bids[0] * (0.5 + 0.1 * f64::from(k));
            let w = m.work_curve(0, u, &bids).unwrap();
            assert!(w <= prev + 1e-12, "work curve increased at u={u}: {w} > {prev}");
            prev = w;
        }
    }

    #[test]
    fn cutoff_prices_the_agent_out() {
        let m = mech(0.5);
        let bids = table51_bids();
        let cut = m.cutoff_bid(0, &bids).unwrap();
        assert!(cut > bids[0]);
        assert_eq!(m.work_curve(0, cut * 1.01, &bids).unwrap(), 0.0);
        assert!(m.work_curve(0, cut * 0.99, &bids).unwrap() > 0.0);
    }

    #[test]
    fn truth_telling_maximizes_profit() {
        // Theorem 5.2, checked on a grid of misreports for the fastest
        // computer at medium load.
        let m = mech(0.5);
        let bids = table51_bids();
        let t0 = bids[0];
        let honest = m.payment(0, &bids).unwrap().profit(t0);
        for factor in [0.7, 0.85, 0.93, 1.1, 1.33, 2.0, 4.0] {
            let mut lying = bids.clone();
            lying[0] = t0 * factor;
            let p = m.payment(0, &lying).unwrap();
            let profit = p.payment() - t0 * p.load;
            assert!(
                honest >= profit - 1e-6,
                "misreport factor {factor} beats truth: {profit} > {honest}"
            );
        }
    }

    #[test]
    fn voluntary_participation_for_every_agent() {
        let m = mech(0.5);
        let bids = table51_bids();
        for i in 0..bids.len() {
            let p = m.payment(i, &bids).unwrap();
            assert!(
                p.profit(bids[i]) >= -1e-9,
                "agent {i} loses while truthful: {}",
                p.profit(bids[i])
            );
        }
    }

    #[test]
    fn unused_agents_get_nothing() {
        let m = mech(0.3);
        let bids = table51_bids();
        let payments = m.payments(&bids).unwrap();
        for (i, p) in payments.iter().enumerate() {
            if p.load == 0.0 {
                assert_eq!(p.payment(), 0.0, "idle agent {i} was paid");
            }
        }
        // At 30% utilization the slow computers are idle.
        assert!(payments.iter().any(|p| p.load == 0.0));
    }

    #[test]
    fn payment_covers_cost_with_margin() {
        // §5.5 frugality: payments are a small multiple of cost.
        let m = mech(0.5);
        let bids = table51_bids();
        let payments = m.payments(&bids).unwrap();
        let total_cost: f64 = payments.iter().zip(&bids).map(|(p, &b)| p.cost(b)).sum();
        let total_payment: f64 = payments.iter().map(PaymentBreakdown::payment).sum();
        assert!(total_payment >= total_cost);
        assert!(
            total_payment < 6.0 * total_cost,
            "mechanism is not frugal: {total_payment} vs cost {total_cost}"
        );
    }

    #[test]
    fn lying_degrades_true_performance() {
        // Figure 5.2's setup: C1 misreports by ±.
        let m = mech(0.5);
        let bids = table51_bids();
        let t_true = m.true_response_time(&bids, &bids).unwrap();
        let mut high = bids.clone();
        high[0] *= 1.33;
        let t_high = m.true_response_time(&high, &bids).unwrap();
        let mut low = bids.clone();
        low[0] *= 0.93;
        let t_low = m.true_response_time(&low, &bids).unwrap();
        assert!(t_high > t_true);
        assert!(t_low > t_true);
        assert!(performance_degradation(t_high, t_true) > 0.0);
    }

    #[test]
    fn underbid_at_high_load_destabilizes() {
        // At ρ = 90 %, C1 claiming to be faster pulls more than its real
        // capacity — analytically infinite response time.
        let m = mech(0.9);
        let bids = table51_bids();
        let mut low = bids.clone();
        low[0] *= 0.80;
        let t = m.true_response_time(&low, &bids).unwrap();
        assert!(t.is_infinite() || t > 10.0 * m.true_response_time(&bids, &bids).unwrap());
    }

    #[test]
    fn thin_market_is_rejected() {
        // Two computers; without either one the other cannot carry Φ.
        let m = TruthfulMechanism::new(1.5);
        let bids = vec![1.0, 1.0]; // rates (1, 1), Φ = 1.5
        assert!(matches!(m.cutoff_bid(0, &bids), Err(CoreError::Overloaded { .. })));
    }

    #[test]
    fn reserve_price_makes_thin_market_payable() {
        let m = TruthfulMechanism::with_max_bid(1.5, 50.0);
        let bids = vec![1.0, 1.0];
        assert_eq!(m.cutoff_bid(0, &bids).unwrap(), 50.0);
        let p = m.payment(0, &bids).unwrap();
        assert!(p.payment().is_finite());
        assert!(p.profit(1.0) >= 0.0);
    }

    #[test]
    fn reserve_price_keeps_truthfulness_at_high_load() {
        // ρ = 90% on Table 5.1: the fast computers are pivotal.
        let m = TruthfulMechanism::with_max_bid(0.9 * 0.663, 10.0 / 0.013);
        let bids = table51_bids();
        let honest = m.payment(0, &bids).unwrap().profit(bids[0]);
        for factor in [0.8, 0.93, 1.2, 1.33, 2.0] {
            let mut lying = bids.clone();
            lying[0] = bids[0] * factor;
            let p = m.payment(0, &lying).unwrap();
            let profit = p.payment() - bids[0] * p.load;
            assert!(honest >= profit - 1e-6, "factor {factor}: {profit} > {honest}");
        }
    }

    #[test]
    fn bad_bids_rejected() {
        let m = TruthfulMechanism::new(1.0);
        assert!(m.allocate(&[1.0, -1.0]).is_err());
        assert!(m.allocate(&[1.0, 0.0]).is_err());
        assert!(rates_from_bids(&[f64::NAN]).is_err());
    }
}
