//! Chapter 6: the load-balancing mechanism *with verification*.
//!
//! Model (§6.2): computer `i` has a linear load-dependent latency
//! `ℓ_i(x_i) = t_i x_i` — `t_i` inversely proportional to its processing
//! rate; jobs arrive at total rate `Λ`; a feasible allocation
//! `x = (x_1 … x_n)` (nonnegative, `Σx_i = Λ`) costs total latency
//! `L(x, t) = Σ t_i x_i²`. Theorem 6.1: the optimum allocates in
//! proportion to the processing rates,
//!
//! ```text
//! x_i* = (1/t_i) / Σ_k (1/t_k) · Λ,      L* = Λ² / Σ_k (1/t_k)
//! ```
//!
//! (the PR algorithm). An agent can lie twice: report a bid `b_i ≠ t_i`
//! at allocation time, *and* execute its jobs at a degraded rate
//! `t̂_i ≥ t_i` afterwards. The mechanism *verifies*: payments are handed
//! only after execution, when the realized `t̂_i` is known (§6.3):
//!
//! ```text
//! P_i = t̂_i x_i  +  ( L*_{−i}(b_{−i}) − L(x(b), t̂) )
//!       compensation           bonus
//! ```
//!
//! where `L*_{−i}` is the optimal latency with agent `i` excluded and the
//! compensation covers the agent's valuation — "the negation of its
//! latency" `−ℓ_i(x_i) = −t̂_i x_i` (§6.1). The agent's utility
//! `u_i = P_i − t̂_i x_i = L*_{−i} − L(x(b), t̂)` is its marginal
//! contribution to the system, so truth-telling *and* full-speed
//! execution are dominant (Theorem 6.2) and truthful agents never lose
//! (Theorem 6.3). The linear valuation reproduces the paper's reported
//! payment signs (C1's payment is *negative* in experiment Low2 because
//! `|bonus| >` compensation, §6.4) and the ≈2.5× payment-to-valuation
//! frugality ratio of Figure 6.6.

use gtlb_core::CoreError;
use gtlb_numerics::sum::neumaier_sum;

/// The Chapter 6 mechanism: PR allocation + compensation-and-bonus
/// payments with post-execution verification.
#[derive(Debug, Clone)]
pub struct VerifiedMechanism {
    /// True values `t_i` (1/processing-rate) of the participating
    /// computers — used only to *evaluate* outcomes in experiments; the
    /// mechanism itself sees bids and executed values.
    pub true_values: Vec<f64>,
    /// Total job arrival rate `Λ`.
    pub arrival_rate: f64,
}

/// One agent's declared and realized behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Behavior {
    /// Reported value `b_i` at allocation time.
    pub bid: f64,
    /// Realized execution value `t̂_i ≥ t_i` observed by the mechanism
    /// after the jobs complete.
    pub execution: f64,
}

impl Behavior {
    /// The honest behavior for an agent of true value `t`.
    #[must_use]
    pub fn truthful(t: f64) -> Self {
        Self { bid: t, execution: t }
    }
}

/// Everything the mechanism produces for one round.
#[derive(Debug, Clone)]
pub struct VerifiedOutcome {
    /// The PR allocation computed from the bids.
    pub allocation: Vec<f64>,
    /// Realized total latency `L(x(b), t̂)`.
    pub total_latency: f64,
    /// Per-agent compensations `t̂_i x_i`.
    pub compensations: Vec<f64>,
    /// Per-agent bonuses `L*_{−i} − L(x(b), t̂)`.
    pub bonuses: Vec<f64>,
    /// Per-agent valuations `−t̂_i x_i` — the negation of each agent's
    /// realized latency (§6.1).
    pub valuations: Vec<f64>,
}

impl VerifiedOutcome {
    /// Payment to agent `i`: compensation + bonus.
    #[must_use]
    pub fn payment(&self, i: usize) -> f64 {
        self.compensations[i] + self.bonuses[i]
    }

    /// Utility of agent `i`: valuation + payment (= its bonus).
    #[must_use]
    pub fn utility(&self, i: usize) -> f64 {
        self.valuations[i] + self.payment(i)
    }

    /// Total payment disbursed.
    #[must_use]
    pub fn total_payment(&self) -> f64 {
        (0..self.compensations.len()).map(|i| self.payment(i)).sum()
    }

    /// Total (absolute) valuation — the frugality yardstick of
    /// Figure 6.6.
    #[must_use]
    pub fn total_valuation(&self) -> f64 {
        self.valuations.iter().map(|v| v.abs()).sum()
    }
}

/// The PR algorithm (Theorem 6.1): allocate `Λ` in proportion to the
/// reported processing rates `1/b_i`.
///
/// # Errors
/// [`CoreError::BadInput`] on nonpositive bids or rate.
pub fn pr_allocation(bids: &[f64], arrival_rate: f64) -> Result<Vec<f64>, CoreError> {
    if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
        return Err(CoreError::BadInput(format!(
            "arrival rate must be positive, got {arrival_rate}"
        )));
    }
    if let Some((i, &b)) = bids.iter().enumerate().find(|&(_, &b)| !(b.is_finite() && b > 0.0)) {
        return Err(CoreError::BadInput(format!("bid {i} must be positive, got {b}")));
    }
    let inv_sum = neumaier_sum(bids.iter().map(|&b| 1.0 / b));
    Ok(bids.iter().map(|&b| arrival_rate / (b * inv_sum)).collect())
}

/// Total latency `L(x, v) = Σ v_i x_i²` of an allocation under the given
/// (executed) values.
#[must_use]
pub fn total_latency(allocation: &[f64], values: &[f64]) -> f64 {
    neumaier_sum(allocation.iter().zip(values).map(|(&x, &v)| v * x * x))
}

/// The optimal total latency achievable with the given values:
/// `L* = Λ²/Σ(1/v)` (Theorem 6.1).
#[must_use]
pub fn optimal_latency(values: &[f64], arrival_rate: f64) -> f64 {
    arrival_rate * arrival_rate / neumaier_sum(values.iter().map(|&v| 1.0 / v))
}

impl VerifiedMechanism {
    /// Builds the mechanism for the given true values and arrival rate.
    ///
    /// # Errors
    /// [`CoreError::BadInput`] on degenerate parameters.
    pub fn new(true_values: Vec<f64>, arrival_rate: f64) -> Result<Self, CoreError> {
        if true_values.len() < 2 {
            return Err(CoreError::BadInput(
                "the bonus needs at least two agents (L*_{-i} must exist)".into(),
            ));
        }
        if let Some((i, &t)) =
            true_values.iter().enumerate().find(|&(_, &t)| !(t.is_finite() && t > 0.0))
        {
            return Err(CoreError::BadInput(format!("true value {i} must be positive, got {t}")));
        }
        if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
            return Err(CoreError::BadInput("arrival rate must be positive".into()));
        }
        Ok(Self { true_values, arrival_rate })
    }

    /// Number of agents.
    #[must_use]
    pub fn n(&self) -> usize {
        self.true_values.len()
    }

    /// Runs one round: allocate from bids, observe execution values,
    /// compute payments.
    ///
    /// # Errors
    /// [`CoreError::BadInput`] on malformed behaviors (wrong count,
    /// execution faster than the true value — physically impossible).
    pub fn run(&self, behaviors: &[Behavior]) -> Result<VerifiedOutcome, CoreError> {
        if behaviors.len() != self.n() {
            return Err(CoreError::BadInput(format!(
                "{} behaviors for {} agents",
                behaviors.len(),
                self.n()
            )));
        }
        for (i, (b, &t)) in behaviors.iter().zip(&self.true_values).enumerate() {
            if !(b.bid.is_finite() && b.bid > 0.0) {
                return Err(CoreError::BadInput(format!("agent {i} bid must be positive")));
            }
            if b.execution < t * (1.0 - 1e-12) {
                return Err(CoreError::BadInput(format!(
                    "agent {i} cannot execute faster than its true rate ({} < {t})",
                    b.execution
                )));
            }
        }
        let bids: Vec<f64> = behaviors.iter().map(|b| b.bid).collect();
        let exec: Vec<f64> = behaviors.iter().map(|b| b.execution).collect();
        let allocation = pr_allocation(&bids, self.arrival_rate)?;
        let realized = total_latency(&allocation, &exec);

        let n = self.n();
        let mut compensations = Vec::with_capacity(n);
        let mut bonuses = Vec::with_capacity(n);
        let mut valuations = Vec::with_capacity(n);
        for i in 0..n {
            let comp = exec[i] * allocation[i];
            // L*_{-i}: optimal latency over the *other agents' bids* (the
            // mechanism's best alternative had agent i not participated).
            let others: Vec<f64> =
                bids.iter().enumerate().filter(|&(k, _)| k != i).map(|(_, &b)| b).collect();
            let l_without = optimal_latency(&others, self.arrival_rate);
            bonuses.push(l_without - realized);
            compensations.push(comp);
            valuations.push(-comp);
        }
        Ok(VerifiedOutcome {
            allocation,
            total_latency: realized,
            compensations,
            bonuses,
            valuations,
        })
    }

    /// The realized latency if everyone behaves honestly — `L*` of
    /// Theorem 6.1.
    #[must_use]
    pub fn honest_latency(&self) -> f64 {
        optimal_latency(&self.true_values, self.arrival_rate)
    }
}

/// The experiment matrix of Table 6.2: computer C1's behavior in each of
/// the eight named experiments (everyone else truthful, `t₁ = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table62 {
    /// Truthful bid, full-speed execution — the baseline optimum.
    True1,
    /// Truthful bid, degraded execution (`t̂₁ = 3`).
    True2,
    /// Overbid ×3, execution matching the lie (`t̂₁ = 3`).
    High1,
    /// Overbid ×3, full-speed execution.
    High2,
    /// Overbid ×3, execution `t̂₁ = 2`.
    High3,
    /// Overbid ×3, execution `t̂₁ = 4`.
    High4,
    /// Underbid ×0.5, full-speed execution.
    Low1,
    /// Underbid ×0.5, degraded execution (`t̂₁ = 2`).
    Low2,
}

impl Table62 {
    /// All eight experiments in the paper's order (Figure 6.1's x-axis).
    pub const ALL: [Table62; 8] = [
        Table62::True1,
        Table62::True2,
        Table62::High1,
        Table62::High2,
        Table62::High3,
        Table62::High4,
        Table62::Low1,
        Table62::Low2,
    ];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Table62::True1 => "True1",
            Table62::True2 => "True2",
            Table62::High1 => "High1",
            Table62::High2 => "High2",
            Table62::High3 => "High3",
            Table62::High4 => "High4",
            Table62::Low1 => "Low1",
            Table62::Low2 => "Low2",
        }
    }

    /// C1's `(bid, execution)` for a true value `t1`.
    #[must_use]
    pub fn behavior(&self, t1: f64) -> Behavior {
        let (bid, exec) = match self {
            Table62::True1 => (1.0, 1.0),
            Table62::True2 => (1.0, 3.0),
            Table62::High1 => (3.0, 3.0),
            Table62::High2 => (3.0, 1.0),
            Table62::High3 => (3.0, 2.0),
            Table62::High4 => (3.0, 4.0),
            Table62::Low1 => (0.5, 1.0),
            Table62::Low2 => (0.5, 2.0),
        };
        Behavior { bid: bid * t1, execution: exec * t1 }
    }
}

/// The Table 6.1 system: true values {1×2, 2×3, 5×5, 10×6}, and the
/// arrival rate Λ = 20 jobs/s recovered from the paper's reported
/// `L(True1) = 78.43 = Λ²/Σ(1/t)` (see DESIGN.md, substitution 6).
///
/// # Panics
/// Never (the constants are valid).
#[must_use]
pub fn table61_mechanism() -> VerifiedMechanism {
    let mut t = vec![1.0, 1.0];
    t.extend(std::iter::repeat_n(2.0, 3));
    t.extend(std::iter::repeat_n(5.0, 5));
    t.extend(std::iter::repeat_n(10.0, 6));
    VerifiedMechanism::new(t, 20.0).expect("table 6.1 constants are valid")
}

/// Behaviors for one Table 6.2 experiment: C1 per the experiment,
/// everyone else truthful.
#[must_use]
pub fn table62_behaviors(mech: &VerifiedMechanism, exp: Table62) -> Vec<Behavior> {
    mech.true_values
        .iter()
        .enumerate()
        .map(|(i, &t)| if i == 0 { exp.behavior(t) } else { Behavior::truthful(t) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pr_allocation_proportional_and_conserving() {
        let x = pr_allocation(&[1.0, 2.0, 4.0], 14.0).unwrap();
        // 1/t = (1, 0.5, 0.25), sum 1.75 -> x = (8, 4, 2).
        assert!((x[0] - 8.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
        assert!((x[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pr_is_the_latency_minimizer() {
        // Compare against a grid of alternative splits for two agents.
        let t = [1.0, 3.0];
        let lam = 6.0;
        let opt = pr_allocation(&t, lam).unwrap();
        let l_opt = total_latency(&opt, &t);
        assert!((l_opt - optimal_latency(&t, lam)).abs() < 1e-9);
        for k in 0..=60 {
            let x1 = lam * f64::from(k) / 60.0;
            let l = total_latency(&[x1, lam - x1], &t);
            assert!(l >= l_opt - 1e-9, "split {x1} beats PR: {l} < {l_opt}");
        }
    }

    #[test]
    fn paper_true1_latency() {
        // The anchor that recovered Λ = 20: L(True1) = 78.43.
        let mech = table61_mechanism();
        assert!((mech.honest_latency() - 78.431).abs() < 0.01, "{}", mech.honest_latency());
    }

    #[test]
    fn paper_low_experiments_match_reported_deltas() {
        // §6.4: Low1 ≈ +11 %, Low2 ≈ +66 %.
        let mech = table61_mechanism();
        let base = mech.honest_latency();
        let low1 = mech.run(&table62_behaviors(&mech, Table62::Low1)).unwrap().total_latency;
        let low2 = mech.run(&table62_behaviors(&mech, Table62::Low2)).unwrap().total_latency;
        assert!(((low1 / base - 1.0) * 100.0 - 11.0).abs() < 1.0, "Low1 {}", low1 / base);
        assert!(((low2 / base - 1.0) * 100.0 - 66.0).abs() < 2.0, "Low2 {}", low2 / base);
    }

    #[test]
    fn truth_maximizes_utility_over_bid_and_execution_grid() {
        // Theorem 6.2 on the Table 6.1 system: C1's utility under True1
        // dominates every (bid, execution) in a grid.
        let mech = table61_mechanism();
        let honest = mech.run(&table62_behaviors(&mech, Table62::True1)).unwrap().utility(0);
        for bid_f in [0.25, 0.5, 0.8, 1.0, 1.5, 2.0, 3.0, 8.0] {
            for exec_f in [1.0, 1.3, 2.0, 4.0] {
                let mut b = table62_behaviors(&mech, Table62::True1);
                b[0] = Behavior { bid: bid_f, execution: exec_f };
                let u = mech.run(&b).unwrap().utility(0);
                assert!(
                    u <= honest + 1e-9,
                    "(bid {bid_f}, exec {exec_f}) beats truth: {u} > {honest}"
                );
            }
        }
    }

    #[test]
    fn voluntary_participation_for_truthful_agents() {
        // Theorem 6.3: a truthful agent never loses, for any *bids* of
        // the others — the guarantee quantifies over b_{-i} with the
        // others executing at their bids. True1 and High1 are the
        // Table 6.2 experiments where C1's execution matches its bid.
        let mech = table61_mechanism();
        for exp in [Table62::True1, Table62::High1] {
            let out = mech.run(&table62_behaviors(&mech, exp)).unwrap();
            for i in 1..mech.n() {
                assert!(
                    out.utility(i) >= -1e-9,
                    "{}: truthful agent {i} lost {}",
                    exp.name(),
                    out.utility(i)
                );
            }
        }
        // Arbitrary (consistent) bids of C1, sweeping a grid.
        for bid in [0.3, 0.7, 1.0, 2.5, 6.0] {
            let mut b = table62_behaviors(&mech, Table62::True1);
            b[0] = Behavior { bid, execution: bid.max(1.0) };
            if bid >= 1.0 {
                let out = mech.run(&b).unwrap();
                for i in 1..mech.n() {
                    assert!(out.utility(i) >= -1e-9, "bid {bid}: agent {i} lost");
                }
            }
        }
    }

    #[test]
    fn shirking_by_others_can_hurt_bystanders() {
        // The boundary of Theorem 6.3: when C1 *executes slower than it
        // bid* (True2), the realized latency exceeds the planned one and
        // bystanders can end up below zero — the guarantee does not (and
        // cannot) extend to deviations the allocator never saw.
        let mech = table61_mechanism();
        let out = mech.run(&table62_behaviors(&mech, Table62::True2)).unwrap();
        assert!((1..mech.n()).any(|i| out.utility(i) < 0.0));
    }

    #[test]
    fn low2_payment_is_negative() {
        // §6.4's highlighted pathology: lying low and shirking makes the
        // system worse than not having C1 at all -> negative payment.
        let mech = table61_mechanism();
        let out = mech.run(&table62_behaviors(&mech, Table62::Low2)).unwrap();
        assert!(out.payment(0) < 0.0, "payment {}", out.payment(0));
        assert!(out.utility(0) < 0.0);
    }

    #[test]
    fn c1_utility_ranking_matches_figure_6_2() {
        // True1 highest; every deviation strictly lower.
        let mech = table61_mechanism();
        let mut utils = Vec::new();
        for exp in Table62::ALL {
            let out = mech.run(&table62_behaviors(&mech, exp)).unwrap();
            utils.push((exp.name(), out.utility(0)));
        }
        let honest = utils[0].1;
        for &(name, u) in &utils[1..] {
            assert!(u < honest, "{name} should be below True1: {u} vs {honest}");
        }
    }

    #[test]
    fn frugality_total_payment_vs_valuation() {
        // Figure 6.6: total payment at most ~2.5× total valuation.
        let mech = table61_mechanism();
        let out = mech.run(&table62_behaviors(&mech, Table62::True1)).unwrap();
        let ratio = out.total_payment() / out.total_valuation();
        assert!((1.0..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn input_validation() {
        assert!(VerifiedMechanism::new(vec![1.0], 1.0).is_err());
        assert!(VerifiedMechanism::new(vec![1.0, -1.0], 1.0).is_err());
        assert!(VerifiedMechanism::new(vec![1.0, 1.0], 0.0).is_err());
        let mech = VerifiedMechanism::new(vec![1.0, 2.0], 5.0).unwrap();
        // Execution faster than truth is physically impossible.
        let bad = vec![Behavior { bid: 1.0, execution: 0.5 }, Behavior::truthful(2.0)];
        assert!(mech.run(&bad).is_err());
        // Wrong behavior count.
        assert!(mech.run(&[Behavior::truthful(1.0)]).is_err());
    }
}
