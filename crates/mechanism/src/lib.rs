//! `gtlb-mechanism` — algorithmic mechanism design for load balancing.
//!
//! The dissertation's Chapters 5 and 6 extend the load-balancing games to
//! settings where the computers are *selfish agents* that may misreport
//! their capabilities. This crate implements both mechanisms:
//!
//! * [`payment`] (Chapter 5): each computer's private data is its
//!   per-unit-load cost `t_i = 1/μ_i`; the mechanism runs the optimal
//!   (OPTIM) allocation on the reported bids and hands each agent the
//!   Archer–Tardos payment
//!   `P_i(b) = b_i·λ_i(b) + ∫_{b_i}^{∞} λ_i(u, b_{−i}) du`,
//!   which is truthful because the allocation is decreasing in the bid
//!   (Theorem 5.1) and satisfies voluntary participation because the work
//!   curve has finite area (Theorem 5.2);
//! * [`lbm`] (Chapter 5): the two-phase LBM protocol (bidding →
//!   completion) wrapping the payment computation, plus the
//!   performance-degradation metrics of Figure 5.2;
//! * [`fault`] (future work §7.3, instantiated): the same mechanism on
//!   failure-discounted effective rates — truthful and voluntarily
//!   participated when failure probabilities are publicly monitored;
//! * [`verification`] (Chapter 6): computers with *linear* load-dependent
//!   latency `ℓ_i = t_i x_i` that can both misreport (`b_i ≠ t_i`) and
//!   shirk (`t̂_i > t_i`); the compensation-and-bonus mechanism pays
//!   `t̂_i x_i² + (L*_{−i} − L(x(b), t̂))` after observing the executed
//!   rates, which is truthful and voluntarily participated
//!   (Theorems 6.2–6.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod lbm;
pub mod payment;
pub mod verification;

pub use payment::{PaymentBreakdown, TruthfulMechanism};
pub use verification::VerifiedMechanism;
