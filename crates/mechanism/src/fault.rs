//! Fault-tolerant load-balancing mechanism — an instantiation of the
//! dissertation's first mechanism-design future-work item (§7.3):
//! *"consider that each agent (computer) is characterized not only by its
//! processing rate, but also by its probability of failure … devise a
//! fault tolerant load balancing mechanism that exhibits … truthfulness
//! and voluntary participation."*
//!
//! Model: computer `i` fails each job independently with probability
//! `p_i` and failed jobs are re-executed on the same computer until they
//! succeed (geometric retries). The number of executions per job is
//! geometric with mean `1/(1 − p_i)`, so a computer with raw per-job time
//! `t_i` behaves exactly like a reliable computer with *effective* value
//!
//! ```text
//! t_eff_i = t_i / (1 − p_i)        (μ_eff_i = μ_i (1 − p_i))
//! ```
//!
//! We take the failure probabilities to be **publicly monitored** (the
//! dispatcher observes failures; an agent cannot lie about `p_i`), while
//! the speed remains private. The agent's data is then still a single
//! real parameter, and the Archer–Tardos machinery applies verbatim on
//! the effective bids: the allocation stays decreasing in `b_i` (the
//! `1/(1 − p_i)` factor is a fixed positive rescaling), so the mechanism
//! remains truthful and voluntarily participated. A fully private `p_i`
//! would be a two-parameter problem outside this framework — exactly why
//! the dissertation lists it as open.

use gtlb_core::model::Cluster;
use gtlb_core::{Allocation, CoreError};

use crate::payment::{rates_from_bids, PaymentBreakdown, TruthfulMechanism};

/// The fault-aware truthful mechanism: Chapter 5's mechanism run on
/// failure-discounted effective rates.
#[derive(Debug, Clone)]
pub struct FaultAwareMechanism {
    inner: TruthfulMechanism,
    failure_probs: Vec<f64>,
}

impl FaultAwareMechanism {
    /// Builds the mechanism for a system receiving `arrival_rate` jobs/s
    /// on computers with the given (publicly monitored) failure
    /// probabilities.
    ///
    /// # Errors
    /// [`CoreError::BadInput`] when any probability is outside `[0, 1)`.
    pub fn new(arrival_rate: f64, failure_probs: Vec<f64>) -> Result<Self, CoreError> {
        if let Some((i, &p)) =
            failure_probs.iter().enumerate().find(|&(_, &p)| !(0.0..1.0).contains(&p))
        {
            return Err(CoreError::BadInput(format!(
                "failure probability of computer {i} must lie in [0,1), got {p}"
            )));
        }
        Ok(Self { inner: TruthfulMechanism::new(arrival_rate), failure_probs })
    }

    /// As [`FaultAwareMechanism::new`] with a reserve price for thin
    /// markets (see [`TruthfulMechanism::with_max_bid`]).
    ///
    /// # Errors
    /// As [`FaultAwareMechanism::new`].
    pub fn with_max_bid(
        arrival_rate: f64,
        failure_probs: Vec<f64>,
        max_bid: f64,
    ) -> Result<Self, CoreError> {
        let mut m = Self::new(arrival_rate, failure_probs)?;
        m.inner = TruthfulMechanism::with_max_bid(arrival_rate, max_bid);
        Ok(m)
    }

    /// Number of participating computers.
    #[must_use]
    pub fn n(&self) -> usize {
        self.failure_probs.len()
    }

    /// The effective bids `b_i/(1 − p_i)` the mechanism actually
    /// optimizes over.
    ///
    /// # Errors
    /// [`CoreError::BadInput`] on malformed bids or length mismatch.
    pub fn effective_bids(&self, bids: &[f64]) -> Result<Vec<f64>, CoreError> {
        if bids.len() != self.n() {
            return Err(CoreError::BadInput(format!(
                "{} bids for {} computers",
                bids.len(),
                self.n()
            )));
        }
        let _ = rates_from_bids(bids)?; // validates positivity
        Ok(bids.iter().zip(&self.failure_probs).map(|(&b, &p)| b / (1.0 - p)).collect())
    }

    /// The failure-aware allocation: OPTIM on the effective rates.
    ///
    /// # Errors
    /// As [`TruthfulMechanism::allocate`] on the effective bids.
    pub fn allocate(&self, bids: &[f64]) -> Result<Allocation, CoreError> {
        self.inner.allocate(&self.effective_bids(bids)?)
    }

    /// Truthful payment for agent `i`. The compensation term uses the
    /// *effective* bid — retries are work the computer really performs,
    /// so they are costed.
    ///
    /// # Errors
    /// As [`TruthfulMechanism::payment`].
    pub fn payment(&self, i: usize, bids: &[f64]) -> Result<PaymentBreakdown, CoreError> {
        self.inner.payment(i, &self.effective_bids(bids)?)
    }

    /// Expected response time of an allocation executed on the *true*
    /// effective rates (counting retries). `+∞` when a computer is
    /// overloaded.
    ///
    /// # Errors
    /// [`CoreError::BadInput`] on malformed true values.
    pub fn true_response_time(
        &self,
        allocation: &Allocation,
        true_values: &[f64],
    ) -> Result<f64, CoreError> {
        let eff = self.effective_bids(true_values)?;
        let cluster = Cluster::new(rates_from_bids(&eff)?)?;
        Ok(allocation.mean_response_time(&cluster))
    }

    /// The cost of *ignoring* failures: response time of the fault-blind
    /// allocation (computed from raw bids as if `p ≡ 0`) vs the
    /// fault-aware one, both evaluated on the true effective rates.
    /// Returns `(blind, aware)`.
    ///
    /// # Errors
    /// Propagates allocation failures; the blind allocation may overload
    /// a flaky computer, in which case `blind` is `+∞`.
    pub fn blind_vs_aware(&self, bids: &[f64]) -> Result<(f64, f64), CoreError> {
        let blind = self.inner.allocate(bids)?;
        let aware = self.allocate(bids)?;
        Ok((self.true_response_time(&blind, bids)?, self.true_response_time(&aware, bids)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bids() -> Vec<f64> {
        vec![1.0, 1.0, 2.0, 4.0] // rates (1, 1, 0.5, 0.25)
    }

    #[test]
    fn zero_failures_reduce_to_base_mechanism() {
        let m = FaultAwareMechanism::new(1.0, vec![0.0; 4]).unwrap();
        let base = TruthfulMechanism::new(1.0);
        let a = m.allocate(&bids()).unwrap();
        let b = base.allocate(&bids()).unwrap();
        for i in 0..4 {
            assert!((a.loads()[i] - b.loads()[i]).abs() < 1e-12);
        }
        let pa = m.payment(0, &bids()).unwrap();
        let pb = base.payment(0, &bids()).unwrap();
        assert!((pa.payment() - pb.payment()).abs() < 1e-9);
    }

    #[test]
    fn flaky_computers_get_less_load() {
        // Same raw speed, but computer 1 fails half its jobs.
        let reliable = FaultAwareMechanism::new(1.0, vec![0.0, 0.0, 0.0, 0.0]).unwrap();
        let flaky = FaultAwareMechanism::new(1.0, vec![0.0, 0.5, 0.0, 0.0]).unwrap();
        let a = reliable.allocate(&bids()).unwrap();
        let b = flaky.allocate(&bids()).unwrap();
        assert!(b.loads()[1] < a.loads()[1], "{:?} vs {:?}", b.loads(), a.loads());
        assert!(b.loads()[0] > a.loads()[0]);
    }

    #[test]
    fn ignoring_failures_costs_response_time() {
        let m = FaultAwareMechanism::new(1.2, vec![0.4, 0.0, 0.0, 0.0]).unwrap();
        let (blind, aware) = m.blind_vs_aware(&bids()).unwrap();
        assert!(blind > aware, "fault-blind {blind} should be worse than fault-aware {aware}");
    }

    #[test]
    fn truthfulness_carries_over() {
        let m = FaultAwareMechanism::new(1.0, vec![0.3, 0.1, 0.0, 0.2]).unwrap();
        let truth = bids();
        // Profit against the TRUE effective cost t_eff * load.
        let t_eff0 = truth[0] / (1.0 - 0.3);
        let honest = {
            let p = m.payment(0, &truth).unwrap();
            p.payment() - t_eff0 * p.load
        };
        for factor in [0.6, 0.8, 1.25, 1.6, 2.5] {
            let mut lying = truth.clone();
            lying[0] *= factor;
            let p = m.payment(0, &lying).unwrap();
            let profit = p.payment() - t_eff0 * p.load;
            assert!(
                honest >= profit - 1e-6,
                "misreport x{factor} beats truth: {profit} > {honest}"
            );
        }
        assert!(honest >= -1e-9, "voluntary participation violated: {honest}");
    }

    #[test]
    fn input_validation() {
        assert!(FaultAwareMechanism::new(1.0, vec![1.0]).is_err()); // p = 1
        assert!(FaultAwareMechanism::new(1.0, vec![-0.1]).is_err());
        let m = FaultAwareMechanism::new(1.0, vec![0.0, 0.0]).unwrap();
        assert!(m.effective_bids(&[1.0]).is_err()); // wrong count
        assert!(m.effective_bids(&[1.0, -1.0]).is_err());
    }
}
