//! Bracketing root finders.
//!
//! Two call sites in the workspace need scalar root finding:
//!
//! * the Wardrop-equilibrium solver searches for the common response-time
//!   level `t` with `Σ_i max(0, μ_i − 1/t) = Φ` (an increasing, piecewise
//!   smooth function with kinks where computers enter the active set);
//! * the truthful-payment computation searches for the cutoff bid at which
//!   a computer's allocated load reaches zero (Theorem 5.2's finite-area
//!   condition).
//!
//! Both functions are continuous and monotone on the bracket, so bisection
//! is guaranteed; Brent's method is offered for the smooth case.

/// Outcome of a bracketing search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Abscissa of the (approximate) root.
    pub x: f64,
    /// Residual `f(x)` at the returned abscissa.
    pub residual: f64,
    /// Number of function evaluations spent.
    pub evaluations: u32,
}

/// Errors reported by the root finders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootError {
    /// `f(lo)` and `f(hi)` have the same sign, so no root is bracketed.
    NotBracketed,
    /// The iteration budget was exhausted before the tolerance was met.
    MaxIterations,
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotBracketed => write!(f, "root is not bracketed by the given interval"),
            Self::MaxIterations => write!(f, "root finder exhausted its iteration budget"),
        }
    }
}

impl std::error::Error for RootError {}

/// Bisection on `[lo, hi]`; requires `f(lo)` and `f(hi)` of opposite sign
/// (zero endpoint values count as roots). Converges unconditionally for
/// continuous `f`; tolerance is on the bracket width.
///
/// ```
/// use gtlb_numerics::roots::bisect;
/// let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
/// assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-10);
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    x_tol: f64,
    max_iter: u32,
) -> Result<Root, RootError> {
    assert!(lo <= hi, "bisect: lo must not exceed hi");
    let mut flo = f(lo);
    let mut evals = 1;
    if flo == 0.0 {
        return Ok(Root { x: lo, residual: 0.0, evaluations: evals });
    }
    let fhi = f(hi);
    evals += 1;
    if fhi == 0.0 {
        return Ok(Root { x: hi, residual: 0.0, evaluations: evals });
    }
    if flo.signum() == fhi.signum() {
        return Err(RootError::NotBracketed);
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        evals += 1;
        if fmid == 0.0 || (hi - lo) <= x_tol {
            return Ok(Root { x: mid, residual: fmid, evaluations: evals });
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(RootError::MaxIterations)
}

/// Expands `hi` geometrically (factor 2) until `f(lo)` and `f(hi)` bracket
/// a sign change, then returns the bracket. Used to find the payment
/// cutoff bid when no a-priori upper bound is known.
pub fn expand_bracket<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    mut hi: f64,
    max_doublings: u32,
) -> Result<(f64, f64), RootError> {
    assert!(hi > lo, "expand_bracket: hi must exceed lo");
    let flo = f(lo);
    for _ in 0..max_doublings {
        let fhi = f(hi);
        if fhi == 0.0 || flo.signum() != fhi.signum() {
            return Ok((lo, hi));
        }
        hi = lo + (hi - lo) * 2.0;
    }
    Err(RootError::NotBracketed)
}

/// Brent's method: inverse quadratic interpolation with bisection
/// fallback. Superlinear on smooth functions, never worse than bisection.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    x_tol: f64,
    max_iter: u32,
) -> Result<Root, RootError> {
    let mut fa = f(a);
    let mut fb = f(b);
    let mut evals = 2;
    if fa == 0.0 {
        return Ok(Root { x: a, residual: 0.0, evaluations: evals });
    }
    if fb == 0.0 {
        return Ok(Root { x: b, residual: 0.0, evaluations: evals });
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed);
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    #[allow(clippy::explicit_counter_loop)] // evals is part of the returned diagnostics
    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() <= x_tol {
            return Ok(Root { x: b, residual: fb, evaluations: evals });
        }
        let mut s = if fa != fc && fb != fc {
            // inverse quadratic interpolation
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // secant
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        let cond = !((lo.min(b) < s && s < lo.max(b))
            && if mflag {
                (s - b).abs() < 0.5 * (b - c).abs()
            } else {
                (s - b).abs() < 0.5 * (c - d).abs()
            });
        if cond {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        evals += 1;
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::MaxIterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13, 100).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn bisect_exact_endpoint() {
        let r = bisect(|x| x, 0.0, 1.0, 1e-12, 10).unwrap();
        assert_eq!(r.x, 0.0);
    }

    #[test]
    fn bisect_rejects_unbracketed() {
        assert_eq!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 10).unwrap_err(),
            RootError::NotBracketed
        );
    }

    #[test]
    fn bisect_handles_kinked_function() {
        // The Wardrop level function is piecewise linear with kinks.
        let mu = [4.0, 2.0, 1.0];
        let phi = 3.0;
        let g = |t: f64| mu.iter().map(|&m| (m - 1.0 / t).max(0.0)).sum::<f64>() - phi;
        let r = bisect(g, 0.25, 10.0, 1e-12, 200).unwrap();
        // active set {4, 2}: t solves (4 - 1/t) + (2 - 1/t) = 3 -> t = 2/3
        assert!((r.x - 2.0 / 3.0).abs() < 1e-9, "got {}", r.x);
    }

    #[test]
    fn brent_matches_bisect_faster() {
        let f = |x: f64| x.exp() - 3.0;
        let rb = bisect(f, 0.0, 2.0, 1e-13, 200).unwrap();
        let rr = brent(f, 0.0, 2.0, 1e-13, 200).unwrap();
        assert!((rb.x - rr.x).abs() < 1e-10);
        assert!(rr.evaluations <= rb.evaluations);
    }

    #[test]
    fn expand_bracket_grows_until_sign_change() {
        let (lo, hi) = expand_bracket(|x| x - 100.0, 0.0, 1.0, 64).unwrap();
        assert!(lo < 100.0 && hi >= 100.0);
    }

    #[test]
    fn expand_bracket_gives_up() {
        assert!(expand_bracket(|_| 1.0, 0.0, 1.0, 8).is_err());
    }
}
