//! Compensated summation.
//!
//! Feasibility invariants such as the conservation law `Σλ_i = Φ`
//! (eq. 3.14 of the paper) are checked throughout the workspace; on large
//! synthetic clusters the naive left-to-right sum loses enough precision to
//! produce spurious infeasibility reports, so all invariant checks go
//! through Neumaier summation.

/// Neumaier's improved Kahan–Babuška compensated summation.
///
/// Exact for the error-free transformations it performs; worst-case error
/// is `O(ε)` independent of the number of terms (vs `O(nε)` for the naive
/// sum).
///
/// ```
/// use gtlb_numerics::sum::neumaier_sum;
/// let xs = [1.0f64, 1e100, 1.0, -1e100];
/// assert_eq!(neumaier_sum(xs.iter().copied()), 2.0);
/// ```
#[must_use]
pub fn neumaier_sum<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for x in xs {
        let t = sum + x;
        if sum.abs() >= x.abs() {
            comp += (sum - t) + x;
        } else {
            comp += (x - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

/// Running compensated accumulator with the same guarantees as
/// [`neumaier_sum`], for use in streaming contexts (simulation statistics).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompensatedSum {
    sum: f64,
    comp: f64,
}

impl CompensatedSum {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated value of the sum.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

impl Extend<f64> for CompensatedSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Pairwise (cascade) summation; `O(log n)` error growth with no
/// per-element compensation cost. Used by the hot simulation paths where
/// the slice is already materialized.
#[must_use]
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    const BASE: usize = 32;
    if xs.len() <= BASE {
        return xs.iter().sum();
    }
    let mid = xs.len() / 2;
    pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
}

/// Compensated dot product `Σ a_i b_i`.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    neumaier_sum(a.iter().zip(b).map(|(x, y)| x * y))
}

/// `L1` norm of the elementwise difference, `Σ|a_i − b_i|`.
///
/// This is the "norm" plotted in Figure 4.2 of the dissertation for the
/// NASH best-reply iteration.
#[must_use]
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l1_distance: length mismatch");
    neumaier_sum(a.iter().zip(b).map(|(x, y)| (x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neumaier_beats_naive_on_cancellation() {
        let xs = [1e16, 1.0, -1e16];
        let naive: f64 = xs.iter().sum();
        assert_ne!(naive, 1.0); // demonstrates the problem
        assert_eq!(neumaier_sum(xs.iter().copied()), 1.0);
    }

    #[test]
    fn compensated_accumulator_matches_batch() {
        let xs: Vec<f64> = (0..1000).map(|i| 0.1 * f64::from(i)).collect();
        let mut acc = CompensatedSum::new();
        acc.extend(xs.iter().copied());
        assert!((acc.value() - neumaier_sum(xs.iter().copied())).abs() < 1e-12);
    }

    #[test]
    fn pairwise_matches_exact_on_integers() {
        let xs: Vec<f64> = (1..=4096).map(f64::from).collect();
        let expected = 4096.0 * 4097.0 / 2.0;
        assert_eq!(pairwise_sum(&xs), expected);
    }

    #[test]
    fn pairwise_small_slice() {
        assert_eq!(pairwise_sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(pairwise_sum(&[]), 0.0);
    }

    #[test]
    fn dot_and_l1() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(l1_distance(&a, &b), 9.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
