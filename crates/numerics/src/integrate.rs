//! Adaptive quadrature.
//!
//! The truthful payment of Chapter 5 (Theorem 5.2) is
//! `P_i(b) = b_i λ_i(b) + ∫_{b_i}^{∞} λ_i(u, b_{−i}) du`.
//! The integrand is the computer's allocated load as a function of its own
//! bid: continuous, non-increasing, piecewise smooth with kinks at bids
//! where the optimal active set changes, and identically zero past a finite
//! cutoff. Adaptive Simpson with interval subdivision concentrates work at
//! the kinks and integrates the smooth pieces at machine-precision-ish
//! accuracy.

/// Result of an adaptive quadrature run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quadrature {
    /// Estimated integral value.
    pub value: f64,
    /// Number of integrand evaluations.
    pub evaluations: u32,
    /// Whether the recursion depth limit was hit anywhere (the returned
    /// value is then the best available estimate, not guaranteed to meet
    /// the tolerance).
    pub saturated: bool,
}

/// Adaptive Simpson quadrature of `f` over `[a, b]` with absolute
/// tolerance `tol`.
///
/// ```
/// use gtlb_numerics::integrate::adaptive_simpson;
/// let q = adaptive_simpson(|x| x * x, 0.0, 3.0, 1e-12, 40);
/// assert!((q.value - 9.0).abs() < 1e-10);
/// ```
pub fn adaptive_simpson<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: u32,
) -> Quadrature {
    assert!(b >= a, "adaptive_simpson: b must be >= a");
    if a == b {
        return Quadrature { value: 0.0, evaluations: 0, saturated: false };
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let mut evals = 3;
    let whole = simpson(a, b, fa, fm, fb);
    let mut saturated = false;
    let value =
        recurse(&mut f, a, b, fa, fm, fb, whole, tol, max_depth, &mut evals, &mut saturated);
    Quadrature { value, evaluations: evals, saturated }
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn recurse<F: FnMut(f64) -> f64>(
    f: &mut F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
    evals: &mut u32,
    saturated: &mut bool,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    *evals += 2;
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 {
        *saturated = true;
        return left + right + delta / 15.0;
    }
    if delta.abs() <= 15.0 * tol {
        return left + right + delta / 15.0;
    }
    recurse(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1, evals, saturated)
        + recurse(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1, evals, saturated)
}

/// Composite trapezoid rule with `n` uniform panels; a cheap cross-check
/// used in tests against [`adaptive_simpson`].
pub fn trapezoid<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 1, "trapezoid: need at least one panel");
    let h = (b - a) / n as f64;
    let mut acc = 0.5 * (f(a) + f(b));
    for k in 1..n {
        acc += f(a + h * k as f64);
    }
    acc * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_is_exact() {
        // Simpson is exact for cubics.
        let q = adaptive_simpson(|x| 4.0 * x * x * x - x, 0.0, 2.0, 1e-14, 20);
        assert!((q.value - 14.0).abs() < 1e-10, "got {}", q.value);
        assert!(!q.saturated);
    }

    #[test]
    fn kinked_integrand_converges() {
        // |x - 1| over [0, 3]: kink at 1, exact area 0.5 + 2.0 = 2.5.
        let q = adaptive_simpson(|x| (x - 1.0f64).abs(), 0.0, 3.0, 1e-10, 48);
        assert!((q.value - 2.5).abs() < 1e-8, "got {}", q.value);
    }

    #[test]
    fn piecewise_zero_tail_like_payment_curve() {
        // Mimics a load curve: positive decreasing then identically zero.
        let f = |x: f64| (2.0 - x).max(0.0);
        let q = adaptive_simpson(f, 0.0, 10.0, 1e-10, 48);
        assert!((q.value - 2.0).abs() < 1e-8, "got {}", q.value);
    }

    #[test]
    fn degenerate_interval_is_zero() {
        let q = adaptive_simpson(|x| x, 1.0, 1.0, 1e-12, 10);
        assert_eq!(q.value, 0.0);
    }

    #[test]
    fn trapezoid_agrees_with_simpson() {
        let f = |x: f64| (x).sin();
        let s = adaptive_simpson(f, 0.0, std::f64::consts::PI, 1e-12, 40).value;
        let t = trapezoid(f, 0.0, std::f64::consts::PI, 20_000);
        assert!((s - 2.0).abs() < 1e-10);
        assert!((t - 2.0).abs() < 1e-7);
    }

    #[test]
    fn depth_limit_reports_saturation() {
        let q = adaptive_simpson(|x: f64| (1e6 * x).sin().abs(), 0.0, 1.0, 1e-14, 2);
        assert!(q.saturated);
    }
}
