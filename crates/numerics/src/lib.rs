//! Numerical kernels underpinning the `gtlb` workspace.
//!
//! The load-balancing algorithms in the Grosu–Chronopoulos–Leung paper are
//! closed-form, but verifying them (KKT conditions, Nash bargaining first
//! order conditions) and computing the truthful payments of the mechanism
//! chapters requires a small, dependable numerical toolbox:
//!
//! * [`sum`] — compensated (Neumaier) and pairwise summation, so that
//!   feasibility checks like `Σλ_i = Φ` do not drown in rounding error on
//!   large clusters;
//! * [`roots`] — bracketing root finders (bisection and Brent) used by the
//!   Wardrop-equilibrium solver and by the payment cutoff search;
//! * [`integrate`] — adaptive Simpson quadrature for the Archer–Tardos
//!   payment integral `∫ λ_i(u, b_{-i}) du`, whose integrand has kinks at
//!   active-set changes;
//! * [`optimize`] — a projected-gradient reference optimizer over the
//!   simplex-with-capacities feasible set, used **only in tests** to
//!   cross-check the paper's closed-form allocations against a generic
//!   convex solver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod integrate;
pub mod optimize;
pub mod roots;
pub mod sum;

/// Default absolute tolerance used across the workspace when comparing
/// floating-point quantities produced by different algorithms.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` when `a` and `b` agree to within `abs_tol` absolutely or
/// `rel_tol` relative to the larger magnitude.
///
/// ```
/// use gtlb_numerics::approx_eq;
/// assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 1e-9));
/// assert!(!approx_eq(1.0, 1.1, 1e-9, 1e-9));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, abs_tol: f64, rel_tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= abs_tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= rel_tol * scale
}

/// Clamps tiny negative values (rounding debris) to exactly zero.
///
/// Allocation formulas like `λ_i = μ_i − c√μ_i` can return `-1e-17` for a
/// computer that is exactly at its drop threshold; downstream feasibility
/// checks require `λ_i ≥ 0`.
#[must_use]
pub fn snap_nonnegative(x: f64, tol: f64) -> f64 {
    if x < 0.0 && x > -tol {
        0.0
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_handles_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-12, 1e-12));
        assert!(approx_eq(0.0, 1e-13, 1e-12, 1e-12));
        assert!(!approx_eq(0.0, 1e-3, 1e-12, 1e-12));
    }

    #[test]
    fn approx_eq_relative_branch() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9, 1e-9));
    }

    #[test]
    fn snap_nonnegative_snaps_only_small_negatives() {
        assert_eq!(snap_nonnegative(-1e-15, 1e-12), 0.0);
        assert_eq!(snap_nonnegative(-1.0, 1e-12), -1.0);
        assert_eq!(snap_nonnegative(2.5, 1e-12), 2.5);
    }
}
