//! Reference convex optimizer: projected gradient over a capped simplex.
//!
//! Every static allocation in the paper solves
//! `min f(λ)  s.t.  λ_i ≥ 0,  Σλ_i = Φ,  λ_i < μ_i`
//! for some separable convex `f` (expected delay for OPTIM, negated log
//! product for COOP/NBS). The closed-form algorithms are fast but subtle
//! (drop-slowest loops, square-root rules); this module provides a slow,
//! generic projected-gradient solver over the same feasible set so that
//! property tests can confirm the closed forms actually minimize what the
//! theorems say they minimize.

/// The feasible set `{ λ : 0 ≤ λ_i ≤ cap_i, Σ λ_i = total }`.
#[derive(Debug, Clone)]
pub struct CappedSimplex {
    /// Required coordinate sum (the total arrival rate `Φ`).
    pub total: f64,
    /// Per-coordinate upper bounds (the stability caps, `μ_i − ε`).
    pub caps: Vec<f64>,
}

impl CappedSimplex {
    /// Creates the set, checking that it is nonempty.
    ///
    /// # Panics
    /// If `total < 0`, any cap is negative, or `Σ caps < total`.
    #[must_use]
    pub fn new(total: f64, caps: Vec<f64>) -> Self {
        assert!(total >= 0.0, "CappedSimplex: total must be nonnegative");
        assert!(caps.iter().all(|&c| c >= 0.0), "CappedSimplex: caps must be nonnegative");
        let cap_sum: f64 = caps.iter().sum();
        assert!(
            cap_sum >= total,
            "CappedSimplex: infeasible (sum of caps {cap_sum} < total {total})"
        );
        Self { total, caps }
    }

    /// Euclidean projection of `x` onto the set, in place.
    ///
    /// The projection is `λ_i = clamp(x_i − ν, 0, cap_i)` for the unique
    /// shift `ν` making the coordinates sum to `total`. The sum of clamps
    /// is a piecewise-linear non-increasing function of `ν` with
    /// breakpoints at `x_i` and `x_i − cap_i`; we scan the sorted
    /// breakpoints and solve the crossing segment exactly — no
    /// bracketing, robust to coordinates of wildly different magnitudes
    /// (gradient steps can throw iterates to ±1e17, where an additive
    /// bracket slack would round away).
    pub fn project(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.caps.len(), "project: dimension mismatch");
        let sum_at = |nu: f64| -> f64 {
            x.iter().zip(&self.caps).map(|(&xi, &ci)| (xi - nu).clamp(0.0, ci)).sum::<f64>()
        };
        // Breakpoints of the piecewise-linear sum.
        let mut bps: Vec<f64> = Vec::with_capacity(2 * x.len());
        for (&xi, &ci) in x.iter().zip(&self.caps) {
            bps.push(xi);
            bps.push(xi - ci);
        }
        bps.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        bps.dedup();

        // Left of the first breakpoint every coordinate sits at its cap,
        // so the sum is Σcaps ≥ total (constructor invariant). Walk right
        // until the sum drops below the target, then solve the linear
        // segment.
        let nu = 'search: {
            let mut prev_bp = bps[0];
            let mut prev_sum = sum_at(prev_bp);
            if prev_sum <= self.total {
                break 'search prev_bp;
            }
            for &bp in &bps[1..] {
                let s = sum_at(bp);
                if s <= self.total {
                    // Crossing inside (prev_bp, bp]: slope = Δs/Δν < 0.
                    let slope = (s - prev_sum) / (bp - prev_bp);
                    break 'search if slope < 0.0 {
                        prev_bp + (self.total - prev_sum) / slope
                    } else {
                        bp
                    };
                }
                prev_bp = bp;
                prev_sum = s;
            }
            // total == 0 and all coordinates vanish at the last breakpoint.
            *bps.last().expect("at least one breakpoint")
        };
        for (xi, &ci) in x.iter_mut().zip(&self.caps) {
            *xi = (*xi - nu).clamp(0.0, ci);
        }
        // Re-normalize the (tiny) residual onto an interior coordinate so
        // the conservation law holds to high precision.
        let drift = self.total - x.iter().sum::<f64>();
        if drift != 0.0 {
            if let Some((i, _)) =
                x.iter().enumerate().find(|&(i, &v)| v + drift >= 0.0 && v + drift <= self.caps[i])
            {
                x[i] += drift;
            }
        }
    }
}

/// Options for [`projected_gradient`].
#[derive(Debug, Clone, Copy)]
pub struct PgOptions {
    /// Maximum outer iterations.
    pub max_iter: u32,
    /// Initial step size for the backtracking line search.
    pub step0: f64,
    /// Stop when the projected-gradient step moves less than this (L∞).
    pub x_tol: f64,
}

impl Default for PgOptions {
    fn default() -> Self {
        Self { max_iter: 50_000, step0: 1.0, x_tol: 1e-12 }
    }
}

/// Projected gradient descent with Armijo backtracking for
/// `min f(λ)` over a [`CappedSimplex`]. Returns the final iterate.
///
/// This is a *reference* solver: simple, robust, slow. It is deliberately
/// not exported through the facade crate's prelude — production code uses
/// the paper's closed forms.
pub fn projected_gradient<F, G>(
    mut f: F,
    mut grad: G,
    set: &CappedSimplex,
    mut x: Vec<f64>,
    opts: PgOptions,
) -> Vec<f64>
where
    F: FnMut(&[f64]) -> f64,
    G: FnMut(&[f64], &mut [f64]),
{
    assert_eq!(x.len(), set.caps.len(), "projected_gradient: dimension mismatch");
    set.project(&mut x);
    let n = x.len();
    let mut g = vec![0.0; n];
    let mut trial = vec![0.0; n];
    let mut fx = f(&x);
    let mut step = opts.step0;
    for _ in 0..opts.max_iter {
        grad(&x, &mut g);
        // Backtracking: find a step that decreases f after projection.
        let mut accepted = false;
        let mut local = step;
        for _ in 0..60 {
            for i in 0..n {
                trial[i] = x[i] - local * g[i];
            }
            set.project(&mut trial);
            let ft = f(&trial);
            if ft < fx {
                let moved = x.iter().zip(&trial).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
                x.copy_from_slice(&trial);
                fx = ft;
                step = (local * 1.5).min(opts.step0 * 16.0);
                accepted = true;
                if moved < opts.x_tol {
                    return x;
                }
                break;
            }
            local *= 0.5;
        }
        if !accepted {
            return x; // no descent direction at line-search resolution
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_respects_constraints() {
        let set = CappedSimplex::new(1.0, vec![0.4, 0.4, 0.4]);
        let mut x = vec![3.0, -1.0, 0.2];
        set.project(&mut x);
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-10, "sum {sum}");
        for (i, &v) in x.iter().enumerate() {
            assert!((0.0..=0.4 + 1e-12).contains(&v), "x[{i}] = {v}");
        }
    }

    #[test]
    fn projection_of_feasible_point_is_identity() {
        let set = CappedSimplex::new(1.0, vec![1.0, 1.0]);
        let mut x = vec![0.25, 0.75];
        set.project(&mut x);
        assert!((x[0] - 0.25).abs() < 1e-10 && (x[1] - 0.75).abs() < 1e-10);
    }

    #[test]
    fn projection_survives_huge_magnitudes() {
        // Regression: a gradient step can fling a coordinate to -1e17;
        // the old bisection bracket lost its slack to rounding there.
        let set =
            CappedSimplex::new(0.4169933566119411, vec![0.3990450087710752, 0.16560613318868908]);
        let mut x = vec![-18.06, -1.6e17];
        set.project(&mut x);
        let sum: f64 = x.iter().sum();
        assert!((sum - set.total).abs() < 1e-9, "sum {sum}");
        for (v, c) in x.iter().zip(&set.caps) {
            assert!(*v >= 0.0 && v <= c);
        }
    }

    #[test]
    fn projection_zero_total() {
        let set = CappedSimplex::new(0.0, vec![1.0, 2.0]);
        let mut x = vec![5.0, -3.0];
        set.project(&mut x);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_set_rejected() {
        let _ = CappedSimplex::new(5.0, vec![1.0, 1.0]);
    }

    #[test]
    fn pg_solves_quadratic_with_known_solution() {
        // min Σ (x_i - t_i)^2 over the simplex sum=1, caps=1: the solution
        // is the projection of t.
        let t = [0.9, 0.5, -0.2];
        let set = CappedSimplex::new(1.0, vec![1.0; 3]);
        let sol = projected_gradient(
            |x| x.iter().zip(&t).map(|(a, b)| (a - b).powi(2)).sum(),
            |x, g| {
                for i in 0..3 {
                    g[i] = 2.0 * (x[i] - t[i]);
                }
            },
            &set,
            vec![1.0 / 3.0; 3],
            PgOptions::default(),
        );
        let mut expect = t.to_vec();
        set.project(&mut expect);
        for i in 0..3 {
            assert!((sol[i] - expect[i]).abs() < 1e-6, "{sol:?} vs {expect:?}");
        }
    }

    #[test]
    fn pg_solves_mm1_delay_two_servers() {
        // min λ1/(μ1-λ1) + λ2/(μ2-λ2), μ=(4,1), Φ=2.
        // Square-root rule: c=(5-2)/(2+1)=1 -> λ=(4-2, 1-1)=(2,0).
        let mu = [4.0, 1.0];
        let phi = 2.0;
        let eps = 1e-6;
        let set = CappedSimplex::new(phi, mu.iter().map(|&m| m - eps).collect());
        let f = |x: &[f64]| -> f64 { x.iter().zip(&mu).map(|(&l, &m)| l / (m - l)).sum() };
        let g = |x: &[f64], out: &mut [f64]| {
            for i in 0..2 {
                out[i] = mu[i] / (mu[i] - x[i]).powi(2);
            }
        };
        let sol = projected_gradient(f, g, &set, vec![1.0, 1.0], PgOptions::default());
        assert!((sol[0] - 2.0).abs() < 1e-4, "{sol:?}");
        assert!(sol[1].abs() < 1e-4, "{sol:?}");
    }
}
