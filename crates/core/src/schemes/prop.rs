//! PROP — the rate-proportional baseline of Chow & Kohler \[24\], §3.4.2.
//!
//! `λ_i = Φ · μ_i / Σμ`: every computer runs at the same utilization
//! `ρ = Φ/Σμ`, which "seems to be a natural choice but may not minimize
//! the average response time of the system and is unfair" — slow
//! computers are proportionally loaded yet respond far slower
//! (`T_i = 1/(μ_i(1 − ρ))`), which is exactly why PROP underperforms in
//! every figure of the evaluation.

use crate::allocation::Allocation;
use crate::error::CoreError;
use crate::model::Cluster;
use crate::schemes::SingleClassScheme;

/// The PROP algorithm: `O(n)` proportional split.
///
/// ```
/// use gtlb_core::model::Cluster;
/// use gtlb_core::schemes::{Prop, SingleClassScheme};
///
/// let c = Cluster::new(vec![3.0, 1.0]).unwrap();
/// let a = Prop.allocate(&c, 2.0).unwrap();
/// assert_eq!(a.loads(), &[1.5, 0.5]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Prop;

impl SingleClassScheme for Prop {
    fn name(&self) -> &'static str {
        "PROP"
    }

    fn allocate(&self, cluster: &Cluster, phi: f64) -> Result<Allocation, CoreError> {
        cluster.check_arrival_rate(phi)?;
        let total = cluster.total_rate();
        Ok(Allocation::new(cluster.rates().iter().map(|&mu| phi * mu / total).collect()))
    }
}

impl Prop {
    /// PROP's fairness index is a load-independent constant determined by
    /// the rate vector alone: with `x_i = 1/(μ_i(1 − ρ))`, the `(1 − ρ)`
    /// factors cancel in Jain's index, leaving
    /// `I = (Σ 1/μ)² / (n Σ 1/μ²)`.
    ///
    /// The paper states this constant is 0.731 for Table 3.1's cluster.
    #[must_use]
    pub fn fairness_constant(cluster: &Cluster) -> f64 {
        let inv: Vec<f64> = cluster.rates().iter().map(|&m| 1.0 / m).collect();
        crate::allocation::jain_index(&inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_utilization_everywhere() {
        let c = Cluster::new(vec![4.0, 2.0, 1.0]).unwrap();
        let phi = 3.5;
        let a = Prop.allocate(&c, phi).unwrap();
        let rho = phi / 7.0;
        for (&l, &mu) in a.loads().iter().zip(c.rates()) {
            assert!((l / mu - rho).abs() < 1e-12);
        }
        a.verify(&c, phi, 1e-12).unwrap();
    }

    #[test]
    fn fairness_constant_is_load_independent() {
        let c = Cluster::from_groups(&[(2, 0.13), (3, 0.065), (5, 0.026), (6, 0.013)]).unwrap();
        let k = Prop::fairness_constant(&c);
        for rho in [0.1, 0.5, 0.9] {
            let phi = c.arrival_rate_for_utilization(rho);
            let a = Prop.allocate(&c, phi).unwrap();
            assert!((a.fairness_index(&c) - k).abs() < 1e-9, "rho {rho}");
        }
        // §3.4.2: "PROP has a fairness index of 0.731" for this cluster.
        assert!((k - 0.731).abs() < 0.002, "constant {k}");
    }

    #[test]
    fn never_drops_a_computer() {
        let c = Cluster::new(vec![100.0, 0.001]).unwrap();
        let a = Prop.allocate(&c, 50.0).unwrap();
        assert!(a.loads().iter().all(|&l| l > 0.0));
    }
}
