//! OPTIM — the overall-optimal (social optimum) baseline, §3.4.2.
//!
//! Minimizes the system-wide expected delay `Σ λ_i/(μ_i − λ_i)` subject to
//! feasibility — the classical global approach of Tantawi–Towsley \[128\]
//! and Tang–Chanson \[127\]. The KKT conditions give the *square-root rule*
//! on the active set:
//!
//! ```text
//! λ_i = μ_i − c·√μ_i,     c = (Σ_act μ − Φ) / Σ_act √μ
//! ```
//!
//! with the same drop-slowest loop as COOP: a computer stays active iff
//! `√μ_i > c`. OPTIM achieves the lowest overall response time of all the
//! schemes but treats jobs unfairly — jobs on slow computers wait longer
//! (fairness index down to ≈0.88 at high load in Figure 3.1).

use crate::allocation::Allocation;
use crate::error::CoreError;
use crate::model::Cluster;
use crate::schemes::{sorted_waterfill, SingleClassScheme};

/// The OPTIM algorithm: `O(n log n)` exact social optimum.
///
/// ```
/// use gtlb_core::model::Cluster;
/// use gtlb_core::schemes::{Optim, SingleClassScheme};
///
/// // μ = (4, 1), Φ = 2: c = (5-2)/(2+1) = 1 -> λ = (4-2·1, 1-1·1) = (2, 0).
/// let c = Cluster::new(vec![4.0, 1.0]).unwrap();
/// let a = Optim.allocate(&c, 2.0).unwrap();
/// assert!((a.loads()[0] - 2.0).abs() < 1e-12);
/// assert_eq!(a.loads()[1], 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Optim;

impl SingleClassScheme for Optim {
    fn name(&self) -> &'static str {
        "OPTIM"
    }

    fn allocate(&self, cluster: &Cluster, phi: f64) -> Result<Allocation, CoreError> {
        sorted_waterfill(
            cluster,
            phi,
            f64::sqrt,                                        // prefix statistic: Σ√μ
            |sum_mu, sum_sqrt, _k| (sum_mu - phi) / sum_sqrt, // c
            |mu_slowest, c| mu_slowest.sqrt() > c,            // keep iff λ = μ − c√μ > 0
            |mu, c| mu - c * mu.sqrt(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtlb_numerics::optimize::{projected_gradient, CappedSimplex, PgOptions};

    #[test]
    fn square_root_rule_interior() {
        // μ = (9, 4), Φ = 8: c = (13-8)/(3+2) = 1 -> λ = (6, 2).
        let c = Cluster::new(vec![9.0, 4.0]).unwrap();
        let a = Optim.allocate(&c, 8.0).unwrap();
        assert!((a.loads()[0] - 6.0).abs() < 1e-12);
        assert!((a.loads()[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn beats_or_ties_every_other_scheme() {
        use crate::schemes::{Coop, Prop};
        let c = Cluster::from_groups(&[(2, 0.13), (3, 0.065), (5, 0.026), (6, 0.013)]).unwrap();
        for rho in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let phi = c.arrival_rate_for_utilization(rho);
            let t_opt = Optim.allocate(&c, phi).unwrap().mean_response_time(&c);
            let t_coop = Coop.allocate(&c, phi).unwrap().mean_response_time(&c);
            let t_prop = Prop.allocate(&c, phi).unwrap().mean_response_time(&c);
            assert!(t_opt <= t_coop + 1e-9, "rho {rho}: OPTIM {t_opt} vs COOP {t_coop}");
            assert!(t_opt <= t_prop + 1e-9, "rho {rho}: OPTIM {t_opt} vs PROP {t_prop}");
        }
    }

    #[test]
    fn kkt_via_projected_gradient_reference() {
        // Cross-check the closed form against the generic convex solver.
        let mu = [3.0, 2.0, 1.0];
        let c = Cluster::new(mu.to_vec()).unwrap();
        let phi = 3.0;
        let closed = Optim.allocate(&c, phi).unwrap();
        let eps = 1e-9;
        let set = CappedSimplex::new(phi, mu.iter().map(|&m| m - eps).collect());
        let f = |x: &[f64]| -> f64 { x.iter().zip(&mu).map(|(&l, &m)| l / (m - l)).sum() };
        let g = |x: &[f64], out: &mut [f64]| {
            for i in 0..3 {
                out[i] = mu[i] / (mu[i] - x[i]).powi(2);
            }
        };
        let reference = projected_gradient(
            f,
            g,
            &set,
            vec![1.0; 3],
            PgOptions { max_iter: 200_000, ..Default::default() },
        );
        for i in 0..3 {
            assert!(
                (closed.loads()[i] - reference[i]).abs() < 1e-4,
                "closed {:?} vs reference {:?}",
                closed.loads(),
                reference
            );
        }
    }

    #[test]
    fn drop_loop_cascades() {
        // μ = (100, 1, 1), Φ = 10: c = (102-10)/(10+1+1) = 7.67 -> drop
        // both slow ones; alone: c = (100-10)/10 = 9 < 10 -> keep.
        let c = Cluster::new(vec![100.0, 1.0, 1.0]).unwrap();
        let a = Optim.allocate(&c, 10.0).unwrap();
        assert!((a.loads()[0] - 10.0).abs() < 1e-9);
        assert_eq!(a.loads()[1], 0.0);
        assert_eq!(a.loads()[2], 0.0);
    }

    #[test]
    fn homogeneous_matches_even_split() {
        let c = Cluster::new(vec![1.5; 4]).unwrap();
        let a = Optim.allocate(&c, 3.0).unwrap();
        for &l in a.loads() {
            assert!((l - 0.75).abs() < 1e-12);
        }
    }

    #[test]
    fn optim_uses_more_computers_than_coop_at_medium_load() {
        // Figure 3.2: at ρ = 50 % OPTIM spreads load wider than COOP
        // (COOP parks the 6 slowest, OPTIM keeps more of them active).
        let c = Cluster::from_groups(&[(2, 0.13), (3, 0.065), (5, 0.026), (6, 0.013)]).unwrap();
        let phi = c.arrival_rate_for_utilization(0.5);
        let used_optim =
            Optim.allocate(&c, phi).unwrap().loads().iter().filter(|&&l| l > 0.0).count();
        let used_coop = crate::schemes::Coop
            .allocate(&c, phi)
            .unwrap()
            .loads()
            .iter()
            .filter(|&&l| l > 0.0)
            .count();
        assert!(used_optim >= used_coop, "OPTIM {used_optim} vs COOP {used_coop}");
    }
}
