//! The four static single-class allocation schemes of Chapter 3.
//!
//! * [`Coop`] — the paper's contribution: the Nash Bargaining Solution of
//!   the cooperative game among computers (the COOP algorithm);
//! * [`Optim`] — the overall-optimal (social-optimum) baseline of
//!   Tantawi–Towsley / Tang–Chanson;
//! * [`Prop`] — the rate-proportional baseline of Chow–Kohler;
//! * [`Wardrop`] — the individual-optimum baseline of Kameda et al.,
//!   computed by an iterative level solver.
//!
//! All schemes implement [`SingleClassScheme`] and return loads in the
//! cluster's original computer order regardless of internal sorting.

mod coop;
mod optim;
mod prop;
mod wardrop;

pub use coop::Coop;
pub use optim::Optim;
pub use prop::Prop;
pub use wardrop::{verify_wardrop_equilibrium, Wardrop, WardropReport};

use crate::allocation::Allocation;
use crate::error::CoreError;
use crate::model::Cluster;

/// A static load-balancing scheme for single-class job systems: given the
/// computers' processing rates and the total arrival rate `Φ`, produce a
/// feasible load vector.
pub trait SingleClassScheme {
    /// Short display name used in experiment tables ("COOP", "OPTIM", …).
    fn name(&self) -> &'static str;

    /// Computes the allocation.
    ///
    /// # Errors
    /// [`CoreError::Overloaded`] when `Φ ≥ Σμ`; [`CoreError::BadInput`]
    /// on malformed parameters; [`CoreError::NoConvergence`] from
    /// iterative schemes.
    fn allocate(&self, cluster: &Cluster, phi: f64) -> Result<Allocation, CoreError>;
}

/// Shared skeleton of the COOP and OPTIM algorithms.
///
/// Both algorithms (i) sort computers by decreasing rate, (ii) repeatedly
/// shrink the active prefix while the slowest active computer would
/// receive a negative load under the interior formula, then (iii) apply
/// the interior formula to the surviving prefix. They differ only in the
/// two closures:
///
/// * `level(sum_stat, k)` — the multiplier computed from the prefix
///   statistic and the active count;
/// * the prefix statistic itself and the per-computer load formula,
///   supplied by the caller via `stat` and `load`.
///
/// `stat(μ)` is accumulated over the active prefix; `keep(μ_slowest,
/// level)` decides whether the slowest active computer stays; `load(μ,
/// level)` produces the final loads.
pub(crate) fn sorted_waterfill(
    cluster: &Cluster,
    phi: f64,
    stat: impl Fn(f64) -> f64,
    level: impl Fn(f64, f64, usize) -> f64,
    keep: impl Fn(f64, f64) -> bool,
    load: impl Fn(f64, f64) -> f64,
) -> Result<Allocation, CoreError> {
    cluster.check_arrival_rate(phi)?;
    let order = cluster.order_by_rate_desc();
    let rates = cluster.rates();
    let mut loads = vec![0.0; cluster.n()];
    if phi == 0.0 {
        return Ok(Allocation::new(loads));
    }

    // Prefix sums over the sorted order so each shrink step is O(1).
    let mut sum_mu: f64 = order.iter().map(|&i| rates[i]).sum();
    let mut sum_stat: f64 = order.iter().map(|&i| stat(rates[i])).sum();
    let mut k = order.len();
    let mut lvl = level(sum_mu, sum_stat, k);
    while k > 1 && !keep(rates[order[k - 1]], lvl) {
        k -= 1;
        sum_mu -= rates[order[k]];
        sum_stat -= stat(rates[order[k]]);
        lvl = level(sum_mu, sum_stat, k);
    }
    debug_assert!(
        keep(rates[order[k - 1]], lvl),
        "waterfill: interior formula still infeasible with one computer"
    );
    for &i in order.iter().take(k) {
        loads[i] = gtlb_numerics::snap_nonnegative(load(rates[i], lvl), 1e-12);
    }
    Ok(Allocation::new(loads))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_report_names() {
        assert_eq!(Coop.name(), "COOP");
        assert_eq!(Optim.name(), "OPTIM");
        assert_eq!(Prop.name(), "PROP");
        assert_eq!(Wardrop::default().name(), "WARDROP");
    }

    #[test]
    fn all_schemes_reject_overload() {
        let c = Cluster::new(vec![1.0, 1.0]).unwrap();
        let schemes: Vec<Box<dyn SingleClassScheme>> =
            vec![Box::new(Coop), Box::new(Optim), Box::new(Prop), Box::new(Wardrop::default())];
        for s in &schemes {
            assert!(
                matches!(s.allocate(&c, 2.5), Err(CoreError::Overloaded { .. })),
                "{} accepted an overloaded system",
                s.name()
            );
        }
    }

    #[test]
    fn all_schemes_feasible_on_table31_grid() {
        let c = Cluster::from_groups(&[(2, 0.13), (3, 0.065), (5, 0.026), (6, 0.013)]).unwrap();
        let schemes: Vec<Box<dyn SingleClassScheme>> =
            vec![Box::new(Coop), Box::new(Optim), Box::new(Prop), Box::new(Wardrop::default())];
        for rho10 in 1..=9 {
            let phi = c.arrival_rate_for_utilization(f64::from(rho10) / 10.0);
            for s in &schemes {
                let a = s.allocate(&c, phi).unwrap();
                a.verify(&c, phi, 1e-7)
                    .unwrap_or_else(|e| panic!("{} infeasible at rho={}: {e}", s.name(), rho10));
            }
        }
    }

    #[test]
    fn zero_arrival_rate_gives_zero_loads() {
        let c = Cluster::new(vec![2.0, 1.0]).unwrap();
        for s in [&Coop as &dyn SingleClassScheme, &Optim, &Prop] {
            let a = s.allocate(&c, 0.0).unwrap();
            assert!(a.loads().iter().all(|&l| l == 0.0), "{}", s.name());
        }
    }
}
