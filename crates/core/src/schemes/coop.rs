//! COOP — the Nash Bargaining Solution of the cooperative load-balancing
//! game (the paper's primary contribution, §3.3).
//!
//! The cooperative game: each computer `i` is a player with objective
//! `f_i(λ) = −(μ_i − λ_i)` bounded above by the initial (disagreement)
//! performance `u⁰_i = −μ_i` (no cooperation ⇒ worst case). By
//! Theorems 3.4/3.5 the Nash Bargaining Solution is the unique maximizer
//! of `Σ ln(μ_i − λ_i)` over the feasible set, and by Theorem 3.6 the
//! unconstrained interior solution is
//!
//! ```text
//! λ_i = μ_i − (Σ μ − Φ) / n
//! ```
//!
//! — every used computer keeps the same *residual capacity*, hence the
//! same expected response time `1/(μ_i − λ_i)`, hence fairness index 1
//! (Theorem 3.8). Computers too slow for the common level would receive
//! negative loads; Lemma A.1 justifies dropping the slowest and
//! recomputing (Theorem 3.7 proves the resulting algorithm correct).

use crate::allocation::Allocation;
use crate::error::CoreError;
use crate::model::Cluster;
use crate::schemes::{sorted_waterfill, SingleClassScheme};

/// The COOP algorithm: `O(n log n)` exact Nash Bargaining Solution.
///
/// ```
/// use gtlb_core::model::Cluster;
/// use gtlb_core::schemes::{Coop, SingleClassScheme};
///
/// // Fast computer 10 jobs/s, slow computer 1 job/s, Φ = 5 jobs/s:
/// // common residual (11 - 5)/2 = 3 > 1 would overload the slow one,
/// // so COOP drops it and serves everything on the fast computer.
/// let c = Cluster::new(vec![10.0, 1.0]).unwrap();
/// let a = Coop.allocate(&c, 5.0).unwrap();
/// assert_eq!(a.loads(), &[5.0, 0.0]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Coop;

impl Coop {
    /// The common residual capacity `α = (Σ_act μ − Φ)/k` achieved on the
    /// active set of the NBS (the reciprocal of every used computer's
    /// response time). Useful for analytic reasoning in tests and
    /// experiments.
    ///
    /// # Errors
    /// Propagates the same conditions as [`Coop::allocate`](SingleClassScheme::allocate).
    pub fn common_residual(cluster: &Cluster, phi: f64) -> Result<f64, CoreError> {
        let alloc = Coop.allocate(cluster, phi)?;
        let (used_mu, used_lambda, k) = alloc
            .loads()
            .iter()
            .zip(cluster.rates())
            .filter(|(&l, _)| l > 0.0)
            .fold((0.0, 0.0, 0usize), |(sm, sl, k), (&l, &mu)| (sm + mu, sl + l, k + 1));
        if k == 0 {
            return Err(CoreError::BadInput("no computer is used (Φ = 0?)".into()));
        }
        Ok((used_mu - used_lambda) / k as f64)
    }
}

impl SingleClassScheme for Coop {
    fn name(&self) -> &'static str {
        "COOP"
    }

    fn allocate(&self, cluster: &Cluster, phi: f64) -> Result<Allocation, CoreError> {
        sorted_waterfill(
            cluster,
            phi,
            |_mu| 1.0, // prefix statistic: count (via sum of 1)
            |sum_mu, _count, k| (sum_mu - phi) / k as f64, // α
            |mu_slowest, alpha| mu_slowest > alpha, // keep iff λ = μ − α > 0
            |mu, alpha| mu - alpha,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equalizes_response_times_exactly() {
        let c = Cluster::new(vec![5.0, 4.0, 3.0]).unwrap();
        let phi = 6.0;
        let a = Coop.allocate(&c, phi).unwrap();
        // α = (12 - 6)/3 = 2 -> loads (3, 2, 1).
        assert!((a.loads()[0] - 3.0).abs() < 1e-12);
        assert!((a.loads()[1] - 2.0).abs() < 1e-12);
        assert!((a.loads()[2] - 1.0).abs() < 1e-12);
        assert!((a.fairness_index(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drops_slow_computers_in_cascade() {
        // μ = (10, 1, 0.5), Φ = 2: with all three, α = (11.5-2)/3 ≈ 3.17
        // kills both slow ones; with two, α = (11-2)/2 = 4.5 kills μ=1;
        // final: only the fast computer, λ = (2, 0, 0).
        let c = Cluster::new(vec![10.0, 1.0, 0.5]).unwrap();
        let a = Coop.allocate(&c, 2.0).unwrap();
        assert!((a.loads()[0] - 2.0).abs() < 1e-12);
        assert_eq!(a.loads()[1], 0.0);
        assert_eq!(a.loads()[2], 0.0);
    }

    #[test]
    fn high_load_uses_everyone() {
        let c = Cluster::new(vec![10.0, 1.0, 0.5]).unwrap();
        let phi = 11.0; // 95.6% utilization
        let a = Coop.allocate(&c, phi).unwrap();
        assert!(a.loads().iter().all(|&l| l > 0.0), "{:?}", a.loads());
        a.verify(&c, phi, 1e-9).unwrap();
    }

    #[test]
    fn paper_medium_load_response_time() {
        // §3.4.2: on Table 3.1's cluster at ρ = 50 %, COOP uses the 10
        // fastest computers and every job sees 39.4 s.
        let c = Cluster::from_groups(&[(2, 0.13), (3, 0.065), (5, 0.026), (6, 0.013)]).unwrap();
        let phi = c.arrival_rate_for_utilization(0.5);
        let a = Coop.allocate(&c, phi).unwrap();
        let used = a.loads().iter().filter(|&&l| l > 0.0).count();
        assert_eq!(used, 10, "loads {:?}", a.loads());
        let t = a.mean_response_time(&c);
        assert!((t - 39.447).abs() < 0.05, "T = {t}");
        // Paper reports 39.44 s for the common per-computer time.
        let alpha = Coop::common_residual(&c, phi).unwrap();
        assert!((1.0 / alpha - t).abs() < 1e-9);
    }

    #[test]
    fn homogeneous_cluster_splits_evenly() {
        let c = Cluster::new(vec![2.0; 8]).unwrap();
        let a = Coop.allocate(&c, 8.0).unwrap();
        for &l in a.loads() {
            assert!((l - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_computer() {
        let c = Cluster::new(vec![3.0]).unwrap();
        let a = Coop.allocate(&c, 2.0).unwrap();
        assert_eq!(a.loads(), &[2.0]);
    }

    #[test]
    fn preserves_original_computer_order() {
        // Unsorted input: the slow computer is listed first.
        let c = Cluster::new(vec![1.0, 10.0]).unwrap();
        let a = Coop.allocate(&c, 5.0).unwrap();
        assert_eq!(a.loads()[0], 0.0);
        assert!((a.loads()[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dissertation_example_3_2_structure() {
        // Example 3.2 uses three computers sorted fastest-first with the
        // slowest dropped; we encode a fully-solved instance:
        // μ = (6, 4, 1), Φ = 6. All three: α = (11-6)/3 = 5/3 > 1? μ3=1 <
        // 5/3 -> drop. Two: α = (10-6)/2 = 2 -> λ = (4, 2, 0).
        let c = Cluster::new(vec![6.0, 4.0, 1.0]).unwrap();
        let a = Coop.allocate(&c, 6.0).unwrap();
        assert!((a.loads()[0] - 4.0).abs() < 1e-12);
        assert!((a.loads()[1] - 2.0).abs() < 1e-12);
        assert_eq!(a.loads()[2], 0.0);
    }
}
