//! WARDROP — the individual-optimum baseline of Kameda et al. \[67\],
//! §3.4.2.
//!
//! Infinitely many jobs each minimize their own response time; at the
//! Wardrop equilibrium no job can improve by switching computers, so every
//! *used* computer offers the same response time `t` and every unused
//! computer would be slower (`1/μ_i ≥ t`). In the parallel-M/M/1 model
//! this pins the loads to `λ_i = max(0, μ_i − 1/t)` with the level `t`
//! solving `Σ_i max(0, μ_i − 1/t) = Φ`.
//!
//! The paper's point is methodological: WARDROP must be computed by an
//! iterative procedure (complexity `O(n log n · log(1/ε) )` with large
//! hidden constants — "70 msec vs 0.1 msec for COOP" on their hardware)
//! while COOP reaches the *same* allocation in closed form. We therefore
//! deliberately implement WARDROP as the iterative level search and expose
//! its iteration count, so the benchmark suite can reproduce the paper's
//! runtime comparison, and a property test can confirm the equilibrium
//! coincides with the NBS (the reason Figures 3.1–3.6 show identical COOP
//! and WARDROP curves).

use gtlb_numerics::roots::expand_bracket;
use gtlb_numerics::sum::neumaier_sum;

use crate::allocation::Allocation;
use crate::error::CoreError;
use crate::model::Cluster;
use crate::schemes::SingleClassScheme;

/// The WARDROP scheme: iterative bisection on the common response-time
/// level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wardrop {
    /// Acceptance tolerance `ε` on the conservation residual
    /// `|Σλ_i(t) − Φ|` (the paper's tolerance parameter; they report
    /// runtimes for `ε = 10⁻²…10⁻⁴`... smaller `ε` costs more
    /// iterations).
    pub tolerance: f64,
    /// Iteration budget for the bisection.
    pub max_iterations: u32,
}

impl Default for Wardrop {
    fn default() -> Self {
        Self { tolerance: 1e-10, max_iterations: 200 }
    }
}

impl Wardrop {
    /// Wardrop solver with a custom tolerance.
    #[must_use]
    pub fn with_tolerance(tolerance: f64) -> Self {
        Self { tolerance, ..Self::default() }
    }

    /// Computes the equilibrium and reports solver diagnostics alongside
    /// the allocation (used by the ablation experiment on the tolerance).
    ///
    /// # Errors
    /// As [`SingleClassScheme::allocate`].
    pub fn solve(&self, cluster: &Cluster, phi: f64) -> Result<WardropReport, CoreError> {
        cluster.check_arrival_rate(phi)?;
        let n = cluster.n();
        if phi == 0.0 {
            return Ok(WardropReport {
                allocation: Allocation::new(vec![0.0; n]),
                level: f64::INFINITY,
                iterations: 0,
            });
        }
        let rates = cluster.rates();
        let excess =
            |t: f64| -> f64 { neumaier_sum(rates.iter().map(|&mu| (mu - 1.0 / t).max(0.0))) - phi };
        // Level bracket: at t = 1/μ_max nothing is loaded (excess = −Φ);
        // expand upward until the level absorbs Φ.
        let mu_max = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lo = 1.0 / mu_max;
        let (lo, hi) = expand_bracket(excess, lo, 2.0 * lo, 256)
            .map_err(|_| CoreError::NoConvergence { solver: "wardrop-bracket", iterations: 256 })?;
        // Bisect on the residual (stop when |excess| <= ε, like the
        // paper's iterative procedure), with an x-tolerance backstop.
        let mut iterations = 0;
        let mut lo = lo;
        let mut hi = hi;
        let level;
        loop {
            iterations += 1;
            if iterations > self.max_iterations {
                return Err(CoreError::NoConvergence {
                    solver: "wardrop",
                    iterations: self.max_iterations,
                });
            }
            let mid = 0.5 * (lo + hi);
            let e = excess(mid);
            if e.abs() <= self.tolerance * phi.max(1.0) {
                level = mid;
                break;
            }
            if e < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) < f64::EPSILON * hi {
                level = mid;
                break;
            }
        }
        let mut loads: Vec<f64> = rates.iter().map(|&mu| (mu - 1.0 / level).max(0.0)).collect();
        // Re-distribute the residual over the used computers so the
        // conservation law holds exactly (the level search stops at ε).
        let total = neumaier_sum(loads.iter().copied());
        let used: Vec<usize> = (0..n).filter(|&i| loads[i] > 0.0).collect();
        if !used.is_empty() && total > 0.0 {
            let residual = phi - total;
            let share = residual / used.len() as f64;
            for &i in &used {
                loads[i] = (loads[i] + share).max(0.0);
            }
        }
        Ok(WardropReport { allocation: Allocation::new(loads), level, iterations })
    }
}

/// Diagnostics-bearing result of the Wardrop solver.
#[derive(Debug, Clone)]
pub struct WardropReport {
    /// The equilibrium allocation.
    pub allocation: Allocation,
    /// The common response-time level `t` at equilibrium.
    pub level: f64,
    /// Bisection iterations spent.
    pub iterations: u32,
}

impl SingleClassScheme for Wardrop {
    fn name(&self) -> &'static str {
        "WARDROP"
    }

    fn allocate(&self, cluster: &Cluster, phi: f64) -> Result<Allocation, CoreError> {
        Ok(self.solve(cluster, phi)?.allocation)
    }
}

/// Verifies the Wardrop equilibrium conditions directly: all used
/// computers share one response time (within `tol`), and no unused
/// computer would be faster than that common time. Returns the common
/// level on success. Exposed for tests and the experiment harness.
///
/// # Errors
/// [`CoreError::BadInput`] describing the violated equilibrium condition.
pub fn verify_wardrop_equilibrium(
    cluster: &Cluster,
    allocation: &Allocation,
    tol: f64,
) -> Result<f64, CoreError> {
    let times = allocation.response_times(cluster);
    let used: Vec<f64> = times.iter().copied().flatten().collect();
    if used.is_empty() {
        return Err(CoreError::BadInput("no computer is used".into()));
    }
    let t0 = used[0];
    for (i, &t) in used.iter().enumerate() {
        if (t - t0).abs() > tol * t0 {
            return Err(CoreError::BadInput(format!(
                "used computers disagree on response time: {t0} vs {t} (index {i})"
            )));
        }
    }
    for (i, (t, &mu)) in times.iter().zip(cluster.rates()).enumerate() {
        if t.is_none() && 1.0 / mu < t0 * (1.0 - tol) {
            return Err(CoreError::BadInput(format!(
                "unused computer {i} would beat the common level ({} < {t0})",
                1.0 / mu
            )));
        }
    }
    Ok(t0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::Coop;

    #[test]
    fn equilibrium_conditions_hold() {
        let c = Cluster::new(vec![4.0, 2.0, 1.0, 0.1]).unwrap();
        let phi = 3.0;
        let rep = Wardrop::default().solve(&c, phi).unwrap();
        rep.allocation.verify(&c, phi, 1e-8).unwrap();
        let level = verify_wardrop_equilibrium(&c, &rep.allocation, 1e-6).unwrap();
        assert!((level - rep.level).abs() < 1e-6 * level);
    }

    #[test]
    fn coincides_with_coop() {
        // The crux of Figure 3.1's overlapping curves: in this model the
        // Wardrop equilibrium and the NBS are the same point.
        let c = Cluster::from_groups(&[(2, 0.13), (3, 0.065), (5, 0.026), (6, 0.013)]).unwrap();
        for rho in [0.1, 0.4, 0.6, 0.9] {
            let phi = c.arrival_rate_for_utilization(rho);
            let w = Wardrop::default().allocate(&c, phi).unwrap();
            let n = Coop.allocate(&c, phi).unwrap();
            for (i, (&a, &b)) in w.loads().iter().zip(n.loads()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-6 * phi.max(1.0),
                    "rho {rho} computer {i}: wardrop {a} vs coop {b}"
                );
            }
        }
    }

    #[test]
    fn looser_tolerance_costs_fewer_iterations() {
        let c = Cluster::new(vec![5.3, 3.1, 2.7, 1.2]).unwrap();
        let tight = Wardrop::with_tolerance(1e-12).solve(&c, 6.1).unwrap();
        let loose = Wardrop::with_tolerance(1e-3).solve(&c, 6.1).unwrap();
        assert!(loose.iterations < tight.iterations);
    }

    #[test]
    fn zero_load() {
        let c = Cluster::new(vec![1.0]).unwrap();
        let rep = Wardrop::default().solve(&c, 0.0).unwrap();
        assert_eq!(rep.allocation.loads(), &[0.0]);
        assert_eq!(rep.iterations, 0);
    }

    #[test]
    fn verifier_rejects_non_equilibrium() {
        let c = Cluster::new(vec![4.0, 2.0]).unwrap();
        // Unequal times: λ = (1, 1) gives T = (1/3, 1).
        let bad = Allocation::new(vec![1.0, 1.0]);
        assert!(verify_wardrop_equilibrium(&c, &bad, 1e-6).is_err());
        // Unused fast computer: everything on the slow one.
        let bad = Allocation::new(vec![0.0, 1.0]);
        assert!(verify_wardrop_equilibrium(&c, &bad, 1e-6).is_err());
    }
}
