//! `gtlb-core` — game-theoretic static load balancing.
//!
//! This crate implements the primary contribution of
//! *"Load Balancing in Distributed Systems: An Approach Using Cooperative
//! Games"* (Grosu, Chronopoulos, Leung, IPPS 2002): the load-balancing
//! problem for a single-class-job distributed system formulated as a
//! **cooperative game among computers**, solved by the **Nash Bargaining
//! Solution** via the `O(n log n)` COOP algorithm — plus every baseline
//! the paper compares against, and the dissertation's noncooperative
//! multi-user extension (Chapter 4).
//!
//! # Model
//!
//! `n` heterogeneous computers, computer `i` an M/M/1 queue with service
//! rate `μ_i`; jobs arrive at total rate `Φ < Σμ_i`; a static scheme picks
//! loads `λ_i ≥ 0` with `Σλ_i = Φ` and `λ_i < μ_i`. The expected response
//! time at computer `i` is `1/(μ_i − λ_i)`.
//!
//! # Schemes
//!
//! | scheme | optimizes | fairness index | complexity |
//! |--------|-----------|----------------|------------|
//! | [`schemes::Coop`] | Nash Bargaining Solution: `max Σ ln(μ_i − λ_i)` | exactly 1 (Thm 3.8) | `O(n log n)` |
//! | [`schemes::Optim`] | overall delay `min Σ λ_i/(μ_i − λ_i)` | < 1 at load | `O(n log n)` |
//! | [`schemes::Prop`] | nothing (rate-proportional split) | < 1 | `O(n)` |
//! | [`schemes::Wardrop`] | individual optimum (equal response times) | 1 | iterative |
//!
//! # Quickstart
//!
//! ```
//! use gtlb_core::model::Cluster;
//! use gtlb_core::schemes::{Coop, SingleClassScheme};
//!
//! // Three computers; 6 jobs/s arrive in total.
//! let cluster = Cluster::new(vec![10.0, 5.0, 1.0]).unwrap();
//! let alloc = Coop.allocate(&cluster, 6.0).unwrap();
//!
//! // The NBS equalizes response times on the computers it uses …
//! let times = alloc.response_times(&cluster);
//! assert!((times[0].unwrap() - times[1].unwrap()).abs() < 1e-9);
//! // … so the allocation is perfectly fair to jobs:
//! assert!((alloc.fairness_index(&cluster) - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod error;
pub mod model;
pub mod network;
pub mod noncoop;
pub mod schemes;

pub use allocation::Allocation;
pub use error::CoreError;
pub use model::Cluster;
