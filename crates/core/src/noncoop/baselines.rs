//! The multi-user comparison schemes of §4.4: PS, GOS, IOS.

use crate::error::CoreError;
use crate::noncoop::system::{StrategyProfile, UserSystem};
use crate::schemes::{Optim, SingleClassScheme, Wardrop};

/// A static multi-user scheme: produces a full strategy profile for the
/// system.
pub trait MultiUserScheme {
    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Computes the profile.
    ///
    /// # Errors
    /// Scheme-specific; all reject infeasible systems.
    fn profile(&self, system: &UserSystem) -> Result<StrategyProfile, CoreError>;
}

/// PS — every user splits its jobs in proportion to the processing rates
/// (\[24\]). Fairness index is identically 1 (all users see the same
/// times), but the overall response time suffers because slow computers
/// stay proportionally loaded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProportionalScheme;

impl MultiUserScheme for ProportionalScheme {
    fn name(&self) -> &'static str {
        "PS"
    }

    fn profile(&self, system: &UserSystem) -> Result<StrategyProfile, CoreError> {
        Ok(StrategyProfile::proportional(system))
    }
}

/// GOS — the global optimal scheme of Kim & Kameda \[71\]: minimizes the
/// *overall* expected response time with no regard for per-user fairness.
///
/// Since all jobs are statistically identical, the overall optimum pins
/// down only the aggregate computer loads (the single-class OPTIM
/// solution); any split of those loads among users is overall-optimal.
/// \[71\]'s algorithm returns one particular split; we materialize the
/// optimum with a deterministic greedy fill — users in index order claim
/// capacity on the fastest computers first — which reproduces the paper's
/// qualitative finding (Figure 4.5): GOS achieves the best overall time
/// while spreading wildly unequal times across users.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalOptimalScheme;

impl MultiUserScheme for GlobalOptimalScheme {
    fn name(&self) -> &'static str {
        "GOS"
    }

    fn profile(&self, system: &UserSystem) -> Result<StrategyProfile, CoreError> {
        let phi = system.total_arrival_rate();
        let loads = Optim.allocate(system.cluster(), phi)?;
        greedy_fill(system, loads.loads())
    }
}

/// IOS — the individual optimal scheme of Kameda et al. \[67\]: the Wardrop
/// equilibrium in which each of infinitely many jobs optimizes for
/// itself. All jobs (hence all users) see the same expected response
/// time, so the scheme is perfectly fair but not overall-optimal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndividualOptimalScheme {
    /// Level-solver tolerance (see [`Wardrop`]).
    pub tolerance: f64,
}

impl IndividualOptimalScheme {
    /// IOS with the default tolerance.
    #[must_use]
    pub fn new() -> Self {
        Self { tolerance: 1e-10 }
    }
}

impl Default for IndividualOptimalScheme {
    fn default() -> Self {
        Self::new()
    }
}

impl MultiUserScheme for IndividualOptimalScheme {
    fn name(&self) -> &'static str {
        "IOS"
    }

    fn profile(&self, system: &UserSystem) -> Result<StrategyProfile, CoreError> {
        let phi = system.total_arrival_rate();
        let loads = Wardrop::with_tolerance(self.tolerance).allocate(system.cluster(), phi)?;
        // Every user routes with the same computer distribution λ_i/Φ, so
        // every user's expected time equals the system's.
        let row: Vec<f64> = loads.loads().iter().map(|&l| l / phi).collect();
        Ok(StrategyProfile::from_rows(vec![row; system.m()]))
    }
}

/// Splits target aggregate loads among users by a greedy fill: users in
/// index order, computers fastest-first.
fn greedy_fill(system: &UserSystem, target_loads: &[f64]) -> Result<StrategyProfile, CoreError> {
    let order = system.cluster().order_by_rate_desc();
    let mut remaining: Vec<f64> = target_loads.to_vec();
    let mut rows = Vec::with_capacity(system.m());
    for (j, &phi_j) in system.user_rates().iter().enumerate() {
        let mut row = vec![0.0; system.n()];
        let mut need = phi_j;
        for &i in &order {
            if need <= 0.0 {
                break;
            }
            let take = remaining[i].min(need);
            if take > 0.0 {
                row[i] = take / phi_j;
                remaining[i] -= take;
                need -= take;
            }
        }
        if need > 1e-9 * phi_j {
            return Err(CoreError::BadInput(format!(
                "greedy fill could not place user {j}'s demand (residual {need})"
            )));
        }
        // Absorb rounding drift into the largest entry so Σ row = 1.
        let total: f64 = row.iter().sum();
        if let Some(max) =
            row.iter_mut().max_by(|a, b| a.partial_cmp(b).expect("fractions are finite"))
        {
            *max += 1.0 - total;
        }
        rows.push(row);
    }
    Ok(StrategyProfile::from_rows(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::jain_index;
    use crate::model::Cluster;
    use crate::noncoop::nash::{solve, NashInit, NashOptions};

    fn sys() -> UserSystem {
        let cluster = Cluster::from_groups(&[(2, 100.0), (3, 50.0), (5, 20.0), (6, 10.0)]).unwrap();
        let phi = cluster.arrival_rate_for_utilization(0.6);
        let shares = [0.3, 0.2, 0.1, 0.07, 0.07, 0.06, 0.06, 0.05, 0.05, 0.04];
        UserSystem::with_shares(cluster, phi, &shares).unwrap()
    }

    #[test]
    fn ps_and_ios_are_perfectly_fair() {
        let s = sys();
        for scheme in [&ProportionalScheme as &dyn MultiUserScheme, &IndividualOptimalScheme::new()]
        {
            let p = scheme.profile(&s).unwrap();
            p.verify(&s, 1e-7).unwrap();
            assert!(
                (p.fairness_index(&s) - 1.0).abs() < 1e-9,
                "{} fairness {}",
                scheme.name(),
                p.fairness_index(&s)
            );
        }
    }

    #[test]
    fn gos_minimizes_overall_time() {
        let s = sys();
        let gos = GlobalOptimalScheme.profile(&s).unwrap();
        gos.verify(&s, 1e-7).unwrap();
        let t_gos = gos.overall_response_time(&s);
        for scheme in [&ProportionalScheme as &dyn MultiUserScheme, &IndividualOptimalScheme::new()]
        {
            let t = scheme.profile(&s).unwrap().overall_response_time(&s);
            assert!(t_gos <= t + 1e-9, "GOS {t_gos} vs {} {t}", scheme.name());
        }
        let nash = solve(&s, &NashInit::Proportional, &NashOptions::default()).unwrap();
        assert!(t_gos <= nash.profile.overall_response_time(&s) + 1e-9);
    }

    #[test]
    fn gos_is_unfair_across_users() {
        // Figure 4.5's message: large differences in users' times.
        let s = sys();
        let p = GlobalOptimalScheme.profile(&s).unwrap();
        let times = p.user_times(&s);
        let fairness = jain_index(&times);
        assert!(fairness < 0.999, "GOS should not be perfectly fair: {fairness}");
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        assert!(max > 1.5 * min, "user times {times:?}");
    }

    #[test]
    fn gos_aggregate_matches_single_class_optim() {
        use crate::schemes::{Optim, SingleClassScheme};
        let s = sys();
        let p = GlobalOptimalScheme.profile(&s).unwrap();
        let agg = p.computer_loads(&s);
        let phi = s.total_arrival_rate();
        let optim = Optim.allocate(s.cluster(), phi).unwrap();
        for (i, (&a, &o)) in agg.iter().zip(optim.loads()).enumerate() {
            assert!((a - o).abs() < 1e-6 * phi, "computer {i}");
        }
    }

    #[test]
    fn nash_sits_between_gos_and_ps() {
        // Figure 4.4's ordering at medium load:
        // GOS <= NASH <= IOS/PS overall.
        let s = sys();
        let t_gos = GlobalOptimalScheme.profile(&s).unwrap().overall_response_time(&s);
        let t_ps = ProportionalScheme.profile(&s).unwrap().overall_response_time(&s);
        let nash = solve(&s, &NashInit::Proportional, &NashOptions::default()).unwrap();
        let t_nash = nash.profile.overall_response_time(&s);
        assert!(t_gos <= t_nash + 1e-9 && t_nash <= t_ps + 1e-9, "{t_gos} {t_nash} {t_ps}");
    }

    #[test]
    fn greedy_fill_conserves_everything() {
        let s = sys();
        let p = GlobalOptimalScheme.profile(&s).unwrap();
        for j in 0..s.m() {
            let total: f64 = p.row(j).iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "row {j} sums to {total}");
        }
    }
}
