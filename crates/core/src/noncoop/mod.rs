//! The noncooperative load-balancing game among users (Chapter 4).
//!
//! `m` selfish users share the `n`-computer cluster. User `j` generates
//! jobs at rate `φ_j` and picks a strategy `s_j = (s_j1 … s_jn)` — the
//! fractions of its jobs sent to each computer — to minimize the expected
//! response time of *its own* jobs, given everyone else's strategies. The
//! solution concept is the Nash equilibrium: a profile from which no user
//! can improve by deviating unilaterally.
//!
//! * [`system::UserSystem`] / [`system::StrategyProfile`] — the model;
//! * [`best_reply`] — Theorem 4.1's closed-form best reply (the
//!   `BEST-REPLY` algorithm): user `j` solves a single-user OPTIM problem
//!   over the *available* rates `μ̂_ij = μ_i − Σ_{k≠j} s_ki φ_k`;
//! * [`nash`] — the distributed round-robin best-reply iteration
//!   (`NASH_0` / `NASH_P` initializations, Figure 4.2/4.3);
//! * [`baselines`] — the comparison schemes GOS, IOS, PS of §4.4.

pub mod baselines;
pub mod best_reply;
pub mod nash;
pub mod system;

pub use baselines::{
    GlobalOptimalScheme, IndividualOptimalScheme, MultiUserScheme, ProportionalScheme,
};
pub use nash::{NashInit, NashOptions, NashOutcome, NashScheme};
pub use system::{StrategyProfile, UserSystem};
