//! The multi-user system model and strategy profiles.

use gtlb_numerics::sum::neumaier_sum;

use crate::allocation::{jain_index, Allocation};
use crate::error::CoreError;
use crate::model::Cluster;

/// A cluster shared by `m` users, user `j` generating jobs at average
/// rate `φ_j` (Figure 4.1's model).
#[derive(Debug, Clone, PartialEq)]
pub struct UserSystem {
    cluster: Cluster,
    user_rates: Vec<f64>,
}

impl UserSystem {
    /// Builds the system, checking `Φ = Σφ_j < Σμ_i`.
    ///
    /// # Errors
    /// [`CoreError::BadInput`] for empty/negative user rates,
    /// [`CoreError::Overloaded`] when the aggregate demand meets capacity.
    pub fn new(cluster: Cluster, user_rates: Vec<f64>) -> Result<Self, CoreError> {
        if user_rates.is_empty() {
            return Err(CoreError::BadInput("need at least one user".into()));
        }
        if let Some((j, &r)) =
            user_rates.iter().enumerate().find(|&(_, &r)| !(r.is_finite() && r > 0.0))
        {
            return Err(CoreError::BadInput(format!(
                "user {j} arrival rate must be positive and finite, got {r}"
            )));
        }
        let phi = neumaier_sum(user_rates.iter().copied());
        cluster.check_arrival_rate(phi)?;
        Ok(Self { cluster, user_rates })
    }

    /// Splits a total arrival rate `phi` across users according to the
    /// fractional shares `q` (which must sum to 1).
    ///
    /// # Errors
    /// As [`UserSystem::new`]; also rejects share vectors not summing to 1.
    pub fn with_shares(cluster: Cluster, phi: f64, q: &[f64]) -> Result<Self, CoreError> {
        let total: f64 = q.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(CoreError::BadInput(format!("user shares sum to {total}, expected 1")));
        }
        Self::new(cluster, q.iter().map(|&s| s * phi).collect())
    }

    /// Number of users `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.user_rates.len()
    }

    /// Number of computers `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.cluster.n()
    }

    /// The shared cluster.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Per-user arrival rates `φ_j`.
    #[must_use]
    pub fn user_rates(&self) -> &[f64] {
        &self.user_rates
    }

    /// Aggregate arrival rate `Φ`.
    #[must_use]
    pub fn total_arrival_rate(&self) -> f64 {
        neumaier_sum(self.user_rates.iter().copied())
    }
}

/// A strategy profile: row `j` holds user `j`'s fractions `s_ji` over the
/// computers.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyProfile {
    fractions: Vec<Vec<f64>>,
}

impl StrategyProfile {
    /// All-zero profile (`NASH_0`'s starting point — not itself feasible
    /// as a final answer since rows must sum to 1).
    #[must_use]
    pub fn zeros(m: usize, n: usize) -> Self {
        Self { fractions: vec![vec![0.0; n]; m] }
    }

    /// Proportional profile: every user splits in proportion to the
    /// processing rates (`NASH_P`'s starting point, and the PS scheme).
    #[must_use]
    pub fn proportional(system: &UserSystem) -> Self {
        let total = system.cluster().total_rate();
        let row: Vec<f64> = system.cluster().rates().iter().map(|&mu| mu / total).collect();
        Self { fractions: vec![row; system.m()] }
    }

    /// Wraps explicit rows.
    ///
    /// # Panics
    /// If the rows are ragged.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        if let Some(first) = rows.first() {
            let n = first.len();
            assert!(rows.iter().all(|r| r.len() == n), "StrategyProfile: ragged rows");
        }
        Self { fractions: rows }
    }

    /// User `j`'s strategy row.
    #[must_use]
    pub fn row(&self, j: usize) -> &[f64] {
        &self.fractions[j]
    }

    /// All strategy rows (user-major).
    #[must_use]
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.fractions
    }

    /// Replaces user `j`'s strategy row.
    ///
    /// # Panics
    /// If the row length differs from the profile width.
    pub fn set_row(&mut self, j: usize, row: Vec<f64>) {
        assert_eq!(row.len(), self.fractions[j].len(), "set_row: width mismatch");
        self.fractions[j] = row;
    }

    /// Aggregate load at each computer, `λ_i = Σ_j s_ji φ_j`.
    #[must_use]
    pub fn computer_loads(&self, system: &UserSystem) -> Vec<f64> {
        let n = system.n();
        let mut loads = vec![0.0; n];
        for (row, &phi_j) in self.fractions.iter().zip(system.user_rates()) {
            for (l, &s) in loads.iter_mut().zip(row) {
                *l += s * phi_j;
            }
        }
        loads
    }

    /// The aggregate loads as a single-class [`Allocation`].
    #[must_use]
    pub fn to_allocation(&self, system: &UserSystem) -> Allocation {
        Allocation::new(self.computer_loads(system))
    }

    /// User `j`'s expected response time (eq. 4.2):
    /// `D_j = Σ_i s_ji / (μ_i − λ_i)` where `λ_i` is the aggregate load.
    /// `+∞` if the user routes to an overloaded computer.
    #[must_use]
    pub fn user_response_time(&self, system: &UserSystem, j: usize) -> f64 {
        let loads = self.computer_loads(system);
        self.user_response_time_with_loads(system, j, &loads)
    }

    /// As [`Self::user_response_time`] but with the aggregate loads
    /// precomputed (avoids the `O(mn)` recomputation in hot loops).
    #[must_use]
    pub fn user_response_time_with_loads(
        &self,
        system: &UserSystem,
        j: usize,
        loads: &[f64],
    ) -> f64 {
        let mut acc = 0.0;
        for ((&s, &mu), &l) in self.fractions[j].iter().zip(system.cluster().rates()).zip(loads) {
            if s <= 0.0 {
                continue;
            }
            if l >= mu {
                return f64::INFINITY;
            }
            acc += s / (mu - l);
        }
        acc
    }

    /// All users' expected response times.
    #[must_use]
    pub fn user_times(&self, system: &UserSystem) -> Vec<f64> {
        let loads = self.computer_loads(system);
        (0..system.m()).map(|j| self.user_response_time_with_loads(system, j, &loads)).collect()
    }

    /// Overall expected response time `T = Σ_j (φ_j/Φ) D_j` — the y-axis
    /// of Figures 4.4 / 4.6–4.8.
    #[must_use]
    pub fn overall_response_time(&self, system: &UserSystem) -> f64 {
        let phi = system.total_arrival_rate();
        let times = self.user_times(system);
        neumaier_sum(times.iter().zip(system.user_rates()).map(|(&d, &p)| d * p / phi))
    }

    /// Jain's fairness index over the users' expected response times
    /// (eq. 4.10, "defined from the users' perspective").
    #[must_use]
    pub fn fairness_index(&self, system: &UserSystem) -> f64 {
        jain_index(&self.user_times(system))
    }

    /// Verifies positivity, per-user conservation (`Σ_i s_ji = 1`), and
    /// aggregate stability (`λ_i < μ_i`).
    ///
    /// # Errors
    /// [`CoreError::BadInput`] naming the first violated condition.
    pub fn verify(&self, system: &UserSystem, tol: f64) -> Result<(), CoreError> {
        if self.fractions.len() != system.m() {
            return Err(CoreError::BadInput(format!(
                "profile has {} rows for {} users",
                self.fractions.len(),
                system.m()
            )));
        }
        for (j, row) in self.fractions.iter().enumerate() {
            if row.len() != system.n() {
                return Err(CoreError::BadInput(format!("row {j} has wrong width")));
            }
            if let Some((i, &s)) =
                row.iter().enumerate().find(|&(_, &s)| s < -tol || !s.is_finite())
            {
                return Err(CoreError::BadInput(format!("positivity violated: s[{j}][{i}] = {s}")));
            }
            let total: f64 = neumaier_sum(row.iter().copied());
            if (total - 1.0).abs() > tol {
                return Err(CoreError::BadInput(format!(
                    "conservation violated for user {j}: Σ s = {total}"
                )));
            }
        }
        let loads = self.computer_loads(system);
        for (i, (&l, &mu)) in loads.iter().zip(system.cluster().rates()).enumerate() {
            if l >= mu {
                return Err(CoreError::BadInput(format!(
                    "stability violated at computer {i}: λ = {l} >= μ = {mu}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> UserSystem {
        UserSystem::new(Cluster::new(vec![4.0, 2.0]).unwrap(), vec![1.0, 2.0]).unwrap()
    }

    #[test]
    fn construction_guards() {
        let c = Cluster::new(vec![1.0]).unwrap();
        assert!(UserSystem::new(c.clone(), vec![]).is_err());
        assert!(UserSystem::new(c.clone(), vec![0.0]).is_err());
        assert!(UserSystem::new(c.clone(), vec![0.5, 0.6]).is_err()); // overload
        assert!(UserSystem::new(c, vec![0.9]).is_ok());
    }

    #[test]
    fn with_shares_splits_phi() {
        let c = Cluster::new(vec![10.0]).unwrap();
        let s = UserSystem::with_shares(c, 5.0, &[0.6, 0.4]).unwrap();
        assert_eq!(s.user_rates(), &[3.0, 2.0]);
        assert!((s.total_arrival_rate() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn loads_aggregate_rows() {
        let sys = two_by_two();
        let p = StrategyProfile::from_rows(vec![vec![1.0, 0.0], vec![0.25, 0.75]]);
        let loads = p.computer_loads(&sys);
        // λ1 = 1·1 + 0.25·2 = 1.5, λ2 = 0 + 0.75·2 = 1.5.
        assert!((loads[0] - 1.5).abs() < 1e-12);
        assert!((loads[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn user_times_and_overall() {
        let sys = two_by_two();
        let p = StrategyProfile::from_rows(vec![vec![1.0, 0.0], vec![0.25, 0.75]]);
        // μ−λ = (2.5, 0.5). D_1 = 1/2.5 = 0.4. D_2 = 0.25/2.5 + 0.75/0.5 = 1.6.
        let times = p.user_times(&sys);
        assert!((times[0] - 0.4).abs() < 1e-12);
        assert!((times[1] - 1.6).abs() < 1e-12);
        // T = (1/3)·0.4 + (2/3)·1.6 = 1.2.
        assert!((p.overall_response_time(&sys) - 1.2).abs() < 1e-12);
        assert!(p.fairness_index(&sys) < 1.0);
    }

    #[test]
    fn proportional_profile_is_feasible_and_fair() {
        let sys = two_by_two();
        let p = StrategyProfile::proportional(&sys);
        p.verify(&sys, 1e-9).unwrap();
        // Same row for every user => identical user times => fairness 1.
        assert!((p.fairness_index(&sys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn verify_catches_violations() {
        let sys = two_by_two();
        // Row does not sum to 1.
        let p = StrategyProfile::from_rows(vec![vec![0.5, 0.0], vec![0.5, 0.5]]);
        assert!(p.verify(&sys, 1e-9).is_err());
        // Negative fraction.
        let p = StrategyProfile::from_rows(vec![vec![1.5, -0.5], vec![0.5, 0.5]]);
        assert!(p.verify(&sys, 1e-9).is_err());
        // Overloads computer 2 (μ=2): both users send everything there.
        let p = StrategyProfile::from_rows(vec![vec![0.0, 1.0], vec![0.0, 1.0]]);
        assert!(p.verify(&sys, 1e-9).is_err());
    }

    #[test]
    fn overloaded_route_is_infinite() {
        let sys = two_by_two();
        let p = StrategyProfile::from_rows(vec![vec![0.0, 1.0], vec![0.0, 1.0]]);
        assert_eq!(p.user_response_time(&sys, 0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = StrategyProfile::from_rows(vec![vec![1.0], vec![0.5, 0.5]]);
    }
}
